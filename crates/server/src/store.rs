//! Content-addressed trace store.
//!
//! Replay jobs need a recorded trace of their workload. Recording is
//! deterministic, so a trace is fully determined by its key — the
//! workload name plus the sweep fingerprint of the scale it was recorded
//! at (the same fingerprint that gates journal reuse). The store records
//! each distinct key at most once per daemon lifetime, shares the file
//! across every job that asks for it, and survives restarts: the file is
//! the cache.

use memsim_core::{sweep_fingerprint, Scale};
use memsim_workloads::WorkloadKind;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The store: a directory of `<workload>-<fingerprint-hash>.trace` files
/// plus an in-process lock map so concurrent jobs coalesce on one
/// recording instead of racing.
pub struct TraceStore {
    dir: PathBuf,
    // Key -> recorded? Guards the record-then-rename window; the OnceLock
    // idiom is overkill here because recording already writes to a
    // job-unique temp name and renames atomically.
    recorded: Mutex<HashMap<String, ()>>,
}

/// Short stable digest of an arbitrary string (FNV-1a 64), hex-encoded.
/// Keeps file names bounded however long the fingerprint grows.
pub fn digest(s: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

impl TraceStore {
    /// Open (and create) the store rooted at `dir`.
    pub fn open(dir: &Path) -> std::io::Result<TraceStore> {
        std::fs::create_dir_all(dir)?;
        Ok(TraceStore {
            dir: dir.to_path_buf(),
            recorded: Mutex::new(HashMap::new()),
        })
    }

    /// The content key for a workload at a scale.
    pub fn key(kind: WorkloadKind, scale: &Scale) -> String {
        format!(
            "{}-{}",
            kind.name().to_ascii_lowercase(),
            digest(&sweep_fingerprint(scale))
        )
    }

    /// Path a key's trace lives at (whether or not it exists yet).
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.trace"))
    }

    /// Ensure the trace for `kind` at `scale` exists, recording it on
    /// first use, and return its path. Serialized per store so two jobs
    /// requesting the same key record it exactly once.
    pub fn ensure(&self, kind: WorkloadKind, scale: &Scale) -> Result<PathBuf, String> {
        let key = Self::key(kind, scale);
        let path = self.path_for(&key);
        let mut recorded = self.recorded.lock().unwrap_or_else(|e| e.into_inner());
        if recorded.contains_key(&key) || path.exists() {
            recorded.insert(key, ());
            return Ok(path);
        }
        // Record to a temp name, then rename: readers never observe a
        // partial trace, even across a crash.
        let tmp = self.dir.join(format!("{key}.trace.tmp"));
        memsim_core::record_workload(kind, scale.class, &tmp)
            .map_err(|e| format!("recording {}: {e}", kind.name()))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("publishing trace: {e}"))?;
        recorded.insert(key, ());
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_distinct() {
        assert_eq!(digest("abc"), digest("abc"));
        assert_ne!(digest("abc"), digest("abd"));
        assert_eq!(digest("abc").len(), 16);
    }

    #[test]
    fn key_separates_workload_and_scale() {
        let mini = Scale::mini();
        let demo = Scale::demo();
        assert_ne!(
            TraceStore::key(WorkloadKind::Hash, &mini),
            TraceStore::key(WorkloadKind::Cg, &mini)
        );
        assert_ne!(
            TraceStore::key(WorkloadKind::Hash, &mini),
            TraceStore::key(WorkloadKind::Hash, &demo)
        );
    }

    #[test]
    fn ensure_records_once_and_reuses() {
        let dir = std::env::temp_dir().join(format!("memsim-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::open(&dir).unwrap();
        let p1 = store.ensure(WorkloadKind::Hash, &Scale::mini()).unwrap();
        assert!(p1.exists());
        let len = std::fs::metadata(&p1).unwrap().len();
        let p2 = store.ensure(WorkloadKind::Hash, &Scale::mini()).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(std::fs::metadata(&p2).unwrap().len(), len);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
