//! Golden record→replay equivalence: a trace recorded at mini scale and
//! replayed through the same hierarchy configuration must produce
//! *bit-identical* `LevelStats` at every level (and identical per-region
//! terminal traffic) to the live run that generated it. Cache behaviour is
//! a pure function of the address stream and the geometry, so any
//! divergence means the trace file altered the stream — an encoding bug,
//! a lost tail chunk, or a replay-side delivery difference.

use memsim_core::configs::{eh_by_name, n_by_name};
use memsim_core::replay::{record_workload, replay_structure};
use memsim_core::{simulate_structure, Design, RawRun, Scale};
use memsim_tech::Technology;
use memsim_workloads::{Class, WorkloadKind};
use std::path::PathBuf;

fn designs_under_test() -> Vec<Design> {
    vec![
        Design::FourLc {
            llc: Technology::Edram,
            config: eh_by_name("EH1").expect("EH1 exists"),
        },
        Design::Nmm {
            nvm: Technology::Pcm,
            config: n_by_name("N6").expect("N6 exists"),
        },
    ]
}

fn assert_bit_identical(live: &RawRun, replayed: &RawRun, what: &str) {
    assert_eq!(live.caches, replayed.caches, "{what}: cache LevelStats");
    assert_eq!(live.mem, replayed.mem, "{what}: terminal LevelStats");
    assert_eq!(live.per_region, replayed.per_region, "{what}: per-region");
    assert_eq!(live.region_names, replayed.region_names, "{what}: names");
    assert_eq!(live.region_sizes, replayed.region_sizes, "{what}: sizes");
    assert_eq!(live.region_starts, replayed.region_starts, "{what}: starts");
    assert_eq!(live.total_refs, replayed.total_refs, "{what}: total refs");
    assert_eq!(
        live.footprint_bytes, replayed.footprint_bytes,
        "{what}: footprint"
    );
}

fn golden_roundtrip(kind: WorkloadKind) {
    let scale = Scale::mini();
    let dir = std::env::temp_dir().join(format!("memsim-golden-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join(format!("{}.trace", kind.name()));

    let summary = record_workload(kind, Class::Mini, &path).unwrap();
    assert!(summary.events > 0, "{}: empty recording", kind.name());

    for design in designs_under_test() {
        let structure = design.structure(&scale);
        let live = simulate_structure(kind, &scale, &structure);
        let replayed = replay_structure(&path, &scale, &structure).unwrap();
        assert_bit_identical(
            &live,
            &replayed,
            &format!("{} × {}", kind.name(), design.label()),
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn cg_replay_is_bit_identical_to_live_run() {
    golden_roundtrip(WorkloadKind::Cg);
}

#[test]
fn hash_replay_is_bit_identical_to_live_run() {
    golden_roundtrip(WorkloadKind::Hash);
}
