//! Ablation: L3 capacity sensitivity with self-consistent SRAM parameters.
//!
//! The paper fixes L3 at 20 MB (CACTI point). Using the CACTI-lite
//! analytical model (`memsim-tech::sram_model`), this ablation co-varies
//! the L3's capacity, latency, energy, and leakage, and reports the
//! baseline AMAT/energy of each size — showing where extra SRAM stops
//! paying for itself on each workload class.

use criterion::{criterion_group, criterion_main, Criterion};
use memsim_bench::bench_scale;
use memsim_cache::{Cache, CacheConfig, Hierarchy};
use memsim_core::{breakdown, LevelCost, Metrics};
use memsim_memory::FlatMemory;
use memsim_tech::{sram_cache_params, sram_model, TechParams, Technology};
use memsim_workloads::WorkloadKind;
use std::hint::black_box;

struct Point {
    amat_ns: f64,
    energy_mj: f64,
    l3_hit: f64,
}

fn run_l3(scale: &memsim_core::Scale, kind: WorkloadKind, l3_bytes: u64) -> Point {
    let mut w = kind.build(scale.class);
    let caches = vec![
        Cache::new(CacheConfig::new("L1", scale.l1_bytes, 64, scale.l1_ways)),
        Cache::new(CacheConfig::new("L2", scale.l2_bytes, 64, scale.l2_ways)),
        Cache::new(CacheConfig::new("L3", l3_bytes, 64, 20)),
    ];
    let footprint = w.footprint_bytes();
    let mut h = Hierarchy::new(caches, FlatMemory::new(Technology::Dram, footprint));
    w.run(&mut h);
    h.drain();

    // self-consistent costing: the varied L3 uses the analytical model and
    // represents a paper-scale array (capacity × divisor)
    let costs = [
        LevelCost::from_tech("L1", &sram_cache_params(1), scale.l1_bytes),
        LevelCost::from_tech("L2", &sram_cache_params(2), scale.l2_bytes),
        LevelCost::from_tech(
            "L3",
            &sram_model(l3_bytes * scale.capacity_divisor),
            l3_bytes * scale.capacity_divisor,
        ),
        LevelCost::from_tech(
            "DRAM",
            &TechParams::of(Technology::Dram),
            footprint * scale.footprint_multiplier,
        ),
    ];
    let refs = h.total_refs();
    let l3_hit = h.levels()[2].stats().hit_rate();
    let mut stats: Vec<_> = h.levels().iter().map(|c| c.stats()).collect();
    let mut mem = h.memory().stats().clone();
    mem.name = "DRAM".into();
    stats.push(mem);
    let pairs: Vec<_> = stats.iter().zip(costs.iter()).collect();
    let m = Metrics::compute(&pairs, refs);
    let _ = breakdown(&pairs);
    Point {
        amat_ns: m.amat_ns,
        energy_mj: m.energy_j() * 1e3,
        l3_hit,
    }
}

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    println!("\n========== ablation: L3 size with CACTI-lite co-varying parameters ==========");
    for kind in [WorkloadKind::Cg, WorkloadKind::Hash] {
        println!("\n{} (baseline hierarchy, DRAM main memory):", kind.name());
        println!(
            "{:>10} {:>10} {:>12} {:>10}",
            "L3", "AMAT (ns)", "energy (mJ)", "L3 hit%"
        );
        for shift in 0..5 {
            let l3 = (scale.l3_bytes / 4) << shift; // ¼× … 4× the scale's L3
            let p = run_l3(&scale, kind, l3);
            println!(
                "{:>9}K {:>10.3} {:>12.3} {:>9.2}%",
                l3 >> 10,
                p.amat_ns,
                p.energy_mj,
                p.l3_hit * 100.0
            );
        }
    }
    println!("(larger L3 buys hit rate but pays CACTI-lite latency+leakage; the knee");
    println!(" depends on the workload's reuse-distance profile — cf. `memsim analyze`)");
    println!("==============================================================================\n");

    c.bench_function("ablation_l3_size/sim", |b| {
        b.iter(|| black_box(run_l3(&scale, WorkloadKind::Cg, scale.l3_bytes)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
