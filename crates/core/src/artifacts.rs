//! Named, reproducible artifacts: the paper's tables and figures as
//! (markdown, CSV) pairs addressable by a stable name.
//!
//! Extracted from the CLI's `reproduce` command so every front end — the
//! batch CLI, the `memsim-server` daemon, examples, CI — builds artifacts
//! through the same code path. That is what makes the parity pins
//! meaningful: a grid submitted to the server must produce bytes
//! identical to the batch run, which is only testable if both render
//! through one function.

use crate::design::Design;
use crate::experiments::{self, ExperimentCtx, Metric};
use crate::heatmap::HeatmapData;
use crate::report::{heatmap_to_csv, heatmap_to_markdown, FigureData};
use crate::runner::SweepError;
use memsim_tech::Technology;

/// The simulated artifacts `reproduce` (and server jobs) can build, in
/// the order the reproduction writes them. `table1` is static and handled
/// separately by the CLI.
pub const ARTIFACT_NAMES: [&str; 12] = [
    "table4", "fig1", "fig2", "fig1_edp", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig10",
];

/// Is `name` a buildable artifact?
pub fn is_artifact(name: &str) -> bool {
    ARTIFACT_NAMES.contains(&name)
}

/// A figure rendered both ways, so callers can print one form and persist
/// both next to the journal.
pub fn render_figure(f: &FigureData) -> (String, String) {
    (f.to_markdown(), f.to_csv())
}

/// [`render_figure`] for the heat-map figures.
pub fn render_heatmap(h: &HeatmapData) -> (String, String) {
    (heatmap_to_markdown(h), heatmap_to_csv(h))
}

/// Build one named artifact as (markdown, CSV). Unknown names are an
/// `Err`, not a panic — the server feeds this straight from request
/// bodies.
pub fn build_artifact(ctx: &ExperimentCtx, name: &str) -> Result<(String, String), SweepError> {
    let fig = |f: Result<FigureData, SweepError>| f.map(|f| render_figure(&f));
    let heat = |h: Result<HeatmapData, SweepError>| h.map(|h| render_heatmap(&h));
    match name {
        "table4" => fig(experiments::table4(ctx)),
        "fig1" => fig(experiments::fig_nmm(ctx, Metric::Time)),
        "fig2" => fig(experiments::fig_nmm(ctx, Metric::Energy)),
        "fig1_edp" => fig(experiments::fig_nmm(ctx, Metric::Edp)),
        "fig3" => fig(experiments::fig_4lc(ctx, Metric::Time)),
        "fig4" => fig(experiments::fig_4lc(ctx, Metric::Energy)),
        "fig5" => fig(experiments::fig_4lcnvm(ctx, Metric::Time)),
        "fig6" => fig(experiments::fig_4lcnvm(ctx, Metric::Energy)),
        "fig7" => fig(experiments::fig_ndm(ctx, Metric::Time)),
        "fig8" => fig(experiments::fig_ndm(ctx, Metric::Energy)),
        "fig9" => heat(experiments::fig9(ctx)),
        "fig10" => heat(experiments::fig10(ctx)),
        other => Err(SweepError::Failed(vec![crate::runner::FailedPoint {
            workload: memsim_workloads::WorkloadKind::Cg,
            design: Design::Baseline,
            message: format!("unknown artifact '{other}'"),
        }])),
    }
}

/// The named representative designs (one per architecture family, at the
/// configs the paper highlights) that `replay --designs` and server
/// design-grid jobs accept by name.
pub fn named_designs() -> Vec<(&'static str, Design)> {
    use crate::configs::{eh_by_name, n_by_name};
    vec![
        ("baseline", Design::Baseline),
        (
            "4lc",
            Design::FourLc {
                llc: Technology::Edram,
                config: eh_by_name("EH1").expect("EH1 exists"),
            },
        ),
        (
            "nmm",
            Design::Nmm {
                nvm: Technology::Pcm,
                config: n_by_name("N6").expect("N6 exists"),
            },
        ),
        (
            "4lcnvm",
            Design::FourLcNvm {
                llc: Technology::Edram,
                nvm: Technology::Pcm,
                config: eh_by_name("EH1").expect("EH1 exists"),
            },
        ),
        (
            "ndm",
            Design::Ndm {
                nvm: Technology::Pcm,
            },
        ),
    ]
}

/// Resolve a comma-separated list of design names against
/// [`named_designs`], preserving order.
pub fn parse_design_list(list: &str) -> Result<Vec<Design>, String> {
    let all = named_designs();
    list.split(',')
        .map(|name| {
            all.iter()
                .find(|(n, _)| *n == name)
                .map(|(_, d)| *d)
                .ok_or_else(|| format!("unknown design '{name}'"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::SimCache;
    use crate::scale::Scale;
    use memsim_workloads::WorkloadKind;

    #[test]
    fn artifact_names_are_buildable_and_unknown_rejected() {
        for name in ARTIFACT_NAMES {
            assert!(is_artifact(name));
        }
        assert!(!is_artifact("table1"));
        let cache = SimCache::new();
        let ctx = ExperimentCtx::new(Scale::mini(), &cache);
        assert!(build_artifact(&ctx, "nope").is_err());
    }

    #[test]
    fn table4_builds_and_matches_direct_call() {
        let cache = SimCache::new();
        let ctx = ExperimentCtx::new(Scale::mini(), &cache).with_workloads(&[WorkloadKind::Hash]);
        let (md, csv) = build_artifact(&ctx, "table4").unwrap();
        let direct = experiments::table4(&ctx).unwrap();
        assert_eq!(md, direct.to_markdown());
        assert_eq!(csv, direct.to_csv());
    }

    #[test]
    fn design_list_parses_names_and_rejects_junk() {
        let d = parse_design_list("baseline,nmm").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], Design::Baseline);
        assert!(parse_design_list("warp").is_err());
        assert!(parse_design_list("").is_err());
    }
}
