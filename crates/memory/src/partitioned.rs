//! The NDM design's partitioned DRAM + NVM main memory.
//!
//! "This design uses both NVM and DRAM as a partitioned main memory in
//! which data objects are placed where they best fit." Requests are routed
//! by address range; the per-region counters collected here are the oracle
//! partitioner's input: any alternative placement can be re-costed
//! analytically without re-simulating, because routing does not change the
//! cache behaviour above.

use memsim_cache::{LevelStats, MainMemory, ShardMerge};
use memsim_tech::Technology;
use memsim_trace::Region;

/// Where a region's data lives in the NDM design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// In the DRAM partition (the default for unattributed traffic).
    #[default]
    Dram,
    /// In the NVM partition.
    Nvm,
}

/// Per-region request counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionTraffic {
    /// Fetch requests that arrived for this region.
    pub loads: u64,
    /// Writeback requests that arrived for this region.
    pub stores: u64,
    /// Bytes fetched.
    pub bytes_loaded: u64,
    /// Bytes written.
    pub bytes_stored: u64,
}

/// DRAM + NVM side by side behind the last cache level, with an
/// address-range partition deciding which device serves each request.
#[derive(Debug, Clone)]
pub struct PartitionedMemory {
    nvm_tech: Technology,
    starts: Vec<u64>,
    ends: Vec<u64>,
    lens: Vec<u64>,
    placement: Vec<Placement>,
    /// Per-region traffic, indexed like the region list.
    traffic: Vec<RegionTraffic>,
    /// Traffic that fell outside every region (served by DRAM).
    pub unattributed: RegionTraffic,
    dram: LevelStats,
    nvm: LevelStats,
}

impl PartitionedMemory {
    /// Build over the address-ordered `regions` of the workload's address
    /// space, everything initially placed in DRAM, with `nvm_tech` backing
    /// the NVM partition.
    pub fn new(regions: &[Region], nvm_tech: Technology) -> Self {
        Self {
            nvm_tech,
            starts: regions.iter().map(|r| r.start).collect(),
            ends: regions.iter().map(|r| r.end()).collect(),
            lens: regions.iter().map(|r| r.len).collect(),
            placement: vec![Placement::Dram; regions.len()],
            traffic: vec![RegionTraffic::default(); regions.len()],
            unattributed: RegionTraffic::default(),
            dram: LevelStats::new("DRAM(part)"),
            nvm: LevelStats::new(nvm_tech.name()),
        }
    }

    /// Number of registered regions.
    pub fn region_count(&self) -> usize {
        self.placement.len()
    }

    /// The NVM technology of the NVM partition.
    pub fn nvm_tech(&self) -> Technology {
        self.nvm_tech
    }

    /// Place region `idx` (index in the region list) on `where_`.
    pub fn place(&mut self, idx: usize, where_: Placement) {
        self.placement[idx] = where_;
    }

    /// Current placement of region `idx`.
    pub fn placement(&self, idx: usize) -> Placement {
        self.placement[idx]
    }

    /// Per-region traffic counters.
    pub fn traffic(&self) -> &[RegionTraffic] {
        &self.traffic
    }

    /// Aggregate statistics of the DRAM partition.
    pub fn dram_stats(&self) -> &LevelStats {
        &self.dram
    }

    /// Aggregate statistics of the NVM partition.
    pub fn nvm_stats(&self) -> &LevelStats {
        &self.nvm
    }

    /// Bytes of capacity required by the DRAM partition under the current
    /// placement (the static-energy model charges DRAM refresh only for
    /// this, plus unattributed spill space).
    pub fn dram_partition_bytes(&self) -> u64 {
        self.lens
            .iter()
            .zip(&self.placement)
            .filter(|(_, p)| **p == Placement::Dram)
            .map(|(l, _)| *l)
            .sum()
    }

    /// Bytes of capacity required by the NVM partition.
    pub fn nvm_partition_bytes(&self) -> u64 {
        self.lens
            .iter()
            .zip(&self.placement)
            .filter(|(_, p)| **p == Placement::Nvm)
            .map(|(l, _)| *l)
            .sum()
    }

    #[inline]
    fn locate(&self, addr: u64) -> Option<usize> {
        let idx = self.starts.partition_point(|&s| s <= addr);
        if idx == 0 {
            return None;
        }
        (addr < self.ends[idx - 1]).then_some(idx - 1)
    }
}

impl MainMemory for PartitionedMemory {
    fn load(&mut self, addr: u64, bytes: u32) {
        let target = match self.locate(addr) {
            Some(i) => {
                self.traffic[i].loads += 1;
                self.traffic[i].bytes_loaded += u64::from(bytes);
                self.placement[i]
            }
            None => {
                self.unattributed.loads += 1;
                self.unattributed.bytes_loaded += u64::from(bytes);
                Placement::Dram
            }
        };
        let stats = match target {
            Placement::Dram => &mut self.dram,
            Placement::Nvm => &mut self.nvm,
        };
        stats.loads += 1;
        stats.bytes_loaded += u64::from(bytes);
    }

    fn store(&mut self, addr: u64, bytes: u32) {
        let target = match self.locate(addr) {
            Some(i) => {
                self.traffic[i].stores += 1;
                self.traffic[i].bytes_stored += u64::from(bytes);
                self.placement[i]
            }
            None => {
                self.unattributed.stores += 1;
                self.unattributed.bytes_stored += u64::from(bytes);
                Placement::Dram
            }
        };
        let stats = match target {
            Placement::Dram => &mut self.dram,
            Placement::Nvm => &mut self.nvm,
        };
        stats.stores += 1;
        stats.bytes_stored += u64::from(bytes);
    }
}

impl ShardMerge for PartitionedMemory {
    /// Fold a sibling shard replica's traffic into this one. Configuration
    /// (region table, NVM technology, placement — uniformly DRAM at
    /// simulation time) is identical across replicas cloned from one
    /// prototype, so only the counters add.
    fn merge_shard(&mut self, other: &Self) {
        debug_assert_eq!(self.starts, other.starts, "shard replicas diverged");
        debug_assert_eq!(self.placement, other.placement, "shard replicas diverged");
        debug_assert_eq!(self.nvm_tech, other.nvm_tech, "shard replicas diverged");
        for (t, o) in self.traffic.iter_mut().zip(other.traffic.iter()) {
            t.merge(o);
        }
        self.unattributed.merge(&other.unattributed);
        self.dram.merge(&other.dram);
        self.nvm.merge(&other.nvm);
    }
}

impl RegionTraffic {
    /// Saturating element-wise accumulation (used by the shard merge).
    pub fn merge(&mut self, other: &Self) {
        self.loads = self.loads.saturating_add(other.loads);
        self.stores = self.stores.saturating_add(other.stores);
        self.bytes_loaded = self.bytes_loaded.saturating_add(other.bytes_loaded);
        self.bytes_stored = self.bytes_stored.saturating_add(other.bytes_stored);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim_trace::AddressSpace;
    use proptest::prelude::*;

    fn space_with(names_lens: &[(&str, u64)]) -> AddressSpace {
        let mut s = AddressSpace::new();
        for (n, l) in names_lens {
            s.alloc(n, *l);
        }
        s
    }

    #[test]
    fn routes_by_placement() {
        let s = space_with(&[("a", 8192), ("b", 8192)]);
        let regions = s.regions().to_vec();
        let mut m = PartitionedMemory::new(&regions, Technology::Pcm);
        m.place(1, Placement::Nvm);

        m.load(regions[0].start, 64);
        m.load(regions[1].start, 64);
        m.store(regions[1].start + 128, 64);

        assert_eq!(m.dram_stats().loads, 1);
        assert_eq!(m.nvm_stats().loads, 1);
        assert_eq!(m.nvm_stats().stores, 1);
        assert_eq!(m.traffic()[0].loads, 1);
        assert_eq!(m.traffic()[1].loads, 1);
        assert_eq!(m.traffic()[1].stores, 1);
    }

    #[test]
    fn unattributed_goes_to_dram() {
        let s = space_with(&[("a", 4096)]);
        let mut m = PartitionedMemory::new(s.regions(), Technology::SttRam);
        m.load(0, 64); // below every region
        m.store(u64::MAX - 64, 64); // above every region
        assert_eq!(m.unattributed.loads, 1);
        assert_eq!(m.unattributed.stores, 1);
        assert_eq!(m.dram_stats().loads, 1);
        assert_eq!(m.dram_stats().stores, 1);
        assert_eq!(m.nvm_stats().accesses(), 0);
    }

    #[test]
    fn partition_capacities_follow_placement() {
        let s = space_with(&[("a", 1000), ("b", 3000), ("c", 5000)]);
        let mut m = PartitionedMemory::new(s.regions(), Technology::Pcm);
        assert_eq!(m.dram_partition_bytes(), 9000);
        assert_eq!(m.nvm_partition_bytes(), 0);
        m.place(1, Placement::Nvm);
        assert_eq!(m.dram_partition_bytes(), 6000);
        assert_eq!(m.nvm_partition_bytes(), 3000);
        m.place(0, Placement::Nvm);
        m.place(2, Placement::Nvm);
        assert_eq!(m.dram_partition_bytes(), 0);
        assert_eq!(m.nvm_partition_bytes(), 9000);
    }

    proptest! {
        /// DRAM + NVM aggregate counters always equal total requests, and
        /// per-region traffic + unattributed equals the same total.
        #[test]
        fn conservation(
            ops in proptest::collection::vec((0u64..0x1004_0000, proptest::bool::ANY), 1..300),
            nvm_mask in 0u8..8,
        ) {
            let s = space_with(&[("a", 65536), ("b", 65536), ("c", 65536)]);
            let mut m = PartitionedMemory::new(s.regions(), Technology::FeRam);
            for i in 0..3 {
                if nvm_mask & (1 << i) != 0 {
                    m.place(i, Placement::Nvm);
                }
            }
            for &(addr, is_store) in &ops {
                if is_store { m.store(addr, 64) } else { m.load(addr, 64) }
            }
            let total = ops.len() as u64;
            prop_assert_eq!(m.dram_stats().accesses() + m.nvm_stats().accesses(), total);
            let regional: u64 = m.traffic().iter().map(|t| t.loads + t.stores).sum();
            let un = m.unattributed.loads + m.unattributed.stores;
            prop_assert_eq!(regional + un, total);
        }
    }
}
