//! Golden sampled-vs-full accuracy: an interval-sampled replay must
//! land within the paper-grade error budget (<2% AMAT / energy against
//! the full-fidelity run of the same trace), the *reported* confidence
//! interval must cover the *true* error, and a plan that simulates every
//! interval (clusters ≥ intervals, functional warmup) must be
//! bit-identical to the full walk — sampling with nothing left out is
//! not allowed to perturb a single counter. Journals written in one
//! fidelity mode must refuse to resume a sweep in the other.

use memsim_core::configs::{eh_by_name, n_by_name};
use memsim_core::replay::{record_workload, replay_structure};
use memsim_core::runner::evaluate_run;
use memsim_core::sampling::{build_plan, replay_structure_sampled, SampleSpec, Warmup};
use memsim_core::{Design, SampleMode, Scale, SweepCtx, JOURNAL_FILE};
use memsim_tech::Technology;
use memsim_workloads::{Class, WorkloadKind};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memsim-sampling-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The paper structures the acceptance pins: a 4LC with eDRAM LLC and
/// the NMM design at N6 (NDM is excluded — its oracle partitioner
/// re-places regions per costing, so it has no per-run CI).
fn paper_designs() -> Vec<Design> {
    vec![
        Design::FourLc {
            llc: Technology::Edram,
            config: eh_by_name("EH1").expect("EH1 exists"),
        },
        Design::Nmm {
            nvm: Technology::Pcm,
            config: n_by_name("N6").expect("N6 exists"),
        },
    ]
}

fn rel_err(sampled: f64, full: f64) -> f64 {
    (sampled - full).abs() / full
}

fn golden_accuracy(kind: WorkloadKind) {
    let scale = Scale::mini();
    let dir = tmp_dir(&format!("golden-{}", kind.name()));
    let path = dir.join("w.trace");
    let summary = record_workload(kind, Class::Mini, &path).unwrap();
    assert!(summary.events > 0, "{}: empty recording", kind.name());

    // ~12 intervals squeezed into 4 clusters: a real extrapolation
    // (weights > 1) so the CI is exercised, not the exact degenerate case
    let spec = SampleSpec {
        interval: (summary.events / 12).max(1),
        clusters: 4,
        warmup: Warmup::Functional,
    };
    let plan = build_plan(&path, spec).unwrap();
    assert!(
        plan.intervals >= 8,
        "plan too coarse: {} intervals",
        plan.intervals
    );

    for design in paper_designs() {
        let structure = design.structure(&scale);
        let full = replay_structure(&path, &scale, &structure).unwrap();
        let sampled = replay_structure_sampled(&path, &scale, &structure, &plan).unwrap();
        let what = format!("{} × {}", kind.name(), design.label());

        let full_eval = evaluate_run(kind, &scale, &design, Arc::new(full));
        let samp_eval = evaluate_run(kind, &scale, &design, Arc::new(sampled));
        let ci = samp_eval
            .sample_ci
            .unwrap_or_else(|| panic!("{what}: sampled run must report a CI"));

        let amat_err = rel_err(samp_eval.metrics.amat_ns, full_eval.metrics.amat_ns);
        let energy_err = rel_err(samp_eval.metrics.energy_j(), full_eval.metrics.energy_j());
        assert!(
            amat_err < 0.02,
            "{what}: AMAT error {:.3}% ≥ 2%",
            100.0 * amat_err
        );
        assert!(
            energy_err < 0.02,
            "{what}: energy error {:.3}% ≥ 2%",
            100.0 * energy_err
        );
        // the honesty pin: the interval the run *reports* must cover the
        // error it actually made (z=2 halfwidth vs the golden run)
        assert!(
            amat_err <= ci.amat,
            "{what}: true AMAT error {:.4}% outside reported CI ±{:.4}%",
            100.0 * amat_err,
            100.0 * ci.amat
        );
        assert!(
            energy_err <= ci.energy,
            "{what}: true energy error {:.4}% outside reported CI ±{:.4}%",
            100.0 * energy_err,
            100.0 * ci.energy
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cg_sampled_error_is_small_and_inside_reported_ci() {
    golden_accuracy(WorkloadKind::Cg);
}

#[test]
fn hash_sampled_error_is_small_and_inside_reported_ci() {
    golden_accuracy(WorkloadKind::Hash);
}

#[test]
fn clusters_at_least_intervals_is_bit_identical_to_full_run() {
    let scale = Scale::mini();
    let dir = tmp_dir("exact");
    let path = dir.join("w.trace");
    let summary = record_workload(WorkloadKind::Hash, Class::Mini, &path).unwrap();

    // every interval its own cluster: with functional warmup the sampled
    // walk feeds every event to one hierarchy in order — the split into
    // snapshot deltas must be invisible
    let spec = SampleSpec {
        interval: (summary.events / 3).max(1),
        clusters: 64,
        warmup: Warmup::Functional,
    };
    let plan = build_plan(&path, spec).unwrap();
    assert_eq!(
        plan.clusters.len() as u64,
        plan.intervals,
        "clusters ≥ intervals must degenerate to one cluster per interval"
    );

    for design in paper_designs() {
        let structure = design.structure(&scale);
        let full = replay_structure(&path, &scale, &structure).unwrap();
        let sampled = replay_structure_sampled(&path, &scale, &structure, &plan).unwrap();
        let what = design.label();
        assert_eq!(full.caches, sampled.caches, "{what}: cache LevelStats");
        assert_eq!(full.mem, sampled.mem, "{what}: terminal LevelStats");
        assert_eq!(full.total_refs, sampled.total_refs, "{what}: total refs");

        // and the CI must be exactly zero: nothing was extrapolated
        let eval = evaluate_run(WorkloadKind::Hash, &scale, &design, Arc::new(sampled));
        let ci = eval.sample_ci.expect("sampled run reports a CI");
        assert_eq!(ci.amat, 0.0, "{what}: exact plan must report zero CI");
        assert_eq!(ci.energy, 0.0, "{what}: exact plan must report zero CI");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_refuses_cross_fidelity_resume_in_both_directions() {
    let scale = Scale::mini();
    let on = SampleMode::parse("interval=65536,clusters=4").unwrap();
    // one real point to journal in each mode — refusal is per recorded
    // line, so an empty journal legitimately resumes either way
    let point = memsim_core::evaluate(WorkloadKind::Hash, &scale, &Design::Baseline);

    // sampled journal → full-fidelity resume must refuse
    let dir = tmp_dir("xres-a");
    let journal = dir.join(JOURNAL_FILE);
    let ctx = SweepCtx::fresh_sampled(&scale, &journal, on).unwrap();
    ctx.record(&point);
    drop(ctx);
    let err = match SweepCtx::resume(&scale, &journal) {
        Err(e) => e,
        Ok(_) => panic!("resuming a sampled journal at full fidelity must be refused"),
    };
    assert!(
        err.contains("sample"),
        "refusal must name the fidelity mismatch: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // full-fidelity journal → sampled resume must refuse
    let dir = tmp_dir("xres-b");
    let journal = dir.join(JOURNAL_FILE);
    let ctx = SweepCtx::fresh(&scale, &journal).unwrap();
    ctx.record(&point);
    drop(ctx);
    let err = match SweepCtx::resume_sampled(&scale, &journal, on) {
        Err(e) => e,
        Ok(_) => panic!("resuming a full-fidelity journal with sampling on must be refused"),
    };
    assert!(
        err.contains("sample"),
        "refusal must name the fidelity mismatch: {err}"
    );
    // and the matching mode still resumes fine
    assert!(SweepCtx::resume(&scale, &journal).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}
