#!/usr/bin/env bash
# Offline lint gate: formatting + clippy with warnings denied.
# Mirrors what CI runs; everything resolves from the vendored deps, so no
# network access is needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "ci.sh: all checks passed"
