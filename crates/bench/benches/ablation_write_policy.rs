//! Ablation: dirty-data writeback granularity at the page cache.
//!
//! DESIGN.md calls out the choice between writing back whole pages and
//! only the dirty lines within them (sector tracking — what the paper's
//! dirty-cache-line accounting implies). This ablation measures the NVM
//! write traffic both ways for a random-write-heavy workload, plus the
//! writeback-miss policy (bypass vs allocate) at the same level.

use criterion::{criterion_group, criterion_main, Criterion};
use memsim_bench::bench_scale;
use memsim_cache::{Cache, CacheConfig, CountingMemory, Hierarchy, WritebackMissPolicy};
use memsim_workloads::WorkloadKind;
use std::hint::black_box;

fn run_config(
    scale: &memsim_core::Scale,
    sectored: bool,
    wb: WritebackMissPolicy,
) -> CountingMemory {
    let mut w = WorkloadKind::Hash.build(scale.class);
    let mut l4 =
        CacheConfig::new("L4", scale.scaled_capacity(512 << 20), 4096, 16).with_writeback_miss(wb);
    if sectored {
        l4 = l4.with_sectors(64);
    }
    let caches = vec![
        Cache::new(CacheConfig::new(
            "L1",
            scale.l1_bytes,
            scale.line_bytes,
            scale.l1_ways,
        )),
        Cache::new(CacheConfig::new(
            "L2",
            scale.l2_bytes,
            scale.line_bytes,
            scale.l2_ways,
        )),
        Cache::new(CacheConfig::new(
            "L3",
            scale.l3_bytes,
            scale.line_bytes,
            scale.l3_ways,
        )),
        Cache::new(l4),
    ];
    let mut h = Hierarchy::new(caches, CountingMemory::default());
    w.run(&mut h);
    h.drain();
    *h.memory()
}

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    println!("\n========== ablation: page-cache write policy (Hash, 4 KiB pages) ==========");
    println!(
        "{:<34} {:>14} {:>16}",
        "configuration", "NVM stores", "NVM MiB written"
    );
    for (label, sectored, wb) in [
        (
            "full-page writeback, bypass",
            false,
            WritebackMissPolicy::Bypass,
        ),
        (
            "dirty-line sectors, bypass",
            true,
            WritebackMissPolicy::Bypass,
        ),
        (
            "full-page writeback, allocate",
            false,
            WritebackMissPolicy::Allocate,
        ),
        (
            "dirty-line sectors, allocate",
            true,
            WritebackMissPolicy::Allocate,
        ),
    ] {
        let mem = run_config(&scale, sectored, wb);
        println!(
            "{:<34} {:>14} {:>16.1}",
            label,
            mem.stores,
            mem.bytes_stored as f64 / (1 << 20) as f64
        );
    }
    println!("(sector tracking cuts NVM write *bytes* without changing transaction counts)");
    println!("============================================================================\n");

    c.bench_function("ablation_write_policy/sectored", |b| {
        b.iter(|| black_box(run_config(&scale, true, WritebackMissPolicy::Bypass)))
    });
    c.bench_function("ablation_write_policy/full_page", |b| {
        b.iter(|| black_box(run_config(&scale, false, WritebackMissPolicy::Bypass)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
