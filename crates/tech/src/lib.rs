//! Memory technology characterization parameters.
//!
//! Table 1 of the paper, plus the supporting constants the paper takes from
//! CACTI (SRAM cache latency/energy/leakage), the Micron power calculator
//! (DRAM background/refresh power), and the ITRS 2013 report — reproduced
//! here as documented constants, with the latency/energy *multiplier*
//! machinery used by the Figure 9/10 heat-map study.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cactilite;
mod db;
mod multiplier;

pub use cactilite::{sram_model, MIN_SRAM_BYTES};
pub use db::{sram_cache_params, TechParams, Technology};
pub use multiplier::Multipliers;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_exact_values() {
        // The exact characterization of Table 1 of the paper.
        let dram = TechParams::of(Technology::Dram);
        assert_eq!((dram.read_ns, dram.write_ns), (10.0, 10.0));
        assert_eq!((dram.read_pj_per_bit, dram.write_pj_per_bit), (10.0, 10.0));

        let pcm = TechParams::of(Technology::Pcm);
        assert_eq!((pcm.read_ns, pcm.write_ns), (21.0, 100.0));
        assert_eq!((pcm.read_pj_per_bit, pcm.write_pj_per_bit), (12.4, 210.3));

        let stt = TechParams::of(Technology::SttRam);
        assert_eq!((stt.read_ns, stt.write_ns), (35.0, 35.0));
        assert_eq!((stt.read_pj_per_bit, stt.write_pj_per_bit), (58.5, 67.7));

        let fe = TechParams::of(Technology::FeRam);
        assert_eq!((fe.read_ns, fe.write_ns), (40.0, 65.0));
        assert_eq!((fe.read_pj_per_bit, fe.write_pj_per_bit), (12.4, 210.0));

        let ed = TechParams::of(Technology::Edram);
        assert_eq!((ed.read_ns, ed.write_ns), (4.4, 4.4));
        assert_eq!((ed.read_pj_per_bit, ed.write_pj_per_bit), (3.11, 3.09));

        let hmc = TechParams::of(Technology::Hmc);
        assert_eq!((hmc.read_ns, hmc.write_ns), (0.18, 0.18));
        assert_eq!((hmc.read_pj_per_bit, hmc.write_pj_per_bit), (0.48, 10.48));
    }

    #[test]
    fn nvm_has_no_static_power() {
        // paper assumption: "NVM memory technologies do not have any static power"
        for t in [Technology::Pcm, Technology::SttRam, Technology::FeRam] {
            assert_eq!(TechParams::of(t).static_mw_per_mib, 0.0, "{t:?}");
            assert!(t.is_nvm());
        }
        assert!(TechParams::of(Technology::Dram).static_mw_per_mib > 0.0);
        assert!(TechParams::of(Technology::Edram).static_mw_per_mib > 0.0);
        assert!(!Technology::Dram.is_nvm());
        assert!(!Technology::Edram.is_nvm());
        assert!(!Technology::Hmc.is_nvm());
    }

    #[test]
    fn static_power_scales_with_capacity() {
        let dram = TechParams::of(Technology::Dram);
        let one = dram.static_watts(1 << 20);
        let four = dram.static_watts(4 << 20);
        assert!((four - 4.0 * one).abs() < 1e-12);
        assert_eq!(TechParams::of(Technology::Pcm).static_watts(1 << 30), 0.0);
    }

    #[test]
    fn dynamic_energy_per_access() {
        let dram = TechParams::of(Technology::Dram);
        // 64-byte transfer at 10 pJ/bit = 5120 pJ
        assert!((dram.read_pj(64) - 5120.0).abs() < 1e-9);
        assert!((dram.write_pj(64) - 5120.0).abs() < 1e-9);
        let pcm = TechParams::of(Technology::Pcm);
        assert!(pcm.write_pj(64) > pcm.read_pj(64), "PCM write asymmetry");
    }

    #[test]
    fn sram_levels_are_ordered() {
        let l1 = sram_cache_params(1);
        let l2 = sram_cache_params(2);
        let l3 = sram_cache_params(3);
        assert!(l1.read_ns < l2.read_ns && l2.read_ns < l3.read_ns);
        assert!(l1.read_pj_per_bit < l3.read_pj_per_bit);
        // L3 (10 ns class) must stay at or below DRAM latency
        assert!(l3.read_ns <= TechParams::of(Technology::Dram).read_ns);
    }

    #[test]
    fn multipliers_apply() {
        let base = TechParams::of(Technology::Dram);
        let m = Multipliers {
            read_latency: 5.0,
            write_latency: 2.0,
            read_energy: 3.0,
            write_energy: 9.0,
        };
        let t = base.scaled(m);
        assert_eq!(t.read_ns, 50.0);
        assert_eq!(t.write_ns, 20.0);
        assert_eq!(t.read_pj_per_bit, 30.0);
        assert_eq!(t.write_pj_per_bit, 90.0);
        // static power and identity preserved
        assert_eq!(t.static_mw_per_mib, base.static_mw_per_mib);
        assert_eq!(t.tech, base.tech);
    }

    #[test]
    fn identity_multiplier_is_noop() {
        let base = TechParams::of(Technology::SttRam);
        let t = base.scaled(Multipliers::identity());
        assert_eq!(t, base);
    }

    #[test]
    fn all_technologies_enumerable_and_named() {
        assert_eq!(Technology::ALL.len(), 6);
        for t in Technology::ALL {
            assert!(!t.name().is_empty());
            assert_eq!(TechParams::of(t).tech, t);
        }
        assert_eq!(Technology::parse("pcm"), Some(Technology::Pcm));
        assert_eq!(Technology::parse("STTRAM"), Some(Technology::SttRam));
        assert_eq!(Technology::parse("stt-ram"), Some(Technology::SttRam));
        assert_eq!(Technology::parse("feram"), Some(Technology::FeRam));
        assert_eq!(Technology::parse("edram"), Some(Technology::Edram));
        assert_eq!(Technology::parse("hmc"), Some(Technology::Hmc));
        assert_eq!(Technology::parse("dram"), Some(Technology::Dram));
        assert_eq!(Technology::parse("bogus"), None);
    }
}
