//! Durable, replayable memory traces.
//!
//! The paper's framework consumes each application's address stream
//! *online* — it is never stored. That is the right default at scale, but
//! reproducible cross-configuration studies want the complement: record a
//! stream once, then replay the identical reference sequence through any
//! number of hierarchy configurations (and share it between machines).
//! This crate provides that substrate:
//!
//! * a **versioned binary format** — magic + header carrying provenance
//!   and the recorded [`AddressSpace`](memsim_trace::AddressSpace) region
//!   table, then self-contained chunks of delta-encoded events (zigzag
//!   LEB128 against the previous address) framed with event counts and
//!   CRC32. Sequential streams cost ≈2 bytes per event.
//! * [`TraceWriter`] — a [`TraceSink`](memsim_trace::TraceSink), so any
//!   workload records by simply running with it (or a `TeeSink`) as its
//!   sink.
//! * [`TraceReader`] — a buffered streaming reader: chunk-at-a-time
//!   decode with bounded memory, corruption surfaced as typed
//!   [`TraceError`]s (truncation, CRC mismatch, malformed frames), never
//!   a panic.
//! * [`replay_into`] — drives any sink with the recorded stream using
//!   batched `access_chunk` delivery, the same dispatch shape live
//!   workloads use, so record→replay is observationally identical to the
//!   live run.
//!
//! # Example
//!
//! ```
//! use memsim_trace::{TraceEvent, TraceSink, CountingSink};
//! use memsim_tracefile::{TraceHeader, TraceWriter, TraceReader, replay_into};
//!
//! // record
//! let mut w = TraceWriter::new(Vec::new(), &TraceHeader::anonymous(0x1000)).unwrap();
//! for i in 0..1000u64 {
//!     w.access(TraceEvent::load(0x1000 + i * 8, 8));
//! }
//! let (bytes, total) = w.finish().unwrap();
//! assert_eq!(total, 1000);
//!
//! // replay
//! let mut r = TraceReader::new(bytes.as_slice()).unwrap();
//! let mut sink = CountingSink::new();
//! let n = replay_into(&mut r, &mut sink).unwrap();
//! assert_eq!(n, 1000);
//! assert_eq!(sink.loads, 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc32;
mod format;
mod reader;
mod replay;
mod varint;
mod writer;

pub use crc32::crc32;
pub use format::{TraceError, TraceHeader, FORMAT_VERSION, MAGIC, TRACE_CHUNK_EVENTS};
pub use reader::{ChunkStep, TraceReader};
pub use replay::{encode_to_vec, replay_into, replay_into_all, summarize, TraceSummary};
pub use writer::TraceWriter;
