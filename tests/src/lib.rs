//! Shared fixtures for the cross-crate integration tests.

use memsim_core::Scale;

/// The scale every integration test runs at (smallest footprints).
pub fn test_scale() -> Scale {
    Scale::mini()
}

/// A fast two-workload subset exercising both a regular (CG) and an
/// irregular (Hash) access pattern.
pub fn fast_workloads() -> [memsim_workloads::WorkloadKind; 2] {
    [
        memsim_workloads::WorkloadKind::Cg,
        memsim_workloads::WorkloadKind::Hash,
    ]
}
