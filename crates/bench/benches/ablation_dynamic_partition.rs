//! Ablation: static vs dynamic (phase-aware) NDM partitioning — the
//! paper's stated future work, quantified.
//!
//! For each workload, profiles the run in epochs, then compares the best
//! static placement against the migration-aware dynamic-programming
//! schedule, printing energy and the number of migrations taken.

use criterion::{criterion_group, criterion_main, Criterion};
use memsim_bench::{bench_scale, bench_workloads};
use memsim_core::dynamic::{best_static_schedule, dynamic_oracle, simulate_epochs};
use memsim_tech::Technology;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let workloads = bench_workloads(&scale);

    println!("\n========== ablation: static vs dynamic NDM partitioning (PCM) ==========");
    println!(
        "{:<10} {:>8} {:>16} {:>16} {:>10} {:>11}",
        "workload", "epochs", "static E (mJ)", "dynamic E (mJ)", "gain", "migrations"
    );
    for kind in &workloads {
        let er = simulate_epochs(*kind, &scale, 100_000);
        let st = best_static_schedule(&er, Technology::Pcm, &scale, 3);
        let dy = dynamic_oracle(&er, Technology::Pcm, &scale, 3);
        println!(
            "{:<10} {:>8} {:>16.3} {:>16.3} {:>9.2}% {:>11}",
            kind.name(),
            er.epochs.len(),
            st.metrics.energy_j() * 1e3,
            dy.metrics.energy_j() * 1e3,
            (1.0 - dy.metrics.energy_j() / st.metrics.energy_j()) * 100.0,
            dy.migrations,
        );
    }
    println!("(the DP may legitimately choose 0 migrations when no phase shift pays");
    println!(" for the data movement — static placement is a special case of dynamic)");
    println!("=========================================================================\n");

    let kind = workloads[0];
    let er = simulate_epochs(kind, &scale, 100_000);
    c.bench_function("ablation_dynamic_partition/dp", |b| {
        b.iter(|| black_box(dynamic_oracle(&er, Technology::Pcm, &scale, 3)))
    });
    c.bench_function("ablation_dynamic_partition/static", |b| {
        b.iter(|| black_box(best_static_schedule(&er, Technology::Pcm, &scale, 3)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
