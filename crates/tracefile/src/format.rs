//! On-disk layout: magic, header, chunk framing, and typed errors.
//!
//! The byte layout (all integers little-endian; see `DESIGN.md` §11):
//!
//! ```text
//! file    := header chunk* footer
//! header  := magic[8]=b"MSIMTRC1" u32:version u32:body_len body u32:crc32(body)
//! body    := u64:base_addr
//!            u16:workload_len workload_utf8
//!            u16:class_len class_utf8
//!            u32:region_count region*
//! region  := u64:start u64:len u16:name_len name_utf8
//! chunk   := u32:event_count(>0) u32:payload_len u64:first_addr
//!            u32:crc32(payload) payload
//! payload := event*                       -- exactly event_count of them
//! event   := varint:zigzag(addr - prev_addr) varint:(size << 1 | is_store)
//! footer  := u32:0 u64:total_events u32:crc32(total_events_le_bytes)
//! ```
//!
//! Within a chunk, `prev_addr` starts at the chunk's `first_addr` (so the
//! first event's delta is zero by construction) — every chunk decodes
//! independently of its predecessors. The footer's zero `event_count`
//! distinguishes it from any chunk, so a file that ends without one was
//! truncated at a chunk boundary and is reported as such.

use crate::crc32::crc32;
use memsim_trace::{Region, RegionId};
use std::io::{self, Read, Write};

/// File magic: identifies a memsim trace, revision 1 framing.
pub const MAGIC: [u8; 8] = *b"MSIMTRC1";

/// Current format version (bumped on any incompatible layout change).
pub const FORMAT_VERSION: u32 = 1;

/// Events per chunk the writer targets (the final chunk may be shorter).
pub const TRACE_CHUNK_EVENTS: usize = 4096;

/// Hard cap on a chunk's declared event count; anything above this is a
/// corrupt frame, not a real chunk (the writer never exceeds
/// [`TRACE_CHUNK_EVENTS`]).
pub const MAX_CHUNK_EVENTS: u32 = 1 << 20;

/// Worst-case encoded bytes per event (two maximal varints).
pub const MAX_EVENT_BYTES: usize = 20;

/// Errors produced while writing or reading a trace file.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the trace magic.
    BadMagic,
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The header is structurally invalid (lengths inconsistent, bad UTF-8).
    CorruptHeader(String),
    /// The header body's CRC32 does not match its contents.
    HeaderCrcMismatch,
    /// EOF in the middle of chunk `chunk`'s frame or payload.
    TruncatedChunk {
        /// Zero-based index of the chunk being read.
        chunk: u64,
    },
    /// A chunk frame declares impossible counts/lengths.
    MalformedChunkHeader {
        /// Zero-based index of the chunk being read.
        chunk: u64,
        /// What was wrong with the frame.
        detail: String,
    },
    /// Chunk `chunk`'s payload CRC32 does not match its contents.
    ChunkCrcMismatch {
        /// Zero-based index of the chunk being read.
        chunk: u64,
    },
    /// A chunk payload does not decode to exactly its declared event count.
    MalformedPayload {
        /// Zero-based index of the chunk being read.
        chunk: u64,
        /// What was wrong with the payload.
        detail: String,
    },
    /// EOF at a chunk boundary without the closing footer: the file was
    /// truncated (or the writer was never finished).
    MissingFooter,
    /// The footer is present but damaged.
    CorruptFooter,
    /// The footer's total disagrees with the events actually read.
    EventCountMismatch {
        /// Total the footer recorded.
        expected: u64,
        /// Events actually decoded from the chunks.
        actual: u64,
    },
    /// Bytes follow the footer.
    TrailingData,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a memsim trace file (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace format version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            TraceError::CorruptHeader(d) => write!(f, "corrupt trace header: {d}"),
            TraceError::HeaderCrcMismatch => write!(f, "trace header CRC mismatch"),
            TraceError::TruncatedChunk { chunk } => {
                write!(f, "trace truncated inside chunk {chunk}")
            }
            TraceError::MalformedChunkHeader { chunk, detail } => {
                write!(f, "malformed frame for chunk {chunk}: {detail}")
            }
            TraceError::ChunkCrcMismatch { chunk } => {
                write!(f, "CRC mismatch in chunk {chunk} (corrupt payload)")
            }
            TraceError::MalformedPayload { chunk, detail } => {
                write!(f, "malformed payload in chunk {chunk}: {detail}")
            }
            TraceError::MissingFooter => {
                write!(
                    f,
                    "trace ends without a footer (truncated or unfinished recording)"
                )
            }
            TraceError::CorruptFooter => write!(f, "corrupt trace footer"),
            TraceError::EventCountMismatch { expected, actual } => {
                write!(
                    f,
                    "footer records {expected} events but chunks held {actual}"
                )
            }
            TraceError::TrailingData => write!(f, "unexpected data after the trace footer"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Decoded trace header: provenance plus the recorded address-space layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version the file was written with.
    pub version: u32,
    /// Base address of the recorded [`memsim_trace::AddressSpace`].
    pub base_addr: u64,
    /// Name of the workload that produced the stream (may be empty for
    /// synthetic or externally produced traces).
    pub workload: String,
    /// Problem-size class the workload ran at (may be empty).
    pub class: String,
    /// The recorded region table, in address order with dense ids —
    /// exactly what `AddressSpace::regions()` returned at record time.
    pub regions: Vec<Region>,
}

impl TraceHeader {
    /// A header with no provenance and no regions (raw event streams).
    pub fn anonymous(base_addr: u64) -> Self {
        Self {
            version: FORMAT_VERSION,
            base_addr,
            workload: String::new(),
            class: String::new(),
            regions: Vec::new(),
        }
    }

    /// Header capturing a workload's address space and provenance.
    pub fn for_space(space: &memsim_trace::AddressSpace, workload: &str, class: &str) -> Self {
        Self {
            version: FORMAT_VERSION,
            base_addr: space.base(),
            workload: workload.to_string(),
            class: class.to_string(),
            regions: space.regions().to_vec(),
        }
    }

    /// Sum of region lengths: the recorded workload's footprint.
    pub fn footprint_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.len).sum()
    }

    /// Serialize the header (magic through body CRC) to `out`.
    pub fn write_to(&self, out: &mut dyn Write) -> Result<(), TraceError> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.base_addr.to_le_bytes());
        write_str(&mut body, &self.workload)?;
        write_str(&mut body, &self.class)?;
        body.extend_from_slice(&(self.regions.len() as u32).to_le_bytes());
        for r in &self.regions {
            body.extend_from_slice(&r.start.to_le_bytes());
            body.extend_from_slice(&r.len.to_le_bytes());
            write_str(&mut body, &r.name)?;
        }
        out.write_all(&MAGIC)?;
        out.write_all(&FORMAT_VERSION.to_le_bytes())?;
        out.write_all(&(body.len() as u32).to_le_bytes())?;
        out.write_all(&body)?;
        out.write_all(&crc32(&body).to_le_bytes())?;
        Ok(())
    }

    /// Parse a header from the front of `input`.
    pub fn read_from(input: &mut dyn Read) -> Result<Self, TraceError> {
        let mut magic = [0u8; 8];
        input
            .read_exact(&mut magic)
            .map_err(|_| TraceError::BadMagic)?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version =
            read_u32(input).map_err(|_| TraceError::CorruptHeader("no version".into()))?;
        if version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let body_len =
            read_u32(input).map_err(|_| TraceError::CorruptHeader("no length".into()))?;
        if body_len > (1 << 24) {
            return Err(TraceError::CorruptHeader(format!(
                "implausible header length {body_len}"
            )));
        }
        let mut body = vec![0u8; body_len as usize];
        input
            .read_exact(&mut body)
            .map_err(|_| TraceError::CorruptHeader("body shorter than declared".into()))?;
        let stored_crc =
            read_u32(input).map_err(|_| TraceError::CorruptHeader("missing CRC".into()))?;
        if crc32(&body) != stored_crc {
            return Err(TraceError::HeaderCrcMismatch);
        }

        let mut cur: &[u8] = &body;
        let base_addr = take_u64(&mut cur)?;
        let workload = take_str(&mut cur)?;
        let class = take_str(&mut cur)?;
        let region_count = take_u32(&mut cur)?;
        if u64::from(region_count) > body_len as u64 {
            return Err(TraceError::CorruptHeader(format!(
                "implausible region count {region_count}"
            )));
        }
        let mut regions = Vec::with_capacity(region_count as usize);
        for i in 0..region_count {
            let start = take_u64(&mut cur)?;
            let len = take_u64(&mut cur)?;
            let name = take_str(&mut cur)?;
            regions.push(Region {
                id: RegionId(i),
                name,
                start,
                len,
            });
        }
        if !cur.is_empty() {
            return Err(TraceError::CorruptHeader("trailing bytes in body".into()));
        }
        Ok(Self {
            version,
            base_addr,
            workload,
            class,
            regions,
        })
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) -> Result<(), TraceError> {
    let bytes = s.as_bytes();
    if bytes.len() > u16::MAX as usize {
        return Err(TraceError::CorruptHeader(format!(
            "string of {} bytes exceeds the u16 length field",
            bytes.len()
        )));
    }
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
    Ok(())
}

fn take_bytes<'a>(cur: &mut &'a [u8], n: usize) -> Result<&'a [u8], TraceError> {
    if cur.len() < n {
        return Err(TraceError::CorruptHeader("body too short".into()));
    }
    let (head, tail) = cur.split_at(n);
    *cur = tail;
    Ok(head)
}

fn take_u64(cur: &mut &[u8]) -> Result<u64, TraceError> {
    Ok(u64::from_le_bytes(take_bytes(cur, 8)?.try_into().unwrap()))
}

fn take_u32(cur: &mut &[u8]) -> Result<u32, TraceError> {
    Ok(u32::from_le_bytes(take_bytes(cur, 4)?.try_into().unwrap()))
}

fn take_str(cur: &mut &[u8]) -> Result<String, TraceError> {
    let len = u16::from_le_bytes(take_bytes(cur, 2)?.try_into().unwrap());
    let bytes = take_bytes(cur, len as usize)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| TraceError::CorruptHeader("string is not UTF-8".into()))
}

/// Read a little-endian `u32` from a stream.
pub(crate) fn read_u32(input: &mut dyn Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    input.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Read a little-endian `u64` from a stream.
pub(crate) fn read_u64(input: &mut dyn Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    input.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim_trace::AddressSpace;

    fn sample_header() -> TraceHeader {
        let mut space = AddressSpace::new();
        space.alloc("csr.values", 8192);
        space.alloc("csr.colidx", 4096);
        TraceHeader::for_space(&space, "CG", "mini")
    }

    #[test]
    fn header_round_trips() {
        let h = sample_header();
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        let back = TraceHeader::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.footprint_bytes(), 8192 + 4096);
        assert_eq!(back.regions[1].id, RegionId(1));
    }

    #[test]
    fn anonymous_header_round_trips() {
        let h = TraceHeader::anonymous(0x4000);
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        let back = TraceHeader::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, h);
        assert!(back.regions.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        sample_header().write_to(&mut buf).unwrap();
        buf[0] ^= 0xFF;
        assert!(matches!(
            TraceHeader::read_from(&mut buf.as_slice()),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut buf = Vec::new();
        sample_header().write_to(&mut buf).unwrap();
        buf[8] = 0xFE; // version low byte
        assert!(matches!(
            TraceHeader::read_from(&mut buf.as_slice()),
            Err(TraceError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn corrupt_body_fails_crc() {
        let mut buf = Vec::new();
        sample_header().write_to(&mut buf).unwrap();
        let body_start = 8 + 4 + 4;
        buf[body_start + 3] ^= 0x01;
        assert!(matches!(
            TraceHeader::read_from(&mut buf.as_slice()),
            Err(TraceError::HeaderCrcMismatch)
        ));
    }

    #[test]
    fn errors_display() {
        // every variant renders without panicking
        let errs = [
            TraceError::BadMagic,
            TraceError::UnsupportedVersion(9),
            TraceError::HeaderCrcMismatch,
            TraceError::TruncatedChunk { chunk: 3 },
            TraceError::ChunkCrcMismatch { chunk: 1 },
            TraceError::MissingFooter,
            TraceError::CorruptFooter,
            TraceError::TrailingData,
            TraceError::EventCountMismatch {
                expected: 5,
                actual: 4,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
