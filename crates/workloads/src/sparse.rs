//! Instrumented CSR sparse matrix shared by the solver benchmarks.

use memsim_trace::{AddressSpace, SimVec, TraceSink};

/// A compressed-sparse-row matrix over instrumented storage.
///
/// The three arrays are separate address-space regions (`<name>.rowptr`,
/// `<name>.col`, `<name>.val`), matching how a C implementation would
/// allocate them and letting the NDM partitioner place them independently.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: SimVec<u64>,
    col: SimVec<u32>,
    val: SimVec<f64>,
}

impl CsrMatrix {
    /// Build from per-row `(column, value)` lists. Initialization is
    /// untraced (construction is not part of the timed kernel).
    pub fn from_rows(space: &mut AddressSpace, name: &str, rows: &[Vec<(u32, f64)>]) -> Self {
        let n = rows.len();
        let nnz: usize = rows.iter().map(|r| r.len()).sum();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col = Vec::with_capacity(nnz);
        let mut val = Vec::with_capacity(nnz);
        row_ptr.push(0u64);
        for r in rows {
            debug_assert!(
                r.windows(2).all(|w| w[0].0 < w[1].0),
                "columns must be sorted"
            );
            for &(c, v) in r {
                col.push(c);
                val.push(v);
            }
            row_ptr.push(col.len() as u64);
        }
        Self {
            n,
            row_ptr: SimVec::from_vec(space, &format!("{name}.rowptr"), row_ptr),
            col: SimVec::from_vec(space, &format!("{name}.col"), col),
            val: SimVec::from_vec(space, &format!("{name}.val"), val),
        }
    }

    /// Number of rows (= columns).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// Traced sparse matrix–vector product `y = A x`.
    ///
    /// Streams the classic CSR access pattern: sequential `row_ptr`,
    /// sequential `col`/`val`, and the irregular gather on `x` that makes
    /// CG "irregular memory access" in the paper's words.
    pub fn spmv(&self, x: &SimVec<f64>, y: &mut SimVec<f64>, sink: &mut dyn TraceSink) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        let mut lo = self.row_ptr.ld(0, sink) as usize;
        for i in 0..self.n {
            let hi = self.row_ptr.ld(i + 1, sink) as usize;
            let mut acc = 0.0;
            for k in lo..hi {
                let c = self.col.ld(k, sink) as usize;
                let a = self.val.ld(k, sink);
                acc += a * x.ld(c, sink);
            }
            y.st(i, acc, sink);
            lo = hi;
        }
    }

    /// Untraced SpMV used by verification code.
    pub fn spmv_untraced(&self, x: &[f64], y: &mut [f64]) {
        let rp = self.row_ptr.as_slice();
        let col = self.col.as_slice();
        let val = self.val.as_slice();
        for i in 0..self.n {
            let mut acc = 0.0;
            for k in rp[i] as usize..rp[i + 1] as usize {
                acc += val[k] * x[col[k] as usize];
            }
            y[i] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim_trace::sinks::CountingSink;
    use memsim_trace::AddressSpace;

    fn identity3(space: &mut AddressSpace) -> CsrMatrix {
        CsrMatrix::from_rows(
            space,
            "I",
            &[vec![(0, 1.0)], vec![(1, 1.0)], vec![(2, 1.0)]],
        )
    }

    #[test]
    fn spmv_identity() {
        let mut space = AddressSpace::new();
        let m = identity3(&mut space);
        let x = SimVec::from_vec(&mut space, "x", vec![1.0, 2.0, 3.0]);
        let mut y = SimVec::<f64>::zeroed(&mut space, "y", 3);
        let mut sink = CountingSink::new();
        m.spmv(&x, &mut y, &mut sink);
        assert_eq!(y.as_slice(), &[1.0, 2.0, 3.0]);
        assert!(sink.loads > 0);
        assert_eq!(sink.stores, 3);
    }

    #[test]
    fn spmv_general() {
        let mut space = AddressSpace::new();
        // [2 1 0; 0 3 0; 1 0 4]
        let m = CsrMatrix::from_rows(
            &mut space,
            "A",
            &[
                vec![(0, 2.0), (1, 1.0)],
                vec![(1, 3.0)],
                vec![(0, 1.0), (2, 4.0)],
            ],
        );
        assert_eq!(m.nnz(), 5);
        let x = SimVec::from_vec(&mut space, "x", vec![1.0, 2.0, 3.0]);
        let mut y = SimVec::<f64>::zeroed(&mut space, "y", 3);
        let mut sink = CountingSink::new();
        m.spmv(&x, &mut y, &mut sink);
        assert_eq!(y.as_slice(), &[4.0, 6.0, 13.0]);
        // untraced path agrees
        let mut y2 = vec![0.0; 3];
        m.spmv_untraced(x.as_slice(), &mut y2);
        assert_eq!(y.as_slice(), &y2[..]);
    }

    #[test]
    fn regions_are_separate() {
        let mut space = AddressSpace::new();
        let _m = identity3(&mut space);
        let names: Vec<_> = space.regions().iter().map(|r| r.name.clone()).collect();
        assert_eq!(names, vec!["I.rowptr", "I.col", "I.val"]);
    }
}
