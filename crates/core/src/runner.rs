//! Simulation driver: stream a workload through a hierarchy structure once,
//! then cost any number of designs analytically.
//!
//! Cache statistics depend only on the address stream and the cache
//! geometry — never on latency or energy parameters — so one simulation of
//! a [`Structure`] serves every technology assignment that shares it. The
//! paper's whole grid (9 N-configs × 3 NVMs, 8 EH-configs × 2 LLCs × 3
//! NVMs, NDM × 3 NVMs, heat maps) reduces to 18 simulations per workload.

use crate::design::{Design, Structure, MEM_NAME};
use crate::model::Metrics;
use crate::partition::{self, Placement};
use crate::scale::Scale;
use memsim_cache::{Cache, CacheConfig, Hierarchy, HierarchyProbes, LevelStats, ShardedHierarchy};
use memsim_memory::{PartitionedMemory, RegionTraffic};
use memsim_tech::Technology;
use memsim_workloads::WorkloadKind;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The raw output of one workload × structure simulation.
#[derive(Debug, Clone)]
pub struct RawRun {
    /// Per-cache statistics, top-down (`L1`, `L2`, `L3`[, `L4`]).
    pub caches: Vec<LevelStats>,
    /// Aggregate terminal-memory statistics (name `MEM`).
    pub mem: LevelStats,
    /// Terminal traffic attributed to each workload region.
    pub per_region: Vec<RegionTraffic>,
    /// Region names, aligned with `per_region`.
    pub region_names: Vec<String>,
    /// Region sizes in bytes, aligned with `per_region`.
    pub region_sizes: Vec<u64>,
    /// Region start addresses, aligned with `per_region`.
    pub region_starts: Vec<u64>,
    /// Total demand references issued by the workload.
    pub total_refs: u64,
    /// Workload footprint in bytes.
    pub footprint_bytes: u64,
    /// Set when the counters were *extrapolated* from an
    /// interval-sampled run rather than measured over the whole stream;
    /// carries what confidence-interval derivation needs.
    pub sample: Option<crate::sampling::SampleDetail>,
}

impl RawRun {
    /// Stats/cost alignment helper: caches followed by the terminal memory.
    pub fn all_levels(&self) -> Vec<&LevelStats> {
        self.caches
            .iter()
            .chain(std::iter::once(&self.mem))
            .collect()
    }
}

/// Which engine walks the reference stream through the hierarchy.
///
/// Both engines produce bit-identical [`LevelStats`] (asserted by the
/// parity tests), so the choice affects throughput only — which is why
/// [`SimCache`] does not key on it and the sweep journal accepts resumed
/// points across engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The single-threaded [`Hierarchy`] walk.
    #[default]
    Sequential,
    /// The set-sharded parallel engine with this many requested worker
    /// shards (at least 1; capped at the structure's address-class count).
    Sharded(usize),
}

impl Engine {
    /// Auto-detect: shard across the available cores, or stay sequential
    /// on a single-core host where fan-out only adds queue overhead.
    pub fn auto() -> Self {
        match std::thread::available_parallelism() {
            Ok(n) if n.get() > 1 => Engine::Sharded(n.get()),
            _ => Engine::Sequential,
        }
    }

    /// The shard count recorded in sweep journals: 0 for the sequential
    /// engine, the requested worker count otherwise.
    pub fn journal_shards(&self) -> u64 {
        match self {
            Engine::Sequential => 0,
            Engine::Sharded(n) => *n as u64,
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Sequential => write!(f, "seq"),
            Engine::Sharded(n) => write!(f, "sharded({n})"),
        }
    }
}

/// Build the cache stack of a `structure` at `scale` (L1/L2/L3, plus the
/// added sectored page-cache level for [`Structure::WithL4`]).
///
/// Shared between the live simulation path and the trace-replay path
/// (`crate::replay`): both must walk references through byte-identical
/// geometry for their stats to agree.
pub fn build_caches(scale: &Scale, structure: &Structure) -> Vec<Cache> {
    let mut caches = vec![
        Cache::new(CacheConfig::new(
            "L1",
            scale.l1_bytes,
            scale.line_bytes,
            scale.l1_ways,
        )),
        Cache::new(CacheConfig::new(
            "L2",
            scale.l2_bytes,
            scale.line_bytes,
            scale.l2_ways,
        )),
        Cache::new(CacheConfig::new(
            "L3",
            scale.l3_bytes,
            scale.line_bytes,
            scale.l3_ways,
        )),
    ];
    if let Structure::WithL4 {
        capacity_bytes,
        page_bytes,
    } = structure
    {
        let mut ways = scale.l4_ways;
        // keep the set count a power of two for small scaled capacities
        while ways > 1
            && !(capacity_bytes / (u64::from(*page_bytes) * u64::from(ways))).is_power_of_two()
        {
            ways /= 2;
        }
        let cap = capacity_bytes - capacity_bytes % (u64::from(*page_bytes) * u64::from(ways));
        let mut cfg = CacheConfig::new(
            "L4",
            cap.max(u64::from(*page_bytes) * u64::from(ways)),
            *page_bytes,
            ways,
        );
        // pages write back at line granularity: the paper's simulator
        // tracks dirty cache *lines*, and those are what reach memory
        if *page_bytes > scale.line_bytes {
            cfg = cfg.with_sectors(scale.line_bytes);
        }
        caches.push(Cache::new(cfg));
    }
    caches
}

/// Publish one level's final statistics into the global observability
/// registry as `{prefix}.{level}.{field}` counters. For cache levels this
/// overwrites the epoch-published values with the identical finals; for
/// the terminal memory it is the only publication. The export's per-level
/// counters are therefore bit-identical to the [`LevelStats`] in the
/// final report.
pub(crate) fn publish_final_stats(prefix: &str, stats: &LevelStats) {
    let reg = memsim_obs::global();
    let store = |field: &str, v: u64| {
        reg.counter(&format!("{prefix}.{}.{field}", stats.name))
            .store(v);
    };
    store("loads", stats.loads);
    store("stores", stats.stores);
    store("load_hits", stats.load_hits);
    store("load_misses", stats.load_misses);
    store("store_hits", stats.store_hits);
    store("store_misses", stats.store_misses);
    store("writebacks_out", stats.writebacks_out);
    store("fills", stats.fills);
    store("bytes_loaded", stats.bytes_loaded);
    store("bytes_stored", stats.bytes_stored);
}

/// Harvest a drained hierarchy into a [`RawRun`] (shared by the live and
/// replay paths — the counters must be assembled identically). When
/// `obs_prefix` is set and observability is enabled, every level's final
/// stats (caches and `MEM`) are published under it.
pub(crate) fn raw_run_from_hierarchy(
    hierarchy: Hierarchy<PartitionedMemory>,
    regions: &[memsim_trace::Region],
    obs_prefix: Option<&str>,
) -> RawRun {
    let total_refs = hierarchy.total_refs();
    let cache_stats: Vec<LevelStats> = hierarchy.levels().iter().map(|c| c.stats()).collect();
    let mem_part = hierarchy.into_memory();
    raw_run_from_parts(cache_stats, mem_part, regions, total_refs, obs_prefix)
}

/// Assemble a [`RawRun`] from already-harvested pieces — the common tail
/// of the sequential ([`raw_run_from_hierarchy`]) and sharded (merged
/// [`memsim_cache::ShardedRun`]) engines, so both publish and report
/// identically.
pub(crate) fn raw_run_from_parts(
    cache_stats: Vec<LevelStats>,
    mem_part: PartitionedMemory,
    regions: &[memsim_trace::Region],
    total_refs: u64,
    obs_prefix: Option<&str>,
) -> RawRun {
    let mut mem = mem_part.dram_stats().clone();
    mem.name = MEM_NAME.to_string();

    if let Some(prefix) = obs_prefix.filter(|_| memsim_obs::enabled()) {
        for stats in cache_stats.iter().chain(std::iter::once(&mem)) {
            publish_final_stats(prefix, stats);
        }
    }

    RawRun {
        caches: cache_stats,
        mem,
        per_region: mem_part.traffic().to_vec(),
        region_names: regions.iter().map(|r| r.name.clone()).collect(),
        region_sizes: regions.iter().map(|r| r.len).collect(),
        region_starts: regions.iter().map(|r| r.start).collect(),
        total_refs,
        footprint_bytes: regions.iter().map(|r| r.len).sum(),
        sample: None,
    }
}

/// Simulate `kind` (at `scale.class`) through `structure` with the
/// sequential engine. This is the expensive step: every memory reference
/// of the workload walks the hierarchy.
pub fn simulate_structure(kind: WorkloadKind, scale: &Scale, structure: &Structure) -> RawRun {
    simulate_structure_engine(kind, scale, structure, Engine::Sequential)
}

/// Simulate `kind` (at `scale.class`) through `structure` with the chosen
/// `engine`. Both engines yield bit-identical [`RawRun`] counters; the
/// sharded engine trades the sequential path's per-epoch probe publication
/// for per-shard progress telemetry, with the identical finals published
/// at drain either way.
pub fn simulate_structure_engine(
    kind: WorkloadKind,
    scale: &Scale,
    structure: &Structure,
    engine: Engine,
) -> RawRun {
    let obs_prefix =
        memsim_obs::enabled().then(|| format!("sim.{}.{}", kind.name(), structure.obs_label()));
    let mut span = memsim_obs::span!("sim.{}.{}", kind.name(), structure.obs_label());

    let mut workload = {
        let _s = memsim_obs::span!("generate");
        kind.build(scale.class)
    };
    let caches = build_caches(scale, structure);

    // the terminal collects per-region traffic for every structure; the
    // aggregate equals a flat memory's counters because everything is
    // placed on the DRAM side
    let regions = workload.space().regions().to_vec();
    let terminal = PartitionedMemory::new(&regions, Technology::Pcm);

    if let Engine::Sharded(shards) = engine {
        let mut sharded = ShardedHierarchy::new(caches, terminal, shards, obs_prefix.as_deref());
        {
            let _s = memsim_obs::span!("simulate");
            workload.run(&mut sharded);
        }
        let run = {
            let _s = memsim_obs::span!("drain");
            sharded.finish()
        };
        {
            let _s = memsim_obs::span!("verify");
            workload
                .verify()
                .unwrap_or_else(|e| panic!("{} failed self-verification: {e}", workload.name()));
        }
        span.add_events(run.total_refs);
        return raw_run_from_parts(
            run.levels,
            run.memory,
            &regions,
            run.total_refs,
            obs_prefix.as_deref(),
        );
    }

    let mut hierarchy = Hierarchy::new(caches, terminal);
    if let Some(prefix) = &obs_prefix {
        let names: Vec<String> = hierarchy
            .levels()
            .iter()
            .map(|c| c.config().name.clone())
            .collect();
        let names: Vec<&str> = names.iter().map(String::as_str).collect();
        hierarchy.set_probes(HierarchyProbes::register(
            memsim_obs::global(),
            prefix,
            &names,
        ));
    }

    {
        let _s = memsim_obs::span!("simulate");
        workload.run(&mut hierarchy);
    }
    {
        let _s = memsim_obs::span!("drain");
        hierarchy.drain();
    }
    hierarchy.assert_consistent();
    {
        let _s = memsim_obs::span!("verify");
        workload
            .verify()
            .unwrap_or_else(|e| panic!("{} failed self-verification: {e}", workload.name()));
    }

    span.add_events(hierarchy.total_refs());
    raw_run_from_hierarchy(hierarchy, &regions, obs_prefix.as_deref())
}

/// Simulate `kind` through `structure`, either at full fidelity (the
/// chosen `engine` walks every reference) or interval-sampled: the
/// workload's stream is recorded once per process, an interval plan is
/// built and memoized, and only representative windows are replayed —
/// see [`crate::sampling`]. The sampled walk is always sequential (the
/// snapshot deltas need one hierarchy in event order), so `engine`
/// applies to full-fidelity runs only.
///
/// Panics on sampling errors (unrecordable workload, unreadable trace)
/// the same way the full path panics on a failed workload — grid
/// workers catch both into [`FailedPoint`]s.
pub fn simulate_structure_sampled(
    kind: WorkloadKind,
    scale: &Scale,
    structure: &Structure,
    engine: Engine,
    sample: crate::sampling::SampleMode,
) -> RawRun {
    match sample {
        crate::sampling::SampleMode::Off => {
            simulate_structure_engine(kind, scale, structure, engine)
        }
        crate::sampling::SampleMode::On(spec) => {
            let path =
                crate::sampling::cached_trace(kind, scale.class).unwrap_or_else(|e| panic!("{e}"));
            let plan = crate::sampling::plan_for(&path, spec).unwrap_or_else(|e| panic!("{e}"));
            crate::sampling::replay_structure_sampled(&path, scale, structure, &plan)
                .unwrap_or_else(|e| panic!("sampled replay of {}: {e}", path.display()))
        }
    }
}

/// A concurrency-safe memo of structure simulations.
///
/// Each key owns a `OnceLock` cell created under the map lock, so concurrent
/// workers requesting the same key race only for the cell; `get_or_init` then
/// runs the simulation exactly once while later arrivals block on the cell
/// instead of re-simulating. Distinct keys still simulate in parallel because
/// the map lock is never held across a simulation.
#[derive(Default)]
pub struct SimCache {
    #[allow(clippy::type_complexity)]
    map: Mutex<
        HashMap<
            (WorkloadKind, Scale, Structure, crate::sampling::SampleMode),
            Arc<OnceLock<Arc<RawRun>>>,
        >,
    >,
}

impl SimCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch or simulate with the sequential engine.
    pub fn get(&self, kind: WorkloadKind, scale: &Scale, structure: &Structure) -> Arc<RawRun> {
        self.get_engine(kind, scale, structure, Engine::Sequential)
    }

    /// Fetch or simulate with the chosen engine (full fidelity).
    pub fn get_engine(
        &self,
        kind: WorkloadKind,
        scale: &Scale,
        structure: &Structure,
        engine: Engine,
    ) -> Arc<RawRun> {
        self.get_sampled(
            kind,
            scale,
            structure,
            engine,
            crate::sampling::SampleMode::Off,
        )
    }

    /// Fetch or simulate with the chosen engine and sampling mode. The
    /// memo key deliberately excludes the engine — both engines produce
    /// bit-identical runs, so whichever requester arrives first fills
    /// the cell for everyone — but it *includes* the sampling mode,
    /// because a sampled run's extrapolated counters are not the full
    /// run's counters and must never be served in its place.
    ///
    /// When observability is on, every call lands in exactly one of the
    /// `sim.memo.hits` / `sim.memo.misses` counters: concurrent requesters
    /// blocked on the same in-flight cell count as hits, because the
    /// overlap was simulated once — the property the server's job
    /// coalescing asserts.
    pub fn get_sampled(
        &self,
        kind: WorkloadKind,
        scale: &Scale,
        structure: &Structure,
        engine: Engine,
        sample: crate::sampling::SampleMode,
    ) -> Arc<RawRun> {
        let key = (kind, *scale, *structure, sample);
        let cell = {
            let mut map = self.map.lock().expect("sim cache poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        let mut simulated = false;
        let run = Arc::clone(cell.get_or_init(|| {
            simulated = true;
            Arc::new(simulate_structure_sampled(
                kind, scale, structure, engine, sample,
            ))
        }));
        if memsim_obs::enabled() {
            let field = if simulated { "misses" } else { "hits" };
            memsim_obs::global()
                .counter(&format!("sim.memo.{field}"))
                .inc();
        }
        run
    }

    /// Number of memoized runs (including any still simulating).
    pub fn len(&self) -> usize {
        self.map.lock().expect("sim cache poisoned").len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One evaluated (workload, design) point.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// The design evaluated.
    pub design: Design,
    /// The workload it ran.
    pub workload: WorkloadKind,
    /// Modeled metrics (Eq. 1–4).
    pub metrics: Metrics,
    /// The underlying simulation.
    pub run: Arc<RawRun>,
    /// NDM only: the oracle's chosen region placement.
    pub placement: Option<Vec<Placement>>,
    /// Sampled runs only: per-metric relative confidence-interval
    /// halfwidths of `metrics` (absent for NDM, whose per-placement
    /// costing has no single cost vector to spread the clusters over).
    pub sample_ci: Option<crate::sampling::SampleCi>,
}

/// Cost a design analytically against an already-simulated (or replayed)
/// run of its structure. This is the cheap step: no reference walks, only
/// the Eq. 1–4 models (and, for NDM, the oracle partitioner).
pub fn evaluate_run(
    kind: WorkloadKind,
    scale: &Scale,
    design: &Design,
    run: Arc<RawRun>,
) -> EvalResult {
    match design {
        Design::Ndm { nvm } => {
            let choice = partition::oracle(&run, *nvm, scale);
            EvalResult {
                design: *design,
                workload: kind,
                metrics: choice.metrics,
                run,
                placement: Some(choice.placement),
                sample_ci: None,
            }
        }
        _ => {
            let costs = design.costing(scale, &run);
            let stats = run.all_levels();
            let pairs: Vec<_> = stats.into_iter().zip(costs.iter()).collect();
            let metrics = Metrics::compute(&pairs, run.total_refs);
            let sample_ci = crate::sampling::sample_ci(&run, &costs);
            EvalResult {
                design: *design,
                workload: kind,
                metrics,
                run,
                placement: None,
                sample_ci,
            }
        }
    }
}

/// Evaluate one design point, memoizing the simulation in `cache`.
pub fn evaluate_cached(
    kind: WorkloadKind,
    scale: &Scale,
    design: &Design,
    cache: &SimCache,
) -> EvalResult {
    evaluate_cached_engine(kind, scale, design, cache, Engine::Sequential)
}

/// Evaluate one design point with the chosen engine, memoizing the
/// simulation in `cache`.
pub fn evaluate_cached_engine(
    kind: WorkloadKind,
    scale: &Scale,
    design: &Design,
    cache: &SimCache,
    engine: Engine,
) -> EvalResult {
    evaluate_cached_sampled(
        kind,
        scale,
        design,
        cache,
        engine,
        crate::sampling::SampleMode::Off,
    )
}

/// Evaluate one design point with the chosen engine and sampling mode,
/// memoizing the (full or sampled) simulation in `cache`.
pub fn evaluate_cached_sampled(
    kind: WorkloadKind,
    scale: &Scale,
    design: &Design,
    cache: &SimCache,
    engine: Engine,
    sample: crate::sampling::SampleMode,
) -> EvalResult {
    design.validate().expect("invalid design");
    let run = cache.get_sampled(kind, scale, &design.structure(scale), engine, sample);
    evaluate_run(kind, scale, design, run)
}

/// Evaluate one design point with a throwaway memo.
pub fn evaluate(kind: WorkloadKind, scale: &Scale, design: &Design) -> EvalResult {
    evaluate_cached(kind, scale, design, &SimCache::new())
}

/// Identity and cause of a grid point that did not produce a result.
#[derive(Debug, Clone)]
pub struct FailedPoint {
    /// The workload of the failed point.
    pub workload: WorkloadKind,
    /// The design of the failed point.
    pub design: Design,
    /// The panic payload (or shard error) that killed it.
    pub message: String,
}

impl std::fmt::Display for FailedPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} × {}: {}",
            self.workload.name(),
            self.design.label(),
            self.message
        )
    }
}

/// Why a sweep-level entry point (a table/figure builder) could not
/// produce its artifact.
#[derive(Debug)]
pub enum SweepError {
    /// An armed interrupt flag stopped the run before every point
    /// completed; the journal holds everything that finished.
    Interrupted,
    /// One or more points panicked. Every other point completed (and was
    /// journaled, when journaling was on).
    Failed(Vec<FailedPoint>),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Interrupted => write!(f, "sweep interrupted"),
            SweepError::Failed(points) => {
                write!(f, "{} sweep point(s) failed:", points.len())?;
                for p in points {
                    write!(f, "\n  {p}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// Everything a fault-isolated grid run produced: per-point results
/// (aligned with the input points, `None` where the point failed or was
/// never claimed before an interrupt), the failures, and how the run ended.
#[derive(Debug)]
pub struct GridOutcome {
    /// One slot per input point, in input order.
    pub results: Vec<Option<EvalResult>>,
    /// Points that panicked, with their payloads.
    pub failures: Vec<FailedPoint>,
    /// Points served from the sweep journal instead of simulation.
    pub skipped: usize,
    /// True when an armed interrupt flag stopped the run before every
    /// point was claimed.
    pub interrupted: bool,
}

impl GridOutcome {
    /// The completed results in input order, dropping failed/unclaimed
    /// slots.
    pub fn completed(self) -> Vec<EvalResult> {
        self.results.into_iter().flatten().collect()
    }
}

/// Turn a caught panic payload into a displayable message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluate one sweep point with journal lookup/record: a point already in
/// the resume map is served from it (no simulation); a freshly evaluated
/// point is journaled before being returned. Panics are *not* caught here
/// — grid workers wrap this in `catch_unwind`; serial callers (heatmap)
/// do their own wrapping via [`sweep_point`].
pub(crate) fn evaluate_sweep_point(
    kind: WorkloadKind,
    scale: &Scale,
    design: &Design,
    cache: &SimCache,
    sweep: Option<&crate::journal::SweepCtx>,
    engine: Engine,
    sample: crate::sampling::SampleMode,
) -> EvalResult {
    if let Some(ctx) = sweep {
        if let Some(hit) = ctx.lookup(kind, design) {
            return hit;
        }
    }
    let r = evaluate_cached_sampled(kind, scale, design, cache, engine, sample);
    if let Some(ctx) = sweep {
        ctx.record(&r);
    }
    r
}

/// Fault-isolated serial evaluation of one point, for callers outside the
/// grid (the heatmap path): journal lookup, `catch_unwind` around the
/// simulation, failure recorded in the journal and returned as a
/// [`FailedPoint`].
pub fn sweep_point(
    kind: WorkloadKind,
    scale: &Scale,
    design: &Design,
    cache: &SimCache,
    sweep: Option<&crate::journal::SweepCtx>,
) -> Result<EvalResult, FailedPoint> {
    sweep_point_engine(kind, scale, design, cache, sweep, Engine::Sequential)
}

/// [`sweep_point`] with an explicit engine choice.
pub fn sweep_point_engine(
    kind: WorkloadKind,
    scale: &Scale,
    design: &Design,
    cache: &SimCache,
    sweep: Option<&crate::journal::SweepCtx>,
    engine: Engine,
) -> Result<EvalResult, FailedPoint> {
    sweep_point_sampled(
        kind,
        scale,
        design,
        cache,
        sweep,
        engine,
        crate::sampling::SampleMode::Off,
    )
}

/// [`sweep_point`] with explicit engine and sampling choices.
pub fn sweep_point_sampled(
    kind: WorkloadKind,
    scale: &Scale,
    design: &Design,
    cache: &SimCache,
    sweep: Option<&crate::journal::SweepCtx>,
    engine: Engine,
    sample: crate::sampling::SampleMode,
) -> Result<EvalResult, FailedPoint> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        evaluate_sweep_point(kind, scale, design, cache, sweep, engine, sample)
    }))
    .map_err(|payload| {
        let message = panic_message(payload);
        if let Some(ctx) = sweep {
            ctx.record_failure(kind, design, &message);
        }
        FailedPoint {
            workload: kind,
            design: *design,
            message,
        }
    })
}

/// Evaluate a grid of points in parallel over `threads` workers (defaults
/// to the available parallelism when `None`), sharing one simulation memo.
///
/// Fault-isolated: a panicking point is caught in its worker, recorded as
/// a [`FailedPoint`] (and journaled, when a sweep context is given), and
/// the remaining points still run to completion. With a sweep context,
/// journaled points are skipped and fresh completions are appended as they
/// land; an armed interrupt flag makes workers stop claiming new points
/// while in-flight ones finish and journal.
pub fn evaluate_grid_sweep(
    points: &[(WorkloadKind, Design)],
    scale: &Scale,
    cache: &SimCache,
    threads: Option<usize>,
    sweep: Option<&crate::journal::SweepCtx>,
) -> GridOutcome {
    evaluate_grid_sweep_engine(points, scale, cache, threads, sweep, Engine::Sequential)
}

/// [`evaluate_grid_sweep`] with an explicit engine choice for each point's
/// structure simulation.
pub fn evaluate_grid_sweep_engine(
    points: &[(WorkloadKind, Design)],
    scale: &Scale,
    cache: &SimCache,
    threads: Option<usize>,
    sweep: Option<&crate::journal::SweepCtx>,
    engine: Engine,
) -> GridOutcome {
    evaluate_grid_sweep_sampled(
        points,
        scale,
        cache,
        threads,
        sweep,
        engine,
        crate::sampling::SampleMode::Off,
    )
}

/// [`evaluate_grid_sweep`] with explicit engine and sampling choices for
/// each point's structure simulation.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_grid_sweep_sampled(
    points: &[(WorkloadKind, Design)],
    scale: &Scale,
    cache: &SimCache,
    threads: Option<usize>,
    sweep: Option<&crate::journal::SweepCtx>,
    engine: Engine,
    sample: crate::sampling::SampleMode,
) -> GridOutcome {
    let _span = memsim_obs::span!("grid");
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .clamp(1, points.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    // Each point gets its own result slot: workers claim disjoint indices
    // from the `next` counter, so publishing a result is a lock-free
    // single-writer `OnceLock::set` instead of a contended mutex around
    // the whole vector.
    let slots: Vec<OnceLock<Result<EvalResult, FailedPoint>>> =
        (0..points.len()).map(|_| OnceLock::new()).collect();
    std::thread::scope(|s| {
        for w in 0..threads {
            // Named so each worker gets a stable flight-recorder lane
            // ("memsim-sweep0", ...) in `--trace-out` timelines.
            let builder = std::thread::Builder::new().name(format!("memsim-sweep{w}"));
            let worker = || loop {
                if sweep.is_some_and(|ctx| ctx.interrupted()) {
                    break;
                }
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= points.len() {
                    break;
                }
                let (kind, design) = points[i];
                // One recorder span per sweep point so the timeline shows
                // which worker ran which (workload, design) pair, when.
                let _point_span =
                    memsim_obs::span!("grid.point.{}.{}", kind.name(), design.label());
                // Catch the panic *inside* the worker: letting it unwind
                // through `thread::scope` would re-raise on join and drop
                // every completed slot with it.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    evaluate_sweep_point(kind, scale, &design, cache, sweep, engine, sample)
                }))
                .map_err(|payload| {
                    let message = panic_message(payload);
                    if let Some(ctx) = sweep {
                        ctx.record_failure(kind, &design, &message);
                    }
                    FailedPoint {
                        workload: kind,
                        design,
                        message,
                    }
                });
                slots[i].set(outcome).expect("result slot written twice");
            };
            builder.spawn_scoped(s, worker).expect("spawn sweep worker");
        }
    });
    let mut results = Vec::with_capacity(points.len());
    let mut failures = Vec::new();
    let mut unclaimed = 0usize;
    let mut skipped = 0usize;
    for slot in slots {
        match slot.into_inner() {
            None => {
                unclaimed += 1;
                results.push(None);
            }
            Some(Ok(r)) => {
                if sweep.is_some_and(|ctx| ctx.was_skipped(r.workload, &r.design)) {
                    skipped += 1;
                }
                results.push(Some(r));
            }
            Some(Err(failed)) => {
                failures.push(failed);
                results.push(None);
            }
        }
    }
    let cis: Vec<crate::sampling::SampleCi> = results
        .iter()
        .flatten()
        .filter_map(|r| r.sample_ci)
        .collect();
    crate::sampling::publish_ci_summary(&cis);
    GridOutcome {
        results,
        failures,
        skipped,
        interrupted: unclaimed > 0 && sweep.is_some_and(|ctx| ctx.interrupted()),
    }
}

/// Evaluate a grid of points in parallel, panicking if any point fails —
/// the strict interface for callers (tests, benches, examples) that treat
/// a failed point as a bug. For fault isolation and checkpoint/resume use
/// [`evaluate_grid_sweep`].
pub fn evaluate_grid(
    points: &[(WorkloadKind, Design)],
    scale: &Scale,
    cache: &SimCache,
    threads: Option<usize>,
) -> Vec<EvalResult> {
    let outcome = evaluate_grid_sweep(points, scale, cache, threads, None);
    if !outcome.failures.is_empty() {
        let list: Vec<String> = outcome
            .failures
            .iter()
            .map(FailedPoint::to_string)
            .collect();
        panic!(
            "{} grid point(s) failed: {}",
            outcome.failures.len(),
            list.join("; ")
        );
    }
    outcome
        .results
        .into_iter()
        .map(|slot| slot.expect("missing result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{eh_configs, n_configs};

    fn scale() -> Scale {
        Scale::mini()
    }

    #[test]
    fn baseline_run_is_consistent() {
        let run = simulate_structure(WorkloadKind::Cg, &scale(), &Structure::ThreeLevel);
        assert_eq!(run.caches.len(), 3);
        assert!(run.total_refs > 100_000);
        // L1 sees every demand reference (after line splitting)
        assert_eq!(run.caches[0].accesses(), run.total_refs);
        // memory loads equal L3 load misses (store misses bypass on writeback)
        assert_eq!(run.mem.loads, run.caches[2].load_misses);
        // per-region traffic sums to the aggregate
        let sum_loads: u64 = run.per_region.iter().map(|t| t.loads).sum();
        assert_eq!(sum_loads, run.mem.loads);
        let sum_stores: u64 = run.per_region.iter().map(|t| t.stores).sum();
        assert_eq!(sum_stores, run.mem.stores);
    }

    #[test]
    fn l4_structure_adds_level_and_filters() {
        let st = Structure::WithL4 {
            capacity_bytes: 1 << 20,
            page_bytes: 1024,
        };
        let run = simulate_structure(WorkloadKind::Cg, &scale(), &st);
        assert_eq!(run.caches.len(), 4);
        assert_eq!(run.caches[3].name, "L4");
        // the L4 must filter some traffic: memory loads < L3 load misses
        assert!(run.mem.loads < run.caches[2].load_misses);
        // with 1 KiB pages, memory fills move 1 KiB each
        assert_eq!(run.mem.bytes_loaded, run.mem.loads * 1024);
    }

    #[test]
    fn sharded_engine_matches_sequential_golden() {
        for st in [
            Structure::ThreeLevel,
            Structure::WithL4 {
                capacity_bytes: 1 << 20,
                page_bytes: 1024,
            },
        ] {
            let seq = simulate_structure(WorkloadKind::Cg, &scale(), &st);
            for shards in [2usize, 7] {
                let sh = simulate_structure_engine(
                    WorkloadKind::Cg,
                    &scale(),
                    &st,
                    Engine::Sharded(shards),
                );
                assert_eq!(sh.caches, seq.caches, "{st:?} shards={shards}");
                assert_eq!(sh.mem, seq.mem, "{st:?} shards={shards}");
                assert_eq!(sh.per_region, seq.per_region, "{st:?} shards={shards}");
                assert_eq!(sh.total_refs, seq.total_refs, "{st:?} shards={shards}");
            }
        }
    }

    #[test]
    fn engine_journal_shards() {
        assert_eq!(Engine::Sequential.journal_shards(), 0);
        assert_eq!(Engine::Sharded(4).journal_shards(), 4);
        match Engine::auto() {
            Engine::Sequential => {}
            Engine::Sharded(n) => assert!(n > 1),
        }
    }

    #[test]
    fn sim_cache_memoizes() {
        let cache = SimCache::new();
        let a = cache.get(WorkloadKind::Hash, &scale(), &Structure::ThreeLevel);
        let b = cache.get(WorkloadKind::Hash, &scale(), &Structure::ThreeLevel);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evaluate_baseline_and_nmm() {
        let cache = SimCache::new();
        let base = evaluate_cached(WorkloadKind::Cg, &scale(), &Design::Baseline, &cache);
        let nmm = evaluate_cached(
            WorkloadKind::Cg,
            &scale(),
            &Design::Nmm {
                nvm: Technology::Pcm,
                config: n_configs()[2],
            },
            &cache,
        );
        let norm = nmm.metrics.normalized_to(&base.metrics);
        // PCM behind a DRAM cache costs some time but is in a sane band
        assert!(
            norm.time >= 0.9 && norm.time < 3.0,
            "norm.time = {}",
            norm.time
        );
        assert!(
            norm.energy > 0.05 && norm.energy < 5.0,
            "norm.energy = {}",
            norm.energy
        );
    }

    #[test]
    fn fourlc_and_fourlcnvm_share_sim() {
        let cache = SimCache::new();
        let eh = eh_configs()[0];
        let a = evaluate_cached(
            WorkloadKind::Hash,
            &scale(),
            &Design::FourLc {
                llc: Technology::Edram,
                config: eh,
            },
            &cache,
        );
        let b = evaluate_cached(
            WorkloadKind::Hash,
            &scale(),
            &Design::FourLcNvm {
                llc: Technology::Edram,
                nvm: Technology::Pcm,
                config: eh,
            },
            &cache,
        );
        assert!(
            Arc::ptr_eq(&a.run, &b.run),
            "same structure must share the simulation"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn grid_matches_serial() {
        let cache = SimCache::new();
        let points = vec![
            (WorkloadKind::Cg, Design::Baseline),
            (
                WorkloadKind::Cg,
                Design::Nmm {
                    nvm: Technology::Pcm,
                    config: n_configs()[0],
                },
            ),
            (WorkloadKind::Hash, Design::Baseline),
        ];
        let grid = evaluate_grid(&points, &scale(), &cache, Some(3));
        assert_eq!(grid.len(), 3);
        for (r, (k, d)) in grid.iter().zip(&points) {
            assert_eq!(r.workload, *k);
            assert_eq!(r.design, *d);
            let serial = evaluate_cached(*k, &scale(), d, &cache);
            assert!((r.metrics.time_s - serial.metrics.time_s).abs() < 1e-15);
        }
    }
}
