//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! Chunk payloads and the header body carry a CRC so that bit rot or a
//! partial write is reported as a typed error instead of silently decoding
//! into a wrong address stream. Table-driven, one table built at first use.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `data` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = vec![0x5Au8; 1024];
        let base = crc32(&data);
        for byte in [0usize, 500, 1023] {
            let mut flipped = data.clone();
            flipped[byte] ^= 0x10;
            assert_ne!(crc32(&flipped), base, "flip at byte {byte} undetected");
        }
    }
}
