//! Crash-resilience of long sweeps: panic-isolated grid workers, the
//! on-disk sweep journal, and `--resume` equivalence.
//!
//! The poison point is `Design::Nmm { nvm: Dram, .. }` — DRAM is not an
//! NVM technology, so `Design::validate` fails and the evaluation path
//! panics exactly like a modelling bug would mid-sweep.

use memsim_core::configs::n_by_name;
use memsim_core::journal::load_journal;
use memsim_core::runner::evaluate_grid_sweep;
use memsim_core::{sweep_fingerprint, Design, Scale, SimCache, SweepCtx, JOURNAL_FILE};
use memsim_tech::Technology;
use memsim_workloads::WorkloadKind;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memsim-sweep-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A design that panics inside the grid worker when evaluated.
fn poison() -> Design {
    Design::Nmm {
        nvm: Technology::Dram,
        config: n_by_name("N6").unwrap(),
    }
}

fn good_grid() -> Vec<(WorkloadKind, Design)> {
    let nmm = Design::Nmm {
        nvm: Technology::Pcm,
        config: n_by_name("N6").unwrap(),
    };
    vec![
        (WorkloadKind::Cg, Design::Baseline),
        (WorkloadKind::Cg, nmm),
        (WorkloadKind::Hash, Design::Baseline),
        (
            WorkloadKind::Hash,
            Design::Ndm {
                nvm: Technology::Pcm,
            },
        ),
    ]
}

#[test]
fn poisoned_grid_completes_every_other_point() {
    let scale = Scale::mini();
    let cache = SimCache::new();
    let mut points = good_grid();
    points.insert(2, (WorkloadKind::Cg, poison()));

    let outcome = evaluate_grid_sweep(&points, &scale, &cache, Some(2), None);
    assert!(!outcome.interrupted);
    assert_eq!(outcome.failures.len(), 1, "exactly the poison point fails");
    let f = &outcome.failures[0];
    assert_eq!(f.workload, WorkloadKind::Cg);
    assert_eq!(f.design, poison());
    assert!(
        f.message.contains("invalid design"),
        "failure carries the panic message: {}",
        f.message
    );
    // the failure names the point when displayed
    let shown = f.to_string();
    assert!(shown.contains("CG"), "{shown}");
    // every survivor completed, in input order, with the failed slot empty
    assert!(outcome.results[2].is_none());
    let done = outcome.completed();
    assert_eq!(done.len(), 4);
    assert!(done.iter().all(|r| r.metrics.amat_ns > 0.0));
}

#[test]
fn poisoned_sweep_journals_survivors_and_resume_skips_them() {
    let dir = tmp_dir("poison-journal");
    let journal = dir.join(JOURNAL_FILE);
    std::fs::remove_file(&journal).ok();
    let scale = Scale::mini();
    let cache = SimCache::new();
    let mut points = good_grid();
    points.push((WorkloadKind::Hash, poison()));

    let ctx = SweepCtx::fresh(&scale, &journal).unwrap();
    let outcome = evaluate_grid_sweep(&points, &scale, &cache, Some(2), Some(&ctx));
    assert_eq!(outcome.failures.len(), 1);
    assert_eq!(ctx.persisted_points(), 4);

    // the journal holds the four survivors plus one failure entry; the
    // failure is recorded but never trusted as a completed point
    let rec = load_journal(&journal, &sweep_fingerprint(&scale)).unwrap();
    assert_eq!(rec.points.len(), 4);
    assert_eq!(rec.failed_entries, 1);
    assert_eq!(rec.corrupt_lines, 0);

    // resuming serves all four survivors from disk and re-attempts (and
    // re-fails) only the poison point
    let (ctx2, rec2) = SweepCtx::resume(&scale, &journal).unwrap();
    assert_eq!(rec2.points.len(), 4);
    let cache2 = SimCache::new();
    let outcome2 = evaluate_grid_sweep(&points, &scale, &cache2, Some(2), Some(&ctx2));
    assert_eq!(outcome2.skipped, 4, "all survivors served from the journal");
    assert_eq!(outcome2.failures.len(), 1);
    assert_eq!(outcome2.completed().len(), 4);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resumed_points_are_bit_identical() {
    let dir = tmp_dir("bitexact");
    let journal = dir.join(JOURNAL_FILE);
    std::fs::remove_file(&journal).ok();
    let scale = Scale::mini();
    let points = good_grid();

    let cache = SimCache::new();
    let ctx = SweepCtx::fresh(&scale, &journal).unwrap();
    let fresh = evaluate_grid_sweep(&points, &scale, &cache, Some(2), Some(&ctx)).completed();

    let cache2 = SimCache::new();
    let (ctx2, _) = SweepCtx::resume(&scale, &journal).unwrap();
    let outcome = evaluate_grid_sweep(&points, &scale, &cache2, Some(2), Some(&ctx2));
    assert_eq!(outcome.skipped, points.len(), "nothing re-simulated");
    let resumed = outcome.completed();

    assert_eq!(fresh.len(), resumed.len());
    for (a, b) in fresh.iter().zip(&resumed) {
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.design.label(), b.design.label());
        // every f64 must round-trip through the journal bit-for-bit, or a
        // resumed report would not be byte-identical to an uninterrupted one
        assert_eq!(a.metrics.amat_ns.to_bits(), b.metrics.amat_ns.to_bits());
        assert_eq!(a.metrics.time_s.to_bits(), b.metrics.time_s.to_bits());
        assert_eq!(a.metrics.dynamic_j.to_bits(), b.metrics.dynamic_j.to_bits());
        assert_eq!(a.metrics.static_j.to_bits(), b.metrics.static_j.to_bits());
        assert_eq!(a.metrics.total_refs, b.metrics.total_refs);
        assert_eq!(a.run.total_refs, b.run.total_refs);
        assert_eq!(a.run.all_levels(), b.run.all_levels());
        assert_eq!(a.placement, b.placement, "NDM placement survives");
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// (journal bytes, fingerprint, expected amat bits per point key)
type Pristine = (Vec<u8>, String, Vec<((String, String), u64)>);

/// The pristine journal the corruption property mutates, simulated once.
fn pristine_journal() -> &'static Pristine {
    static CELL: OnceLock<Pristine> = OnceLock::new();
    CELL.get_or_init(|| {
        let dir = tmp_dir("pristine");
        let journal = dir.join(JOURNAL_FILE);
        std::fs::remove_file(&journal).ok();
        let scale = Scale::mini();
        let cache = SimCache::new();
        let ctx = SweepCtx::fresh(&scale, &journal).unwrap();
        let points = [
            (WorkloadKind::Cg, Design::Baseline),
            (
                WorkloadKind::Cg,
                Design::Nmm {
                    nvm: Technology::Pcm,
                    config: n_by_name("N6").unwrap(),
                },
            ),
        ];
        let results = evaluate_grid_sweep(&points, &scale, &cache, Some(1), Some(&ctx)).completed();
        let expected = results
            .iter()
            .map(|r| {
                (
                    (r.workload.name().to_string(), r.design.label()),
                    r.metrics.amat_ns.to_bits(),
                )
            })
            .collect();
        let bytes = std::fs::read(&journal).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        (bytes, sweep_fingerprint(&scale), expected)
    })
}

proptest! {
    /// Any truncation or byte flip of the journal fails closed: loading
    /// never panics, damaged lines are dropped (CRC or shape), and every
    /// point that does load carries exactly the value that was written.
    #[test]
    fn corrupted_journals_fail_closed(
        cut in 0usize..4096,
        flip_at in 0usize..4096,
        flip_bits in 1u16..256,
    ) {
        let (bytes, fp, expected) = pristine_journal();
        let mut mutated = bytes.clone();
        mutated.truncate(cut.min(mutated.len()));
        if !mutated.is_empty() {
            let i = flip_at % mutated.len();
            mutated[i] ^= flip_bits as u8;
        }

        let dir = tmp_dir("corrupt");
        let path = dir.join("mutated.journal.jsonl");
        std::fs::write(&path, &mutated).unwrap();
        let rec = load_journal(&path, fp).unwrap();

        prop_assert!(rec.points.len() <= expected.len());
        for (key, point) in &rec.points {
            let (_, want) = expected
                .iter()
                .find(|(k, _)| k == key)
                .expect("recovered point must be one that was written");
            // a surviving line is exactly what was written — corruption can
            // remove lines, never alter one undetected
            prop_assert_eq!(point.metrics.amat_ns.to_bits(), *want);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
