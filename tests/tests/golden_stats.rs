//! Golden-stats regression guard for the simulation hot path.
//!
//! Pins the complete `LevelStats` counters at every level of a 4-level
//! sectored hierarchy — plus the terminal memory counters — for (a) a
//! fixed-seed synthetic access stream and (b) a real mini workload. The
//! pinned values were produced by the straightforward pre-optimization
//! walk (linear way scan, per-event dispatch, no line buffer), so any
//! fast-path change that is not observation-equivalent (MRU probe order,
//! the L1 line-buffer filter, chunked event delivery) fails here with the
//! first diverging counter.

use memsim_cache::{Cache, CacheConfig, CountingMemory, Hierarchy, ReplacementPolicy};
use memsim_trace::{TraceEvent, TraceSink};
use memsim_workloads::{Class, WorkloadKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Four levels, four different replacement policies (so policy-side hit
/// bookkeeping — LRU ticks, PLRU bits, RRIP promotion — is all covered),
/// sectored 1 KiB pages at L4.
fn hierarchy() -> Hierarchy<CountingMemory> {
    let caches = vec![
        Cache::new(CacheConfig::new("L1", 32 << 10, 64, 8).with_policy(ReplacementPolicy::Lru)),
        Cache::new(
            CacheConfig::new("L2", 128 << 10, 64, 8).with_policy(ReplacementPolicy::TreePlru),
        ),
        Cache::new(CacheConfig::new("L3", 1 << 20, 64, 16).with_policy(ReplacementPolicy::Srrip)),
        Cache::new(
            CacheConfig::new("L4", 4 << 20, 1024, 16)
                .with_policy(ReplacementPolicy::Random)
                .with_sectors(64),
        ),
    ];
    Hierarchy::new(caches, CountingMemory::default())
}

/// One line per level (full counter set), then the terminal memory.
fn fingerprint(h: &Hierarchy<CountingMemory>) -> String {
    let mut out = String::new();
    for c in h.levels() {
        let s = c.stats();
        out.push_str(&format!(
            "{}:{},{},{},{},{},{},{},{},{},{}\n",
            s.name,
            s.loads,
            s.stores,
            s.load_hits,
            s.load_misses,
            s.store_hits,
            s.store_misses,
            s.writebacks_out,
            s.fills,
            s.bytes_loaded,
            s.bytes_stored,
        ));
    }
    let m = h.memory();
    out.push_str(&format!(
        "MEM:{},{},{},{}\n",
        m.loads, m.stores, m.bytes_loaded, m.bytes_stored
    ));
    out
}

/// Mixed random + streaming accesses over an 8 MiB footprint: random sized
/// loads/stores (including block-straddling 256 B references that the sink
/// must split), interleaved with sequential 8-byte bursts that stay within
/// one 64 B line — the exact pattern the L1 line-buffer filter targets.
fn drive_synthetic(sink: &mut dyn TraceSink) {
    let mut rng = SmallRng::seed_from_u64(0x00C0_FFEE);
    const FOOTPRINT: u64 = 8 << 20;
    for i in 0..120_000u64 {
        if i % 1000 == 0 {
            // a streaming burst: 64 consecutive 8-byte elements
            let base = rng.random_range(0..FOOTPRINT - 512) & !7;
            for k in 0..64 {
                if k % 4 == 3 {
                    sink.access(TraceEvent::store(base + 8 * k, 8));
                } else {
                    sink.access(TraceEvent::load(base + 8 * k, 8));
                }
            }
        }
        let size = [1u32, 2, 4, 8, 16, 64, 256][rng.random_range(0usize..7)];
        let addr = rng.random_range(0..FOOTPRINT - u64::from(size));
        if rng.random_bool(0.3) {
            sink.access(TraceEvent::store(addr, size));
        } else {
            sink.access(TraceEvent::load(addr, size));
        }
    }
    sink.flush();
}

const GOLDEN_SYNTHETIC: &str = "\
L1:153840,65760,5516,148324,1895,63865,64793,212189,4236880,1822255
L2:212189,64793,2505,209684,64534,259,64250,209684,13580096,4146752
L3:209684,64509,22090,187594,64399,110,60471,187594,13419776,4128576
L4:187594,60581,127234,60360,29647,30934,15264,60360,12006016,3877184
MEM:60360,46198,61808640,3868800
";

const GOLDEN_CG_MINI: &str = "\
L1:4772684,352000,3364621,1408063,341000,11000,44000,1419063,32903232,2816000
L2:1419063,44000,504796,914267,43980,20,43980,914267,90820032,2816000
L3:914267,44000,615142,299125,44000,0,35707,299125,58513088,2816000
L4:299125,35707,291225,7900,31304,4403,871,7900,19144000,2285248
MEM:7900,5274,8089600,1169600
";

#[test]
fn synthetic_stream_matches_golden() {
    let mut h = hierarchy();
    drive_synthetic(&mut h);
    h.assert_consistent();
    let got = fingerprint(&h);
    println!("SYNTHETIC FINGERPRINT:\n{got}");
    assert_eq!(got, GOLDEN_SYNTHETIC, "synthetic stream stats diverged");
}

#[test]
fn cg_mini_workload_matches_golden() {
    let mut workload = WorkloadKind::Cg.build(Class::Mini);
    let mut h = hierarchy();
    workload.run(&mut h);
    h.drain();
    h.assert_consistent();
    workload.verify().expect("CG self-verification");
    let got = fingerprint(&h);
    println!("CG MINI FINGERPRINT:\n{got}");
    assert_eq!(got, GOLDEN_CG_MINI, "CG mini workload stats diverged");
}
