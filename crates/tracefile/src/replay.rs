//! Re-consume a recorded trace: drive any [`TraceSink`] with the stream,
//! or scan it into a summary.

use crate::format::TraceError;
use crate::reader::TraceReader;
use memsim_trace::{TraceEvent, TraceSink};
use std::collections::HashSet;
use std::io::Read;

/// Replay every event of `reader` into `sink` and flush it.
///
/// Delivery is chunked: each decoded chunk arrives through one
/// [`TraceSink::access_chunk`] call — the same batched-dispatch shape
/// `ChunkBuffer` gives live workloads, so a replayed [`memsim_cache`
/// hierarchy](https://docs.rs) pays one virtual call per ~4096 events.
/// Returns the number of events delivered.
pub fn replay_into<R: Read>(
    reader: &mut TraceReader<R>,
    sink: &mut dyn TraceSink,
) -> Result<u64, TraceError> {
    let mut delivered = 0u64;
    while let Some(chunk) = reader.next_chunk()? {
        sink.access_chunk(chunk);
        delivered += chunk.len() as u64;
    }
    sink.flush();
    Ok(delivered)
}

/// Aggregate facts about a trace, computed in one streaming pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events.
    pub events: u64,
    /// Load events.
    pub loads: u64,
    /// Store events.
    pub stores: u64,
    /// Bytes read by loads.
    pub load_bytes: u64,
    /// Bytes written by stores.
    pub store_bytes: u64,
    /// Chunks in the file.
    pub chunks: u64,
    /// Chunks whose CRC32 check passed (equals `chunks` for a healthy
    /// file — a mismatch aborts the scan, so this can only trail by
    /// chunks decoded before the error).
    pub crc_verified_chunks: u64,
    /// Encoded event payload bytes (excludes header/framing).
    pub payload_bytes: u64,
    /// Smallest and largest encoded payload size of any chunk, in bytes
    /// (`None` for an empty trace).
    pub chunk_payload_range: Option<(u64, u64)>,
    /// Smallest and largest event count of any chunk (`None` for an
    /// empty trace).
    pub chunk_events_range: Option<(u64, u64)>,
    /// Lowest address touched (`u64::MAX` for an empty trace).
    pub min_addr: u64,
    /// Highest exclusive address touched.
    pub max_addr: u64,
    /// Distinct 64 B cache lines touched (the stream's line footprint).
    pub touched_lines: u64,
}

impl TraceSummary {
    /// Stores as a fraction of all events (0 for an empty trace).
    pub fn store_fraction(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.stores as f64 / self.events as f64
        }
    }

    /// Mean encoded payload bytes per event (0 for an empty trace).
    pub fn payload_bytes_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.payload_bytes as f64 / self.events as f64
        }
    }
}

/// Scan the remainder of `reader`, tallying a [`TraceSummary`].
pub fn summarize<R: Read>(reader: &mut TraceReader<R>) -> Result<TraceSummary, TraceError> {
    let mut s = TraceSummary {
        events: 0,
        loads: 0,
        stores: 0,
        load_bytes: 0,
        store_bytes: 0,
        chunks: 0,
        crc_verified_chunks: 0,
        payload_bytes: 0,
        chunk_payload_range: None,
        chunk_events_range: None,
        min_addr: u64::MAX,
        max_addr: 0,
        touched_lines: 0,
    };
    let mut lines: HashSet<u64> = HashSet::new();
    while let Some(chunk) = reader.next_chunk()? {
        for ev in chunk {
            if ev.kind.is_store() {
                s.stores += 1;
                s.store_bytes += u64::from(ev.size);
            } else {
                s.loads += 1;
                s.load_bytes += u64::from(ev.size);
            }
            s.min_addr = s.min_addr.min(ev.addr);
            s.max_addr = s.max_addr.max(ev.end());
            let first = ev.addr >> 6;
            let last = ev.end().saturating_sub(1) >> 6;
            for line in first..=last {
                lines.insert(line);
            }
        }
    }
    s.events = reader.events_read();
    s.chunks = reader.chunks_read();
    s.crc_verified_chunks = reader.crc_verified_chunks();
    s.payload_bytes = reader.payload_bytes();
    s.chunk_payload_range = reader.chunk_payload_range();
    s.chunk_events_range = reader.chunk_events_range();
    s.touched_lines = lines.len() as u64;
    Ok(s)
}

/// Replay `reader` into several sinks at once (tee without nesting).
pub fn replay_into_all<R: Read>(
    reader: &mut TraceReader<R>,
    sinks: &mut [&mut dyn TraceSink],
) -> Result<u64, TraceError> {
    let mut delivered = 0u64;
    while let Some(chunk) = reader.next_chunk()? {
        for sink in sinks.iter_mut() {
            sink.access_chunk(chunk);
        }
        delivered += chunk.len() as u64;
    }
    for sink in sinks.iter_mut() {
        sink.flush();
    }
    Ok(delivered)
}

/// Convenience: record `events` into an in-memory trace (tests, benches).
pub fn encode_to_vec(
    header: &crate::format::TraceHeader,
    events: &[TraceEvent],
) -> Result<Vec<u8>, TraceError> {
    let mut w = crate::writer::TraceWriter::new(Vec::new(), header)?;
    w.access_chunk(events);
    Ok(w.finish()?.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceHeader;
    use memsim_trace::CountingSink;

    fn events() -> Vec<TraceEvent> {
        (0..10_000u64)
            .map(|i| {
                if i % 5 == 0 {
                    TraceEvent::store(0x1000 + i * 8, 8)
                } else {
                    TraceEvent::load(0x1000 + i * 8, 8)
                }
            })
            .collect()
    }

    #[test]
    fn replay_reaches_sink_in_order() {
        let buf = encode_to_vec(&TraceHeader::anonymous(0x1000), &events()).unwrap();
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let mut seen = Vec::new();
        let mut sink = memsim_trace::FnSink(|ev: TraceEvent| seen.push(ev));
        let n = replay_into(&mut reader, &mut sink).unwrap();
        assert_eq!(n, 10_000);
        assert_eq!(seen, events());
    }

    #[test]
    fn summary_matches_stream() {
        let buf = encode_to_vec(&TraceHeader::anonymous(0x1000), &events()).unwrap();
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let s = summarize(&mut reader).unwrap();
        assert_eq!(s.events, 10_000);
        assert_eq!(s.stores, 2_000);
        assert_eq!(s.loads, 8_000);
        assert_eq!(s.load_bytes, 64_000);
        assert!((s.store_fraction() - 0.2).abs() < 1e-12);
        assert_eq!(s.min_addr, 0x1000);
        assert_eq!(s.max_addr, 0x1000 + 10_000 * 8);
        assert_eq!(s.touched_lines, 10_000 * 8 / 64);
        assert!(s.payload_bytes_per_event() < 2.5);
        assert_eq!(s.crc_verified_chunks, s.chunks);
        let (min_ev, max_ev) = s.chunk_events_range.unwrap();
        assert!(min_ev >= 1 && max_ev <= crate::format::TRACE_CHUNK_EVENTS as u64);
        let (min_b, max_b) = s.chunk_payload_range.unwrap();
        assert!(min_b >= 1 && min_b <= max_b);
    }

    #[test]
    fn summary_of_empty_trace() {
        let buf = encode_to_vec(&TraceHeader::anonymous(0), &[]).unwrap();
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let s = summarize(&mut reader).unwrap();
        assert_eq!(s.events, 0);
        assert_eq!(s.store_fraction(), 0.0);
        assert_eq!(s.payload_bytes_per_event(), 0.0);
        assert_eq!(s.touched_lines, 0);
        assert_eq!(s.crc_verified_chunks, 0);
        assert_eq!(s.chunk_payload_range, None);
        assert_eq!(s.chunk_events_range, None);
    }

    #[test]
    fn replay_into_all_fans_out() {
        let buf = encode_to_vec(&TraceHeader::anonymous(0x1000), &events()).unwrap();
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let mut a = CountingSink::new();
        let mut b = CountingSink::new();
        {
            let mut sinks: Vec<&mut dyn TraceSink> = vec![&mut a, &mut b];
            replay_into_all(&mut reader, &mut sinks).unwrap();
        }
        assert_eq!(a.total(), 10_000);
        assert_eq!(a, b);
    }
}
