//! Full-pipeline integration: every workload through every design.

use memsim_core::configs::{eh_configs, n_configs};
use memsim_core::runner::{evaluate_cached, SimCache};
use memsim_core::Design;
use memsim_integration_tests::test_scale;
use memsim_tech::Technology;
use memsim_workloads::WorkloadKind;

/// Every benchmark of the suite runs through one representative config of
/// each design, and the modeled metrics stay in physically plausible bands.
#[test]
fn every_workload_through_every_design() {
    let scale = test_scale();
    let cache = SimCache::new();
    let designs = [
        Design::Baseline,
        Design::FourLc {
            llc: Technology::Edram,
            config: eh_configs()[0],
        },
        Design::FourLc {
            llc: Technology::Hmc,
            config: eh_configs()[5],
        },
        Design::Nmm {
            nvm: Technology::Pcm,
            config: n_configs()[2],
        },
        Design::Nmm {
            nvm: Technology::SttRam,
            config: n_configs()[8],
        },
        Design::FourLcNvm {
            llc: Technology::Edram,
            nvm: Technology::FeRam,
            config: eh_configs()[0],
        },
        Design::Ndm {
            nvm: Technology::Pcm,
        },
    ];
    for kind in WorkloadKind::ALL {
        let base = evaluate_cached(kind, &scale, &Design::Baseline, &cache);
        assert!(base.metrics.time_s > 0.0);
        assert!(base.metrics.energy_j() > 0.0);
        for design in &designs {
            let r = evaluate_cached(kind, &scale, design, &cache);
            let norm = r.metrics.normalized_to(&base.metrics);
            assert!(
                norm.time > 0.5 && norm.time < 5.0,
                "{} on {:?}: normalized time {} out of band",
                design.label(),
                kind,
                norm.time
            );
            assert!(
                norm.energy > 0.05 && norm.energy < 10.0,
                "{} on {:?}: normalized energy {} out of band",
                design.label(),
                kind,
                norm.energy
            );
            assert!(r.metrics.amat_ns > 0.0 && r.metrics.amat_ns < 1000.0);
        }
    }
}

/// Structure sharing: the whole grid above reuses simulations — the memo
/// must hold exactly (workloads × distinct structures) entries.
#[test]
fn simulation_reuse_across_designs() {
    let scale = test_scale();
    let cache = SimCache::new();
    let kind = WorkloadKind::Lu;
    // three designs, two distinct structures (baseline+NDM share; the two
    // NMM rows at the same config share)
    let n3 = n_configs()[2];
    for design in [
        Design::Baseline,
        Design::Ndm {
            nvm: Technology::Pcm,
        },
        Design::Ndm {
            nvm: Technology::FeRam,
        },
        Design::Nmm {
            nvm: Technology::Pcm,
            config: n3,
        },
        Design::Nmm {
            nvm: Technology::SttRam,
            config: n3,
        },
        Design::Nmm {
            nvm: Technology::FeRam,
            config: n3,
        },
    ] {
        evaluate_cached(kind, &scale, &design, &cache);
    }
    assert_eq!(cache.len(), 2, "expected exactly two simulated structures");
}

/// The modeled baseline reproduces Table 4's qualitative ordering: the
/// random-access benchmarks (Hash, Graph500) have higher AMAT than the
/// structured-grid ones (BT, LU).
#[test]
fn random_access_workloads_have_higher_amat() {
    let scale = test_scale();
    let cache = SimCache::new();
    let amat = |k: WorkloadKind| {
        evaluate_cached(k, &scale, &Design::Baseline, &cache)
            .metrics
            .amat_ns
    };
    let hash = amat(WorkloadKind::Hash);
    let bt = amat(WorkloadKind::Bt);
    let lu = amat(WorkloadKind::Lu);
    assert!(hash > bt, "Hash AMAT {hash} should exceed BT {bt}");
    assert!(hash > lu, "Hash AMAT {hash} should exceed LU {lu}");
}
