//! Calibration checks: streams with *known* locality structure must
//! produce analytically predictable hierarchy behaviour.

use memsim_cache::{Cache, CacheConfig, CountingMemory, Hierarchy};
use memsim_workloads::{Pattern, Synthetic, SyntheticParams, Workload};

fn hierarchy(l4_capacity: u64, page: u32) -> Hierarchy<CountingMemory> {
    let caches = vec![
        Cache::new(CacheConfig::new("L1", 32 << 10, 64, 8)),
        Cache::new(CacheConfig::new("L2", 128 << 10, 64, 8)),
        Cache::new(CacheConfig::new("L3", 320 << 10, 64, 20)),
        Cache::new(CacheConfig::new("L4", l4_capacity, page, 16).with_sectors(64)),
    ];
    Hierarchy::new(caches, CountingMemory::default())
}

/// A sequential read sweep misses each page exactly once: memory loads ==
/// touched bytes / page size (footprint exceeds every cache).
#[test]
fn sequential_sweep_misses_once_per_page() {
    let elements = 1 << 21; // 16 MiB buffer
    let mut w = Synthetic::new(SyntheticParams {
        pattern: Pattern::Sequential,
        elements,
        accesses: elements, // one full pass
        store_fraction: 0.0,
        seed: 1,
    });
    let mut h = hierarchy(2 << 20, 1024);
    w.run(&mut h);
    h.drain();
    w.verify().unwrap();
    let expected_pages = (elements as u64 * 8) / 1024;
    assert_eq!(h.memory().loads, expected_pages);
    assert_eq!(h.memory().stores, 0, "read-only sweep writes nothing back");
}

/// A uniform random stream over footprint F with an L4 of capacity C has
/// an L4 hit rate near C/F once warm (within a generous tolerance).
#[test]
fn uniform_random_hit_rate_tracks_capacity_ratio() {
    let elements = 1 << 21; // 16 MiB buffer
    let l4 = 4 << 20; // 4 MiB cache → expected hit ratio ≈ 0.25
    let mut w = Synthetic::new(SyntheticParams {
        pattern: Pattern::UniformRandom,
        elements,
        accesses: 3 << 20,
        store_fraction: 0.0,
        seed: 2,
    });
    let mut h = hierarchy(l4, 64); // 64 B pages: no spatial prefetch effect
    w.run(&mut h);
    h.drain();
    let l4_stats = h.levels()[3].stats();
    let hit = l4_stats.hit_rate();
    assert!(
        (0.15..0.35).contains(&hit),
        "uniform random hit rate {hit} should sit near capacity ratio 0.25"
    );
}

/// A pointer chase gains nothing from larger pages: memory loads stay
/// ~one per access when the working set exceeds every cache, regardless
/// of page size — while the sequential sweep's memory loads shrink
/// linearly with page size. This is the mechanism behind the paper's
/// page-size sensitivity results.
#[test]
fn page_size_helps_streams_not_pointer_chases() {
    let run = |pattern: Pattern, page: u32| {
        let elements = 1 << 21;
        let mut w = Synthetic::new(SyntheticParams {
            pattern,
            elements,
            accesses: 1 << 20,
            store_fraction: 0.0,
            seed: 3,
        });
        let mut h = hierarchy(1 << 20, page);
        w.run(&mut h);
        h.drain();
        h.memory().loads
    };
    let seq_small = run(Pattern::Sequential, 64);
    let seq_big = run(Pattern::Sequential, 2048);
    assert!(
        (seq_small as f64 / seq_big as f64) > 20.0,
        "2 KiB pages must cut a sequential stream's memory fetches ~32x: {seq_small} vs {seq_big}"
    );
    let chase_small = run(Pattern::PointerChase, 64);
    let chase_big = run(Pattern::PointerChase, 2048);
    assert!(
        (chase_small as f64 / chase_big as f64) < 2.0,
        "pointer chase must not benefit much from big pages: {chase_small} vs {chase_big}"
    );
}

/// Zipf skew turns capacity into hit rate much faster than uniform
/// access: with the same cache, the Zipf stream must hit more.
#[test]
fn zipf_hits_more_than_uniform() {
    let run = |pattern: Pattern| {
        let mut w = Synthetic::new(SyntheticParams {
            pattern,
            elements: 1 << 21,
            accesses: 2 << 20,
            store_fraction: 0.0,
            seed: 4,
        });
        let mut h = hierarchy(1 << 20, 64);
        w.run(&mut h);
        h.drain();
        h.levels()[3].stats().hit_rate()
    };
    let zipf = run(Pattern::Zipf(1.1));
    let uniform = run(Pattern::UniformRandom);
    assert!(
        zipf > uniform + 0.1,
        "zipf {zipf} should clearly beat uniform {uniform}"
    );
}
