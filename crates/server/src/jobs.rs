//! Durable job queue and execution over the experiment engine.
//!
//! A *job* is one reproducible unit of work: either a named artifact
//! (`table4`, `fig1`, …) built live through [`memsim_core::build_artifact`]
//! — the exact code path the batch CLI uses, which is what makes
//! byte-parity testable — or a design-grid replay of a recorded trace.
//!
//! # Durability
//!
//! Every job owns a directory under `<state>/jobs/<id>/`:
//!
//! * `job.json` — the immutable canonical spec, written at submit.
//! * `sweep.journal.jsonl` — the PR 4 checkpoint journal; artifact jobs
//!   resume from it after a crash and never re-simulate a completed point.
//! * `result.json` — the deterministic result, written atomically on
//!   success (temp + rename).
//! * `error.json` / `cancelled` — terminal failure / cancel markers.
//!
//! A restarted daemon rescans `jobs/`, reconstructs terminal states from
//! the markers, and re-enqueues everything else. Because the result
//! embeds artifacts rendered from journal-replayed bit-exact metrics, a
//! kill-and-restart run produces `result.json` bytes identical to an
//! uninterrupted one.
//!
//! # Sharing
//!
//! All jobs share one [`SimCache`], so overlapping grid points across
//! concurrent jobs coalesce onto a single structure simulation (the
//! `sim.memo.hits` counter observes this), and one [`TraceStore`], so a
//! workload+scale trace is recorded at most once.

use crate::store::{digest, TraceStore};
use memsim_core::experiments::ExperimentCtx;
use memsim_core::{
    build_artifact, parse_design_list, replay_grid_robust_sampled, Design, Engine, EvalResult,
    SampleMode, Scale, SimCache, SweepCtx, SweepError, JOURNAL_FILE,
};
use memsim_obs::json;
use memsim_workloads::WorkloadKind;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // A worker that panicked inside a lock poisons it; the daemon keeps
    // serving, so recover the guard instead of propagating the poison.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Resolve a scale preset by name.
pub fn parse_scale(name: &str) -> Result<Scale, String> {
    match name {
        "mini" => Ok(Scale::mini()),
        "demo" => Ok(Scale::demo()),
        "paper" => Ok(Scale::paper()),
        other => Err(format!("unknown scale '{other}'")),
    }
}

/// Resolve an engine spec (`"seq"`, `"auto"`, or a shard count) — the
/// same grammar as the CLI's `--shards`.
pub fn parse_engine(spec: &str) -> Result<Engine, String> {
    match spec {
        "auto" => Ok(Engine::auto()),
        "seq" => Ok(Engine::Sequential),
        n => match n.parse::<usize>() {
            Ok(0) => Err("shards must be at least 1 (or 'auto'/'seq')".into()),
            Ok(n) => Ok(Engine::Sharded(n)),
            Err(_) => Err(format!("bad shard count '{n}' (want N, 'auto', or 'seq')")),
        },
    }
}

/// What a job computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// Build one named artifact (live simulation through the shared memo).
    Artifact(String),
    /// Replay a recorded trace of `workload` over a design grid
    /// (canonical comma-separated design names).
    Replay {
        /// The workload whose trace is replayed.
        workload: WorkloadKind,
        /// Canonical design-name list, e.g. `"baseline,nmm"`.
        designs: String,
    },
}

/// A parsed, validated job specification. Canonical form is stable: it
/// names the job's directory fingerprint and round-trips through
/// `job.json` across restarts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// What to compute.
    pub kind: JobKind,
    /// Scale preset name (`mini` / `demo` / `paper`).
    pub scale_name: String,
    /// Benchmark set for artifact jobs (canonicalized; ignored by replay).
    pub workloads: Vec<WorkloadKind>,
    /// Engine spec string (`seq` / `auto` / shard count).
    pub engine_spec: String,
    /// Interval-sampling mode (`off` or `interval=N,clusters=K,...`).
    pub sample: SampleMode,
}

impl JobSpec {
    /// The scale preset this spec names. Valid by construction.
    pub fn scale(&self) -> Scale {
        parse_scale(&self.scale_name).expect("spec validated at parse")
    }

    /// The engine this spec names. Valid by construction.
    pub fn engine(&self) -> Engine {
        parse_engine(&self.engine_spec).expect("spec validated at parse")
    }

    /// Canonical JSON — byte-stable across parse/serialize round trips.
    pub fn canonical(&self) -> String {
        let mut o = json::Obj::new();
        match &self.kind {
            JobKind::Artifact(name) => {
                o.str("artifact", name);
                let names: Vec<String> = self
                    .workloads
                    .iter()
                    .map(|w| w.name().to_ascii_lowercase())
                    .collect();
                o.str("workloads", &names.join(","));
            }
            JobKind::Replay { workload, designs } => {
                o.str("replay", &workload.name().to_ascii_lowercase());
                o.str("designs", designs);
            }
        }
        o.str("scale", &self.scale_name);
        o.str("shards", &self.engine_spec);
        o.str("sample", &self.sample.canon());
        o.finish()
    }
}

/// Parse and validate a job spec from already-parsed JSON. Unknown
/// fields are rejected — a misspelled option should fail loudly at
/// submit, not silently run the default.
pub fn parse_spec(v: &memsim_core::jsontext::JVal) -> Result<JobSpec, String> {
    use memsim_core::jsontext::JVal;
    let obj = v.as_obj().ok_or("job spec must be a JSON object")?;
    const KNOWN: [&str; 7] = [
        "artifact",
        "replay",
        "designs",
        "scale",
        "workloads",
        "shards",
        "sample",
    ];
    for key in obj.keys() {
        if !KNOWN.contains(&key.as_str()) {
            return Err(format!("unknown field '{key}'"));
        }
    }
    let field_str = |key: &str| -> Result<Option<String>, String> {
        match obj.get(key) {
            None => Ok(None),
            Some(JVal::Str(s)) => Ok(Some(s.clone())),
            Some(JVal::U64(n)) => Ok(Some(n.to_string())),
            Some(_) => Err(format!("field '{key}' must be a string")),
        }
    };

    let scale_name = field_str("scale")?.unwrap_or_else(|| "mini".into());
    parse_scale(&scale_name)?;
    let engine_spec = field_str("shards")?.unwrap_or_else(|| "seq".into());
    parse_engine(&engine_spec)?;
    let sample = match field_str("sample")? {
        None => SampleMode::Off,
        Some(s) => SampleMode::parse(&s)?,
    };

    let artifact = field_str("artifact")?;
    let replay = field_str("replay")?;
    let kind = match (artifact, replay) {
        (Some(_), Some(_)) => return Err("give either 'artifact' or 'replay', not both".into()),
        (None, None) => return Err("job needs an 'artifact' or 'replay' field".into()),
        (Some(name), None) => {
            if !memsim_core::artifacts::is_artifact(&name) {
                return Err(format!("unknown artifact '{name}'"));
            }
            if obj.contains_key("designs") {
                return Err("'designs' only applies to replay jobs".into());
            }
            JobKind::Artifact(name)
        }
        (None, Some(w)) => {
            let workload =
                WorkloadKind::parse(&w).ok_or_else(|| format!("unknown workload '{w}'"))?;
            if obj.contains_key("workloads") {
                return Err("'workloads' only applies to artifact jobs".into());
            }
            let designs = field_str("designs")?.unwrap_or_else(|| "baseline,nmm,ndm".into());
            parse_design_list(&designs)?;
            JobKind::Replay { workload, designs }
        }
    };

    let workloads = match field_str("workloads")? {
        None => WorkloadKind::PAPER_SET.to_vec(),
        Some(list) => list
            .split(',')
            .map(|w| WorkloadKind::parse(w).ok_or_else(|| format!("unknown workload '{w}'")))
            .collect::<Result<_, _>>()?,
    };

    Ok(JobSpec {
        kind,
        scale_name,
        workloads,
        engine_spec,
        sample,
    })
}

/// Parse a spec straight from request-body bytes.
pub fn parse_spec_bytes(body: &[u8]) -> Result<JobSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let v = memsim_core::jsontext::parse_json(text)?;
    parse_spec(&v)
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is simulating it.
    Running,
    /// `result.json` exists.
    Done,
    /// Terminal failure (`error.json`).
    Failed,
    /// Cancelled before completion (journal keeps drained points).
    Cancelled,
}

impl JobState {
    /// Wire name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Is this a final state?
    pub fn terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

struct Progress {
    state: JobState,
    points_done: usize,
    error: Option<String>,
}

/// Most state-transition events a job's in-memory log retains. State
/// machines are short (queued→running→done), so this is generous; a
/// pathological churn just drops the oldest entries and counts them.
const EVENT_BACKLOG: usize = 64;

/// One entry in a job's bounded event log: a state transition observed
/// at a point in the job's life. Served (with live progress samples
/// interleaved) by `GET /jobs/<id>/events`.
#[derive(Debug, Clone)]
pub struct JobEvent {
    /// Monotonic per-job sequence number (0-based, never reused).
    pub seq: u64,
    /// State entered.
    pub state: &'static str,
    /// Journaled points at the time of the transition.
    pub points_done: u64,
}

struct EventLog {
    next_seq: u64,
    dropped: u64,
    entries: VecDeque<JobEvent>,
}

/// One job: immutable spec plus mutable progress, cancel flag, and — while
/// running — a handle on the live sweep context for point-level progress.
pub struct Job {
    /// Stable identifier (`j<seq>-<spec digest>`), also the directory name.
    pub id: String,
    /// The validated spec.
    pub spec: JobSpec,
    /// The job's state directory.
    pub dir: PathBuf,
    cancel: Arc<AtomicBool>,
    progress: Mutex<Progress>,
    sweep: Mutex<Option<Arc<SweepCtx>>>,
    events: Mutex<EventLog>,
}

impl Job {
    fn new(id: String, spec: JobSpec, dir: PathBuf, state: JobState) -> Arc<Job> {
        let job = Arc::new(Job {
            id,
            spec,
            dir,
            cancel: Arc::new(AtomicBool::new(false)),
            progress: Mutex::new(Progress {
                state,
                points_done: 0,
                error: None,
            }),
            sweep: Mutex::new(None),
            events: Mutex::new(EventLog {
                next_seq: 0,
                dropped: 0,
                entries: VecDeque::new(),
            }),
        });
        job.push_event(state);
        job
    }

    /// Append a state transition to the bounded event log.
    fn push_event(&self, state: JobState) {
        let points = self.points_done() as u64;
        let mut log = lock(&self.events);
        let seq = log.next_seq;
        log.next_seq += 1;
        if log.entries.len() >= EVENT_BACKLOG {
            log.entries.pop_front();
            log.dropped += 1;
        }
        log.entries.push_back(JobEvent {
            seq,
            state: state.name(),
            points_done: points,
        });
    }

    /// Logged events with `seq >= after`, plus how many older entries
    /// the bounded backlog has already discarded.
    pub fn events_since(&self, after: u64) -> (Vec<JobEvent>, u64) {
        let log = lock(&self.events);
        let events = log
            .entries
            .iter()
            .filter(|e| e.seq >= after)
            .cloned()
            .collect();
        (events, log.dropped)
    }

    /// Current state.
    pub fn state(&self) -> JobState {
        lock(&self.progress).state
    }

    /// Completed (journaled) grid points — live while running.
    pub fn points_done(&self) -> usize {
        let live = lock(&self.sweep)
            .as_ref()
            .map(|s| s.persisted_points())
            .unwrap_or(0);
        lock(&self.progress).points_done.max(live)
    }

    /// Status document served by `GET /jobs/<id>`.
    pub fn status_json(&self) -> String {
        let (state, error) = {
            let p = lock(&self.progress);
            (p.state, p.error.clone())
        };
        let mut o = json::Obj::new();
        o.str("id", &self.id);
        o.str("state", state.name());
        o.u64("points_done", self.points_done() as u64);
        o.raw("spec", &self.spec.canonical());
        if let Some(e) = error {
            o.str("error", &e);
        }
        o.finish()
    }

    /// Path of the terminal result document.
    pub fn result_path(&self) -> PathBuf {
        self.dir.join("result.json")
    }

    fn set_state(&self, state: JobState) {
        lock(&self.progress).state = state;
        self.push_event(state);
    }
}

/// Outcome of a cancel request.
#[derive(Debug, PartialEq, Eq)]
pub enum CancelOutcome {
    /// Job was still queued; it is now terminally cancelled.
    Cancelled,
    /// Job is running; the flag is set and in-flight points drain.
    Cancelling,
    /// Job had already reached `state` — nothing to do.
    AlreadyTerminal(JobState),
}

/// Why a submit was refused.
#[derive(Debug)]
pub enum SubmitError {
    /// Spec invalid (400).
    Bad(String),
    /// Queue at capacity (503 + Retry-After).
    Full,
}

/// The registry: durable state root, shared simulation memo and trace
/// store, the bounded queue, and every known job.
pub struct Registry {
    jobs_dir: PathBuf,
    /// Shared trace store (`<state>/traces`).
    pub store: TraceStore,
    /// Shared structure-simulation memo — the cross-job result cache.
    pub cache: SimCache,
    jobs: Mutex<HashMap<String, Arc<Job>>>,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_cap: usize,
    cv: Condvar,
    next_seq: AtomicU64,
    shutdown: AtomicBool,
    started: std::time::Instant,
    // observed drain throughput, feeding the 503 Retry-After hint
    drain_millis: AtomicU64,
    drained_jobs: AtomicU64,
}

impl Registry {
    /// Open the registry rooted at `state_dir`, creating directories as
    /// needed and recovering any jobs a previous daemon left behind.
    /// Returns the registry and the ids of re-enqueued (resumed) jobs.
    pub fn open(
        state_dir: &Path,
        queue_cap: usize,
    ) -> Result<(Arc<Registry>, Vec<String>), String> {
        let jobs_dir = state_dir.join("jobs");
        std::fs::create_dir_all(&jobs_dir).map_err(|e| format!("creating {jobs_dir:?}: {e}"))?;
        let store = TraceStore::open(&state_dir.join("traces"))
            .map_err(|e| format!("opening trace store: {e}"))?;
        let reg = Arc::new(Registry {
            jobs_dir,
            store,
            cache: SimCache::new(),
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cap,
            cv: Condvar::new(),
            next_seq: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            started: std::time::Instant::now(),
            drain_millis: AtomicU64::new(0),
            drained_jobs: AtomicU64::new(0),
        });
        let resumed = reg.recover()?;
        Ok((reg, resumed))
    }

    /// Scan the jobs directory and rebuild state. Terminal jobs become
    /// queryable again; incomplete ones re-enqueue (their journal makes
    /// the re-run skip every completed point).
    fn recover(self: &Arc<Self>) -> Result<Vec<String>, String> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&self.jobs_dir)
            .map_err(|e| format!("scanning jobs: {e}"))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        entries.sort(); // deterministic recovery order
        let mut resumed = Vec::new();
        let mut max_seq = 0u64;
        for dir in entries {
            let id = match dir.file_name().and_then(|n| n.to_str()) {
                Some(n) => n.to_string(),
                None => continue,
            };
            if let Some(seq) = id
                .strip_prefix('j')
                .and_then(|r| r.split('-').next())
                .and_then(|s| s.parse::<u64>().ok())
            {
                max_seq = max_seq.max(seq);
            }
            let doc = match std::fs::read_to_string(dir.join("job.json")) {
                Ok(d) => d,
                Err(_) => continue, // half-created dir: ignore
            };
            let spec = (|| -> Result<JobSpec, String> {
                let v = memsim_core::jsontext::parse_json(&doc)?;
                let obj = v.as_obj().ok_or("job.json is not an object")?;
                parse_spec(memsim_core::jsontext::get(obj, "spec")?)
            })();
            let spec = match spec {
                Ok(s) => s,
                Err(_) => continue, // corrupt spec: not recoverable
            };
            let state = if dir.join("result.json").exists() {
                JobState::Done
            } else if dir.join("error.json").exists() {
                JobState::Failed
            } else if dir.join("cancelled").exists() {
                JobState::Cancelled
            } else {
                JobState::Queued
            };
            let job = Job::new(id.clone(), spec, dir, state);
            if let Some(e) = std::fs::read_to_string(job.dir.join("error.json"))
                .ok()
                .and_then(|d| memsim_core::jsontext::parse_json(&d).ok())
                .and_then(|v| v.as_obj().and_then(|o| o.get("error").cloned()))
                .and_then(|v| v.as_str().map(String::from))
            {
                lock(&job.progress).error = Some(e);
            }
            lock(&self.jobs).insert(id.clone(), Arc::clone(&job));
            if state == JobState::Queued {
                // Recovery ignores the capacity bound: these jobs were
                // already accepted by a previous daemon.
                lock(&self.queue).push_back(job);
                resumed.push(id);
            }
        }
        self.next_seq.store(max_seq + 1, Ordering::SeqCst);
        Ok(resumed)
    }

    /// Submit a spec: persist it, enqueue it, return the job. `Full`
    /// maps to 503 + Retry-After at the HTTP layer.
    pub fn submit(self: &Arc<Self>, spec: JobSpec) -> Result<Arc<Job>, SubmitError> {
        let canonical = spec.canonical();
        let mut queue = lock(&self.queue);
        if queue.len() >= self.queue_cap {
            if memsim_obs::enabled() {
                memsim_obs::global().counter("server.queue.rejected").inc();
            }
            return Err(SubmitError::Full);
        }
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let id = format!("j{seq}-{}", &digest(&canonical)[..8]);
        let dir = self.jobs_dir.join(&id);
        std::fs::create_dir_all(&dir)
            .map_err(|e| SubmitError::Bad(format!("creating job dir: {e}")))?;
        let mut doc = json::Obj::new();
        doc.str("id", &id).raw("spec", &canonical);
        write_atomic(&dir.join("job.json"), doc.finish().as_bytes())
            .map_err(|e| SubmitError::Bad(format!("persisting job: {e}")))?;
        let job = Job::new(id.clone(), spec, dir, JobState::Queued);
        lock(&self.jobs).insert(id, Arc::clone(&job));
        queue.push_back(Arc::clone(&job));
        drop(queue);
        self.cv.notify_one();
        if memsim_obs::enabled() {
            memsim_obs::global().counter("server.jobs.submitted").inc();
        }
        Ok(job)
    }

    /// Look a job up by id.
    pub fn get(&self, id: &str) -> Option<Arc<Job>> {
        lock(&self.jobs).get(id).cloned()
    }

    /// Cooperative cancel. Queued jobs terminate immediately; running
    /// jobs get their interrupt flag raised and drain in-flight points
    /// into the journal before going terminal.
    pub fn cancel(&self, job: &Arc<Job>) -> CancelOutcome {
        let mut p = lock(&job.progress);
        match p.state {
            JobState::Queued => {
                p.state = JobState::Cancelled;
                drop(p);
                job.push_event(JobState::Cancelled);
                let _ = std::fs::write(job.dir.join("cancelled"), b"");
                if memsim_obs::enabled() {
                    memsim_obs::global().counter("server.jobs.cancelled").inc();
                }
                CancelOutcome::Cancelled
            }
            JobState::Running => {
                job.cancel.store(true, Ordering::SeqCst);
                CancelOutcome::Cancelling
            }
            s => CancelOutcome::AlreadyTerminal(s),
        }
    }

    /// Current queue depth (for metrics).
    pub fn queue_len(&self) -> usize {
        lock(&self.queue).len()
    }

    /// Whole seconds since the registry opened. Zeroed in deterministic
    /// mode so `/healthz` stays byte-comparable in CI.
    pub fn uptime_secs(&self) -> u64 {
        if memsim_obs::deterministic() {
            0
        } else {
            self.started.elapsed().as_secs()
        }
    }

    /// Job counts per lifecycle state, in wire order
    /// (queued/running/done/failed/cancelled).
    pub fn jobs_by_state(&self) -> [(&'static str, u64); 5] {
        let mut counts = [0u64; 5];
        for job in lock(&self.jobs).values() {
            let i = match job.state() {
                JobState::Queued => 0,
                JobState::Running => 1,
                JobState::Done => 2,
                JobState::Failed => 3,
                JobState::Cancelled => 4,
            };
            counts[i] += 1;
        }
        [
            ("queued", counts[0]),
            ("running", counts[1]),
            ("done", counts[2]),
            ("failed", counts[3]),
            ("cancelled", counts[4]),
        ]
    }

    /// How long a rejected submit should wait before retrying: the
    /// current queue depth times the observed mean per-job drain time
    /// (assumed 1 s per job until the first job completes), floored at
    /// 1 s and capped at 60 s so the hint stays a hint, not a lockout.
    pub fn retry_after_secs(&self) -> u64 {
        let jobs = self.drained_jobs.load(Ordering::Relaxed);
        let mean_secs = if jobs == 0 {
            1.0
        } else {
            self.drain_millis.load(Ordering::Relaxed) as f64 / jobs as f64 / 1000.0
        };
        ((self.queue_len() as f64 * mean_secs).ceil() as u64).clamp(1, 60)
    }

    /// Raise the shutdown flag: workers drain their current point (the
    /// cancel flag doubles as the cooperative interrupt) and exit.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Interrupt running jobs so they checkpoint and come back as
        // resumable `queued` work on the next start. Their in-memory
        // state stays Running; the next daemon's recovery re-queues them.
        for job in lock(&self.jobs).values() {
            if job.state() == JobState::Running {
                job.cancel.store(true, Ordering::SeqCst);
            }
        }
        self.cv.notify_all();
    }

    /// Has [`stop`](Registry::stop) been called?
    pub fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Block for the next runnable job; `None` means shutdown.
    pub fn next_job(&self) -> Option<Arc<Job>> {
        let mut queue = lock(&self.queue);
        loop {
            if self.stopping() {
                return None;
            }
            while let Some(job) = queue.pop_front() {
                // Cancelled-while-queued jobs are left in place and
                // skipped here.
                if job.state() == JobState::Queued {
                    return Some(job);
                }
            }
            let (guard, _) = self
                .cv
                .wait_timeout(queue, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner());
            queue = guard;
        }
    }

    /// Worker loop body: run jobs until shutdown.
    pub fn work(self: &Arc<Self>) {
        while let Some(job) = self.next_job() {
            self.run_job(&job);
        }
    }

    fn run_job(self: &Arc<Self>, job: &Arc<Job>) {
        job.set_state(JobState::Running);
        let started = std::time::Instant::now();
        // A panic that escapes the engine's own per-point isolation must
        // not take the worker thread down with it.
        let out = catch_unwind(AssertUnwindSafe(|| run_inner(self, job)));
        *lock(&job.sweep) = None;
        let out = match out {
            Ok(r) => r,
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "job panicked".into());
                // Post-mortem: when the flight recorder is armed (the
                // daemon arms it at startup), freeze its tail into the
                // job's state dir so the timeline leading up to the
                // panic survives for offline inspection.
                let lanes = memsim_obs::recorder::snapshot_tail(4096);
                if !lanes.is_empty() {
                    let manifest = [("job", job.id.clone()), ("reason", "panic".to_string())];
                    let _ = std::fs::write(
                        job.dir.join("flightrec.json"),
                        memsim_obs::chrome_trace_json(&manifest, &lanes),
                    );
                }
                Err(format!("panic: {msg}"))
            }
        };
        match out {
            Ok(RunOutcome::Finished(result)) => {
                match write_atomic(&job.result_path(), result.as_bytes()) {
                    Ok(()) => {
                        job.set_state(JobState::Done);
                        if memsim_obs::enabled() {
                            memsim_obs::global().counter("server.jobs.completed").inc();
                        }
                    }
                    Err(e) => self.fail_job(job, &format!("writing result: {e}")),
                }
            }
            Ok(RunOutcome::Interrupted) => {
                if self.stopping() {
                    // Shutdown drain, not a user cancel: leave the job
                    // resumable. No terminal marker — the next daemon's
                    // recovery re-enqueues it and the journal skips every
                    // drained point.
                    job.set_state(JobState::Queued);
                } else {
                    job.set_state(JobState::Cancelled);
                    let _ = std::fs::write(job.dir.join("cancelled"), b"");
                    if memsim_obs::enabled() {
                        memsim_obs::global().counter("server.jobs.cancelled").inc();
                    }
                }
            }
            Err(message) => self.fail_job(job, &message),
        }
        self.drain_millis
            .fetch_add(started.elapsed().as_millis() as u64, Ordering::Relaxed);
        self.drained_jobs.fetch_add(1, Ordering::Relaxed);
    }

    fn fail_job(&self, job: &Arc<Job>, message: &str) {
        let mut doc = json::Obj::new();
        doc.str("id", &job.id).str("error", message);
        let _ = write_atomic(&job.dir.join("error.json"), doc.finish().as_bytes());
        let mut p = lock(&job.progress);
        p.state = JobState::Failed;
        p.error = Some(message.to_string());
        drop(p);
        job.push_event(JobState::Failed);
        if memsim_obs::enabled() {
            memsim_obs::global().counter("server.jobs.failed").inc();
        }
    }
}

enum RunOutcome {
    Finished(String),
    Interrupted,
}

fn run_inner(reg: &Arc<Registry>, job: &Arc<Job>) -> Result<RunOutcome, String> {
    let scale = job.spec.scale();
    let engine = job.spec.engine();
    match &job.spec.kind {
        JobKind::Artifact(name) => {
            let journal = job.dir.join(JOURNAL_FILE);
            let sample = job.spec.sample;
            let mut sweep = if journal.exists() {
                let (ctx, _recovery) = SweepCtx::resume_sampled(&scale, &journal, sample)?;
                ctx
            } else {
                SweepCtx::fresh_sampled(&scale, &journal, sample)?
            };
            sweep.set_interrupt(Arc::clone(&job.cancel));
            sweep.set_shards(engine.journal_shards());
            let sweep = Arc::new(sweep);
            lock(&job.progress).points_done = sweep.persisted_points();
            *lock(&job.sweep) = Some(Arc::clone(&sweep));
            let ctx = ExperimentCtx::new(scale, &reg.cache)
                .with_workloads(&job.spec.workloads)
                .with_sweep(&sweep)
                .with_engine(engine)
                .with_sample(sample);
            let built = build_artifact(&ctx, name);
            lock(&job.progress).points_done = sweep.persisted_points();
            match built {
                Ok((markdown, csv)) => Ok(RunOutcome::Finished(artifact_result(
                    job, name, &markdown, &csv,
                ))),
                Err(SweepError::Interrupted) => Ok(RunOutcome::Interrupted),
                Err(e) => Err(e.to_string()),
            }
        }
        JobKind::Replay { workload, designs } => {
            if job.cancel.load(Ordering::SeqCst) {
                return Ok(RunOutcome::Interrupted);
            }
            let trace = reg.store.ensure(*workload, &scale)?;
            let wanted = parse_design_list(designs)?;
            // Baseline anchors normalization even when not requested.
            let mut grid = vec![Design::Baseline];
            grid.extend(wanted.iter().filter(|d| **d != Design::Baseline).copied());
            let outcome =
                replay_grid_robust_sampled(&trace, &grid, &scale, None, engine, job.spec.sample)?;
            let stranded: Vec<Design> = outcome
                .failures
                .iter()
                .flat_map(|f| f.designs.iter().copied())
                .collect();
            if !stranded.is_empty() {
                let list: Vec<String> = outcome.failures.iter().map(|f| f.to_string()).collect();
                return Err(format!("replay shard failure: {}", list.join("; ")));
            }
            let results: Vec<(Design, &EvalResult)> = grid
                .iter()
                .zip(outcome.results.iter())
                .map(|(d, r)| (*d, r))
                .collect();
            Ok(RunOutcome::Finished(replay_result(
                job, *workload, &wanted, &results,
            )))
        }
    }
}

/// Compose the deterministic result document for an artifact job.
fn artifact_result(job: &Job, name: &str, markdown: &str, csv: &str) -> String {
    let mut o = json::Obj::new();
    o.str("id", &job.id)
        .str("kind", "artifact")
        .str("artifact", name)
        .raw("spec", &job.spec.canonical())
        .str("markdown", markdown)
        .str("csv", csv);
    o.finish()
}

/// Compose the deterministic result document for a replay job: the same
/// table shape the CLI's `replay` command prints.
fn replay_result(
    job: &Job,
    workload: WorkloadKind,
    wanted: &[Design],
    results: &[(Design, &EvalResult)],
) -> String {
    let base = results[0].1;
    let mut md = String::from(
        "| design | AMAT (ns) | time (ms) | energy (mJ) | EDP (µJ·s) | time× | energy× | EDP× |\n|---|---|---|---|---|---|---|---|\n",
    );
    let mut csv = String::from("design,amat_ns,time_ms,energy_mj,edp_ujs,time_x,energy_x,edp_x\n");
    for (d, r) in results {
        if !wanted.contains(d) {
            continue;
        }
        let norm = r.metrics.normalized_to(&base.metrics);
        md.push_str(&format!(
            "| {} | {:.3} | {:.3} | {:.3} | {:.4} | {:.4} | {:.4} | {:.4} |\n",
            d.label(),
            r.metrics.amat_ns,
            r.metrics.time_s * 1e3,
            r.metrics.energy_j() * 1e3,
            r.metrics.edp() * 1e6,
            norm.time,
            norm.energy,
            norm.edp,
        ));
        csv.push_str(&format!(
            "{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
            d.label(),
            r.metrics.amat_ns,
            r.metrics.time_s * 1e3,
            r.metrics.energy_j() * 1e3,
            r.metrics.edp() * 1e6,
            norm.time,
            norm.energy,
            norm.edp,
        ));
    }
    let mut o = json::Obj::new();
    o.str("id", &job.id)
        .str("kind", "replay")
        .str("workload", workload.name())
        .u64("events", base.run.total_refs)
        .raw("spec", &job.spec.canonical())
        .str("markdown", &md)
        .str("csv", &csv);
    o.finish()
}

/// Write `bytes` to `path` atomically (temp file + rename) so readers —
/// and a daemon that crashes mid-write — never observe a partial file.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim_core::jsontext::parse_json;

    fn spec(body: &str) -> Result<JobSpec, String> {
        parse_spec(&parse_json(body).unwrap())
    }

    #[test]
    fn parses_minimal_artifact_spec_with_defaults() {
        let s = spec(r#"{"artifact":"table4"}"#).unwrap();
        assert_eq!(s.kind, JobKind::Artifact("table4".into()));
        assert_eq!(s.scale_name, "mini");
        assert_eq!(s.engine_spec, "seq");
        assert_eq!(s.workloads, WorkloadKind::PAPER_SET.to_vec());
    }

    #[test]
    fn canonical_round_trips() {
        let s = spec(r#"{"artifact":"table4","workloads":"bt,hash","scale":"mini"}"#).unwrap();
        let round = spec(&s.canonical()).unwrap();
        assert_eq!(s, round);
        assert_eq!(s.canonical(), round.canonical());
    }

    #[test]
    fn rejects_bad_specs() {
        for bad in [
            r#"{"artifact":"nope"}"#,
            r#"{"artifact":"table4","scale":"huge"}"#,
            r#"{"artifact":"table4","shards":"0"}"#,
            r#"{"artifact":"table4","workloads":"bt,warp"}"#,
            r#"{"artifact":"table4","designs":"nmm"}"#,
            r#"{"replay":"hash","workloads":"bt"}"#,
            r#"{"replay":"warp"}"#,
            r#"{"replay":"hash","designs":"warp"}"#,
            r#"{"artifact":"table4","replay":"hash"}"#,
            r#"{"scale":"mini"}"#,
            r#"{"artifact":"table4","surprise":"yes"}"#,
            r#"[1,2]"#,
        ] {
            assert!(spec(bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn numeric_shards_accepted() {
        let s = spec(r#"{"artifact":"fig1","shards":2}"#).unwrap();
        assert_eq!(s.engine(), Engine::Sharded(2));
    }

    #[test]
    fn submit_run_and_result_round_trip() {
        let dir = std::env::temp_dir().join(format!("memsim-jobs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (reg, resumed) = Registry::open(&dir, 4).unwrap();
        assert!(resumed.is_empty());
        let s = spec(r#"{"artifact":"table4","workloads":"hash","scale":"mini"}"#).unwrap();
        let job = reg.submit(s).unwrap();
        assert_eq!(job.state(), JobState::Queued);
        // Run synchronously through the worker path.
        let picked = reg.next_job().unwrap();
        assert_eq!(picked.id, job.id);
        reg.run_job(&picked);
        assert_eq!(job.state(), JobState::Done);
        assert!(job.points_done() > 0);
        let result = std::fs::read_to_string(job.result_path()).unwrap();
        let v = parse_json(&result).unwrap();
        let o = v.as_obj().unwrap();
        assert_eq!(o["kind"].as_str().unwrap(), "artifact");
        assert!(o["markdown"].as_str().unwrap().contains("|"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_capacity_rejects_with_full() {
        let dir = std::env::temp_dir().join(format!("memsim-jobs-full-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (reg, _) = Registry::open(&dir, 1).unwrap();
        let s = spec(r#"{"artifact":"table4","workloads":"hash"}"#).unwrap();
        reg.submit(s.clone()).unwrap();
        assert!(matches!(reg.submit(s), Err(SubmitError::Full)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_queued_job_is_terminal_and_skipped() {
        let dir = std::env::temp_dir().join(format!("memsim-jobs-cancel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (reg, _) = Registry::open(&dir, 4).unwrap();
        let s = spec(r#"{"artifact":"table4","workloads":"hash"}"#).unwrap();
        let job = reg.submit(s).unwrap();
        assert_eq!(reg.cancel(&job), CancelOutcome::Cancelled);
        assert_eq!(job.state(), JobState::Cancelled);
        assert!(matches!(
            reg.cancel(&job),
            CancelOutcome::AlreadyTerminal(JobState::Cancelled)
        ));
        // The queue must not hand the cancelled job to a worker.
        reg.stop();
        assert!(reg.next_job().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_restores_terminal_and_requeues_incomplete() {
        let dir = std::env::temp_dir().join(format!("memsim-jobs-rec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let done_id;
        let pending_id;
        {
            let (reg, _) = Registry::open(&dir, 4).unwrap();
            let s = spec(r#"{"artifact":"table4","workloads":"hash"}"#).unwrap();
            let done = reg.submit(s.clone()).unwrap();
            let picked = reg.next_job().unwrap();
            reg.run_job(&picked);
            done_id = done.id.clone();
            pending_id = reg.submit(s).unwrap().id.clone();
        }
        let (reg2, resumed) = Registry::open(&dir, 4).unwrap();
        assert_eq!(resumed, vec![pending_id.clone()]);
        assert_eq!(reg2.get(&done_id).unwrap().state(), JobState::Done);
        assert_eq!(reg2.get(&pending_id).unwrap().state(), JobState::Queued);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
