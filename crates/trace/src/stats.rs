//! Stream characterization: the numbers behind Table 4 of the paper
//! (footprint, reference counts) plus spatial-locality summaries that the
//! page-size experiments make useful.

use crate::event::{AccessKind, TraceEvent, TraceSink};

/// Rolling summary of an address stream.
///
/// Tracks reference counts, byte volumes, the touched address range, and a
/// stride histogram (distance between consecutive references), which is a
/// cheap online proxy for spatial locality: unit-stride-dominated streams
/// reward large pages, pointer-chasing streams do not.
#[derive(Debug, Clone)]
pub struct StreamStats {
    /// Load events.
    pub loads: u64,
    /// Store events.
    pub stores: u64,
    /// Bytes read.
    pub load_bytes: u64,
    /// Bytes written.
    pub store_bytes: u64,
    /// Lowest address touched (`u64::MAX` when empty).
    pub min_addr: u64,
    /// Highest (exclusive) address touched.
    pub max_addr: u64,
    last_addr: Option<u64>,
    /// Histogram of |stride| between consecutive references, bucketed by
    /// power of two: bucket `i` counts strides in `[2^i, 2^(i+1))`;
    /// bucket 0 also counts stride 0 and 1.
    pub stride_pow2: [u64; 48],
}

impl Default for StreamStats {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamStats {
    /// A fresh, empty summary.
    pub fn new() -> Self {
        Self {
            loads: 0,
            stores: 0,
            load_bytes: 0,
            store_bytes: 0,
            min_addr: u64::MAX,
            max_addr: 0,
            last_addr: None,
            stride_pow2: [0; 48],
        }
    }

    /// Loads + stores.
    pub fn total_refs(&self) -> u64 {
        self.loads + self.stores
    }

    /// Span of the touched address range in bytes (0 when empty).
    pub fn touched_span(&self) -> u64 {
        self.max_addr.saturating_sub(self.min_addr)
    }

    /// Fraction of consecutive reference pairs whose stride is below
    /// `limit` bytes — a spatial-locality score in `[0, 1]`.
    pub fn locality_below(&self, limit: u64) -> f64 {
        let total: u64 = self.stride_pow2.iter().sum();
        if total == 0 {
            return 0.0;
        }
        // Bucket `i` covers `[2^i, 2^(i+1))`, so the buckets *entirely*
        // below `limit` are `0..ilog2(limit)`: exact when `limit` is a
        // power of two, conservative otherwise. (The old `64 -
        // leading_zeros` cut was off by one at power-of-two limits,
        // counting the `[limit, 2·limit)` bucket as "below".)
        let cut = limit.max(1).ilog2();
        let near: u64 = self.stride_pow2[..(cut as usize).min(48)].iter().sum();
        near as f64 / total as f64
    }
}

impl TraceSink for StreamStats {
    #[inline]
    fn access(&mut self, ev: TraceEvent) {
        match ev.kind {
            AccessKind::Load => {
                self.loads += 1;
                self.load_bytes += u64::from(ev.size);
            }
            AccessKind::Store => {
                self.stores += 1;
                self.store_bytes += u64::from(ev.size);
            }
        }
        self.min_addr = self.min_addr.min(ev.addr);
        self.max_addr = self.max_addr.max(ev.end());
        if let Some(last) = self.last_addr {
            let d = ev.addr.abs_diff(last);
            let bucket = if d <= 1 {
                0
            } else {
                (63 - d.leading_zeros()) as usize
            };
            self.stride_pow2[bucket.min(47)] += 1;
        }
        self.last_addr = Some(ev.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = StreamStats::new();
        assert_eq!(s.total_refs(), 0);
        assert_eq!(s.touched_span(), 0);
        assert_eq!(s.locality_below(64), 0.0);
    }

    #[test]
    fn counts_and_range() {
        let mut s = StreamStats::new();
        s.access(TraceEvent::load(100, 8));
        s.access(TraceEvent::store(200, 8));
        s.access(TraceEvent::load(50, 4));
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.min_addr, 50);
        assert_eq!(s.max_addr, 208);
        assert_eq!(s.touched_span(), 158);
    }

    #[test]
    fn sequential_stream_is_local() {
        let mut s = StreamStats::new();
        for i in 0..10_000u64 {
            s.access(TraceEvent::load(i * 8, 8));
        }
        assert!(s.locality_below(64) > 0.99, "{}", s.locality_below(64));
    }

    #[test]
    fn random_far_stream_is_not_local() {
        let mut s = StreamStats::new();
        // jump by 1 MiB every access
        for i in 0..10_000u64 {
            s.access(TraceEvent::load((i % 2) * (1 << 20) + i, 8));
        }
        assert!(s.locality_below(64) < 0.1);
    }

    #[test]
    fn locality_cut_excludes_the_limit_bucket() {
        // Every stride is exactly 64: "below 64" must be 0, "below 128"
        // must be 1. The pre-fix cut counted the [64, 128) bucket as
        // below 64.
        let mut s = StreamStats::new();
        for i in 0..1000u64 {
            s.access(TraceEvent::load(i * 64, 8));
        }
        assert_eq!(s.locality_below(64), 0.0);
        assert_eq!(s.locality_below(128), 1.0);
        // non-power-of-two limits stay conservative: strides of 64 are
        // below 100, but bucket 6 = [64, 128) straddles it, so the score
        // under-counts rather than over-counts
        assert_eq!(s.locality_below(100), 0.0);
    }

    #[test]
    fn stride_buckets() {
        let mut s = StreamStats::new();
        s.access(TraceEvent::load(0, 8));
        s.access(TraceEvent::load(8, 8)); // stride 8 -> bucket 3
        s.access(TraceEvent::load(8, 8)); // stride 0 -> bucket 0
        s.access(TraceEvent::load(1032, 8)); // stride 1024 -> bucket 10
        assert_eq!(s.stride_pow2[3], 1);
        assert_eq!(s.stride_pow2[0], 1);
        assert_eq!(s.stride_pow2[10], 1);
    }
}
