//! Scoped span timers building a hierarchical phase-timing tree.
//!
//! A span is opened with [`crate::span!`] (or [`enter`]) and closed when
//! its guard drops; the elapsed monotonic wall time, call count, and any
//! attached event count are folded into a process-global tree. Dotted
//! names nest: `"replay.shard0"` is a child `shard0` under `replay`.
//! Nesting also follows dynamic scope per thread — a span opened while
//! another is live on the same thread becomes its descendant — so worker
//! threads each build their own subtree without cross-thread plumbing.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::Mutex;
use std::time::Instant;

/// One node of the phase-timing tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanNode {
    /// Times a span ended at this node.
    pub calls: u64,
    /// Total monotonic wall time spent in those calls, in nanoseconds.
    pub wall_ns: u64,
    /// Events attributed via [`SpanGuard::add_events`].
    pub events: u64,
    /// Child phases by name segment.
    pub children: BTreeMap<String, SpanNode>,
}

impl SpanNode {
    const fn new() -> Self {
        Self {
            calls: 0,
            wall_ns: 0,
            events: 0,
            children: BTreeMap::new(),
        }
    }

    fn at_path(&mut self, path: &[String]) -> &mut SpanNode {
        let mut node = self;
        for seg in path {
            node = node.children.entry(seg.clone()).or_default();
        }
        node
    }

    /// Depth-first walk: `(depth, name, node)` for every descendant.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(usize, &'a str, &'a SpanNode)) {
        fn rec<'a>(
            node: &'a SpanNode,
            depth: usize,
            f: &mut dyn FnMut(usize, &'a str, &'a SpanNode),
        ) {
            for (name, child) in &node.children {
                f(depth, name, child);
                rec(child, depth + 1, f);
            }
        }
        rec(self, 0, f);
    }
}

static ROOT: Mutex<SpanNode> = Mutex::new(SpanNode::new());

thread_local! {
    static PATH: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an open span. Dropping it records the elapsed time.
///
/// Not `Send`: a guard must drop on the thread that opened it, because the
/// nesting path is thread-local.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    _not_send: PhantomData<*const ()>,
}

#[derive(Debug)]
struct ActiveSpan {
    segments: usize,
    start: Instant,
    events: u64,
    /// Dotted name, kept only while the flight recorder is armed so the
    /// guard can emit the matching timeline span-end event.
    recorded: Option<String>,
}

/// Open a span named `name`. When observability is disabled this returns
/// an inert guard and does no allocation beyond the caller's name.
pub fn enter(name: &str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::inert();
    }
    let segments: Vec<String> = name
        .split('.')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if segments.is_empty() {
        return SpanGuard::inert();
    }
    let recorded = if crate::recorder::recording() {
        let full = segments.join(".");
        crate::recorder::span_begin(&full);
        Some(full)
    } else {
        None
    };
    let n = segments.len();
    PATH.with(|p| p.borrow_mut().extend(segments));
    SpanGuard {
        active: Some(ActiveSpan {
            segments: n,
            start: Instant::now(),
            events: 0,
            recorded,
        }),
        _not_send: PhantomData,
    }
}

impl SpanGuard {
    /// A guard that records nothing (observability disabled).
    pub fn inert() -> Self {
        Self {
            active: None,
            _not_send: PhantomData,
        }
    }

    /// Attribute `n` events to this span (shown as a rate in summaries).
    pub fn add_events(&mut self, n: u64) {
        if let Some(a) = self.active.as_mut() {
            a.events = a.events.saturating_add(n);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let wall_ns = u64::try_from(active.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(name) = &active.recorded {
            crate::recorder::span_end(name);
        }
        PATH.with(|p| {
            let mut path = p.borrow_mut();
            {
                let node_path = &path[..];
                let mut root = ROOT.lock().unwrap_or_else(|e| e.into_inner());
                let node = root.at_path(node_path);
                node.calls = node.calls.saturating_add(1);
                node.wall_ns = node.wall_ns.saturating_add(wall_ns);
                node.events = node.events.saturating_add(active.events);
            }
            let keep = path.len().saturating_sub(active.segments);
            path.truncate(keep);
        });
    }
}

/// A copy of the process-global span tree (the root is a nameless node
/// whose children are the top-level phases).
pub fn tree() -> SpanNode {
    ROOT.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Clear the span tree (the calling thread's open-span path is also
/// cleared; other threads' open spans will re-create their paths).
pub fn reset() {
    *ROOT.lock().unwrap_or_else(|e| e.into_inner()) = SpanNode::new();
    PATH.with(|p| p.borrow_mut().clear());
}

/// Open a scoped span timer; see [module docs](self).
///
/// `span!("replay")` opens a top-level phase; `span!("replay.shard{i}", i = 3)`
/// style formatting works because the arguments are passed to [`format!`] —
/// the format only happens when observability is enabled.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        // `enter` itself is a no-op when disabled; a literal name costs
        // nothing to pass either way.
        $crate::span::enter($name)
    };
    ($fmt:literal, $($arg:tt)*) => {
        if $crate::enabled() {
            $crate::span::enter(&format!($fmt, $($arg)*))
        } else {
            $crate::span::SpanGuard::inert()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share the process-global tree with lib-level tests; the
    // crate-wide TEST_LOCK serializes them.
    #[test]
    fn nested_and_dotted_spans_build_one_tree() {
        let _lock = crate::test_lock();
        crate::set_enabled(true);
        reset();
        {
            let mut outer = enter("sim");
            outer.add_events(100);
            {
                let _inner = enter("stream.chunk");
            }
            {
                let _inner = enter("stream.chunk");
            }
        }
        let t = tree();
        let sim = &t.children["sim"];
        assert_eq!(sim.calls, 1);
        assert_eq!(sim.events, 100);
        let chunk = &sim.children["stream"].children["chunk"];
        assert_eq!(chunk.calls, 2);
        // "stream" itself was never closed as a span, only traversed.
        assert_eq!(sim.children["stream"].calls, 0);
        crate::set_enabled(false);
        reset();
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _lock = crate::test_lock();
        crate::set_enabled(false);
        reset();
        {
            let _g = crate::span!("ghost");
        }
        assert!(tree().children.is_empty());
    }
}
