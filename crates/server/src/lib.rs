//! memsim-server: simulation-as-a-service over the experiment engine.
//!
//! A zero-dependency HTTP/1.1 + JSON daemon on `std::net::TcpListener`.
//! Clients submit jobs (a named artifact, or a trace replay over a design
//! grid) and poll for deterministic results; the daemon rides entirely on
//! existing machinery — [`memsim_core::build_artifact`] as the engine,
//! the PR 4 sweep journal as the durable job store, the shared
//! [`memsim_core::SimCache`] to coalesce overlapping grid points across
//! concurrent jobs, and `memsim-obs` for live metrics.
//!
//! # API
//!
//! | route | effect |
//! |---|---|
//! | `POST /jobs` | submit a job spec → `202 {"id":...}`, or `503` + `Retry-After` when the queue is full |
//! | `GET /jobs/<id>` | status: state, per-point progress, spec |
//! | `GET /jobs/<id>/result` | the deterministic result document (`409` until done) |
//! | `GET /jobs/<id>/events` | live NDJSON stream: state transitions, progress samples, heartbeats |
//! | `DELETE /jobs/<id>` | cooperative cancel; in-flight points drain into the journal |
//! | `GET /metrics` | `memsim-obs/1` JSON, or Prometheus text when `Accept: text/plain` |
//! | `GET /healthz` | liveness: uptime, queue depth, jobs by state, version |
//!
//! See DESIGN.md §15 for the job lifecycle, cache keys, and backpressure
//! behavior, and the `server_http` / `server_jobs` integration suites for
//! the hostile-input and durability contracts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod jobs;
pub mod store;

use http::{read_request, Method, Request, Response};
use jobs::{CancelOutcome, JobState, Registry, SubmitError};
use memsim_obs::json;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How the daemon is set up; every knob the `serve` command exposes.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Port to bind on 127.0.0.1 (0 = ephemeral, kernel-assigned).
    pub port: u16,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded queue depth; submits beyond it answer 503.
    pub queue_depth: usize,
    /// Durable state root (`jobs/`, `traces/`, `server.port`).
    pub state_dir: PathBuf,
    /// Per-connection socket read timeout (slow-loris guard).
    pub read_timeout: Duration,
}

impl ServerConfig {
    /// Defaults: ephemeral port, 2 workers, queue of 16, 5 s read timeout.
    pub fn new(state_dir: PathBuf) -> ServerConfig {
        ServerConfig {
            port: 0,
            workers: 2,
            queue_depth: 16,
            state_dir,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// A running daemon: accept thread + worker pool. Dropping the handle
/// does *not* stop it; call [`Server::shutdown`].
pub struct Server {
    registry: Arc<Registry>,
    addr: std::net::SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    resumed: Vec<String>,
}

impl Server {
    /// Bind, recover durable jobs, and start serving. The bound address
    /// is also written to `<state>/server.port` so scripts can find an
    /// ephemeral port.
    pub fn start(config: ServerConfig) -> Result<Server, String> {
        let (registry, resumed) = Registry::open(&config.state_dir, config.queue_depth)?;
        let listener = TcpListener::bind(("127.0.0.1", config.port))
            .map_err(|e| format!("binding port {}: {e}", config.port))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        std::fs::write(
            config.state_dir.join("server.port"),
            addr.port().to_string(),
        )
        .map_err(|e| format!("writing port file: {e}"))?;

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let reg = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("memsim-worker-{i}"))
                    .spawn(move || reg.work())
                    .map_err(|e| format!("spawning worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;

        let accept = {
            let reg = Arc::clone(&registry);
            let timeout = config.read_timeout;
            std::thread::Builder::new()
                .name("memsim-accept".into())
                .spawn(move || accept_loop(listener, reg, timeout))
                .map_err(|e| format!("spawning acceptor: {e}"))?
        };

        Ok(Server {
            registry,
            addr,
            accept: Some(accept),
            workers,
            resumed,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Ids of jobs recovered from the journal-backed store at startup.
    pub fn resumed(&self) -> &[String] {
        self.resumed.as_slice()
    }

    /// The shared registry (tests submit through it directly).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Graceful stop: refuse new work, interrupt running jobs so they
    /// drain their in-flight points into their journals, join every
    /// thread. Incomplete jobs come back as `queued` on the next start.
    pub fn shutdown(mut self) {
        self.registry.stop();
        // Wake the acceptor with one last connection; it checks the flag
        // between accepts.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, reg: Arc<Registry>, timeout: Duration) {
    for stream in listener.incoming() {
        if reg.stopping() {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let reg = Arc::clone(&reg);
        // Thread-per-connection: connections are one-shot (Connection:
        // close) and the handler is cheap — simulation happens on the
        // worker pool, never on a connection thread.
        let _ = std::thread::Builder::new()
            .name("memsim-conn".into())
            .spawn(move || handle_connection(stream, &reg, timeout));
    }
}

fn handle_connection(stream: TcpStream, reg: &Arc<Registry>, timeout: Duration) {
    let _ = stream.set_read_timeout(Some(timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let response = match read_request(&mut reader) {
        Ok(req) => {
            // The one route that cannot flow through `route()`: the live
            // event stream has no known content length and writes
            // incrementally until the job goes terminal.
            if let Some(id) = events_stream_target(&req) {
                if memsim_obs::enabled() {
                    memsim_obs::global().counter("server.http.requests").inc();
                    memsim_obs::global()
                        .counter("server.http.events_streams")
                        .inc();
                }
                stream_job_events(stream, reg, &id);
                return;
            }
            route(reg, &req)
        }
        Err(e) => match e.response() {
            Some(r) => r,
            None => return, // peer closed without sending anything
        },
    };
    if memsim_obs::enabled() {
        memsim_obs::global().counter("server.http.requests").inc();
        memsim_obs::global()
            .counter(&format!("server.http.status.{}", response.status))
            .inc();
    }
    let mut out = stream;
    let _ = response.write_to(&mut out);
}

/// Match `GET /jobs/<id>/events`, the NDJSON streaming route handled at
/// the connection layer instead of [`route`].
fn events_stream_target(req: &Request) -> Option<String> {
    if req.method != Method::Get {
        return None;
    }
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["jobs", id, "events"] => Some(id.to_string()),
        _ => None,
    }
}

/// How often the event stream polls job state for new lines.
const EVENTS_POLL: Duration = Duration::from_millis(200);
/// Idle keep-alive cadence: a heartbeat line proves the stream is live.
const EVENTS_HEARTBEAT: Duration = Duration::from_secs(3);

fn write_ndjson_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    use std::io::Write;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Serve `GET /jobs/<id>/events`: replay the bounded backlog of state
/// transitions as NDJSON, then follow the job live — progress samples
/// when journaled points advance, heartbeats while idle — until it
/// reaches a terminal state (or the daemon stops), then close.
fn stream_job_events(mut stream: TcpStream, reg: &Arc<Registry>, id: &str) {
    let job = match reg.get(id) {
        Some(j) => j,
        None => {
            let _ = Response::error(404, "no such job").write_to(&mut stream);
            return;
        }
    };
    // Raw header block: the body length is unknown up front, so the
    // usual content-length framing cannot apply; Connection: close
    // delimits the stream instead.
    {
        use std::io::Write;
        if stream
            .write_all(
                b"HTTP/1.1 200 OK\r\ncontent-type: application/x-ndjson\r\nconnection: close\r\n\r\n",
            )
            .is_err()
        {
            return;
        }
    }
    let mut next_seq = 0u64;
    let mut reported_drop = false;
    let mut last_points: Option<u64> = None;
    let mut last_write = std::time::Instant::now();
    loop {
        let mut wrote = false;
        let (events, dropped) = job.events_since(next_seq);
        if dropped > 0 && !reported_drop {
            // The bounded backlog already discarded old transitions;
            // tell the client its replay is incomplete.
            reported_drop = true;
            let mut o = json::Obj::new();
            o.str("event", "truncated").u64("dropped", dropped);
            if write_ndjson_line(&mut stream, &o.finish()).is_err() {
                return;
            }
            wrote = true;
        }
        for e in &events {
            next_seq = e.seq + 1;
            let mut o = json::Obj::new();
            o.u64("seq", e.seq)
                .str("event", "state")
                .str("state", e.state)
                .u64("points_done", e.points_done);
            if write_ndjson_line(&mut stream, &o.finish()).is_err() {
                return;
            }
            last_points = Some(e.points_done);
            wrote = true;
        }
        if job.state().terminal() {
            // One final drain: the terminal transition may have been
            // logged after the read above.
            for e in job.events_since(next_seq).0 {
                let mut o = json::Obj::new();
                o.u64("seq", e.seq)
                    .str("event", "state")
                    .str("state", e.state)
                    .u64("points_done", e.points_done);
                if write_ndjson_line(&mut stream, &o.finish()).is_err() {
                    return;
                }
            }
            return;
        }
        let points = job.points_done() as u64;
        if last_points.is_some_and(|p| p != points) {
            let mut o = json::Obj::new();
            o.str("event", "progress")
                .str("state", job.state().name())
                .u64("points_done", points);
            if write_ndjson_line(&mut stream, &o.finish()).is_err() {
                return;
            }
            wrote = true;
        }
        if last_points.is_none() || wrote {
            last_points = Some(points);
        }
        if wrote {
            last_write = std::time::Instant::now();
        } else if last_write.elapsed() >= EVENTS_HEARTBEAT {
            if write_ndjson_line(&mut stream, "{\"event\":\"heartbeat\"}").is_err() {
                return;
            }
            last_write = std::time::Instant::now();
        }
        if reg.stopping() {
            return;
        }
        std::thread::sleep(EVENTS_POLL);
    }
}

/// Dispatch one parsed request. Pure routing — every effect lives in the
/// registry — so the full surface is testable without sockets.
pub fn route(reg: &Arc<Registry>, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method, segments.as_slice()) {
        (Method::Get, ["healthz"]) => {
            let mut o = json::Obj::new();
            o.str("status", "ok")
                .str("version", env!("CARGO_PKG_VERSION"))
                .u64("uptime_secs", reg.uptime_secs())
                .u64("queue", reg.queue_len() as u64)
                .bool("stopping", reg.stopping());
            let mut jobs = json::Obj::new();
            for (name, n) in reg.jobs_by_state() {
                jobs.u64(name, n);
            }
            o.raw("jobs", &jobs.finish());
            Response::json(200, o.finish())
        }
        (Method::Get, ["metrics"]) => {
            // Content negotiation: a Prometheus scraper asks for
            // text/plain (or OpenMetrics); everything else keeps the
            // `memsim-obs/1` JSON existing tooling parses.
            let accept = req.header("accept").unwrap_or("");
            if accept.contains("text/plain") || accept.contains("openmetrics") {
                Response {
                    status: 200,
                    content_type: memsim_obs::PROMETHEUS_CONTENT_TYPE,
                    body: memsim_obs::prometheus_text(memsim_obs::global()).into_bytes(),
                    retry_after: None,
                }
            } else {
                let manifest = [("component", "memsim-server".to_string())];
                Response::json(200, memsim_obs::export_global(&manifest))
            }
        }
        (Method::Post, ["jobs"]) => match jobs::parse_spec_bytes(&req.body) {
            Err(msg) => Response::error(400, &msg),
            Ok(spec) => match reg.submit(spec) {
                Ok(job) => {
                    let mut o = json::Obj::new();
                    o.str("id", &job.id).str("state", job.state().name());
                    Response::json(202, o.finish())
                }
                Err(SubmitError::Full) => {
                    let mut r = Response::error(503, "job queue full");
                    // hint from the backlog: queue depth × observed mean
                    // drain time, floored at 1 s and capped at 60 s
                    r.retry_after = Some(reg.retry_after_secs() as u32);
                    r
                }
                Err(SubmitError::Bad(msg)) => Response::error(400, &msg),
            },
        },
        (Method::Get, ["jobs", id]) => match reg.get(id) {
            Some(job) => Response::json(200, job.status_json()),
            None => Response::error(404, "no such job"),
        },
        (Method::Get, ["jobs", id, "result"]) => match reg.get(id) {
            None => Response::error(404, "no such job"),
            Some(job) => match job.state() {
                JobState::Done => match std::fs::read(job.result_path()) {
                    Ok(bytes) => Response {
                        status: 200,
                        content_type: "application/json",
                        body: bytes,
                        retry_after: None,
                    },
                    Err(e) => Response::error(500, &format!("result unreadable: {e}")),
                },
                state => Response::error(409, &format!("job is {}", state.name())),
            },
        },
        (Method::Delete, ["jobs", id]) => match reg.get(id) {
            None => Response::error(404, "no such job"),
            Some(job) => {
                let outcome = reg.cancel(&job);
                let mut o = json::Obj::new();
                o.str("id", &job.id);
                match outcome {
                    CancelOutcome::Cancelled => o.str("state", "cancelled"),
                    CancelOutcome::Cancelling => o.str("state", "cancelling"),
                    CancelOutcome::AlreadyTerminal(s) => o.str("state", s.name()),
                };
                Response::json(200, o.finish())
            }
        },
        (Method::Get, _) => Response::error(404, "no such route"),
        // Known tree, wrong verb: answer 405 so clients learn the surface.
        (_, ["jobs", ..]) | (_, ["healthz"]) | (_, ["metrics"]) => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such route"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use http::HttpError;

    fn test_registry(tag: &str) -> (Arc<Registry>, PathBuf) {
        let dir = std::env::temp_dir().join(format!("memsim-route-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (reg, _) = Registry::open(&dir, 2).unwrap();
        (reg, dir)
    }

    fn req(method: Method, path: &str, body: &[u8]) -> Request {
        Request {
            method,
            path: path.to_string(),
            headers: Vec::new(),
            body: body.to_vec(),
        }
    }

    #[test]
    fn routes_health_metrics_and_404s() {
        let (reg, dir) = test_registry("health");
        assert_eq!(route(&reg, &req(Method::Get, "/healthz", b"")).status, 200);
        let m = route(&reg, &req(Method::Get, "/metrics", b""));
        assert_eq!(m.status, 200);
        assert!(String::from_utf8(m.body).unwrap().contains("memsim-obs/1"));
        assert_eq!(route(&reg, &req(Method::Get, "/nope", b"")).status, 404);
        assert_eq!(
            route(&reg, &req(Method::Delete, "/healthz", b"")).status,
            405
        );
        assert_eq!(route(&reg, &req(Method::Post, "/metrics", b"")).status, 405);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submit_poll_cancel_flow() {
        let (reg, dir) = test_registry("flow");
        let r = route(
            &reg,
            &req(
                Method::Post,
                "/jobs",
                br#"{"artifact":"table4","workloads":"hash"}"#,
            ),
        );
        assert_eq!(r.status, 202);
        let body = String::from_utf8(r.body).unwrap();
        let v = memsim_core::jsontext::parse_json(&body).unwrap();
        let id = v.as_obj().unwrap()["id"].as_str().unwrap().to_string();

        let s = route(&reg, &req(Method::Get, &format!("/jobs/{id}"), b""));
        assert_eq!(s.status, 200);
        assert!(String::from_utf8(s.body).unwrap().contains("\"queued\""));

        // Result before completion: 409.
        let res = route(&reg, &req(Method::Get, &format!("/jobs/{id}/result"), b""));
        assert_eq!(res.status, 409);

        let c = route(&reg, &req(Method::Delete, &format!("/jobs/{id}"), b""));
        assert_eq!(c.status, 200);
        assert!(String::from_utf8(c.body).unwrap().contains("cancelled"));

        assert_eq!(
            route(&reg, &req(Method::Get, "/jobs/jX-absent", b"")).status,
            404
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submit_rejects_bad_specs_and_full_queue() {
        let (reg, dir) = test_registry("reject");
        assert_eq!(
            route(&reg, &req(Method::Post, "/jobs", b"not json")).status,
            400
        );
        assert_eq!(
            route(
                &reg,
                &req(Method::Post, "/jobs", br#"{"artifact":"bogus"}"#)
            )
            .status,
            400
        );
        let body = br#"{"artifact":"table4","workloads":"hash"}"#;
        assert_eq!(route(&reg, &req(Method::Post, "/jobs", body)).status, 202);
        assert_eq!(route(&reg, &req(Method::Post, "/jobs", body)).status, 202);
        let full = route(&reg, &req(Method::Post, "/jobs", body));
        assert_eq!(full.status, 503);
        // no job has drained yet, so the hint assumes 1 s per queued job:
        // two queued jobs → retry after 2 s (never the old hardcoded 1)
        assert_eq!(full.retry_after, Some(reg.retry_after_secs() as u32));
        assert_eq!(full.retry_after, Some(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn http_error_responses_cover_the_table() {
        assert_eq!(HttpError::Timeout.response().unwrap().status, 408);
        assert_eq!(HttpError::PayloadTooLarge.response().unwrap().status, 413);
        assert_eq!(HttpError::UriTooLong.response().unwrap().status, 414);
        assert_eq!(HttpError::HeadersTooLarge.response().unwrap().status, 431);
        assert_eq!(HttpError::MethodNotAllowed.response().unwrap().status, 405);
        assert!(HttpError::Closed.response().is_none());
    }
}
