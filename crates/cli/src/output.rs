//! Output routing for the CLI: each command builds one [`Report`] that
//! collects human-readable lines and structured fields side by side, then
//! renders whichever representation the user asked for — markdown-ish
//! text (the default), one JSON object (`--json`), or nothing at all
//! (`--quiet`, for scripts that only want the exit code or a
//! `--metrics-out` file).

use memsim_obs::json;

/// How a command's report reaches stdout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Human text (the default).
    Human,
    /// A single JSON object; human lines are suppressed.
    Json,
    /// Nothing on stdout (errors still reach stderr).
    Quiet,
}

impl Mode {
    /// Resolve the `--json` / `--quiet` switches into a mode.
    pub fn from_switches(json: bool, quiet: bool) -> Result<Self, String> {
        match (json, quiet) {
            (true, true) => Err("--json and --quiet are mutually exclusive".to_string()),
            (true, false) => Ok(Mode::Json),
            (false, true) => Ok(Mode::Quiet),
            (false, false) => Ok(Mode::Human),
        }
    }
}

/// Buffers a command's output and renders it once at the end.
///
/// Human lines ([`Report::text`]) and structured fields ([`Report::raw`]
/// and friends) accumulate independently; [`Report::finish`] prints the
/// representation the mode selects. Nothing is written before `finish`,
/// so a command that errors mid-way produces no partial report.
pub struct Report {
    mode: Mode,
    lines: Vec<String>,
    fields: Vec<(String, String)>,
}

impl Report {
    /// An empty report rendering in `mode`.
    pub fn new(mode: Mode) -> Self {
        Self {
            mode,
            lines: Vec::new(),
            fields: Vec::new(),
        }
    }

    /// The rendering mode this report was created with.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Append a human-visible line (shown only in [`Mode::Human`]).
    pub fn text(&mut self, line: impl Into<String>) {
        if self.mode == Mode::Human {
            self.lines.push(line.into());
        }
    }

    /// Append an empty human-visible line.
    pub fn blank(&mut self) {
        self.text("");
    }

    /// Record a structured field whose value is already-serialized JSON.
    pub fn raw(&mut self, key: &str, value: String) {
        if self.mode == Mode::Json {
            self.fields.push((key.to_string(), value));
        }
    }

    /// Record a string field for `--json` output.
    pub fn str_field(&mut self, key: &str, value: &str) {
        self.raw(key, format!("\"{}\"", json::escape(value)));
    }

    /// Record an unsigned integer field for `--json` output.
    pub fn u64_field(&mut self, key: &str, value: u64) {
        self.raw(key, value.to_string());
    }

    /// Record a float field for `--json` output.
    pub fn f64_field(&mut self, key: &str, value: f64) {
        let v = if value.is_finite() {
            format!("{value:?}")
        } else {
            "null".to_string()
        };
        self.raw(key, v);
    }

    /// Render the report to stdout.
    pub fn finish(self) {
        match self.mode {
            Mode::Human => {
                for line in &self.lines {
                    println!("{line}");
                }
            }
            Mode::Json => {
                let mut obj = json::Obj::new();
                for (key, value) in &self.fields {
                    obj.raw(key, value);
                }
                println!("{}", obj.finish());
            }
            Mode::Quiet => {}
        }
    }

    /// Render the report to a string (tests).
    #[cfg(test)]
    fn render(self) -> String {
        match self.mode {
            Mode::Human => {
                let mut out = String::new();
                for line in &self.lines {
                    out.push_str(line);
                    out.push('\n');
                }
                out
            }
            Mode::Json => {
                let mut obj = json::Obj::new();
                for (key, value) in &self.fields {
                    obj.raw(key, value);
                }
                obj.finish()
            }
            Mode::Quiet => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_from_switches() {
        assert_eq!(Mode::from_switches(false, false).unwrap(), Mode::Human);
        assert_eq!(Mode::from_switches(true, false).unwrap(), Mode::Json);
        assert_eq!(Mode::from_switches(false, true).unwrap(), Mode::Quiet);
        assert!(Mode::from_switches(true, true).is_err());
    }

    #[test]
    fn human_mode_shows_text_only() {
        let mut r = Report::new(Mode::Human);
        r.text("# hello");
        r.str_field("ignored", "x");
        assert_eq!(r.render(), "# hello\n");
    }

    #[test]
    fn json_mode_shows_fields_only() {
        let mut r = Report::new(Mode::Json);
        r.text("# ignored");
        r.str_field("workload", "cg");
        r.u64_field("events", 42);
        r.f64_field("rate", 1.5);
        r.raw("levels", "[{\"name\":\"L1\"}]".to_string());
        assert_eq!(
            r.render(),
            r#"{"workload":"cg","events":42,"rate":1.5,"levels":[{"name":"L1"}]}"#
        );
    }

    #[test]
    fn quiet_mode_shows_nothing() {
        let mut r = Report::new(Mode::Quiet);
        r.text("# ignored");
        r.u64_field("events", 42);
        assert_eq!(r.render(), "");
    }
}
