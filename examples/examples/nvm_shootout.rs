//! NVM technology shootout: PCM vs STT-RAM vs FeRAM across the designs.
//!
//! For one memory-intensive workload (Hash), evaluates every NVM
//! technology under each design that uses one — NMM, 4LCNVM, and NDM —
//! and prints the normalized runtime/energy/EDP matrix, highlighting
//! read/write asymmetry effects.
//!
//! ```text
//! cargo run --release -p memsim-examples --example nvm_shootout
//! ```

use memsim_core::configs::{eh_by_name, n_by_name};
use memsim_core::runner::{evaluate_cached, SimCache};
use memsim_core::{Design, Scale};
use memsim_examples::pct;
use memsim_tech::{TechParams, Technology};
use memsim_workloads::WorkloadKind;

fn main() {
    let scale = Scale::mini();
    let cache = SimCache::new();
    let workload = WorkloadKind::Hash;

    println!("Table 1 asymmetry of the NVM candidates:\n");
    for t in Technology::NVM {
        let p = TechParams::of(t);
        println!(
            "  {:<7} read {:>5.1} ns / {:>6.1} pJ/bit   write {:>5.1} ns / {:>6.1} pJ/bit",
            t.name(),
            p.read_ns,
            p.read_pj_per_bit,
            p.write_ns,
            p.write_pj_per_bit
        );
    }

    let base = evaluate_cached(workload, &scale, &Design::Baseline, &cache);
    let n6 = n_by_name("N6").unwrap();
    let eh1 = eh_by_name("EH1").unwrap();

    println!("\n{} normalized to the baseline:\n", workload.name());
    println!(
        "{:<28} {:>9} {:>9} {:>9}",
        "design", "time", "energy", "EDP"
    );
    for nvm in Technology::NVM {
        for design in [
            Design::Nmm { nvm, config: n6 },
            Design::FourLcNvm {
                llc: Technology::Edram,
                nvm,
                config: eh1,
            },
            Design::Ndm { nvm },
        ] {
            let r = evaluate_cached(workload, &scale, &design, &cache);
            let norm = r.metrics.normalized_to(&base.metrics);
            println!(
                "{:<28} {:>9} {:>9} {:>9.4}",
                design.label(),
                pct(norm.time),
                pct(norm.energy),
                norm.edp
            );
        }
        println!();
    }

    println!("notes:");
    println!("- PCM's 100 ns / 210 pJ-per-bit writes hurt most where dirty pages");
    println!("  reach the NVM (NDM, small page caches);");
    println!("- STT-RAM is symmetric but reads cost 58.5 pJ/bit, so read-heavy");
    println!("  probing pays on energy instead;");
    println!("- FeRAM sits between the two on latency with PCM-like write energy.");
}
