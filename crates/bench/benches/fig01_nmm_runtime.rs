//! Figure 1: average normalized runtime of the NMM design across N1-N9.
//!
//! Prints the reproduced series, then Criterion-measures the analytic
//! re-costing of the whole figure (the underlying simulations are memoized
//! after the first pass, so the measured quantity is the model evaluation
//! the paper's methodology performs per configuration).

use criterion::{criterion_group, criterion_main, Criterion};
use memsim_bench::{bench_ctx, print_figure};
use memsim_core::experiments::{fig_nmm, Metric};
use memsim_core::SimCache;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cache = SimCache::new();
    let ctx = bench_ctx(&cache);
    let fig = fig_nmm(&ctx, Metric::Time).unwrap();
    print_figure(&fig);
    c.bench_function("fig01_nmm_runtime/recost", |b| {
        b.iter(|| black_box(fig_nmm(&ctx, Metric::Time)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
