//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build container for this repository has no network access and no
//! pre-populated registry cache, so the workspace vendors the small slice
//! of the `rand` 0.9 API it actually uses:
//!
//! * [`rngs::SmallRng`] — a seedable xoshiro256++ generator,
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`].
//!
//! The simulator only needs *deterministic, well-mixed* streams — exact
//! bit-compatibility with the real crate is irrelevant (and the golden
//! regression tests pin the streams this implementation produces).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level entropy source: everything above is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be built from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from one word (via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type (`f64` in `[0,1)`,
    /// uniform integers, fair `bool`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Sample uniformly from a range (which must be non-empty).
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (`0.0 <= p <= 1.0`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a canonical "just give me one" distribution.
pub trait Standard {
    /// Sample one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )+};
}

uint_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++: the same family the real `SmallRng` uses on 64-bit
    /// targets — fast, tiny state, and plenty good for workload synthesis.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference implementation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0usize..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn f64_in_unit_interval_and_mixed() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn bool_probability_roughly_honoured() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits = {hits}");
    }
}
