//! Cross-thread contracts for the flight recorder.
//!
//! The obs crate's unit tests pin single-thread ring semantics; this
//! suite drives the global recorder from many threads at once and pins
//! the properties the Chrome-trace export depends on: each thread's
//! lane drains in emission order, the bounded ring keeps exactly the
//! newest `capacity` events (counting the rest as dropped), and lanes
//! come back sorted by name so exports are stable.
//!
//! Every test grabs `memsim_obs::test_lock()` — the recorder is
//! process-global state and the parallel test runner must not
//! interleave sessions.

use memsim_obs::recorder;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random event bursts across N named threads: every lane drains
    /// per-thread ordered (deterministic timestamps renumbered 0..kept),
    /// bounded by the ring capacity, keeping the newest suffix of the
    /// burst and counting everything older as dropped.
    #[test]
    fn bursts_across_threads_drain_ordered_and_bounded(
        bursts in proptest::collection::vec(1usize..200, 1..4),
        capacity in 8usize..64,
    ) {
        let _g = memsim_obs::test_lock();
        memsim_obs::set_deterministic(true);
        recorder::start(capacity);
        std::thread::scope(|s| {
            for (t, n) in bursts.iter().enumerate() {
                let n = *n;
                std::thread::Builder::new()
                    .name(format!("fr-worker{t}"))
                    .spawn_scoped(s, move || {
                        for i in 0..n {
                            recorder::instant(&format!("e{i}"));
                        }
                    })
                    .unwrap();
            }
        });
        let lanes = recorder::stop_and_drain();
        memsim_obs::set_deterministic(false);

        prop_assert_eq!(lanes.len(), bursts.len());
        for pair in lanes.windows(2) {
            prop_assert!(pair[0].name < pair[1].name, "lanes unsorted");
        }
        for lane in &lanes {
            let t: usize = lane.name.strip_prefix("fr-worker").unwrap().parse().unwrap();
            let n = bursts[t];
            let kept = n.min(capacity);
            prop_assert_eq!(lane.events.len(), kept);
            prop_assert_eq!(lane.dropped as usize, n - kept);
            for (i, e) in lane.events.iter().enumerate() {
                // deterministic timestamps are the per-lane sequence
                prop_assert_eq!(e.ts_us, i as u64);
                // the ring keeps the newest events, in emission order
                prop_assert_eq!(e.name.as_str(), format!("e{}", n - kept + i).as_str());
            }
        }
    }
}

/// Wall-clock mode: a span/counter mix from three threads lands in
/// three distinct lanes and per-lane timestamps never run backwards.
#[test]
fn wall_clock_lanes_are_monotonic_per_thread() {
    let _g = memsim_obs::test_lock();
    recorder::start(0);
    std::thread::scope(|s| {
        for t in 0..3 {
            std::thread::Builder::new()
                .name(format!("fr-mono{t}"))
                .spawn_scoped(s, move || {
                    for i in 0..100 {
                        recorder::span_begin("work");
                        recorder::counter("c", i as f64);
                        recorder::span_end("work");
                    }
                })
                .unwrap();
        }
    });
    let lanes = recorder::stop_and_drain();
    assert_eq!(lanes.len(), 3);
    for lane in &lanes {
        assert_eq!(lane.events.len(), 300, "lane {}", lane.name);
        assert_eq!(lane.dropped, 0);
        for pair in lane.events.windows(2) {
            assert!(
                pair[0].ts_us <= pair[1].ts_us,
                "lane {} ts ran backwards",
                lane.name
            );
        }
    }
}
