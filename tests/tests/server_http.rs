//! Hostile-input acceptance for the server's HTTP layer.
//!
//! The daemon's port is an open attack surface; the contract under test
//! is the one DESIGN.md §15 pins: every malformed, oversized, truncated,
//! or stalled request is answered with a 4xx/408 **response**, the
//! connection closes, and the process never panics — mirroring the
//! tracefile crate's corruption suite, but over live sockets.

use memsim_server::http::{
    read_request, HttpError, MAX_BODY, MAX_HEADERS, MAX_HEADER_LINE, MAX_REQUEST_LINE,
};
use memsim_server::{Server, ServerConfig};
use proptest::prelude::*;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memsim-http-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_server(tag: &str, read_timeout: Duration) -> (Server, PathBuf) {
    let dir = tmp_dir(tag);
    let mut config = ServerConfig::new(dir.clone());
    config.workers = 1;
    config.read_timeout = read_timeout;
    (Server::start(config).unwrap(), dir)
}

/// Send raw bytes, read the whole response back.
fn raw_round_trip(server: &Server, bytes: &[u8]) -> String {
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(bytes).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response {response:?}"))
}

#[test]
fn hostile_requests_get_4xx_and_the_server_survives() {
    let (server, dir) = start_server("hostile", Duration::from_secs(5));

    let mut huge_line = b"GET /".to_vec();
    huge_line.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE));
    huge_line.extend_from_slice(b" HTTP/1.1\r\n\r\n");

    let mut huge_header = b"GET /healthz HTTP/1.1\r\nx: ".to_vec();
    huge_header.extend(std::iter::repeat_n(b'v', MAX_HEADER_LINE));
    huge_header.extend_from_slice(b"\r\n\r\n");

    let mut many_headers = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..=MAX_HEADERS {
        many_headers.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
    }
    many_headers.extend_from_slice(b"\r\n");

    let cases: Vec<(Vec<u8>, u16)> = vec![
        (huge_line, 414),
        (huge_header, 431),
        (many_headers, 431),
        // truncated body: promises 10 bytes, sends 3, closes
        (
            b"POST /jobs HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc".to_vec(),
            400,
        ),
        // unparseable Content-Length values
        (
            b"POST /jobs HTTP/1.1\r\ncontent-length: -1\r\n\r\n".to_vec(),
            400,
        ),
        (
            b"POST /jobs HTTP/1.1\r\ncontent-length: 4x\r\n\r\n".to_vec(),
            400,
        ),
        // duplicate Content-Length (request-smuggling vector)
        (
            b"POST /jobs HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 2\r\n\r\nab".to_vec(),
            400,
        ),
        // declared body over the cap
        (
            format!(
                "POST /jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                MAX_BODY + 1
            )
            .into_bytes(),
            413,
        ),
        // malformed JSON bodies reach the spec parser and bounce
        (
            b"POST /jobs HTTP/1.1\r\ncontent-length: 9\r\n\r\nnot json!".to_vec(),
            400,
        ),
        (
            b"POST /jobs HTTP/1.1\r\ncontent-length: 13\r\n\r\n{\"artifact\":1".to_vec(),
            400,
        ),
        // valid JSON, hostile spec values
        (
            b"POST /jobs HTTP/1.1\r\ncontent-length: 28\r\n\r\n{\"artifact\":\"../etc/passwd\"}"
                .to_vec(),
            400,
        ),
        // method and framing garbage
        (b"BREW /coffee HTTP/1.1\r\n\r\n".to_vec(), 405),
        (b"GET /healthz HTTP/9.9\r\n\r\n".to_vec(), 400),
        (b"GET no-slash HTTP/1.1\r\n\r\n".to_vec(), 400),
        (b"\x00\x01\x02\xff\xfe\r\n\r\n".to_vec(), 400),
        // chunked transfer is refused outright
        (
            b"POST /jobs HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
            400,
        ),
        // unknown routes / wrong verbs on known routes
        (b"GET /jobs/../../secrets HTTP/1.1\r\n\r\n".to_vec(), 404),
        (b"DELETE /metrics HTTP/1.1\r\n\r\n".to_vec(), 405),
    ];

    for (bytes, want) in cases {
        let response = raw_round_trip(&server, &bytes);
        assert_eq!(
            status_of(&response),
            want,
            "request {:?}...",
            String::from_utf8_lossy(&bytes[..bytes.len().min(60)])
        );
    }

    // After all that abuse the daemon still serves real traffic.
    let ok = raw_round_trip(&server, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&ok), 200);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_loris_is_answered_408_and_disconnected() {
    let (server, dir) = start_server("loris", Duration::from_millis(200));

    // Send half a request line, then stall past the read timeout.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /heal").unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert_eq!(status_of(&out), 408, "stalled request line: {out:?}");

    // Same stall, but inside the body this time.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"POST /jobs HTTP/1.1\r\ncontent-length: 100\r\n\r\ndrip")
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert_eq!(status_of(&out), 408, "stalled body: {out:?}");

    let ok = raw_round_trip(&server, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&ok), 200);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A well-formed request whose prefixes exercise every parser state.
fn valid_request() -> Vec<u8> {
    b"POST /jobs HTTP/1.1\r\nhost: localhost\r\ncontent-type: application/json\r\ncontent-length: 21\r\n\r\n{\"artifact\":\"table4\"}"
        .to_vec()
}

proptest! {
    /// The parser never panics on arbitrary bytes — it returns Ok or a
    /// typed error, nothing else.
    #[test]
    fn read_request_never_panics_on_random_bytes(
        bytes in proptest::collection::vec((0u64..256).prop_map(|b| b as u8), 0..512),
    ) {
        let _ = read_request(&mut BufReader::new(bytes.as_slice()));
    }

    /// Every truncation of a valid request parses or fails cleanly —
    /// the tracefile corruption-suite pattern applied to HTTP framing.
    #[test]
    fn read_request_never_panics_on_truncated_prefixes(cut in 0usize..114) {
        let full = valid_request();
        prop_assume!(cut <= full.len());
        let r = read_request(&mut BufReader::new(&full[..cut]));
        if cut < full.len() {
            // incomplete input must never be mistaken for a full request
            prop_assert!(r.is_err());
        } else {
            prop_assert!(r.is_ok());
        }
    }

    /// Flipping any single byte of a valid request still never panics,
    /// and whatever parses never exceeds the declared body.
    #[test]
    fn read_request_survives_single_byte_corruption(
        pos in 0usize..113,
        byte in (0u64..256).prop_map(|b| b as u8),
    ) {
        let mut bytes = valid_request();
        prop_assume!(pos < bytes.len());
        bytes[pos] = byte;
        if let Ok(req) = read_request(&mut BufReader::new(bytes.as_slice())) {
            prop_assert!(req.body.len() <= MAX_BODY);
        }
    }
}

#[test]
fn error_mapping_matches_design_table() {
    // The §15 table, pinned: error kind -> status.
    let table = [
        (HttpError::BadRequest("x".into()), Some(400)),
        (HttpError::MethodNotAllowed, Some(405)),
        (HttpError::Timeout, Some(408)),
        (HttpError::PayloadTooLarge, Some(413)),
        (HttpError::UriTooLong, Some(414)),
        (HttpError::HeadersTooLarge, Some(431)),
        (HttpError::Closed, None),
    ];
    for (err, want) in table {
        assert_eq!(err.response().map(|r| r.status), want);
    }
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

fn header_of<'a>(response: &'a str, name: &str) -> Option<&'a str> {
    let prefix = format!("{name}:");
    response
        .lines()
        .take_while(|l| !l.is_empty())
        .find(|l| l.to_ascii_lowercase().starts_with(&prefix))
        .map(|l| l[prefix.len()..].trim())
}

#[test]
fn healthz_reports_uptime_jobs_by_state_and_version() {
    // Substring pins, not jsontext: the workspace JSON reader rejects
    // booleans by design, and healthz carries `"stopping":false`.
    let (server, dir) = start_server("healthz", Duration::from_secs(5));
    let resp = raw_round_trip(&server, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&resp), 200);
    let body = body_of(&resp);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"version\":\"0.1.0\""), "{body}");
    assert!(body.contains("\"uptime_secs\":"), "{body}");
    assert!(body.contains("\"stopping\":false"), "{body}");
    // jobs-by-state gauges, all zero on a fresh daemon, in wire order
    assert!(
        body.contains(
            "\"jobs\":{\"queued\":0,\"running\":0,\"done\":0,\"failed\":0,\"cancelled\":0}"
        ),
        "{body}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_content_negotiates_prometheus_and_json() {
    // The daemon's own process counters only exist when obs is on —
    // the serve command always enables it; tests do the same.
    memsim_obs::set_enabled(true);
    let (server, dir) = start_server("negotiate", Duration::from_secs(5));

    // Default (no Accept): the memsim-obs/1 JSON document, unchanged.
    let json = raw_round_trip(&server, b"GET /metrics HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&json), 200);
    assert_eq!(header_of(&json, "content-type"), Some("application/json"));
    assert!(body_of(&json).contains("memsim-obs/1"));

    // A Prometheus scraper's Accept gets the text exposition format.
    let prom = raw_round_trip(
        &server,
        b"GET /metrics HTTP/1.1\r\naccept: text/plain\r\n\r\n",
    );
    assert_eq!(status_of(&prom), 200);
    assert_eq!(
        header_of(&prom, "content-type"),
        Some("text/plain; version=0.0.4")
    );
    // The JSON probe above was counted, so at least one counter renders.
    assert!(
        body_of(&prom).contains("# TYPE server_http_requests counter"),
        "prometheus body: {:?}",
        body_of(&prom)
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn job_events_stream_is_ordered_ndjson_until_terminal() {
    let (server, dir) = start_server("events", Duration::from_secs(5));

    // Streaming an unknown job answers a plain 404.
    let missing = raw_round_trip(&server, b"GET /jobs/jX-absent/events HTTP/1.1\r\n\r\n");
    assert_eq!(status_of(&missing), 404);

    let spec = br#"{"artifact":"table4","workloads":"hash","scale":"mini"}"#;
    let mut post = format!(
        "POST /jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        spec.len()
    )
    .into_bytes();
    post.extend_from_slice(spec);
    let accepted = raw_round_trip(&server, &post);
    assert_eq!(status_of(&accepted), 202);
    let v = memsim_core::jsontext::parse_json(body_of(&accepted)).unwrap();
    let id = v.as_obj().unwrap()["id"].as_str().unwrap().to_string();

    // The stream replays the backlog and follows the job live; the
    // connection closes itself once the job goes terminal.
    let resp = raw_round_trip(
        &server,
        format!("GET /jobs/{id}/events HTTP/1.1\r\n\r\n").as_bytes(),
    );
    assert_eq!(status_of(&resp), 200);
    assert_eq!(
        header_of(&resp, "content-type"),
        Some("application/x-ndjson")
    );
    let mut last_seq = None;
    let mut states = Vec::new();
    for line in body_of(&resp).lines() {
        let v = memsim_core::jsontext::parse_json(line)
            .unwrap_or_else(|e| panic!("non-JSON NDJSON line {line:?}: {e}"));
        let o = v.as_obj().unwrap();
        match o["event"].as_str().unwrap() {
            "state" => {
                // Per-job seq numbers arrive strictly increasing.
                let seq = o["seq"].as_u64().unwrap();
                assert!(last_seq.is_none_or(|p| seq > p), "seq regressed: {line}");
                last_seq = Some(seq);
                states.push(o["state"].as_str().unwrap().to_string());
            }
            "progress" | "heartbeat" | "truncated" => {}
            other => panic!("unknown event kind {other:?}"),
        }
    }
    assert_eq!(states.first().map(String::as_str), Some("queued"));
    assert_eq!(states.last().map(String::as_str), Some("done"));
    assert!(states.contains(&"running".to_string()), "{states:?}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queue_full_503_pins_computed_retry_after() {
    // Satellite pin for the backpressure hint: the 503 must carry a
    // Retry-After computed from queue depth × mean drain time — an
    // integer inside the contract's [1 s, 60 s] clamp — never absent
    // and never the old hardcoded constant regardless of backlog.
    let dir = tmp_dir("retry-after");
    let mut config = ServerConfig::new(dir.clone());
    config.workers = 1;
    config.queue_depth = 1;
    config.read_timeout = Duration::from_secs(5);
    let server = Server::start(config).unwrap();

    let spec = br#"{"artifact":"table4","workloads":"hash","scale":"mini"}"#;
    let mut post = format!(
        "POST /jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        spec.len()
    )
    .into_bytes();
    post.extend_from_slice(spec);

    let mut refused = None;
    for _ in 0..8 {
        let resp = raw_round_trip(&server, &post);
        match status_of(&resp) {
            202 => continue,
            503 => {
                refused = Some(resp);
                break;
            }
            other => panic!("unexpected submit status {other}: {resp:?}"),
        }
    }
    let refused = refused.expect("queue never refused after 8 submissions");

    let retry_line = refused
        .lines()
        .find(|l| l.to_ascii_lowercase().starts_with("retry-after:"))
        .unwrap_or_else(|| panic!("503 must carry Retry-After: {refused:?}"));
    let secs: u32 = retry_line
        .split(':')
        .nth(1)
        .unwrap()
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("Retry-After must be an integer ({e}): {retry_line:?}"));
    assert!(
        (1..=60).contains(&secs),
        "Retry-After {secs} outside the documented 1..=60 clamp"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
