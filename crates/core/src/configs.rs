//! The configuration tables of the paper's experimental setup.
//!
//! Table 2 (eDRAM/HMC configurations for the 4LC and 4LCNVM designs) and
//! Table 3 (DRAM-cache configurations for the NMM design), capacities given
//! at paper scale and divided by [`crate::Scale::capacity_divisor`] when a
//! design is instantiated.

/// One Table 2 row: an eDRAM/HMC last-level-cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EhConfig {
    /// Row name ("EH1" … "EH8").
    pub name: &'static str,
    /// eDRAM/HMC capacity in bytes (paper scale, per core).
    pub capacity_bytes: u64,
    /// Page (block) size in bytes.
    pub page_bytes: u32,
}

/// One Table 3 row: an NMM DRAM-cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NConfig {
    /// Row name ("N1" … "N9").
    pub name: &'static str,
    /// DRAM capacity in bytes (paper scale, per core).
    pub capacity_bytes: u64,
    /// Page size in bytes.
    pub page_bytes: u32,
}

const MB: u64 = 1 << 20;

/// Table 2 of the paper: eDRAM/HMC configurations (capacity per core).
///
/// The paper prints both EH7 and EH8 as "8 MB / 2048 B" — an obvious
/// duplication typo given the table explores capacity halvings; EH8 is
/// taken as 4 MB / 2048 B here (recorded in EXPERIMENTS.md).
pub fn eh_configs() -> [EhConfig; 8] {
    [
        EhConfig {
            name: "EH1",
            capacity_bytes: 16 * MB,
            page_bytes: 64,
        },
        EhConfig {
            name: "EH2",
            capacity_bytes: 16 * MB,
            page_bytes: 128,
        },
        EhConfig {
            name: "EH3",
            capacity_bytes: 16 * MB,
            page_bytes: 256,
        },
        EhConfig {
            name: "EH4",
            capacity_bytes: 16 * MB,
            page_bytes: 512,
        },
        EhConfig {
            name: "EH5",
            capacity_bytes: 16 * MB,
            page_bytes: 1024,
        },
        EhConfig {
            name: "EH6",
            capacity_bytes: 16 * MB,
            page_bytes: 2048,
        },
        EhConfig {
            name: "EH7",
            capacity_bytes: 8 * MB,
            page_bytes: 2048,
        },
        EhConfig {
            name: "EH8",
            capacity_bytes: 4 * MB,
            page_bytes: 2048,
        },
    ]
}

/// Table 3 of the paper: NMM DRAM-cache configurations (capacity per core).
pub fn n_configs() -> [NConfig; 9] {
    [
        NConfig {
            name: "N1",
            capacity_bytes: 128 * MB,
            page_bytes: 4096,
        },
        NConfig {
            name: "N2",
            capacity_bytes: 256 * MB,
            page_bytes: 4096,
        },
        NConfig {
            name: "N3",
            capacity_bytes: 512 * MB,
            page_bytes: 4096,
        },
        NConfig {
            name: "N4",
            capacity_bytes: 512 * MB,
            page_bytes: 2048,
        },
        NConfig {
            name: "N5",
            capacity_bytes: 512 * MB,
            page_bytes: 1024,
        },
        NConfig {
            name: "N6",
            capacity_bytes: 512 * MB,
            page_bytes: 512,
        },
        NConfig {
            name: "N7",
            capacity_bytes: 512 * MB,
            page_bytes: 256,
        },
        NConfig {
            name: "N8",
            capacity_bytes: 512 * MB,
            page_bytes: 128,
        },
        NConfig {
            name: "N9",
            capacity_bytes: 512 * MB,
            page_bytes: 64,
        },
    ]
}

/// Look up a Table 2 row by name (case-insensitive).
pub fn eh_by_name(name: &str) -> Option<EhConfig> {
    eh_configs()
        .into_iter()
        .find(|c| c.name.eq_ignore_ascii_case(name))
}

/// Look up a Table 3 row by name (case-insensitive).
pub fn n_by_name(name: &str) -> Option<NConfig> {
    n_configs()
        .into_iter()
        .find(|c| c.name.eq_ignore_ascii_case(name))
}

/// The DRAM size (paper scale) used for the NDM design's DRAM partition
/// budget: "For the NDM design we explored a DRAM of size 512MB."
pub const NDM_DRAM_BYTES: u64 = 512 * MB;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_verbatim() {
        let eh = eh_configs();
        assert_eq!(eh.len(), 8);
        // EH1–EH6: 16 MB with doubling pages from 64 B
        for (i, c) in eh[..6].iter().enumerate() {
            assert_eq!(c.capacity_bytes, 16 * MB);
            assert_eq!(c.page_bytes, 64 << i);
        }
        assert_eq!((eh[6].capacity_bytes, eh[6].page_bytes), (8 * MB, 2048));
        assert_eq!((eh[7].capacity_bytes, eh[7].page_bytes), (4 * MB, 2048));
    }

    #[test]
    fn table3_verbatim() {
        let n = n_configs();
        assert_eq!(n.len(), 9);
        assert_eq!((n[0].capacity_bytes, n[0].page_bytes), (128 * MB, 4096));
        assert_eq!((n[1].capacity_bytes, n[1].page_bytes), (256 * MB, 4096));
        assert_eq!((n[2].capacity_bytes, n[2].page_bytes), (512 * MB, 4096));
        // N3–N9: fixed 512 MB with halving pages down to 64 B
        for (i, c) in n[2..].iter().enumerate() {
            assert_eq!(c.capacity_bytes, 512 * MB);
            assert_eq!(c.page_bytes, 4096 >> i);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(eh_by_name("eh3").unwrap().page_bytes, 256);
        assert_eq!(n_by_name("N5").unwrap().page_bytes, 1024);
        assert!(eh_by_name("EH9").is_none());
        assert!(n_by_name("N0").is_none());
    }

    #[test]
    fn pages_are_powers_of_two() {
        for c in eh_configs() {
            assert!(c.page_bytes.is_power_of_two());
        }
        for c in n_configs() {
            assert!(c.page_bytes.is_power_of_two());
        }
    }
}
