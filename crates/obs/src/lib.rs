//! Zero-dependency observability for the simulation pipeline.
//!
//! The paper's methodology is data-movement accounting: loads, stores,
//! hits, misses, and writebacks at every level feed the AMAT and energy
//! models. This crate makes that accounting *inspectable while it runs*
//! instead of only in the final report:
//!
//! * [`MetricsRegistry`] — named atomic counters, gauges, and
//!   power-of-two-bucket histograms. Workers update lock-free through
//!   `Arc` handles; readers snapshot consistently.
//! * [`span!`] — scoped span timers building a hierarchical phase-timing
//!   tree (trace generation → cache simulation → grid evaluation → replay
//!   shards) with monotonic wall times and per-span event counts.
//! * [`ProgressSampler`] — a sampler thread rendering live `--progress`
//!   (rate, ETA, per-shard lag) from epoch-published `progress.*`
//!   counters, never touching the hot path.
//! * [`export_json`] — the run manifest plus a full metrics dump as
//!   deterministic JSON (`--metrics-out`), and [`render_summary`] for the
//!   human table.
//! * [`recorder`] — a flight recorder of per-thread bounded ring buffers
//!   holding timestamped span/instant/counter events, drained into
//!   [`chrome_trace_json`] (Perfetto / chrome://tracing timelines, one
//!   lane per thread) for `--trace-out`.
//! * [`prometheus_text`] — the registry rendered as Prometheus text
//!   exposition (histograms become p50/p90/p99 summaries), served by the
//!   daemon's `/metrics` via content negotiation.
//!
//! # The enabled flag
//!
//! Everything is off by default. Instrumented code guards its probes with
//! [`enabled`] — a single relaxed atomic load — so a simulation run that
//! never asked for telemetry pays one predictable branch, not atomics, on
//! its hot path. The CLI flips the flag on for `--progress` /
//! `--metrics-out`.
//!
//! # Determinism
//!
//! [`set_deterministic`] zeroes span wall times in the export so two
//! identical runs emit byte-identical JSON — the property the golden
//! tests pin. Counter values are already deterministic because the
//! simulator itself is.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod export;
mod progress;
mod prometheus;
pub mod recorder;
pub mod registry;
pub mod span;

pub use chrome::chrome_trace_json;
pub use export::{export_json, json, render_summary};
pub use progress::ProgressSampler;
pub use prometheus::{prometheus_text, PROMETHEUS_CONTENT_TYPE};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, Metric, MetricValue, MetricsRegistry,
    HISTOGRAM_BUCKETS,
};
pub use span::{SpanGuard, SpanNode};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

static ENABLED: AtomicBool = AtomicBool::new(false);
static DETERMINISTIC: AtomicBool = AtomicBool::new(false);
static GLOBAL: MetricsRegistry = MetricsRegistry::new();

/// Is observability on? One relaxed load — the hot-path guard.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn observability on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Should exports suppress run-varying values (span wall times)?
#[inline]
pub fn deterministic() -> bool {
    DETERMINISTIC.load(Ordering::Relaxed)
}

/// Toggle deterministic export mode (see [module docs](self)).
pub fn set_deterministic(on: bool) {
    DETERMINISTIC.store(on, Ordering::Relaxed);
}

/// The process-global registry instrumented code publishes into.
pub fn global() -> &'static MetricsRegistry {
    &GLOBAL
}

/// Export the global registry as the deterministic `memsim-obs/1` JSON
/// document — the `/metrics` endpoint hook for long-lived processes (the
/// `memsim-server` daemon serves these bytes verbatim). Equivalent to
/// `export_json(manifest, global())`.
pub fn export_global(manifest: &[(&str, String)]) -> String {
    export_json(manifest, &GLOBAL)
}

/// Clear the global registry and the span tree (not the flags). Call
/// before enabling observability for a fresh run in a long-lived process.
pub fn reset() {
    GLOBAL.clear();
    span::reset();
}

#[doc(hidden)]
pub fn test_lock() -> MutexGuard<'static, ()> {
    // Tests that touch the process-global state (flags, registry, span
    // tree) serialize on this so `cargo test`'s parallel runner cannot
    // interleave them.
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_round_trip() {
        let _lock = test_lock();
        reset();
        global().counter("t.count").add(5);
        assert_eq!(global().counter_value("t.count"), Some(5));
        reset();
        assert!(global().is_empty());
    }

    #[test]
    fn flags_toggle() {
        let _lock = test_lock();
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        set_deterministic(true);
        assert!(deterministic());
        set_deterministic(false);
    }
}
