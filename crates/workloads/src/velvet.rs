//! Velvet stand-in: de Bruijn graph construction from synthetic reads.
//!
//! Velvet assembles genomes by hashing every k-mer of every read into a
//! table and then walking unique-extension chains to emit contigs. The
//! memory behaviour is a sequential scan over the read set interleaved
//! with random-access table probes, followed by a pointer-chase-like
//! extension walk — reproduced here over a synthetic genome with exact
//! (error-free) tiled reads so the result is checkable.

use crate::{Class, Workload};
use memsim_trace::{AddressSpace, ChunkBuffer, SimVec, TraceSink};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Velvet benchmark parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VelvetParams {
    /// Genome length in bases.
    pub genome_len: usize,
    /// Read length in bases.
    pub read_len: usize,
    /// Distance between consecutive read start positions (controls
    /// coverage: ≈ `read_len / step`).
    pub step: usize,
    /// k-mer size (≤ 31 so a k-mer packs into 62 bits).
    pub k: usize,
    /// log2 of the k-mer table slot count.
    pub log2_slots: u32,
    /// Number of contig walks to perform.
    pub walks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl VelvetParams {
    /// Preset for a size class.
    pub fn class(class: Class) -> Self {
        match class {
            // ≈ 13 MiB (table 2^20 × 12 B + reads)
            Class::Mini => Self {
                genome_len: 400_000,
                read_len: 100,
                step: 50,
                k: 31,
                log2_slots: 20,
                walks: 50,
                seed: 0x7e1,
            },
            // ≈ 108 MiB
            Class::Demo => Self {
                genome_len: 3_200_000,
                read_len: 100,
                step: 40,
                k: 31,
                log2_slots: 23,
                walks: 200,
                seed: 0x7e1,
            },
            // ≈ 430 MiB
            Class::Large => Self {
                genome_len: 12_000_000,
                read_len: 100,
                step: 40,
                k: 31,
                log2_slots: 25,
                walks: 400,
                seed: 0x7e1,
            },
        }
    }
}

#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x = (x ^ (x >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// The Velvet benchmark instance.
pub struct Velvet {
    params: VelvetParams,
    space: AddressSpace,
    /// Concatenated reads, 1 byte per base (values 0–3).
    reads: SimVec<u8>,
    /// k-mer table keys: 0 = empty, otherwise `kmer | OCCUPIED`.
    keys: SimVec<u64>,
    /// k-mer occurrence counts, parallel to `keys`.
    counts: SimVec<u32>,
    /// The genome, untraced ground truth.
    genome: Vec<u8>,
    mask_slots: usize,
    kmer_mask: u64,
    distinct: u64,
    total_walk_len: u64,
    ran: bool,
}

/// High bit marks an occupied slot (k-mer 0 is valid).
const OCCUPIED: u64 = 1 << 63;

impl Velvet {
    /// Generate genome + reads and allocate the table (untraced).
    pub fn new(params: VelvetParams) -> Self {
        assert!(params.k <= 31 && params.k >= 8);
        assert!(params.read_len > params.k);
        assert!(
            params.step <= params.read_len - params.k + 1,
            "reads must overlap by at least k-1"
        );
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let genome: Vec<u8> = (0..params.genome_len)
            .map(|_| rng.random_range(0..4u8))
            .collect();

        // tile exact reads across the genome
        let mut read_bytes = Vec::new();
        let mut pos = 0;
        while pos + params.read_len <= params.genome_len {
            read_bytes.extend_from_slice(&genome[pos..pos + params.read_len]);
            pos += params.step;
        }

        let slots = 1usize << params.log2_slots;
        let mut space = AddressSpace::new();
        let reads = SimVec::from_vec(&mut space, "reads", read_bytes);
        let keys = SimVec::<u64>::zeroed(&mut space, "kmer.keys", slots);
        let counts = SimVec::<u32>::zeroed(&mut space, "kmer.counts", slots);

        Self {
            params,
            space,
            reads,
            keys,
            counts,
            genome,
            mask_slots: slots - 1,
            kmer_mask: (1u64 << (2 * params.k)) - 1,
            distinct: 0,
            total_walk_len: 0,
            ran: false,
        }
    }

    /// Traced insert-or-increment of a k-mer; returns true if new.
    fn upsert(&mut self, kmer: u64, sink: &mut dyn TraceSink) -> bool {
        let tagged = kmer | OCCUPIED;
        let mut slot = mix(kmer) as usize & self.mask_slots;
        loop {
            let cur = self.keys.ld(slot, sink);
            if cur == 0 {
                self.keys.st(slot, tagged, sink);
                self.counts.st(slot, 1, sink);
                return true;
            }
            if cur == tagged {
                self.counts.update(slot, |c| c + 1, sink);
                return false;
            }
            slot = (slot + 1) & self.mask_slots;
        }
    }

    /// Traced membership probe.
    fn lookup(&self, kmer: u64, sink: &mut dyn TraceSink) -> bool {
        let tagged = kmer | OCCUPIED;
        let mut slot = mix(kmer) as usize & self.mask_slots;
        loop {
            let cur = self.keys.ld(slot, sink);
            if cur == 0 {
                return false;
            }
            if cur == tagged {
                return true;
            }
            slot = (slot + 1) & self.mask_slots;
        }
    }

    /// Untraced membership probe for verification.
    fn lookup_untraced(&self, kmer: u64) -> bool {
        let tagged = kmer | OCCUPIED;
        let mut slot = mix(kmer) as usize & self.mask_slots;
        let keys = self.keys.as_slice();
        loop {
            let cur = keys[slot];
            if cur == 0 {
                return false;
            }
            if cur == tagged {
                return true;
            }
            slot = (slot + 1) & self.mask_slots;
        }
    }

    /// k-mer of the genome starting at `pos` (untraced helper).
    fn genome_kmer(&self, pos: usize) -> u64 {
        let mut km = 0u64;
        for &b in &self.genome[pos..pos + self.params.k] {
            km = (km << 2) | u64::from(b);
        }
        km
    }

    /// Distinct k-mers inserted.
    pub fn distinct_kmers(&self) -> u64 {
        self.distinct
    }

    /// Total bases covered by the contig walks.
    pub fn total_walk_len(&self) -> u64 {
        self.total_walk_len
    }
}

impl Workload for Velvet {
    fn name(&self) -> &'static str {
        "Velvet"
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let mut sink = ChunkBuffer::new(sink);
        let sink = &mut sink;
        let k = self.params.k;
        let rl = self.params.read_len;
        let n_reads = self.reads.len() / rl;

        // phase 1: k-mer extraction and table build
        for r in 0..n_reads {
            let base = r * rl;
            let mut km = 0u64;
            for i in 0..rl {
                let b = self.reads.ld(base + i, sink);
                km = ((km << 2) | u64::from(b)) & self.kmer_mask;
                if i + 1 >= k {
                    self.upsert(km, sink);
                }
            }
        }
        self.distinct = self.keys.as_slice().iter().filter(|&&s| s != 0).count() as u64;

        // phase 2: contig walks — follow unique extensions through the table
        let mut rng = SmallRng::seed_from_u64(self.params.seed ^ 0xbeef);
        let max_steps = 4 * self.params.genome_len / self.params.walks.max(1) + 64;
        for _ in 0..self.params.walks {
            let start = rng.random_range(0..self.genome.len() - k);
            let mut km = self.genome_kmer(start);
            let mut len = k as u64;
            for _ in 0..max_steps {
                // try the four possible extensions
                let mut next = None;
                let mut branches = 0;
                for b in 0..4u64 {
                    let cand = ((km << 2) | b) & self.kmer_mask;
                    if self.lookup(cand, sink) {
                        branches += 1;
                        next = Some(cand);
                    }
                }
                if branches != 1 {
                    break; // dead end or ambiguous branch: contig ends
                }
                km = next.unwrap();
                len += 1;
            }
            self.total_walk_len += len;
        }
        sink.flush();
        self.ran = true;
    }

    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn verify(&self) -> Result<(), String> {
        if !self.ran {
            return Err("Velvet has not run".into());
        }
        // ground truth: distinct k-mers of the genome actually covered by reads
        let k = self.params.k;
        let mut truth = std::collections::HashSet::new();
        let mut pos = 0;
        while pos + self.params.read_len <= self.params.genome_len {
            for i in pos..pos + self.params.read_len - k + 1 {
                truth.insert(self.genome_kmer(i));
            }
            pos += self.params.step;
        }
        if self.distinct != truth.len() as u64 {
            return Err(format!(
                "table holds {} distinct k-mers, reads contain {}",
                self.distinct,
                truth.len()
            ));
        }
        // sampled membership: covered genome k-mers present, random absent
        let mut rng = SmallRng::seed_from_u64(self.params.seed ^ 0xfeed);
        for _ in 0..2000 {
            let p = rng.random_range(0..self.params.genome_len - self.params.read_len);
            if !self.lookup_untraced(self.genome_kmer(p)) {
                return Err(format!("covered genome k-mer at {p} missing from table"));
            }
        }
        for _ in 0..2000 {
            let km = rng.random::<u64>() & self.kmer_mask;
            if !truth.contains(&km) && self.lookup_untraced(km) {
                return Err("random absent k-mer found in table".into());
            }
        }
        if self.total_walk_len < (self.params.walks as u64) * k as u64 {
            return Err("contig walks shorter than k each".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim_trace::sinks::CountingSink;

    fn tiny() -> VelvetParams {
        VelvetParams {
            genome_len: 20_000,
            read_len: 100,
            step: 50,
            k: 21,
            log2_slots: 16,
            walks: 10,
            seed: 11,
        }
    }

    #[test]
    fn builds_walks_verifies() {
        let mut v = Velvet::new(tiny());
        let mut sink = CountingSink::new();
        v.run(&mut sink);
        v.verify().unwrap();
        assert!(v.distinct_kmers() > 15_000);
        assert!(v.total_walk_len() > 10 * 21);
    }

    #[test]
    fn verify_before_run_errors() {
        assert!(Velvet::new(tiny()).verify().is_err());
    }

    #[test]
    fn contig_walks_extend_beyond_k() {
        // with exact overlapping reads the de Bruijn chain is mostly
        // unambiguous, so walks should extend well past a single k-mer
        let mut v = Velvet::new(tiny());
        let mut sink = CountingSink::new();
        v.run(&mut sink);
        let avg = v.total_walk_len() as f64 / 10.0;
        assert!(avg > 2.0 * 21.0, "average contig walk {avg} too short");
    }

    #[test]
    fn overlapping_reads_cover_all_genome_kmers() {
        let p = tiny();
        let v = {
            let mut v = Velvet::new(p);
            let mut sink = CountingSink::new();
            v.run(&mut sink);
            v
        };
        // step ≤ read_len - k + 1 ⇒ every genome k-mer in the tiled range
        // appears in some read; spot-check the first thousand positions
        for pos in 0..1000 {
            assert!(
                v.lookup_untraced(v.genome_kmer(pos)),
                "k-mer at {pos} missing"
            );
        }
    }
}
