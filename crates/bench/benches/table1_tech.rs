//! Table 1: characteristics of the memory technologies, and the cost of
//! the per-access model primitives they feed.

use criterion::{criterion_group, criterion_main, Criterion};
use memsim_bench::print_figure;
use memsim_core::experiments::table1;
use memsim_tech::{Multipliers, TechParams, Technology};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    print_figure(&table1());

    c.bench_function("table1/params_lookup", |b| {
        b.iter(|| {
            for t in Technology::ALL {
                black_box(TechParams::of(black_box(t)));
            }
        })
    });
    c.bench_function("table1/scaled_params", |b| {
        let base = TechParams::of(Technology::Dram);
        let m = Multipliers {
            read_latency: 5.0,
            write_latency: 2.0,
            read_energy: 3.0,
            write_energy: 9.0,
        };
        b.iter(|| black_box(base.scaled(black_box(m))))
    });
    c.bench_function("table1/energy_per_access", |b| {
        let pcm = TechParams::of(Technology::Pcm);
        b.iter(|| black_box(pcm.read_pj(black_box(4096)) + pcm.write_pj(black_box(512))))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
