//! Start-gap wear leveling and endurance accounting.
//!
//! The paper notes PCM's "low endurance … may be compensated by wear
//! leveling, [which] does incur some overhead" and defers wear modeling to
//! future work. This module implements that extension: the start-gap
//! scheme of Qureshi et al. (MICRO'09) over a flat NVM, tracking per-block
//! write counts so the benefit (write spreading) and the cost (extra gap-
//! movement writes) can both be measured — see `ablation_wear_leveling`.

use memsim_cache::{LevelStats, MainMemory};
use memsim_tech::Technology;

/// Per-physical-block write histogram.
#[derive(Debug, Clone)]
pub struct WriteHistogram {
    counts: Vec<u64>,
}

impl WriteHistogram {
    /// A histogram over `blocks` physical blocks.
    pub fn new(blocks: usize) -> Self {
        Self {
            counts: vec![0; blocks],
        }
    }

    /// Record one write to physical block `b`.
    #[inline]
    pub fn record(&mut self, b: usize) {
        self.counts[b] += 1;
    }

    /// Raw per-block counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Summary statistics.
    pub fn stats(&self) -> EnduranceStats {
        let n = self.counts.len().max(1) as f64;
        let total: u64 = self.counts.iter().sum();
        let max = self.counts.iter().copied().max().unwrap_or(0);
        let mean = total as f64 / n;
        let var = self
            .counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        EnduranceStats {
            total_writes: total,
            max_writes: max,
            mean_writes: mean,
            std_writes: var.sqrt(),
        }
    }
}

/// Summary of write wear across the device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceStats {
    /// Total writes absorbed by the device.
    pub total_writes: u64,
    /// Writes to the most-written block — the device lifetime limiter.
    pub max_writes: u64,
    /// Mean writes per block.
    pub mean_writes: f64,
    /// Standard deviation of writes per block.
    pub std_writes: f64,
}

impl EnduranceStats {
    /// `max / mean`: 1.0 is perfectly level wear; large values mean the
    /// hottest block wears out long before the average block.
    pub fn imbalance(&self) -> f64 {
        if self.mean_writes == 0.0 {
            1.0
        } else {
            self.max_writes as f64 / self.mean_writes
        }
    }
}

/// Start-gap wear leveling over a flat NVM.
///
/// The device keeps `n + 1` physical blocks for `n` logical blocks; a
/// roaming *gap* block absorbs a rotation of the mapping. Every `psi`
/// demand writes, the gap moves one slot (copying its neighbour — one
/// extra device write). After the gap traverses the whole device, `start`
/// advances, so every logical block eventually visits every physical slot.
///
/// Address translation (Qureshi et al., alg. 1):
/// `pa = (la + start) mod n; if pa >= gap { pa += 1 }`.
#[derive(Debug, Clone)]
pub struct StartGapNvm {
    tech: Technology,
    capacity_bytes: u64,
    base_addr: u64,
    block_bytes: u64,
    n: u64,
    start: u64,
    gap: u64,
    psi: u64,
    writes_since_move: u64,
    gap_moves: u64,
    stats: LevelStats,
    histogram: WriteHistogram,
    enabled: bool,
}

impl StartGapNvm {
    /// A wear-leveled NVM of `capacity_bytes` with `block_bytes` blocks,
    /// remapping addresses relative to `base_addr`, moving the gap every
    /// `psi` writes. `psi = 0` disables leveling (the ablation baseline):
    /// the identity mapping is used and no gap writes occur.
    pub fn new(
        tech: Technology,
        capacity_bytes: u64,
        block_bytes: u64,
        base_addr: u64,
        psi: u64,
    ) -> Self {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        let n = (capacity_bytes / block_bytes).max(1);
        Self {
            tech,
            capacity_bytes,
            base_addr,
            block_bytes,
            n,
            start: 0,
            gap: n, // gap begins past the last logical block
            psi,
            writes_since_move: 0,
            gap_moves: 0,
            stats: LevelStats::new(tech.name()),
            // n logical + 1 gap block
            histogram: WriteHistogram::new(n as usize + 1),
            enabled: psi > 0,
        }
    }

    /// The technology backing this memory.
    pub fn tech(&self) -> Technology {
        self.tech
    }

    /// Device capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Request statistics. `stores` includes the extra gap-movement writes.
    pub fn stats(&self) -> &LevelStats {
        &self.stats
    }

    /// The per-physical-block write histogram.
    pub fn histogram(&self) -> &WriteHistogram {
        &self.histogram
    }

    /// Number of gap movements so far (each cost one extra device write).
    pub fn gap_moves(&self) -> u64 {
        self.gap_moves
    }

    /// Translate a logical block number to a physical one.
    #[inline]
    fn translate(&self, logical: u64) -> u64 {
        if !self.enabled {
            return logical;
        }
        let pa = (logical + self.start) % self.n;
        if pa >= self.gap {
            pa + 1
        } else {
            pa
        }
    }

    #[inline]
    fn logical_block(&self, addr: u64) -> u64 {
        (addr.wrapping_sub(self.base_addr) / self.block_bytes) % self.n
    }

    fn maybe_move_gap(&mut self) {
        if !self.enabled {
            return;
        }
        self.writes_since_move += 1;
        if self.writes_since_move < self.psi {
            return;
        }
        self.writes_since_move = 0;
        self.gap_moves += 1;
        // moving the gap copies the block above/below into the gap slot:
        // one extra device write at the *new* gap's old occupant location
        if self.gap == 0 {
            self.start = (self.start + 1) % self.n;
            self.gap = self.n;
        } else {
            // block at gap-1 moves into the gap slot
            self.histogram.record(self.gap as usize);
            self.stats.stores += 1;
            self.stats.bytes_stored += self.block_bytes;
            self.gap -= 1;
        }
    }
}

impl MainMemory for StartGapNvm {
    fn load(&mut self, addr: u64, bytes: u32) {
        self.stats.loads += 1;
        self.stats.bytes_loaded += u64::from(bytes);
        // reads do not wear the device; translation has no side effects
        let _ = self.translate(self.logical_block(addr));
    }

    fn store(&mut self, addr: u64, bytes: u32) {
        self.stats.stores += 1;
        self.stats.bytes_stored += u64::from(bytes);
        let phys = self.translate(self.logical_block(addr));
        self.histogram.record(phys as usize);
        self.maybe_move_gap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn device(psi: u64) -> StartGapNvm {
        // 16 blocks of 64 B
        StartGapNvm::new(Technology::Pcm, 16 * 64, 64, 0, psi)
    }

    #[test]
    fn disabled_is_identity_mapping() {
        let mut d = device(0);
        for i in 0..16u64 {
            d.store(i * 64, 64);
        }
        // each block written exactly once, gap block untouched
        assert_eq!(&d.histogram().counts()[..16], &[1u64; 16][..]);
        assert_eq!(d.histogram().counts()[16], 0);
        assert_eq!(d.gap_moves(), 0);
    }

    #[test]
    fn hot_block_without_leveling_concentrates_wear() {
        let mut d = device(0);
        for _ in 0..1000 {
            d.store(0, 64);
        }
        let s = d.histogram().stats();
        assert_eq!(s.max_writes, 1000);
        assert!(s.imbalance() > 10.0);
    }

    #[test]
    fn leveling_spreads_a_hot_block() {
        let mut d = device(4); // move gap every 4 writes
        for _ in 0..10_000 {
            d.store(0, 64);
        }
        let s = d.histogram().stats();
        let base = device(0);
        let _ = base;
        // the hot logical block visits many physical slots
        let touched = d.histogram().counts().iter().filter(|&&c| c > 0).count();
        assert!(
            touched > 8,
            "wear must spread: only {touched} slots touched"
        );
        assert!(s.imbalance() < 16.0);
        assert!(d.gap_moves() > 0);
    }

    #[test]
    fn leveling_adds_write_overhead() {
        let mut with = device(4);
        let mut without = device(0);
        for i in 0..1000u64 {
            with.store((i % 16) * 64, 64);
            without.store((i % 16) * 64, 64);
        }
        assert!(with.stats().stores > without.stats().stores);
        // overhead is bounded by ~1/psi
        let overhead = with.stats().stores - without.stats().stores;
        assert!(overhead <= 1000 / 4 + 1);
    }

    #[test]
    fn loads_do_not_wear() {
        let mut d = device(4);
        for _ in 0..100 {
            d.load(0, 64);
        }
        assert_eq!(d.histogram().stats().total_writes, 0);
        assert_eq!(d.stats().loads, 100);
    }

    #[test]
    fn histogram_stats_basics() {
        let mut h = WriteHistogram::new(4);
        h.record(0);
        h.record(0);
        h.record(1);
        let s = h.stats();
        assert_eq!(s.total_writes, 3);
        assert_eq!(s.max_writes, 2);
        assert!((s.mean_writes - 0.75).abs() < 1e-12);
        assert!(s.imbalance() > 2.0);
    }

    #[test]
    fn empty_histogram_imbalance_is_one() {
        assert_eq!(WriteHistogram::new(8).stats().imbalance(), 1.0);
    }

    proptest! {
        /// The start-gap mapping is injective at every point of its
        /// evolution: no two logical blocks share a physical slot.
        #[test]
        fn translation_stays_injective(writes in 1usize..2000, psi in 1u64..8) {
            let mut d = StartGapNvm::new(Technology::Pcm, 32 * 64, 64, 0, psi);
            for w in 0..writes {
                d.store((w as u64 % 32) * 64, 64);
                // verify injectivity of the current mapping
                let mut seen = std::collections::HashSet::new();
                for l in 0..32u64 {
                    let p = d.translate(l);
                    prop_assert!(p <= 32, "physical slot out of range");
                    prop_assert!(seen.insert(p), "collision at logical {l}");
                }
            }
        }

        /// With leveling on, long runs of single-block writes never leave
        /// wear imbalance unbounded (it is capped by ~psi × n / total).
        #[test]
        fn hot_write_imbalance_bounded(psi in 1u64..6) {
            let n = 16u64;
            let mut d = StartGapNvm::new(Technology::Pcm, n * 64, 64, 0, psi);
            for _ in 0..50_000 {
                d.store(0, 64);
            }
            let s = d.histogram().stats();
            // gap cycles the hot block through all slots every n*psi writes
            prop_assert!(s.imbalance() < (psi as f64 + 1.0) * n as f64 / 4.0 + 2.0,
                "imbalance {} too high for psi {psi}", s.imbalance());
        }
    }
}
