//! CACTI-lite: an analytical SRAM parameter model.
//!
//! The paper takes its SRAM cache parameters from CACTI 6.0 at fixed
//! design points. For sensitivity studies that *vary* a cache's capacity
//! (e.g. the `ablation_l3_size` bench), fixed points are not enough —
//! latency, access energy, and leakage must co-vary with capacity the way
//! a real array's do. This module provides a deliberately simple
//! logarithmic fit anchored on the three fixed levels of
//! [`crate::sram_cache_params`]:
//!
//! * access latency grows ~0.77 ns per capacity doubling past 32 KiB
//!   (wordline/bitline and H-tree lengthening),
//! * access energy grows ~0.08 pJ/bit per doubling (longer wires dominate
//!   past the sense amps),
//! * leakage density *falls* slightly with size (periphery amortization)
//!   toward a 20 mW/MiB floor.
//!
//! These are engineering fits, not device physics; their contract — tested
//! below — is monotonicity plus agreement with the fixed anchor points.

use crate::db::{TechParams, Technology};

/// Smallest capacity the model accepts (one L1-class array).
pub const MIN_SRAM_BYTES: u64 = 4 << 10;

/// Analytical SRAM parameters for an array of `capacity_bytes`
/// (clamped below at [`MIN_SRAM_BYTES`]).
pub fn sram_model(capacity_bytes: u64) -> TechParams {
    let c = capacity_bytes.max(MIN_SRAM_BYTES) as f64;
    let doublings = (c / (32.0 * 1024.0)).log2();
    TechParams {
        tech: Technology::Sram,
        read_ns: (1.2 + 0.77 * doublings).max(0.4),
        write_ns: (1.2 + 0.77 * doublings).max(0.4),
        read_pj_per_bit: (0.5 + 0.08 * doublings).max(0.2),
        write_pj_per_bit: (0.5 + 0.08 * doublings).max(0.2),
        static_mw_per_mib: (40.0 - 1.8 * doublings).clamp(20.0, 60.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::sram_cache_params;

    #[test]
    fn anchored_on_the_fixed_levels() {
        // L1 32 KiB: exact anchor
        let l1 = sram_model(32 << 10);
        let l1_fixed = sram_cache_params(1);
        assert!((l1.read_ns - l1_fixed.read_ns).abs() < 1e-9);
        assert!((l1.read_pj_per_bit - l1_fixed.read_pj_per_bit).abs() < 1e-9);
        assert!((l1.static_mw_per_mib - l1_fixed.static_mw_per_mib).abs() < 1e-9);

        // L2 256 KiB and L3 20 MiB: within 20 % of the CACTI-class points
        let l2 = sram_model(256 << 10);
        let l2_fixed = sram_cache_params(2);
        assert!(
            (l2.read_ns / l2_fixed.read_ns - 1.0).abs() < 0.2,
            "{}",
            l2.read_ns
        );
        let l3 = sram_model(20 << 20);
        let l3_fixed = sram_cache_params(3);
        assert!(
            (l3.read_ns / l3_fixed.read_ns - 1.0).abs() < 0.2,
            "{}",
            l3.read_ns
        );
        assert!((l3.read_pj_per_bit / l3_fixed.read_pj_per_bit - 1.0).abs() < 0.25);
    }

    #[test]
    fn monotonic_in_capacity() {
        let caps: Vec<u64> = (12..=26).map(|i| 1u64 << i).collect();
        for w in caps.windows(2) {
            let small = sram_model(w[0]);
            let big = sram_model(w[1]);
            assert!(
                big.read_ns >= small.read_ns,
                "latency must grow with capacity"
            );
            assert!(
                big.read_pj_per_bit >= small.read_pj_per_bit,
                "energy must grow"
            );
            assert!(
                big.static_mw_per_mib <= small.static_mw_per_mib,
                "leakage density must not grow"
            );
        }
    }

    #[test]
    fn total_leakage_still_grows_with_capacity() {
        // density falls, but watts = density × capacity must rise
        let small = sram_model(1 << 20).static_watts(1 << 20);
        let big = sram_model(16 << 20).static_watts(16 << 20);
        assert!(big > 4.0 * small);
    }

    #[test]
    fn tiny_capacities_clamp() {
        let t = sram_model(1);
        let floor = sram_model(MIN_SRAM_BYTES);
        assert_eq!(t, floor);
        assert!(t.read_ns >= 0.4);
        assert!(t.static_mw_per_mib <= 60.0);
    }

    #[test]
    fn stays_below_dram_latency_at_llc_sizes() {
        // an SRAM LLC should not be modeled slower than DRAM below ~128 MiB
        let dram = TechParams::of(Technology::Dram);
        assert!(sram_model(64 << 20).read_ns < dram.read_ns);
    }
}
