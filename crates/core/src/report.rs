//! Figure/table containers and plain-text rendering (markdown and CSV).

use crate::heatmap::HeatmapData;

/// One plotted series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// One value per x label (NaN = missing).
    pub values: Vec<f64>,
}

/// A table or bar-figure: x labels (configurations or benchmarks) against
/// one or more value series.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// Identifier ("fig1", "table4", …).
    pub id: String,
    /// Human title (the paper's caption).
    pub title: String,
    /// Column labels.
    pub x_labels: Vec<String>,
    /// The series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Assert internal shape consistency.
    pub fn validate(&self) {
        for s in &self.series {
            assert_eq!(
                s.values.len(),
                self.x_labels.len(),
                "series '{}' length mismatch in {}",
                s.name,
                self.id
            );
        }
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        self.validate();
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str("| series |");
        for x in &self.x_labels {
            out.push_str(&format!(" {x} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        out.push_str(&"---|".repeat(self.x_labels.len()));
        out.push('\n');
        for s in &self.series {
            out.push_str(&format!("| {} |", s.name));
            for v in &s.values {
                out.push_str(&format!(" {v:.4} |"));
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV (`series,label1,label2,…`).
    pub fn to_csv(&self) -> String {
        self.validate();
        let mut out = String::from("series");
        for x in &self.x_labels {
            out.push(',');
            out.push_str(x);
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&s.name);
            for v in &s.values {
                out.push_str(&format!(",{v:.6}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Render a heat map as a markdown grid (rows = write ×, cols = read ×).
pub fn heatmap_to_markdown(h: &HeatmapData) -> String {
    let mut out = format!("### {}\n\n| write× \\ read× |", h.title);
    for r in &h.read_mults {
        out.push_str(&format!(" {r:.0}× |"));
    }
    out.push('\n');
    out.push_str("|---|");
    out.push_str(&"---|".repeat(h.read_mults.len()));
    out.push('\n');
    for (wi, w) in h.write_mults.iter().enumerate() {
        out.push_str(&format!("| {w:.0}× |"));
        for ri in 0..h.read_mults.len() {
            out.push_str(&format!(" {:.3} |", h.grid[wi][ri]));
        }
        out.push('\n');
    }
    out
}

/// Render a heat map as CSV with the read multipliers as the header row.
pub fn heatmap_to_csv(h: &HeatmapData) -> String {
    let mut out = String::from("write_x\\read_x");
    for r in &h.read_mults {
        out.push_str(&format!(",{r}"));
    }
    out.push('\n');
    for (wi, w) in h.write_mults.iter().enumerate() {
        out.push_str(&format!("{w}"));
        for ri in 0..h.read_mults.len() {
            out.push_str(&format!(",{:.6}", h.grid[wi][ri]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureData {
        FigureData {
            id: "figX".into(),
            title: "sample".into(),
            x_labels: vec!["N1".into(), "N2".into()],
            series: vec![
                Series {
                    name: "PCM".into(),
                    values: vec![1.05, 1.02],
                },
                Series {
                    name: "STTRAM".into(),
                    values: vec![1.10, 1.04],
                },
            ],
        }
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.contains("### figX — sample"));
        assert!(md.contains("| PCM | 1.0500 | 1.0200 |"));
        assert!(md.lines().filter(|l| l.starts_with('|')).count() == 4);
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("series,N1,N2"));
        assert_eq!(lines.next(), Some("PCM,1.050000,1.020000"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn validate_catches_ragged_series() {
        let mut f = sample();
        f.series[0].values.pop();
        f.validate();
    }

    #[test]
    fn heatmap_rendering() {
        let h = HeatmapData {
            title: "t".into(),
            read_mults: vec![1.0, 5.0],
            write_mults: vec![1.0, 20.0],
            grid: vec![vec![1.0, 1.05], vec![1.01, 1.17]],
        };
        let md = heatmap_to_markdown(&h);
        assert!(md.contains("| 20× | 1.010 | 1.170 |"));
        let csv = heatmap_to_csv(&h);
        assert!(csv.starts_with("write_x\\read_x,1,5\n"));
        assert!(csv.contains("20,1.010000,1.170000"));
    }
}
