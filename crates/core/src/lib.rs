//! Hybrid memory hierarchy design space, performance/energy models, and
//! experiment harness — the paper's primary contribution.
//!
//! The crate ties the substrates together:
//!
//! * [`Scale`] — capacity presets mapping the paper's Sandy Bridge + GB-class
//!   configurations onto tractable simulations with the same capacity ratios.
//! * [`configs`] — Table 2 (EH1–EH8 eDRAM/HMC configs) and Table 3 (N1–N9
//!   DRAM-cache configs), verbatim.
//! * [`Design`] — the four evaluated organizations (plus the baseline):
//!   4LC, NMM, 4LCNVM, and NDM.
//! * [`model`] — Equations 1–4: AMAT-scaled runtime, dynamic energy
//!   (pJ/bit × bits moved), capacity-proportional static energy, EDP.
//! * [`runner`] — simulates a workload through a hierarchy *structure* once
//!   and costs any number of technology assignments analytically (cache
//!   statistics do not depend on latency/energy parameters).
//! * [`sampling`] — interval-sampled simulation: cluster the stream's
//!   intervals by locality signature, simulate one representative per
//!   cluster, extrapolate with per-metric confidence intervals.
//! * [`partition`] — the NDM oracle: merge the address space into a few hot
//!   ranges and pick the best DRAM/NVM placement analytically.
//! * [`dynamic`] — phase-aware partitioning (the paper's future work): an
//!   exact DP chooses a placement per epoch with explicit migration costs.
//! * [`heatmap`] — the Figure 9/10 generalization study.
//! * [`experiments`] — one entry point per table/figure of the paper.
//!
//! # Example: one design point
//!
//! ```
//! use memsim_core::{Design, Scale, runner};
//! use memsim_core::configs::n_configs;
//! use memsim_tech::Technology;
//! use memsim_workloads::WorkloadKind;
//!
//! let scale = Scale::mini();
//! let design = Design::Nmm { nvm: Technology::Pcm, config: n_configs()[4] }; // N5
//! let result = runner::evaluate(WorkloadKind::Cg, &scale, &design);
//! let base = runner::evaluate(WorkloadKind::Cg, &scale, &Design::Baseline);
//! let norm = result.metrics.normalized_to(&base.metrics);
//! assert!(norm.time > 0.5 && norm.time < 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod configs;
mod design;
pub mod dynamic;
pub mod experiments;
pub mod heatmap;
pub mod journal;
pub mod jsontext;
pub mod model;
pub mod partition;
pub mod replay;
pub mod report;
pub mod runner;
pub mod sampling;
mod scale;

pub use artifacts::{build_artifact, named_designs, parse_design_list, ARTIFACT_NAMES};
pub use design::{Design, Structure};
pub use journal::{
    sweep_fingerprint, sweep_fingerprint_sampled, JournalRecovery, SweepCtx, SweepJournal,
    JOURNAL_FILE,
};
pub use model::{breakdown, LevelBreakdown, LevelCost, Metrics, NormMetrics};
pub use replay::{
    record_workload, replay_grid, replay_grid_engine, replay_grid_robust,
    replay_grid_robust_engine, replay_grid_robust_sampled, replay_structure,
    replay_structure_engine, RecordSummary, ReplayFailure, ReplayOutcome,
};
pub use runner::{
    evaluate, simulate_structure, simulate_structure_engine, simulate_structure_sampled,
    sweep_point, sweep_point_engine, sweep_point_sampled, Engine, EvalResult, FailedPoint,
    GridOutcome, RawRun, SimCache, SweepError,
};
pub use sampling::{SampleCi, SampleMode, SamplePlan, SampleSpec, Warmup};
pub use scale::Scale;
