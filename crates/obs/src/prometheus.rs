//! Prometheus text exposition (version 0.0.4) of a [`MetricsRegistry`].
//!
//! The same registry the `memsim-obs/1` JSON export serializes, rendered
//! in the format a Prometheus scraper expects: counters and gauges as
//! single samples, power-of-two histograms as summaries carrying the
//! derived p50/p90/p99 quantile estimates plus `_sum`/`_count`. Dotted
//! metric names are sanitized to the `[a-zA-Z_:][a-zA-Z0-9_:]*` charset
//! (`sim.Hash.3L.L1.loads` → `sim_Hash_3L_L1_loads`); a leading digit
//! after sanitization gets an underscore prefix. Output is name-sorted
//! and value-deterministic — fixed registry, fixed bytes.

use crate::registry::{MetricValue, MetricsRegistry};
use std::fmt::Write as _;

/// The content type a scraper negotiates for (the `/metrics` endpoint
/// answers with this when the request's Accept header asks for text).
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Sanitize a dotted metric name into the Prometheus name charset.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Render every metric in `registry` as Prometheus text exposition.
pub fn prometheus_text(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in registry.snapshot() {
        let n = sanitize(&name);
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
            }
            MetricValue::Histogram(h) => {
                let (p50, p90, p99) = h.percentiles();
                let _ = writeln!(out, "# TYPE {n} summary");
                let _ = writeln!(out, "{n}{{quantile=\"0.5\"}} {p50}");
                let _ = writeln!(out, "{n}{{quantile=\"0.9\"}} {p90}");
                let _ = writeln!(out, "{n}{{quantile=\"0.99\"}} {p99}");
                let _ = writeln!(out, "{n}_sum {}", h.sum);
                let _ = writeln!(out, "{n}_count {}", h.count());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_gauges_and_summaries() {
        let reg = MetricsRegistry::new();
        reg.counter("sim.Hash.3L.L1.loads").add(7);
        reg.gauge("replay.shard0.queue_depth").set(3);
        let h = reg.histogram("lat.us");
        for _ in 0..100 {
            h.record(4);
        }
        let text = prometheus_text(&reg);
        assert!(text.contains("# TYPE sim_Hash_3L_L1_loads counter\nsim_Hash_3L_L1_loads 7\n"));
        assert!(
            text.contains("# TYPE replay_shard0_queue_depth gauge\nreplay_shard0_queue_depth 3\n")
        );
        assert!(text.contains("# TYPE lat_us summary\n"));
        assert!(text.contains("lat_us{quantile=\"0.5\"} 6\n"));
        assert!(text.contains("lat_us{quantile=\"0.9\"} 7\n"));
        assert!(text.contains("lat_us{quantile=\"0.99\"} 7\n"));
        assert!(text.contains("lat_us_sum 400\n"));
        assert!(text.contains("lat_us_count 100\n"));
        // Fixed registry, fixed bytes.
        assert_eq!(text, prometheus_text(&reg));
    }

    #[test]
    fn sanitizes_hostile_names() {
        assert_eq!(sanitize("a.b-c/d"), "a_b_c_d");
        assert_eq!(sanitize("3level"), "_3level");
        assert_eq!(sanitize("ok_name:sub"), "ok_name:sub");
    }
}
