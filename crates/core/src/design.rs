//! The four evaluated hierarchy organizations (plus the baseline).

use crate::configs::{EhConfig, NConfig};
use crate::model::LevelCost;
use crate::runner::RawRun;
use crate::scale::Scale;
use memsim_tech::{sram_cache_params, TechParams, Technology};

/// Name used for the terminal memory level in stats and costs.
pub(crate) const MEM_NAME: &str = "MEM";

/// A memory hierarchy design of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Design {
    /// The reference system: L1/L2/L3 SRAM caches over a DRAM large enough
    /// for the whole footprint.
    Baseline,
    /// 4LC: an eDRAM or HMC fourth-level cache in front of DRAM.
    FourLc {
        /// Cache technology (must be `Edram` or `Hmc`).
        llc: Technology,
        /// Table 2 geometry.
        config: EhConfig,
    },
    /// NMM: NVM main memory behind a DRAM page cache.
    Nmm {
        /// Main-memory technology (must be one of the NVM technologies).
        nvm: Technology,
        /// Table 3 geometry of the DRAM cache.
        config: NConfig,
    },
    /// 4LCNVM: an eDRAM/HMC cache directly in front of NVM (no DRAM at all).
    FourLcNvm {
        /// Cache technology (must be `Edram` or `Hmc`).
        llc: Technology,
        /// Main-memory technology (must be NVM).
        nvm: Technology,
        /// Table 2 geometry.
        config: EhConfig,
    },
    /// NDM: DRAM and NVM side by side as a partitioned main memory; the
    /// oracle partitioner picks the address-range placement.
    Ndm {
        /// Technology of the NVM partition.
        nvm: Technology,
    },
}

/// The *cache structure* a design needs simulated. Technology assignment
/// does not change cache statistics, so designs sharing a structure share
/// one simulation (e.g. 4LC and 4LCNVM at the same Table 2 row, or NMM
/// with PCM/STT-RAM/FeRAM at the same Table 3 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Structure {
    /// L1/L2/L3 over the terminal memory (baseline and NDM).
    ThreeLevel,
    /// L1/L2/L3 plus a fourth cache level of the given (already scaled)
    /// geometry over the terminal memory (4LC, NMM, 4LCNVM).
    WithL4 {
        /// Scaled capacity of the added level, in bytes.
        capacity_bytes: u64,
        /// Page (block) size of the added level, in bytes.
        page_bytes: u32,
    },
}

impl Structure {
    /// A short, dot-free label for metric names (`3L`, `4L-c524288-p1024`):
    /// observability prefixes split on `.`, so the label must not contain
    /// one, and distinct structures must map to distinct labels.
    pub fn obs_label(&self) -> String {
        match self {
            Structure::ThreeLevel => "3L".to_string(),
            Structure::WithL4 {
                capacity_bytes,
                page_bytes,
            } => format!("4L-c{capacity_bytes}-p{page_bytes}"),
        }
    }
}

impl Design {
    /// Short display name ("NMM(PCM)@N5" style).
    pub fn label(&self) -> String {
        match self {
            Design::Baseline => "Baseline".into(),
            Design::FourLc { llc, config } => format!("4LC({})@{}", llc.name(), config.name),
            Design::Nmm { nvm, config } => format!("NMM({})@{}", nvm.name(), config.name),
            Design::FourLcNvm { llc, nvm, config } => {
                format!("4LCNVM({}+{})@{}", llc.name(), nvm.name(), config.name)
            }
            Design::Ndm { nvm } => format!("NDM({})", nvm.name()),
        }
    }

    /// Validate the technology choices for this design.
    pub fn validate(&self) -> Result<(), String> {
        let check_llc = |t: Technology| {
            if matches!(t, Technology::Edram | Technology::Hmc) {
                Ok(())
            } else {
                Err(format!("{} is not a fast-LLC technology", t.name()))
            }
        };
        let check_nvm = |t: Technology| {
            if t.is_nvm() {
                Ok(())
            } else {
                Err(format!("{} is not an NVM technology", t.name()))
            }
        };
        match self {
            Design::Baseline => Ok(()),
            Design::FourLc { llc, .. } => check_llc(*llc),
            Design::Nmm { nvm, .. } => check_nvm(*nvm),
            Design::FourLcNvm { llc, nvm, .. } => check_llc(*llc).and(check_nvm(*nvm)),
            Design::Ndm { nvm } => check_nvm(*nvm),
        }
    }

    /// The cache structure this design needs simulated, at `scale`.
    pub fn structure(&self, scale: &Scale) -> Structure {
        match self {
            Design::Baseline | Design::Ndm { .. } => Structure::ThreeLevel,
            Design::FourLc { config, .. } | Design::FourLcNvm { config, .. } => Structure::WithL4 {
                capacity_bytes: scale.scaled_capacity(config.capacity_bytes),
                page_bytes: config.page_bytes,
            },
            Design::Nmm { config, .. } => Structure::WithL4 {
                capacity_bytes: scale.scaled_capacity(config.capacity_bytes),
                page_bytes: config.page_bytes,
            },
        }
    }

    /// Per-level cost parameters aligned with the simulated stats of `run`:
    /// `[L1, L2, L3, (L4,) MEM]`. NDM costing is handled by
    /// [`crate::partition`] instead (its memory level splits in two).
    pub fn costing(&self, scale: &Scale, run: &RawRun) -> Vec<LevelCost> {
        let mut costs = sram_costs(scale);
        match self {
            Design::Baseline => {
                costs.push(LevelCost::from_tech(
                    MEM_NAME,
                    &TechParams::of(Technology::Dram),
                    represented_footprint(scale, run.footprint_bytes),
                ));
            }
            Design::FourLc { llc, config } => {
                // static on the paper-scale (Table 2) capacity it represents
                costs.push(LevelCost::from_tech(
                    "L4",
                    &TechParams::of(*llc),
                    config.capacity_bytes,
                ));
                costs.push(LevelCost::from_tech(
                    MEM_NAME,
                    &TechParams::of(Technology::Dram),
                    represented_footprint(scale, run.footprint_bytes),
                ));
            }
            Design::Nmm { nvm, config } => {
                costs.push(LevelCost::from_tech(
                    "L4",
                    &TechParams::of(Technology::Dram),
                    config.capacity_bytes,
                ));
                costs.push(LevelCost::from_tech(
                    MEM_NAME,
                    &TechParams::of(*nvm),
                    represented_footprint(scale, run.footprint_bytes),
                ));
            }
            Design::FourLcNvm { llc, nvm, config } => {
                costs.push(LevelCost::from_tech(
                    "L4",
                    &TechParams::of(*llc),
                    config.capacity_bytes,
                ));
                costs.push(LevelCost::from_tech(
                    MEM_NAME,
                    &TechParams::of(*nvm),
                    represented_footprint(scale, run.footprint_bytes),
                ));
            }
            Design::Ndm { .. } => {
                panic!("NDM costing is computed by the partition module")
            }
        }
        costs
    }
}

/// Cost parameters for the fixed SRAM levels of `scale`.
///
/// Static power is charged on *represented* capacities (see
/// [`represented_bytes`]): L1/L2 keep paper geometry, so they represent
/// themselves; L3 is geometry-scaled and represents the paper's 20 MB.
pub(crate) fn sram_costs(scale: &Scale) -> Vec<LevelCost> {
    vec![
        LevelCost::from_tech("L1", &sram_cache_params(1), scale.l1_bytes),
        LevelCost::from_tech("L2", &sram_cache_params(2), scale.l2_bytes),
        LevelCost::from_tech(
            "L3",
            &sram_cache_params(3),
            represented_bytes(scale, scale.l3_bytes),
        ),
    ]
}

/// The paper-scale capacity a geometry-scaled level stands for.
///
/// A scaled simulation models a paper-scale machine: hit rates come from
/// the scaled geometry (which preserves the capacity *ratios*), but static
/// power must be charged on the capacity the level represents, otherwise
/// static energy (∝ capacity × time) shrinks quadratically with the scale
/// divisor while dynamic energy (∝ references) shrinks linearly, and the
/// paper's static/dynamic balance — the entire NMM/NDM energy story — is
/// lost.
pub fn represented_bytes(scale: &Scale, scaled_bytes: u64) -> u64 {
    scaled_bytes * scale.capacity_divisor
}

/// The paper-scale footprint a scaled workload stands for (footprints
/// scale by `footprint_multiplier`, which at mini scale is more aggressive
/// than the cache-capacity divisor).
pub fn represented_footprint(scale: &Scale, footprint_bytes: u64) -> u64 {
    footprint_bytes * scale.footprint_multiplier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{eh_configs, n_configs};

    #[test]
    fn labels() {
        let d = Design::Nmm {
            nvm: Technology::Pcm,
            config: n_configs()[0],
        };
        assert_eq!(d.label(), "NMM(PCM)@N1");
        assert_eq!(Design::Baseline.label(), "Baseline");
        let d = Design::FourLcNvm {
            llc: Technology::Edram,
            nvm: Technology::SttRam,
            config: eh_configs()[0],
        };
        assert_eq!(d.label(), "4LCNVM(eDRAM+STTRAM)@EH1");
    }

    #[test]
    fn validation() {
        assert!(Design::Baseline.validate().is_ok());
        assert!(Design::FourLc {
            llc: Technology::Edram,
            config: eh_configs()[0]
        }
        .validate()
        .is_ok());
        assert!(Design::FourLc {
            llc: Technology::Pcm,
            config: eh_configs()[0]
        }
        .validate()
        .is_err());
        assert!(Design::Nmm {
            nvm: Technology::Dram,
            config: n_configs()[0]
        }
        .validate()
        .is_err());
        assert!(Design::Ndm {
            nvm: Technology::FeRam
        }
        .validate()
        .is_ok());
        assert!(Design::Ndm {
            nvm: Technology::Hmc
        }
        .validate()
        .is_err());
    }

    #[test]
    fn structures_shared_between_designs() {
        let scale = Scale::demo();
        let eh = eh_configs()[2];
        let a = Design::FourLc {
            llc: Technology::Edram,
            config: eh,
        }
        .structure(&scale);
        let b = Design::FourLcNvm {
            llc: Technology::Hmc,
            nvm: Technology::Pcm,
            config: eh,
        }
        .structure(&scale);
        assert_eq!(a, b, "4LC and 4LCNVM share the simulated structure");
        let n = n_configs()[2];
        let c = Design::Nmm {
            nvm: Technology::Pcm,
            config: n,
        }
        .structure(&scale);
        let d = Design::Nmm {
            nvm: Technology::FeRam,
            config: n,
        }
        .structure(&scale);
        assert_eq!(c, d, "NVM choice does not change the structure");
        assert_eq!(Design::Baseline.structure(&scale), Structure::ThreeLevel);
        assert_eq!(
            Design::Ndm {
                nvm: Technology::Pcm
            }
            .structure(&scale),
            Structure::ThreeLevel
        );
    }

    #[test]
    fn structure_scales_capacity() {
        let scale = Scale::demo(); // divisor 32
        let s = Design::FourLc {
            llc: Technology::Edram,
            config: eh_configs()[0],
        }
        .structure(&scale);
        match s {
            Structure::WithL4 {
                capacity_bytes,
                page_bytes,
            } => {
                assert_eq!(capacity_bytes, (16 << 20) / 32);
                assert_eq!(page_bytes, 64);
            }
            _ => panic!("expected WithL4"),
        }
    }
}
