//! Synthetic address-stream generators.
//!
//! Not part of the paper's benchmark suite — these are calibration
//! instruments: streams with *known* locality structure for validating
//! the simulator (a sequential sweep must miss exactly once per block, a
//! uniform-random stream must miss at the capacity ratio, …) and for the
//! throughput benches. They run through the same [`Workload`] interface
//! as the real benchmarks, with a checksum as the verifiable result.

use crate::{Class, Workload};
use memsim_trace::{AddressSpace, ChunkBuffer, SimVec, TraceSink};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The access pattern of a [`Synthetic`] workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Unit-stride sweeps over the buffer (perfect spatial locality).
    Sequential,
    /// Fixed-stride sweeps (`stride` in elements).
    Strided(usize),
    /// Uniformly random element accesses (no locality).
    UniformRandom,
    /// Zipf-distributed element accesses with the given exponent
    /// (`~0.8–1.2` are typical for skewed data structures).
    Zipf(f64),
    /// A random-permutation pointer chase (defeats any prefetch-like
    /// benefit from large pages; one dependent access chain).
    PointerChase,
}

impl Pattern {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::Sequential => "sequential",
            Pattern::Strided(_) => "strided",
            Pattern::UniformRandom => "uniform",
            Pattern::Zipf(_) => "zipf",
            Pattern::PointerChase => "pointer-chase",
        }
    }
}

/// Parameters of a synthetic stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticParams {
    /// The pattern to generate.
    pub pattern: Pattern,
    /// Buffer length in 8-byte elements.
    pub elements: usize,
    /// Total accesses to issue.
    pub accesses: usize,
    /// Fraction of accesses that are stores (0.0–1.0).
    pub store_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticParams {
    /// A preset sized like the benchmark classes.
    pub fn class(pattern: Pattern, class: Class) -> Self {
        let (elements, accesses) = match class {
            Class::Mini => (1 << 20, 2 << 20),
            Class::Demo => (8 << 20, 16 << 20),
            Class::Large => (32 << 20, 64 << 20),
        };
        Self {
            pattern,
            elements,
            accesses,
            store_fraction: 0.25,
            seed: 0x5e9,
        }
    }
}

/// A synthetic workload over one instrumented buffer.
pub struct Synthetic {
    params: SyntheticParams,
    space: AddressSpace,
    data: SimVec<u64>,
    /// Pointer-chase successor table (a single random cycle), built lazily
    /// for [`Pattern::PointerChase`].
    chain: Vec<u32>,
    checksum: u64,
    expected_checksum: Option<u64>,
}

impl Synthetic {
    /// Allocate the buffer (untraced).
    pub fn new(params: SyntheticParams) -> Self {
        assert!(params.elements > 1);
        assert!((0.0..=1.0).contains(&params.store_fraction));
        let mut space = AddressSpace::new();
        let data = SimVec::from_fn(&mut space, "buffer", params.elements, |i| i as u64);
        let chain = if matches!(params.pattern, Pattern::PointerChase) {
            // Sattolo's algorithm: a single cycle through all elements
            let mut rng = SmallRng::seed_from_u64(params.seed ^ 0xc4a1);
            let n = params.elements;
            let mut perm: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                let j = rng.random_range(0..i);
                perm.swap(i, j);
            }
            // successor table: next[perm[i]] = perm[(i+1) % n]
            let mut next = vec![0u32; n];
            for i in 0..n {
                next[perm[i] as usize] = perm[(i + 1) % n];
            }
            next
        } else {
            Vec::new()
        };
        Self {
            params,
            space,
            data,
            chain,
            checksum: 0,
            expected_checksum: None,
        }
    }

    /// Zipf sampler over `[0, n)` via rejection-free inverse-power
    /// approximation (adequate for locality shaping; not a perfect Zipf).
    #[inline]
    fn zipf_index(rng: &mut SmallRng, n: usize, alpha: f64) -> usize {
        // inverse-CDF of a continuous power law, clamped to [0, n)
        let u: f64 = rng.random();
        let x = (n as f64).powf(1.0 - alpha);
        let v = ((x - 1.0) * u + 1.0).powf(1.0 / (1.0 - alpha));
        (v as usize).min(n - 1)
    }

    /// The access pattern in effect.
    pub fn pattern(&self) -> Pattern {
        self.params.pattern
    }
}

impl Workload for Synthetic {
    fn name(&self) -> &'static str {
        self.params.pattern.name()
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let mut sink = ChunkBuffer::new(sink);
        let sink = &mut sink;
        let n = self.params.elements;
        let mut rng = SmallRng::seed_from_u64(self.params.seed);
        let mut shadow = 0u64; // untraced recomputation for verification
        let mut pos = 0usize;

        for a in 0..self.params.accesses {
            let idx = match self.params.pattern {
                Pattern::Sequential => a % n,
                Pattern::Strided(s) => (a * s) % n,
                Pattern::UniformRandom => rng.random_range(0..n),
                Pattern::Zipf(alpha) => Self::zipf_index(&mut rng, n, alpha),
                Pattern::PointerChase => {
                    let cur = pos;
                    pos = self.chain[pos] as usize;
                    cur
                }
            };
            if rng.random_bool(self.params.store_fraction) {
                let v = (a as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                self.data.st(idx, v, sink);
            } else {
                let v = self.data.ld(idx, sink);
                self.checksum = self.checksum.wrapping_add(v).rotate_left(1);
            }
        }
        // recompute the checksum untraced for verify()
        let mut rng = SmallRng::seed_from_u64(self.params.seed);
        let mut pos = 0usize;
        let mut data: Vec<u64> = (0..n as u64).collect();
        for a in 0..self.params.accesses {
            let idx = match self.params.pattern {
                Pattern::Sequential => a % n,
                Pattern::Strided(s) => (a * s) % n,
                Pattern::UniformRandom => rng.random_range(0..n),
                Pattern::Zipf(alpha) => Self::zipf_index(&mut rng, n, alpha),
                Pattern::PointerChase => {
                    let cur = pos;
                    pos = self.chain[pos] as usize;
                    cur
                }
            };
            if rng.random_bool(self.params.store_fraction) {
                data[idx] = (a as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            } else {
                shadow = shadow.wrapping_add(data[idx]).rotate_left(1);
            }
        }
        self.expected_checksum = Some(shadow);
        sink.flush();
    }

    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn verify(&self) -> Result<(), String> {
        match self.expected_checksum {
            None => Err("synthetic workload has not run".into()),
            Some(e) if e == self.checksum => Ok(()),
            Some(e) => Err(format!(
                "checksum mismatch: traced {} vs shadow {e}",
                self.checksum
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim_trace::sinks::CountingSink;
    use memsim_trace::ReuseDistance;

    fn params(pattern: Pattern) -> SyntheticParams {
        SyntheticParams {
            pattern,
            elements: 4096,
            accesses: 20_000,
            store_fraction: 0.3,
            seed: 9,
        }
    }

    #[test]
    fn all_patterns_run_and_verify() {
        for pattern in [
            Pattern::Sequential,
            Pattern::Strided(17),
            Pattern::UniformRandom,
            Pattern::Zipf(0.9),
            Pattern::PointerChase,
        ] {
            let mut w = Synthetic::new(params(pattern));
            let mut sink = CountingSink::new();
            w.run(&mut sink);
            assert_eq!(sink.total(), 20_000, "{}", pattern.name());
            w.verify()
                .unwrap_or_else(|e| panic!("{}: {e}", pattern.name()));
        }
    }

    #[test]
    fn verify_before_run_errors() {
        assert!(Synthetic::new(params(Pattern::Sequential))
            .verify()
            .is_err());
    }

    #[test]
    fn sequential_has_near_perfect_line_reuse() {
        let mut w = Synthetic::new(SyntheticParams {
            pattern: Pattern::Sequential,
            elements: 8192,
            accesses: 8192,
            store_fraction: 0.0,
            seed: 1,
        });
        let mut rd = ReuseDistance::new(64);
        w.run(&mut rd);
        // one pass touches each 64 B line 8 times: 1 cold + 7 near hits
        assert_eq!(rd.cold_misses(), 1024);
        assert_eq!(rd.predicted_lru_hits(2), 8192 - 1024);
    }

    #[test]
    fn pointer_chase_visits_every_element_once_per_cycle() {
        let n = 512;
        let mut w = Synthetic::new(SyntheticParams {
            pattern: Pattern::PointerChase,
            elements: n,
            accesses: n,
            store_fraction: 0.0,
            seed: 2,
        });
        let mut rd = ReuseDistance::new(8); // element granularity
        w.run(&mut rd);
        // a single Sattolo cycle touches all n elements before repeating
        assert_eq!(rd.cold_misses(), n as u64);
        assert_eq!(rd.distinct_blocks(), n as u64);
        w.verify().unwrap();
    }

    #[test]
    fn zipf_is_skewed() {
        let mut w = Synthetic::new(SyntheticParams {
            pattern: Pattern::Zipf(1.1),
            elements: 65_536,
            accesses: 50_000,
            store_fraction: 0.0,
            seed: 3,
        });
        use memsim_trace::sinks::WorkingSetSink;
        let mut ws = WorkingSetSink::new(8);
        w.run(&mut ws);
        // heavy skew: far fewer distinct elements than accesses
        assert!(ws.unique_blocks() < 25_000, "{}", ws.unique_blocks());
        let mut wu = Synthetic::new(SyntheticParams {
            pattern: Pattern::UniformRandom,
            elements: 65_536,
            accesses: 50_000,
            store_fraction: 0.0,
            seed: 3,
        });
        let mut wsu = WorkingSetSink::new(8);
        wu.run(&mut wsu);
        assert!(
            wsu.unique_blocks() > ws.unique_blocks(),
            "uniform must spread wider"
        );
    }

    #[test]
    fn strided_touches_expected_lines() {
        // stride 8 elements = 64 B: every access on a fresh line
        let mut w = Synthetic::new(SyntheticParams {
            pattern: Pattern::Strided(8),
            elements: 8192,
            accesses: 1024,
            store_fraction: 0.0,
            seed: 4,
        });
        let mut rd = ReuseDistance::new(64);
        w.run(&mut rd);
        assert_eq!(rd.cold_misses(), 1024);
    }
}
