//! The NDM oracle partitioner.
//!
//! The paper's method: "identif\[y\], in the application, a contiguous range
//! of addresses that accounts for the bulk of the memory references …
//! merge\[d\] ranges close to each other. Typically we found 2 or 3 address
//! ranges in each workload. Then … we placed an address range to NVM at a
//! time, and the rest to DRAM", keeping the best permutation — an *oracle*
//! static partitioning, not a proposed mechanism.
//!
//! Because routing below the caches cannot change cache behaviour, every
//! placement is costed analytically from one simulation's per-region
//! traffic. The DRAM partition is capped at the provisioned NDM DRAM size
//! (512 MB at paper scale) and at half the footprint, so the design
//! actually exercises NVM capacity (the paper explicitly excludes the
//! degenerate all-in-DRAM placements from its figures).

use crate::configs::NDM_DRAM_BYTES;
use crate::design::{represented_footprint, sram_costs};
use crate::model::{LevelCost, Metrics};
use crate::runner::RawRun;
use crate::scale::Scale;
use memsim_cache::LevelStats;
pub use memsim_memory::Placement;
use memsim_tech::{TechParams, Technology};

/// Names of the two memory components in NDM costing.
const DRAM_PART: &str = "MEM.dram";
const NVM_PART: &str = "MEM.nvm";

/// A contiguous cluster of regions treated as one placeable address range.
#[derive(Debug, Clone)]
pub struct RangeGroup {
    /// Indices into the run's region arrays.
    pub regions: Vec<usize>,
    /// Total bytes of the group.
    pub bytes: u64,
    /// Total memory-level references of the group.
    pub refs: u64,
}

/// The oracle's decision for one workload × NVM technology.
#[derive(Debug, Clone)]
pub struct OracleChoice {
    /// Per-region placement (aligned with the run's region arrays).
    pub placement: Vec<Placement>,
    /// Metrics of the chosen placement.
    pub metrics: Metrics,
    /// Bytes placed in DRAM.
    pub dram_bytes: u64,
    /// Bytes placed in NVM.
    pub nvm_bytes: u64,
    /// Number of merged address ranges considered.
    pub groups: usize,
}

/// Merge the run's regions (address-ordered) into at most `max_groups`
/// contiguous ranges by repeatedly coalescing the pair separated by the
/// smallest address gap — the paper's "merged ranges close to each other".
pub fn merge_into_ranges(run: &RawRun, max_groups: usize) -> Vec<RangeGroup> {
    assert!(max_groups >= 1);
    let n = run.region_sizes.len();
    // groups as (first_idx, last_idx) over the address-ordered region list
    let mut bounds: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
    while bounds.len() > max_groups {
        // find the adjacent pair with the smallest gap between them
        let mut best = 0;
        let mut best_gap = u64::MAX;
        for i in 0..bounds.len() - 1 {
            let end_of_left = run.region_starts[bounds[i].1] + run.region_sizes[bounds[i].1];
            let gap = run.region_starts[bounds[i + 1].0].saturating_sub(end_of_left);
            if gap < best_gap {
                best_gap = gap;
                best = i;
            }
        }
        let (_, right_last) = bounds.remove(best + 1);
        bounds[best].1 = right_last;
    }
    bounds
        .into_iter()
        .map(|(a, b)| {
            let regions: Vec<usize> = (a..=b).collect();
            let bytes = regions.iter().map(|&i| run.region_sizes[i]).sum();
            let refs = regions
                .iter()
                .map(|&i| run.per_region[i].loads + run.per_region[i].stores)
                .sum();
            RangeGroup {
                regions,
                bytes,
                refs,
            }
        })
        .collect()
}

/// Analytically cost a per-region placement of `run` under NDM.
pub fn cost_placement(
    run: &RawRun,
    placement: &[Placement],
    nvm: Technology,
    scale: &Scale,
) -> Metrics {
    assert_eq!(placement.len(), run.per_region.len());
    let mut dram = LevelStats::new(DRAM_PART);
    let mut nvm_stats = LevelStats::new(NVM_PART);
    let mut dram_bytes_cap = 0u64;
    for (i, traffic) in run.per_region.iter().enumerate() {
        let target = match placement[i] {
            Placement::Dram => {
                dram_bytes_cap += run.region_sizes[i];
                &mut dram
            }
            Placement::Nvm => &mut nvm_stats,
        };
        target.loads += traffic.loads;
        target.stores += traffic.stores;
        target.bytes_loaded += traffic.bytes_loaded;
        target.bytes_stored += traffic.bytes_stored;
    }
    let _ = dram_bytes_cap;
    let mut costs = sram_costs(scale);
    // the DRAM partition is a provisioned device: refresh is paid on the
    // whole provisioned capacity, not just the bytes placed
    // provisioned at the paper's 512 MB (scaled budget × footprint factor
    // would overshoot it; the device represents min(512 MB, footprint/2))
    let dram_device = (crate::configs::NDM_DRAM_BYTES)
        .min(represented_footprint(scale, run.footprint_bytes) / 2)
        .max(1);
    costs.push(LevelCost::from_tech(
        DRAM_PART,
        &TechParams::of(Technology::Dram),
        dram_device,
    ));
    costs.push(LevelCost::from_tech(
        NVM_PART,
        &TechParams::of(nvm),
        represented_footprint(scale, run.footprint_bytes),
    ));

    let stats: Vec<&LevelStats> = run.caches.iter().collect();
    let mut pairs: Vec<(&LevelStats, &LevelCost)> = stats.into_iter().zip(costs.iter()).collect();
    pairs.push((&dram, &costs[3]));
    pairs.push((&nvm_stats, &costs[4]));
    Metrics::compute(&pairs, run.total_refs)
}

/// The DRAM device size provisioned for NDM at this scale: the paper's
/// 512 MB scaled down, and never more than half the footprint (so NVM
/// always carries meaningful capacity — the design's purpose).
pub fn ndm_dram_budget(scale: &Scale, footprint_bytes: u64) -> u64 {
    (NDM_DRAM_BYTES / scale.capacity_divisor)
        .min(footprint_bytes / 2)
        .max(1)
}

/// Exhaustively evaluate placements over the merged ranges and return the
/// best feasible one by EDP.
pub fn oracle(run: &RawRun, nvm: Technology, scale: &Scale) -> OracleChoice {
    oracle_with(run, nvm, scale, 4)
}

/// [`oracle`] with an explicit bound on merged range count.
pub fn oracle_with(
    run: &RawRun,
    nvm: Technology,
    scale: &Scale,
    max_groups: usize,
) -> OracleChoice {
    let groups = merge_into_ranges(run, max_groups);
    let budget = ndm_dram_budget(scale, run.footprint_bytes);
    let n_regions = run.per_region.len();

    let mut best: Option<(f64, Vec<Placement>, u64, u64)> = None;
    for mask in 0u32..(1 << groups.len()) {
        // bit set = group goes to DRAM
        let mut placement = vec![Placement::Nvm; n_regions];
        let mut dram_bytes = 0u64;
        for (g, group) in groups.iter().enumerate() {
            if mask & (1 << g) != 0 {
                dram_bytes += group.bytes;
                for &r in &group.regions {
                    placement[r] = Placement::Dram;
                }
            }
        }
        if dram_bytes > budget {
            continue;
        }
        let metrics = cost_placement(run, &placement, nvm, scale);
        let edp = metrics.edp();
        if best.as_ref().map(|(b, ..)| edp < *b).unwrap_or(true) {
            let nvm_bytes = run.footprint_bytes - dram_bytes;
            best = Some((edp, placement, dram_bytes, nvm_bytes));
        }
    }
    let (_, placement, dram_bytes, nvm_bytes) = best.expect("all-NVM placement is always feasible");
    let metrics = cost_placement(run, &placement, nvm, scale);
    OracleChoice {
        placement,
        metrics,
        dram_bytes,
        nvm_bytes,
        groups: groups.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Structure;
    use crate::runner::simulate_structure;
    use memsim_workloads::WorkloadKind;

    fn run() -> RawRun {
        simulate_structure(WorkloadKind::Cg, &Scale::mini(), &Structure::ThreeLevel)
    }

    #[test]
    fn merge_respects_max_groups() {
        let r = run();
        for g in [1, 2, 3, 4] {
            let groups = merge_into_ranges(&r, g);
            assert!(groups.len() <= g);
            assert!(!groups.is_empty());
            // groups partition all regions in order
            let flat: Vec<usize> = groups.iter().flat_map(|gr| gr.regions.clone()).collect();
            let expect: Vec<usize> = (0..r.region_sizes.len()).collect();
            assert_eq!(flat, expect);
            // byte totals conserve
            let total: u64 = groups.iter().map(|gr| gr.bytes).sum();
            assert_eq!(total, r.footprint_bytes);
        }
    }

    #[test]
    fn analytic_costing_matches_resimulation() {
        // The core soundness property of the oracle: costing a placement
        // from per-region traffic equals what a real partitioned terminal
        // measures. Aggregate DRAM+NVM traffic must equal MEM traffic.
        let r = run();
        let placement = vec![Placement::Nvm; r.per_region.len()];
        let all_nvm = cost_placement(&r, &placement, Technology::Pcm, &Scale::mini());
        // compare against treating MEM entirely as PCM (plus the DRAM
        // device's idle refresh, which all-NVM still pays for the
        // provisioned partition)
        let mut costs = sram_costs(&Scale::mini());
        costs.push(LevelCost::from_tech(
            "MEM",
            &memsim_tech::TechParams::of(Technology::Pcm),
            r.footprint_bytes,
        ));
        let stats = r.all_levels();
        let pairs: Vec<_> = stats.into_iter().zip(costs.iter()).collect();
        let flat = Metrics::compute(&pairs, r.total_refs);
        assert!(
            (all_nvm.amat_ns - flat.amat_ns).abs() < 1e-9,
            "AMAT must match"
        );
        assert!(
            (all_nvm.dynamic_j - flat.dynamic_j).abs() < 1e-12,
            "dynamic energy must match"
        );
        // static differs only by the provisioned DRAM device
        assert!(all_nvm.static_j > flat.static_j);
    }

    #[test]
    fn oracle_returns_feasible_best() {
        let r = run();
        let scale = Scale::mini();
        let choice = oracle(&r, Technology::Pcm, &scale);
        assert_eq!(choice.placement.len(), r.per_region.len());
        assert!(choice.dram_bytes <= ndm_dram_budget(&scale, r.footprint_bytes));
        assert_eq!(choice.dram_bytes + choice.nvm_bytes, r.footprint_bytes);
        // the oracle never does worse than all-NVM
        let all_nvm = cost_placement(
            &r,
            &vec![Placement::Nvm; r.per_region.len()],
            Technology::Pcm,
            &scale,
        );
        assert!(choice.metrics.edp() <= all_nvm.edp() + 1e-12);
    }

    #[test]
    fn hot_regions_prefer_dram() {
        let r = run();
        let scale = Scale::mini();
        let choice = oracle_with(&r, Technology::Pcm, &scale, 4);
        // per-byte traffic density of DRAM-placed regions should beat the
        // NVM-placed ones when anything is placed at all
        let mut dram_refs = 0u64;
        let mut dram_bytes = 0u64;
        let mut nvm_refs = 0u64;
        let mut nvm_bytes = 0u64;
        for (i, p) in choice.placement.iter().enumerate() {
            let t = r.per_region[i].loads + r.per_region[i].stores;
            match p {
                Placement::Dram => {
                    dram_refs += t;
                    dram_bytes += r.region_sizes[i];
                }
                Placement::Nvm => {
                    nvm_refs += t;
                    nvm_bytes += r.region_sizes[i];
                }
            }
        }
        if dram_bytes > 0 && nvm_bytes > 0 && nvm_refs > 0 {
            let dram_density = dram_refs as f64 / dram_bytes as f64;
            let nvm_density = nvm_refs as f64 / nvm_bytes as f64;
            assert!(
                dram_density >= nvm_density * 0.5,
                "oracle placed cold data in scarce DRAM: {dram_density} vs {nvm_density}"
            );
        }
    }

    #[test]
    fn budget_respects_footprint_cap() {
        let scale = Scale::mini();
        assert_eq!(ndm_dram_budget(&scale, 4 << 20), 2 << 20);
        assert_eq!(ndm_dram_budget(&scale, 1 << 30), (512 << 20) / 64);
    }
}
