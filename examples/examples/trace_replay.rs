//! Record once, replay everywhere: the trace-file workflow.
//!
//! Records Graph500's address stream to a trace file, then evaluates the
//! full Table 3 NMM configuration grid two ways — live (re-simulating the
//! workload at every distinct hierarchy structure) and by sharded replay
//! of the recording — verifying the results agree and reporting the
//! wall-clock for each.
//!
//! ```text
//! cargo run --release -p memsim-examples --example trace_replay
//! ```

use memsim_core::configs::n_configs;
use memsim_core::replay::{record_workload, replay_grid};
use memsim_core::runner::evaluate_grid;
use memsim_core::{Design, Scale, SimCache};
use memsim_examples::human_bytes;
use memsim_tech::Technology;
use memsim_workloads::{Class, WorkloadKind};
use std::time::Instant;

fn main() {
    let scale = Scale::mini();
    let workload = WorkloadKind::Graph500;
    let dir = std::env::temp_dir().join(format!("memsim-trace-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("graph500.trace");

    // one workload execution, persisted
    let t = Instant::now();
    let rec = record_workload(workload, Class::Mini, &path).expect("record");
    let record_s = t.elapsed().as_secs_f64();
    println!(
        "recorded {} at mini scale: {} events, {} on disk ({:.2} B/event) in {:.2} s\n",
        workload.name(),
        rec.events,
        human_bytes(rec.file_bytes),
        rec.bytes_per_event(),
        record_s,
    );

    // baseline + the nine Table 3 NMM points: ten distinct structures
    let designs: Vec<Design> = std::iter::once(Design::Baseline)
        .chain(n_configs().iter().map(|&config| Design::Nmm {
            nvm: Technology::Pcm,
            config,
        }))
        .collect();
    let points: Vec<(WorkloadKind, Design)> = designs.iter().map(|d| (workload, *d)).collect();

    let t = Instant::now();
    let live = evaluate_grid(&points, &scale, &SimCache::new(), None);
    let live_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let replayed = replay_grid(&path, &designs, &scale, None).expect("replay");
    let replay_s = t.elapsed().as_secs_f64();

    println!("| design | live time× | replayed time× |");
    println!("|---|---|---|");
    for (l, r) in live.iter().zip(&replayed) {
        assert_eq!(
            l.run.caches, r.run.caches,
            "replay diverged from live simulation"
        );
        let ln = l.metrics.normalized_to(&live[0].metrics);
        let rn = r.metrics.normalized_to(&replayed[0].metrics);
        println!("| {} | {:.4} | {:.4} |", l.design.label(), ln.time, rn.time);
    }

    println!();
    println!(
        "{}-point grid: live regeneration {:.2} s, sharded replay {:.2} s ({:.2}x)",
        designs.len(),
        live_s,
        replay_s,
        live_s / replay_s,
    );
    println!(
        "replay amortization: record once ({record_s:.2} s) + replay per sweep vs resimulate every sweep"
    );

    std::fs::remove_dir_all(&dir).ok();
}
