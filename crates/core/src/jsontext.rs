//! Minimal JSON reader for the workspace's own JSON dialects.
//!
//! Every JSON producer in the workspace (`memsim_obs::json`, the sweep
//! journal, the server's job documents) emits only objects, arrays,
//! strings, unsigned integers, and `null` — so that is all this reader
//! accepts. Anything else (floats, signs, exponents, trailing bytes) is
//! rejected, which doubles as a corruption check for the journal and a
//! hostile-input guard for the server: the parser returns `Err`, never
//! panics, on arbitrary bytes.
//!
//! Extracted from the sweep journal (PR 4) so the server's request-body
//! and job-document decoding share the exact same hardened reader.

use std::collections::HashMap;

/// Parsed JSON value. Only the shapes the workspace's writers emit.
#[derive(Debug, Clone, PartialEq)]
pub enum JVal {
    /// `null`.
    Null,
    /// An unsigned integer (the writers never emit floats or signs).
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JVal>),
    /// An object.
    Obj(HashMap<String, JVal>),
}

impl JVal {
    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JVal::U64(v) => Some(*v),
            _ => None,
        }
    }
    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JVal::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[JVal]> {
        match self {
            JVal::Arr(a) => Some(a.as_slice()),
            _ => None,
        }
    }
    /// The value as an object map, if it is an object.
    pub fn as_obj(&self) -> Option<&HashMap<String, JVal>> {
        match self {
            JVal::Obj(o) => Some(o),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JVal, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JVal::Str(self.string()?)),
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(JVal::Null)
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn number(&mut self) -> Result<JVal, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        // The writers never emit floats, signs, or exponents; seeing one
        // means the document is not ours.
        if matches!(self.peek(), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
            return Err(format!("non-integer number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(JVal::U64)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // advance one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JVal, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JVal::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JVal::Arr(items));
                }
                _ => return Err(format!("bad array at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JVal, String> {
        self.eat(b'{')?;
        let mut map = HashMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JVal::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JVal::Obj(map));
                }
                _ => return Err(format!("bad object at byte {}", self.pos)),
            }
        }
    }
}

/// Parse one complete JSON value from `s`; trailing non-whitespace bytes
/// are an error (a truncation/concatenation guard).
pub fn parse_json(s: &str) -> Result<JVal, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after value at {}", p.pos));
    }
    Ok(v)
}

/// Fetch a required field from an object map.
pub fn get<'a>(obj: &'a HashMap<String, JVal>, key: &str) -> Result<&'a JVal, String> {
    obj.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

/// Fetch a required unsigned-integer field.
pub fn get_u64(obj: &HashMap<String, JVal>, key: &str) -> Result<u64, String> {
    get(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("field '{key}' is not an integer"))
}

/// Fetch a required string field.
pub fn get_str<'a>(obj: &'a HashMap<String, JVal>, key: &str) -> Result<&'a str, String> {
    get(obj, key)?
        .as_str()
        .ok_or_else(|| format!("field '{key}' is not a string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_writers_shapes() {
        let v = parse_json(r#"{"s":"a\"b","n":7,"a":[1,2],"z":null}"#).unwrap();
        let o = v.as_obj().unwrap();
        assert_eq!(get_str(o, "s").unwrap(), "a\"b");
        assert_eq!(get_u64(o, "n").unwrap(), 7);
        assert_eq!(o["a"].as_arr().unwrap().len(), 2);
        assert_eq!(o["z"], JVal::Null);
    }

    #[test]
    fn rejects_foreign_shapes() {
        for bad in [
            "{\"x\":1.5}",
            "{\"x\":-3}",
            "{\"x\":1e9}",
            "{\"x\":true}",
            "{\"x\":1}garbage",
            "",
            "{\"x\"",
            "[1,",
            "\"unterminated",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn never_panics_on_prefixes() {
        let doc = r#"{"s":"aAb","n":18446744073709551615,"a":[{"k":"v"},null]}"#;
        assert!(parse_json(doc).is_ok());
        for cut in 0..doc.len() {
            if doc.is_char_boundary(cut) {
                let _ = parse_json(&doc[..cut]);
            }
        }
    }
}
