//! Table 4: characteristics of the benchmarks (footprint, reference count,
//! modeled reference time), plus the cost of building each workload.

use criterion::{criterion_group, criterion_main, Criterion};
use memsim_bench::{bench_ctx, bench_scale, print_figure};
use memsim_core::experiments::table4;
use memsim_core::SimCache;
use memsim_workloads::WorkloadKind;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cache = SimCache::new();
    let ctx = bench_ctx(&cache);
    print_figure(&table4(&ctx).unwrap());

    let class = bench_scale().class;
    // workload construction (generation + untraced initialization)
    for kind in [WorkloadKind::Cg, WorkloadKind::Hash] {
        c.bench_function(&format!("table4/build_{}", kind.name()), |b| {
            b.iter(|| black_box(kind.build(class)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
