//! Streaming trace consumption: chunk-at-a-time decode without ever
//! materializing the whole file.

use crate::crc32::crc32;
use crate::format::{
    read_u32, read_u64, TraceError, TraceHeader, MAX_CHUNK_EVENTS, MAX_EVENT_BYTES,
};
use crate::varint;
use memsim_trace::TraceEvent;
use std::fs::File;
use std::io::{BufReader, ErrorKind, Read};
use std::path::Path;

/// Reads a trace file chunk by chunk, validating framing and CRCs.
///
/// Two consumption styles:
///
/// * [`TraceReader::next_chunk`] — borrow each decoded chunk as a
///   `&[TraceEvent]` slice; the natural fit for
///   [`TraceSink::access_chunk`](memsim_trace::TraceSink::access_chunk)
///   batched delivery (what [`crate::replay_into`] does).
/// * the [`Iterator`] impl — yields `Result<TraceEvent, TraceError>` one
///   event at a time; after yielding an error the iterator fuses.
///
/// Corruption — a truncated file, a flipped byte, a frame that decodes to
/// the wrong event count — surfaces as a typed [`TraceError`], never a
/// panic. Memory use is bounded by one chunk regardless of file size.
pub struct TraceReader<R: Read> {
    input: R,
    header: TraceHeader,
    /// Decoded events of the current chunk.
    chunk: Vec<TraceEvent>,
    /// Iterator cursor into `chunk`.
    cursor: usize,
    payload: Vec<u8>,
    chunks_read: u64,
    events_read: u64,
    payload_bytes: u64,
    /// Chunks whose CRC32 validated (every chunk that reached the sink).
    crc_verified_chunks: u64,
    /// Smallest encoded payload of any chunk (`u64::MAX` before the first).
    chunk_payload_min: u64,
    /// Largest encoded payload of any chunk.
    chunk_payload_max: u64,
    /// Fewest events in any chunk (`u64::MAX` before the first).
    chunk_events_min: u64,
    /// Most events in any chunk.
    chunk_events_max: u64,
    /// Footer seen and validated (or a fatal error already reported).
    done: bool,
}

impl TraceReader<BufReader<File>> {
    /// Open `path` and parse its header.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wrap `input` and parse the header from its front.
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let header = TraceHeader::read_from(&mut input)?;
        Ok(Self {
            input,
            header,
            chunk: Vec::new(),
            cursor: 0,
            payload: Vec::new(),
            chunks_read: 0,
            events_read: 0,
            payload_bytes: 0,
            crc_verified_chunks: 0,
            chunk_payload_min: u64::MAX,
            chunk_payload_max: 0,
            chunk_events_min: u64::MAX,
            chunk_events_max: 0,
            done: false,
        })
    }

    /// The file's header (provenance and region table).
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Chunks decoded so far.
    pub fn chunks_read(&self) -> u64 {
        self.chunks_read
    }

    /// Events decoded so far.
    pub fn events_read(&self) -> u64 {
        self.events_read
    }

    /// Encoded payload bytes decoded so far (excludes framing).
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Chunks whose CRC32 check passed so far. Equals
    /// [`TraceReader::chunks_read`] on any healthy stream — every decoded
    /// chunk is CRC-verified before its events are released — so trace
    /// health is visible without a full replay.
    pub fn crc_verified_chunks(&self) -> u64 {
        self.crc_verified_chunks
    }

    /// `(min, max)` encoded payload bytes over the chunks decoded so far,
    /// or `None` before the first chunk.
    pub fn chunk_payload_range(&self) -> Option<(u64, u64)> {
        (self.chunks_read > 0).then_some((self.chunk_payload_min, self.chunk_payload_max))
    }

    /// `(min, max)` events per chunk over the chunks decoded so far, or
    /// `None` before the first chunk.
    pub fn chunk_events_range(&self) -> Option<(u64, u64)> {
        (self.chunks_read > 0).then_some((self.chunk_events_min, self.chunk_events_max))
    }

    /// Decode the next chunk, returning its events, or `None` once the
    /// footer has been reached and validated. After an error or the
    /// footer, subsequent calls return `Ok(None)`.
    pub fn next_chunk(&mut self) -> Result<Option<&[TraceEvent]>, TraceError> {
        if self.done {
            return Ok(None);
        }
        self.chunk.clear();
        self.cursor = 0;
        let index = self.chunks_read;

        // Frame header. EOF exactly here means the footer is missing.
        let count = match read_u32(&mut self.input) {
            Ok(c) => c,
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => {
                self.done = true;
                return Err(TraceError::MissingFooter);
            }
            Err(e) => {
                self.done = true;
                return Err(e.into());
            }
        };

        if count == 0 {
            return self.read_footer();
        }

        let result = self.read_chunk_body(index, count);
        if result.is_err() {
            self.done = true;
        }
        result?;
        self.chunks_read += 1;
        self.events_read += self.chunk.len() as u64;
        Ok(Some(&self.chunk))
    }

    fn read_chunk_body(&mut self, index: u64, count: u32) -> Result<(), TraceError> {
        if count > MAX_CHUNK_EVENTS {
            return Err(TraceError::MalformedChunkHeader {
                chunk: index,
                detail: format!("event count {count} exceeds the {MAX_CHUNK_EVENTS} cap"),
            });
        }
        let truncated = |_| TraceError::TruncatedChunk { chunk: index };
        let payload_len = read_u32(&mut self.input).map_err(truncated)?;
        if payload_len as usize > count as usize * MAX_EVENT_BYTES {
            return Err(TraceError::MalformedChunkHeader {
                chunk: index,
                detail: format!("payload of {payload_len} bytes for {count} events"),
            });
        }
        let first_addr = read_u64(&mut self.input).map_err(truncated)?;
        let stored_crc = read_u32(&mut self.input).map_err(truncated)?;
        self.payload.resize(payload_len as usize, 0);
        self.input
            .read_exact(&mut self.payload)
            .map_err(truncated)?;
        if crc32(&self.payload) != stored_crc {
            return Err(TraceError::ChunkCrcMismatch { chunk: index });
        }
        self.crc_verified_chunks += 1;
        self.chunk_payload_min = self.chunk_payload_min.min(u64::from(payload_len));
        self.chunk_payload_max = self.chunk_payload_max.max(u64::from(payload_len));
        self.chunk_events_min = self.chunk_events_min.min(u64::from(count));
        self.chunk_events_max = self.chunk_events_max.max(u64::from(count));

        // Decode: each event is (zigzag addr delta, size<<1 | is_store).
        self.chunk.reserve(count as usize);
        let mut prev = first_addr;
        let mut pos = 0usize;
        for _ in 0..count {
            let (delta, n) = varint::read_u64(&self.payload[pos..]).ok_or_else(|| {
                TraceError::MalformedPayload {
                    chunk: index,
                    detail: "payload ends mid-delta".into(),
                }
            })?;
            pos += n;
            let (sk, n) = varint::read_u64(&self.payload[pos..]).ok_or_else(|| {
                TraceError::MalformedPayload {
                    chunk: index,
                    detail: "payload ends mid-size".into(),
                }
            })?;
            pos += n;
            let size = sk >> 1;
            if size > u64::from(u32::MAX) {
                return Err(TraceError::MalformedPayload {
                    chunk: index,
                    detail: format!("event size {size} exceeds u32"),
                });
            }
            let addr = prev.wrapping_add(varint::unzigzag(delta) as u64);
            self.chunk.push(if sk & 1 == 1 {
                TraceEvent::store(addr, size as u32)
            } else {
                TraceEvent::load(addr, size as u32)
            });
            prev = addr;
        }
        if pos != self.payload.len() {
            return Err(TraceError::MalformedPayload {
                chunk: index,
                detail: format!("{} undecoded payload bytes", self.payload.len() - pos),
            });
        }
        self.payload_bytes += u64::from(payload_len);
        Ok(())
    }

    fn read_footer(&mut self) -> Result<Option<&[TraceEvent]>, TraceError> {
        self.done = true;
        let total_bytes = match read_u64(&mut self.input) {
            Ok(t) => t,
            Err(_) => return Err(TraceError::CorruptFooter),
        };
        let stored_crc = read_u32(&mut self.input).map_err(|_| TraceError::CorruptFooter)?;
        if crc32(&total_bytes.to_le_bytes()) != stored_crc {
            return Err(TraceError::CorruptFooter);
        }
        if total_bytes != self.events_read {
            return Err(TraceError::EventCountMismatch {
                expected: total_bytes,
                actual: self.events_read,
            });
        }
        let mut probe = [0u8; 1];
        match self.input.read(&mut probe) {
            Ok(0) => Ok(None),
            Ok(_) => Err(TraceError::TrailingData),
            Err(e) => Err(e.into()),
        }
    }

    /// Read the whole trace into memory (tests and small traces only).
    pub fn read_all(&mut self) -> Result<Vec<TraceEvent>, TraceError> {
        let mut all = Vec::new();
        while let Some(chunk) = self.next_chunk()? {
            all.extend_from_slice(chunk);
        }
        Ok(all)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceEvent, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.cursor < self.chunk.len() {
                let ev = self.chunk[self.cursor];
                self.cursor += 1;
                return Some(Ok(ev));
            }
            match self.next_chunk() {
                Ok(Some(_)) => continue,
                Ok(None) => return None,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;
    use memsim_trace::TraceSink;

    fn write_events(events: &[TraceEvent]) -> Vec<u8> {
        let header = TraceHeader::anonymous(0x1000);
        let mut w = TraceWriter::new(Vec::new(), &header).unwrap();
        for &ev in events {
            w.access(ev);
        }
        w.finish().unwrap().0
    }

    #[test]
    fn round_trip_small() {
        let events = vec![
            TraceEvent::load(0x1000, 8),
            TraceEvent::store(0x1008, 8),
            TraceEvent::load(0x4_0000_0000, 64),
            TraceEvent::store(0x20, 1),
            TraceEvent::load(0x20, 0),
        ];
        let buf = write_events(&events);
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.read_all().unwrap(), events);
        assert_eq!(r.events_read(), 5);
        assert_eq!(r.chunks_read(), 1);
    }

    #[test]
    fn iterator_yields_events_in_order() {
        let events: Vec<TraceEvent> = (0..10_000u64)
            .map(|i| TraceEvent::load(i * 64, 8))
            .collect();
        let buf = write_events(&events);
        let r = TraceReader::new(buf.as_slice()).unwrap();
        let back: Result<Vec<TraceEvent>, TraceError> = r.collect();
        assert_eq!(back.unwrap(), events);
    }

    #[test]
    fn empty_trace_yields_nothing() {
        let buf = write_events(&[]);
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        assert!(r.next_chunk().unwrap().is_none());
        assert!(r.next_chunk().unwrap().is_none(), "idempotent at EOF");
        assert_eq!(r.events_read(), 0);
    }

    #[test]
    fn truncated_file_reports_missing_footer() {
        let buf = write_events(&[TraceEvent::load(0, 8)]);
        // cut the footer (16 bytes) off: EOF lands on a chunk boundary
        let mut r = TraceReader::new(&buf[..buf.len() - 16]).unwrap();
        r.next_chunk().unwrap(); // the one real chunk decodes fine
        assert!(matches!(r.next_chunk(), Err(TraceError::MissingFooter)));
        assert!(r.next_chunk().unwrap().is_none(), "fused after error");
    }

    #[test]
    fn truncated_chunk_reported() {
        let events: Vec<TraceEvent> = (0..100u64).map(|i| TraceEvent::load(i * 8, 8)).collect();
        let buf = write_events(&events);
        // cut inside the first chunk's payload
        let mut r = TraceReader::new(&buf[..buf.len() - 40]).unwrap();
        assert!(matches!(
            r.next_chunk(),
            Err(TraceError::TruncatedChunk { chunk: 0 })
        ));
    }

    #[test]
    fn flipped_payload_byte_fails_crc() {
        let events: Vec<TraceEvent> = (0..100u64).map(|i| TraceEvent::load(i * 8, 8)).collect();
        let mut buf = write_events(&events);
        let n = buf.len();
        buf[n - 30] ^= 0x40; // somewhere inside the chunk payload
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        assert!(matches!(
            r.next_chunk(),
            Err(TraceError::ChunkCrcMismatch { chunk: 0 })
        ));
    }

    #[test]
    fn corrupt_footer_total_detected() {
        let buf = write_events(&[TraceEvent::load(0, 8)]);
        let mut bad = buf.clone();
        let n = bad.len();
        bad[n - 12] ^= 0x01; // low byte of the footer's total_events
        let mut r = TraceReader::new(bad.as_slice()).unwrap();
        r.next_chunk().unwrap();
        assert!(matches!(r.next_chunk(), Err(TraceError::CorruptFooter)));
    }

    #[test]
    fn trailing_data_detected() {
        let mut buf = write_events(&[TraceEvent::load(0, 8)]);
        buf.push(0xAB);
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        r.next_chunk().unwrap();
        assert!(matches!(r.next_chunk(), Err(TraceError::TrailingData)));
    }

    #[test]
    fn multi_chunk_traces_decode_across_boundaries() {
        // 3 full chunks plus a partial one, with a huge backwards jump at
        // each chunk boundary to exercise first_addr re-anchoring
        let mut events = Vec::new();
        for i in 0..(crate::format::TRACE_CHUNK_EVENTS * 3 + 100) as u64 {
            let base = if i % 2 == 0 { 0x1000_0000 } else { 0x10 };
            events.push(TraceEvent::load(base + i * 8, 4));
        }
        let buf = write_events(&events);
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.read_all().unwrap(), events);
        assert_eq!(r.chunks_read(), 4);
    }
}
