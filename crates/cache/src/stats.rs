//! Per-level data-movement statistics.

/// Counters collected at one level of the hierarchy.
///
/// A "load" is any read request arriving at this level (a demand load or a
/// block-fill fetch from the level above); a "store" is any write request
/// (a demand store at L1, or a dirty-block writeback from above). These are
/// precisely the `Loads_Li` / `Stores_Li` terms of the paper's Equation 2.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Display name of the level.
    pub name: String,
    /// Read requests that arrived at this level.
    pub loads: u64,
    /// Write requests that arrived at this level.
    pub stores: u64,
    /// Read requests that hit.
    pub load_hits: u64,
    /// Read requests that missed.
    pub load_misses: u64,
    /// Write requests that hit.
    pub store_hits: u64,
    /// Write requests that missed.
    pub store_misses: u64,
    /// Dirty blocks this level evicted and sent downward.
    pub writebacks_out: u64,
    /// Blocks installed (fills).
    pub fills: u64,
    /// Bytes moved out of this level by read requests (request size × count).
    pub bytes_loaded: u64,
    /// Bytes moved into this level by write requests.
    pub bytes_stored: u64,
}

impl LevelStats {
    /// Fresh statistics for a level called `name`.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Total requests (loads + stores).
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.load_hits + self.store_hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.load_misses + self.store_misses
    }

    /// Hit rate in `[0, 1]`; 0 for an idle level.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.accesses() as f64
        }
    }

    /// Internal consistency: hits + misses == accesses, split by kind.
    ///
    /// Used by tests and debug assertions.
    pub fn is_consistent(&self) -> bool {
        self.load_hits + self.load_misses == self.loads
            && self.store_hits + self.store_misses == self.stores
    }

    /// Merge another level's counters into this one (used when averaging
    /// across workloads or accumulating shards).
    pub fn merge(&mut self, other: &LevelStats) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.load_hits += other.load_hits;
        self.load_misses += other.load_misses;
        self.store_hits += other.store_hits;
        self.store_misses += other.store_misses;
        self.writebacks_out += other.writebacks_out;
        self.fills += other.fills;
        self.bytes_loaded += other.bytes_loaded;
        self.bytes_stored += other.bytes_stored;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let s = LevelStats {
            name: "L1".into(),
            loads: 10,
            stores: 5,
            load_hits: 8,
            load_misses: 2,
            store_hits: 5,
            store_misses: 0,
            ..Default::default()
        };
        assert_eq!(s.accesses(), 15);
        assert_eq!(s.hits(), 13);
        assert_eq!(s.misses(), 2);
        assert!((s.hit_rate() - 13.0 / 15.0).abs() < 1e-12);
        assert!(s.is_consistent());
    }

    #[test]
    fn idle_level_hit_rate_zero() {
        assert_eq!(LevelStats::new("x").hit_rate(), 0.0);
    }

    #[test]
    fn inconsistency_detected() {
        let s = LevelStats {
            loads: 3,
            load_hits: 1,
            load_misses: 1,
            ..Default::default()
        };
        assert!(!s.is_consistent());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LevelStats {
            loads: 1,
            bytes_loaded: 64,
            ..Default::default()
        };
        let b = LevelStats {
            loads: 2,
            stores: 3,
            bytes_loaded: 128,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.loads, 3);
        assert_eq!(a.stores, 3);
        assert_eq!(a.bytes_loaded, 192);
    }
}
