//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! subset of the proptest API its tests use: the [`proptest!`] macro, range
//! / tuple / [`collection::vec`] / [`bool::ANY`] strategies, [`Strategy::prop_map`],
//! and the `prop_assert*` macros. Cases are generated from a seed derived
//! from the test name, so failures reproduce deterministically. There is no
//! shrinking: a failing case panics with the sampled inputs left to the
//! assertion message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Deterministic per-test random source driving strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seed from a test name (FNV-1a), so each test gets a stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(SmallRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runner configuration (the `cases` knob only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    #[inline]
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let u: f64 = rng.random();
        self.start + u * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A fair coin.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        #[inline]
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.random()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Admissible lengths for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing a `Vec` of values from `element`, with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy type returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

/// Assert inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Reject the current case when `cond` is false: the runner moves on to the
/// next sampled case (expands to `continue` in the per-case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments and runs the body for
/// [`ProptestConfig::cases`] random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vecs_sample_in_bounds() {
        let mut rng = super::TestRng::from_name("ranges_and_vecs");
        let s = super::collection::vec((0u64..100, super::bool::ANY), 5..10);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((5..10).contains(&v.len()));
            assert!(v.iter().all(|(x, _)| *x < 100));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = super::TestRng::from_name("prop_map");
        let s = (1u64..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The macro itself works end to end.
        #[test]
        fn macro_runs_cases(x in 0u32..7, flips in super::collection::vec(super::bool::ANY, 1..4)) {
            prop_assert!(x < 7);
            prop_assert_eq!(!flips.is_empty(), true);
        }
    }
}
