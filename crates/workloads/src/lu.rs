//! NPB LU: SSOR relaxation sweeps on a 3-D structured grid.
//!
//! LU's kernel is symmetric successive over-relaxation: a forward
//! (lexicographic) Gauss–Seidel sweep followed by a backward sweep, here
//! applied to the 7-point Laplacian with five independent components per
//! cell. The wavefront-ordered dependence means every cell update reads
//! already-updated upstream neighbours and not-yet-updated downstream
//! ones — the memory pattern the benchmark exists to exercise.

use crate::{Class, Workload};
use memsim_trace::{AddressSpace, ChunkBuffer, SimVec, TraceEvent, TraceSink};

const NC: usize = 5;
type Vec5 = [f64; NC];

/// LU problem parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LuParams {
    /// Grid extent per dimension.
    pub n: usize,
    /// SSOR iterations (forward + backward sweep each).
    pub iterations: usize,
    /// Over-relaxation factor.
    pub omega: f64,
}

impl LuParams {
    /// Preset for a size class.
    pub fn class(class: Class) -> Self {
        match class {
            // ≈ 5 MiB
            Class::Mini => Self {
                n: 40,
                iterations: 1,
                omega: 1.2,
            },
            // ≈ 24 MiB
            Class::Demo => Self {
                n: 68,
                iterations: 1,
                omega: 1.2,
            },
            // ≈ 100 MiB
            Class::Large => Self {
                n: 110,
                iterations: 1,
                omega: 1.2,
            },
        }
    }
}

/// The LU benchmark instance.
pub struct Lu {
    params: LuParams,
    space: AddressSpace,
    /// Solution field, `n³ × 5`.
    u: SimVec<f64>,
    /// Right-hand side, `n³ × 5`.
    f: SimVec<f64>,
    initial_residual: Option<f64>,
    final_residual: Option<f64>,
}

impl Lu {
    /// Allocate and initialize (untraced) an LU instance.
    pub fn new(params: LuParams) -> Self {
        let n = params.n;
        assert!(n >= 4);
        let mut space = AddressSpace::new();
        let cells = n * n * n;
        let u = SimVec::<f64>::zeroed(&mut space, "u", cells * NC);
        let f = SimVec::from_fn(&mut space, "f", cells * NC, |i| {
            ((i % 23) as f64 - 11.0) / 23.0
        });
        Self {
            params,
            space,
            u,
            f,
            initial_residual: None,
            final_residual: None,
        }
    }

    #[inline]
    fn cell(n: usize, i: usize, j: usize, k: usize) -> usize {
        ((i * n + j) * n + k) * NC
    }

    #[inline]
    fn ld5(v: &SimVec<f64>, base: usize, sink: &mut dyn TraceSink) -> Vec5 {
        sink.access(TraceEvent::load(v.addr_of(base), (NC * 8) as u32));
        let s = v.as_slice();
        [s[base], s[base + 1], s[base + 2], s[base + 3], s[base + 4]]
    }

    #[inline]
    fn st5(v: &mut SimVec<f64>, base: usize, val: &Vec5, sink: &mut dyn TraceSink) {
        sink.access(TraceEvent::store(v.addr_of(base), (NC * 8) as u32));
        v.as_mut_slice()[base..base + NC].copy_from_slice(val);
    }

    /// ‖f − A u‖₂ over all components (untraced; A = 7-point Laplacian with
    /// Dirichlet zero beyond the boundary).
    fn residual_norm(&self) -> f64 {
        let n = self.params.n;
        let u = self.u.as_slice();
        let f = self.f.as_slice();
        let mut acc = 0.0;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let b = Self::cell(n, i, j, k);
                    for c in 0..NC {
                        let mut au = 6.0 * u[b + c];
                        if i > 0 {
                            au -= u[Self::cell(n, i - 1, j, k) + c];
                        }
                        if i + 1 < n {
                            au -= u[Self::cell(n, i + 1, j, k) + c];
                        }
                        if j > 0 {
                            au -= u[Self::cell(n, i, j - 1, k) + c];
                        }
                        if j + 1 < n {
                            au -= u[Self::cell(n, i, j + 1, k) + c];
                        }
                        if k > 0 {
                            au -= u[Self::cell(n, i, j, k - 1) + c];
                        }
                        if k + 1 < n {
                            au -= u[Self::cell(n, i, j, k + 1) + c];
                        }
                        acc += (f[b + c] - au) * (f[b + c] - au);
                    }
                }
            }
        }
        acc.sqrt()
    }

    /// One relaxation update of cell `(i, j, k)`, traced.
    #[inline]
    fn relax_cell(&mut self, i: usize, j: usize, k: usize, sink: &mut dyn TraceSink) {
        let n = self.params.n;
        let omega = self.params.omega;
        let b = Self::cell(n, i, j, k);
        let fv = Self::ld5(&self.f, b, sink);
        let uv = Self::ld5(&self.u, b, sink);
        let mut nb_sum: Vec5 = [0.0; NC];
        let add = |slot: usize, s: &mut dyn TraceSink, u: &SimVec<f64>, sum: &mut Vec5| {
            let v = Self::ld5(u, slot, s);
            for c in 0..NC {
                sum[c] += v[c];
            }
        };
        if i > 0 {
            add(Self::cell(n, i - 1, j, k), sink, &self.u, &mut nb_sum);
        }
        if i + 1 < n {
            add(Self::cell(n, i + 1, j, k), sink, &self.u, &mut nb_sum);
        }
        if j > 0 {
            add(Self::cell(n, i, j - 1, k), sink, &self.u, &mut nb_sum);
        }
        if j + 1 < n {
            add(Self::cell(n, i, j + 1, k), sink, &self.u, &mut nb_sum);
        }
        if k > 0 {
            add(Self::cell(n, i, j, k - 1), sink, &self.u, &mut nb_sum);
        }
        if k + 1 < n {
            add(Self::cell(n, i, j, k + 1), sink, &self.u, &mut nb_sum);
        }
        let mut out: Vec5 = [0.0; NC];
        for c in 0..NC {
            let gs = (fv[c] + nb_sum[c]) / 6.0;
            out[c] = (1.0 - omega) * uv[c] + omega * gs;
        }
        Self::st5(&mut self.u, b, &out, sink);
    }
}

impl Workload for Lu {
    fn name(&self) -> &'static str {
        "LU"
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let mut sink = ChunkBuffer::new(sink);
        let sink = &mut sink;
        let n = self.params.n;
        self.initial_residual = Some(self.residual_norm());
        for _ in 0..self.params.iterations {
            // forward lexicographic sweep
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        self.relax_cell(i, j, k, sink);
                    }
                }
            }
            // backward sweep
            for i in (0..n).rev() {
                for j in (0..n).rev() {
                    for k in (0..n).rev() {
                        self.relax_cell(i, j, k, sink);
                    }
                }
            }
        }
        sink.flush();
        self.final_residual = Some(self.residual_norm());
    }

    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn verify(&self) -> Result<(), String> {
        let (init, fin) = match (self.initial_residual, self.final_residual) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err("LU has not run".into()),
        };
        if !fin.is_finite() {
            return Err("residual diverged".into());
        }
        if fin >= 0.8 * init {
            return Err(format!("SSOR did not reduce the residual: {init} -> {fin}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim_trace::sinks::CountingSink;

    #[test]
    fn reduces_residual_and_verifies() {
        let mut lu = Lu::new(LuParams {
            n: 12,
            iterations: 2,
            omega: 1.2,
        });
        let mut sink = CountingSink::new();
        lu.run(&mut sink);
        lu.verify().unwrap();
        let init = lu.initial_residual.unwrap();
        let fin = lu.final_residual.unwrap();
        assert!(fin < 0.5 * init, "init={init} fin={fin}");
    }

    #[test]
    fn verify_before_run_errors() {
        assert!(Lu::new(LuParams {
            n: 8,
            iterations: 1,
            omega: 1.2
        })
        .verify()
        .is_err());
    }

    #[test]
    fn interior_cell_touches_seven_points_plus_rhs() {
        let mut lu = Lu::new(LuParams {
            n: 8,
            iterations: 1,
            omega: 1.0,
        });
        let mut sink = CountingSink::new();
        lu.run(&mut sink);
        // per cell per sweep: f + u + up-to-6 neighbours loads, 1 store
        let cells = 8u64 * 8 * 8;
        let sweeps = 2;
        assert_eq!(sink.stores, cells * sweeps);
        assert!(
            sink.loads >= cells * sweeps * 5,
            "boundary cells load fewer neighbours"
        );
        assert!(sink.loads <= cells * sweeps * 8);
    }

    #[test]
    fn omega_one_is_plain_gauss_seidel_and_converges() {
        let mut lu = Lu::new(LuParams {
            n: 10,
            iterations: 3,
            omega: 1.0,
        });
        let mut sink = CountingSink::new();
        lu.run(&mut sink);
        lu.verify().unwrap();
    }
}
