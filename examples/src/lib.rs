//! Shared helpers for the runnable examples.
//!
//! Each file under `examples/` is a standalone binary:
//!
//! ```text
//! cargo run --release -p memsim-examples --example quickstart
//! cargo run --release -p memsim-examples --example capacity_planning
//! cargo run --release -p memsim-examples --example nvm_shootout
//! cargo run --release -p memsim-examples --example hybrid_partitioning
//! cargo run --release -p memsim-examples --example wear_leveling
//! ```

/// Format a byte count in human units.
pub fn human_bytes(b: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = b as f64;
    if b >= KIB * KIB * KIB {
        format!("{:.1} GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.1} MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.1} KiB", b / KIB)
    } else {
        format!("{b:.0} B")
    }
}

/// Format a ratio as a signed percentage ("-12.3%" = 12.3% savings).
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 << 20), "3.0 MiB");
        assert_eq!(human_bytes(5 << 30), "5.0 GiB");
    }

    #[test]
    fn pct_signs() {
        assert_eq!(pct(1.05), "+5.0%");
        assert_eq!(pct(0.79), "-21.0%");
    }
}
