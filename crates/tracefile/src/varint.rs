//! LEB128 varints and zigzag signed mapping.
//!
//! Event payloads store address *deltas* (usually tiny, occasionally huge
//! when the stream jumps between regions), so a variable-length integer is
//! the natural encoding: a sequential 8-byte stream costs one byte per
//! delta. Deltas are signed; zigzag folds them into unsigned space so that
//! small negative strides stay short.

/// Append `value` to `out` as an unsigned LEB128 varint.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode an unsigned LEB128 varint from the front of `buf`.
///
/// Returns the value and the number of bytes consumed, or `None` if the
/// buffer ends mid-varint or the encoding overflows 64 bits.
#[inline]
pub fn read_u64(buf: &[u8]) -> Option<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if shift >= 64 || (shift == 63 && byte > 1) {
            return None; // would overflow u64
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
        shift += 7;
    }
    None
}

/// Map a signed delta into unsigned space: 0, -1, 1, -2, … → 0, 1, 2, 3, …
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_are_one_byte() {
        for v in [0u64, 1, 17, 127] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), 1);
            assert_eq!(read_u64(&buf), Some((v, 1)));
        }
    }

    #[test]
    fn boundary_values_round_trip() {
        for v in [128u64, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert!(buf.len() <= 10, "u64 varints are at most 10 bytes");
            assert_eq!(read_u64(&buf), Some((v, buf.len())));
        }
    }

    #[test]
    fn truncated_varint_is_detected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert_eq!(read_u64(&buf[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn overlong_encoding_rejected() {
        // 11 continuation bytes can never be a valid u64
        let buf = [0x80u8; 11];
        assert_eq!(read_u64(&buf), None);
    }

    #[test]
    fn zigzag_maps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
        assert_eq!(unzigzag(zigzag(i64::MAX)), i64::MAX);
    }

    proptest! {
        #[test]
        fn varint_round_trips(
            // cover all magnitudes: a raw value scaled by a random shift
            raw in 0u64..u64::MAX,
            shift in 0u32..64,
            suffix in 0usize..4,
        ) {
            let v = raw >> shift;
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let encoded = buf.len();
            buf.extend(std::iter::repeat_n(0xAA, suffix));
            prop_assert_eq!(read_u64(&buf), Some((v, encoded)));
        }

        #[test]
        fn zigzag_round_trips(raw in 0u64..u64::MAX, shift in 0u32..64) {
            let v = (raw >> shift) as i64;
            prop_assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
