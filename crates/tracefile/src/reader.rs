//! Streaming trace consumption: chunk-at-a-time decode without ever
//! materializing the whole file.

use crate::crc32::crc32;
use crate::format::{
    read_u32, read_u64, TraceError, TraceHeader, MAX_CHUNK_EVENTS, MAX_EVENT_BYTES,
};
use crate::varint;
use memsim_trace::TraceEvent;
use std::fs::File;
use std::io::{BufReader, ErrorKind, Read, Seek};
use std::path::Path;

/// One step of a skip-capable chunk walk
/// (see [`TraceReader::next_chunk_where`]).
#[derive(Debug)]
pub enum ChunkStep<'a> {
    /// The chunk was wanted: its decoded, CRC-verified events.
    Events(&'a [TraceEvent]),
    /// The chunk was skipped without decoding: the stream index of its
    /// first event and how many events it frames.
    Skipped {
        /// Global index (within the whole trace) of the chunk's first
        /// event.
        first_event: u64,
        /// Events framed by the skipped chunk.
        count: u32,
    },
    /// The footer was reached and validated.
    End,
}

/// Reads a trace file chunk by chunk, validating framing and CRCs.
///
/// Three consumption styles:
///
/// * [`TraceReader::next_chunk`] — borrow each decoded chunk as a
///   `&[TraceEvent]` slice; the natural fit for
///   [`TraceSink::access_chunk`](memsim_trace::TraceSink::access_chunk)
///   batched delivery (what [`crate::replay_into`] does).
/// * [`TraceReader::next_chunk_where`] — the same walk, but a predicate
///   over `(first_event_index, event_count)` decides per chunk whether
///   to decode it or to skip its payload without decoding (sampled
///   replay's fast path).
/// * the [`Iterator`] impl — yields `Result<TraceEvent, TraceError>` one
///   event at a time; after yielding an error the iterator fuses.
///
/// Corruption — a truncated file, a flipped byte, a frame that decodes to
/// the wrong event count — surfaces as a typed [`TraceError`], never a
/// panic. Memory use is bounded by one chunk regardless of file size.
pub struct TraceReader<R: Read> {
    input: R,
    header: TraceHeader,
    /// Decoded events of the current chunk.
    chunk: Vec<TraceEvent>,
    /// Iterator cursor into `chunk`.
    cursor: usize,
    payload: Vec<u8>,
    chunks_read: u64,
    events_read: u64,
    /// Chunks whose payload was drained without decoding.
    chunks_skipped: u64,
    /// Events framed by skipped chunks (counted from frame headers, not
    /// decoded).
    events_skipped: u64,
    payload_bytes: u64,
    /// Chunks whose CRC32 validated (every chunk that reached the sink).
    crc_verified_chunks: u64,
    /// Smallest encoded payload of any chunk (`u64::MAX` before the first).
    chunk_payload_min: u64,
    /// Largest encoded payload of any chunk.
    chunk_payload_max: u64,
    /// Fewest events in any chunk (`u64::MAX` before the first).
    chunk_events_min: u64,
    /// Most events in any chunk.
    chunk_events_max: u64,
    /// Footer seen and validated (or a fatal error already reported).
    done: bool,
    /// When set, skipped chunk payloads are seeked over instead of read
    /// (see [`TraceReader::enable_seek_skip`]).
    seek_skip: Option<fn(&mut R, u64) -> std::io::Result<()>>,
}

impl TraceReader<BufReader<File>> {
    /// Open `path` and parse its header.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> TraceReader<R> {
    /// Skip over unwanted chunk payloads with a relative seek instead of
    /// reading them into the scratch buffer. Worth enabling for sparse
    /// access patterns (e.g. sampled replay) over file-backed traces; the
    /// trade-off is that a truncated payload in a *skipped* chunk is only
    /// detected at the next frame boundary.
    pub fn enable_seek_skip(&mut self) {
        self.seek_skip = Some(|input, n| input.seek_relative(n as i64));
    }
}

impl<R: Read> TraceReader<R> {
    /// Wrap `input` and parse the header from its front.
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let header = TraceHeader::read_from(&mut input)?;
        Ok(Self {
            input,
            header,
            chunk: Vec::new(),
            cursor: 0,
            payload: Vec::new(),
            chunks_read: 0,
            events_read: 0,
            chunks_skipped: 0,
            events_skipped: 0,
            payload_bytes: 0,
            crc_verified_chunks: 0,
            chunk_payload_min: u64::MAX,
            chunk_payload_max: 0,
            chunk_events_min: u64::MAX,
            chunk_events_max: 0,
            done: false,
            seek_skip: None,
        })
    }

    /// The file's header (provenance and region table).
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Chunks decoded so far.
    pub fn chunks_read(&self) -> u64 {
        self.chunks_read
    }

    /// Events decoded so far.
    pub fn events_read(&self) -> u64 {
        self.events_read
    }

    /// Chunks skipped without decoding so far.
    pub fn chunks_skipped(&self) -> u64 {
        self.chunks_skipped
    }

    /// Events framed by skipped chunks so far (from frame headers).
    pub fn events_skipped(&self) -> u64 {
        self.events_skipped
    }

    /// Encoded payload bytes decoded so far (excludes framing).
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Chunks whose CRC32 check passed so far. Equals
    /// [`TraceReader::chunks_read`] on any healthy stream — every decoded
    /// chunk is CRC-verified before its events are released — so trace
    /// health is visible without a full replay.
    pub fn crc_verified_chunks(&self) -> u64 {
        self.crc_verified_chunks
    }

    /// `(min, max)` encoded payload bytes over the chunks decoded so far,
    /// or `None` before the first chunk.
    pub fn chunk_payload_range(&self) -> Option<(u64, u64)> {
        (self.chunks_read > 0).then_some((self.chunk_payload_min, self.chunk_payload_max))
    }

    /// `(min, max)` events per chunk over the chunks decoded so far, or
    /// `None` before the first chunk.
    pub fn chunk_events_range(&self) -> Option<(u64, u64)> {
        (self.chunks_read > 0).then_some((self.chunk_events_min, self.chunk_events_max))
    }

    /// Decode the next chunk, returning its events, or `None` once the
    /// footer has been reached and validated. After an error or the
    /// footer, subsequent calls return `Ok(None)`.
    pub fn next_chunk(&mut self) -> Result<Option<&[TraceEvent]>, TraceError> {
        let decoded = match self.next_chunk_where(|_, _| true)? {
            ChunkStep::Events(_) => true,
            ChunkStep::End => false,
            ChunkStep::Skipped { .. } => unreachable!("predicate decodes every chunk"),
        };
        Ok(decoded.then_some(self.chunk.as_slice()))
    }

    /// Walk one chunk, letting `want(first_event_index, event_count)`
    /// decide whether to decode it or to drain its payload undecoded.
    ///
    /// The frame carries the payload length, so a skipped chunk costs a
    /// buffered read of its bytes and nothing else — no varint decode,
    /// no CRC check (see [`TraceReader::crc_verified_chunks`], which
    /// therefore counts decoded chunks only). The footer's total-event
    /// check still holds: decoded and skipped events must sum to the
    /// recorded total.
    pub fn next_chunk_where<F>(&mut self, want: F) -> Result<ChunkStep<'_>, TraceError>
    where
        F: FnOnce(u64, u32) -> bool,
    {
        if self.done {
            return Ok(ChunkStep::End);
        }
        self.chunk.clear();
        self.cursor = 0;
        let index = self.chunks_read + self.chunks_skipped;

        // Frame header. EOF exactly here means the footer is missing.
        let count = match read_u32(&mut self.input) {
            Ok(c) => c,
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => {
                self.done = true;
                return Err(TraceError::MissingFooter);
            }
            Err(e) => {
                self.done = true;
                return Err(e.into());
            }
        };

        if count == 0 {
            self.read_footer()?;
            return Ok(ChunkStep::End);
        }

        let first_event = self.events_read + self.events_skipped;
        if want(first_event, count) {
            let result = self.read_chunk_body(index, count);
            if result.is_err() {
                self.done = true;
            }
            result?;
            self.chunks_read += 1;
            self.events_read += self.chunk.len() as u64;
            Ok(ChunkStep::Events(&self.chunk))
        } else {
            let result = self.skip_chunk_body(index, count);
            if result.is_err() {
                self.done = true;
            }
            result?;
            self.chunks_skipped += 1;
            self.events_skipped += u64::from(count);
            Ok(ChunkStep::Skipped { first_event, count })
        }
    }

    /// Drain a chunk's frame without decoding it: the framing fields and
    /// payload bytes are read (the stream must stay positioned) but the
    /// payload is neither varint-decoded nor CRC-verified.
    fn skip_chunk_body(&mut self, index: u64, count: u32) -> Result<(), TraceError> {
        if count > MAX_CHUNK_EVENTS {
            return Err(TraceError::MalformedChunkHeader {
                chunk: index,
                detail: format!("event count {count} exceeds the {MAX_CHUNK_EVENTS} cap"),
            });
        }
        let truncated = |_| TraceError::TruncatedChunk { chunk: index };
        let payload_len = read_u32(&mut self.input).map_err(truncated)?;
        if payload_len as usize > count as usize * MAX_EVENT_BYTES {
            return Err(TraceError::MalformedChunkHeader {
                chunk: index,
                detail: format!("payload of {payload_len} bytes for {count} events"),
            });
        }
        let _first_addr = read_u64(&mut self.input).map_err(truncated)?;
        let _stored_crc = read_u32(&mut self.input).map_err(truncated)?;
        match self.seek_skip {
            Some(seek) => seek(&mut self.input, u64::from(payload_len)).map_err(truncated)?,
            None => {
                self.payload.resize(payload_len as usize, 0);
                self.input
                    .read_exact(&mut self.payload)
                    .map_err(truncated)?;
            }
        }
        Ok(())
    }

    fn read_chunk_body(&mut self, index: u64, count: u32) -> Result<(), TraceError> {
        if count > MAX_CHUNK_EVENTS {
            return Err(TraceError::MalformedChunkHeader {
                chunk: index,
                detail: format!("event count {count} exceeds the {MAX_CHUNK_EVENTS} cap"),
            });
        }
        let truncated = |_| TraceError::TruncatedChunk { chunk: index };
        let payload_len = read_u32(&mut self.input).map_err(truncated)?;
        if payload_len as usize > count as usize * MAX_EVENT_BYTES {
            return Err(TraceError::MalformedChunkHeader {
                chunk: index,
                detail: format!("payload of {payload_len} bytes for {count} events"),
            });
        }
        let first_addr = read_u64(&mut self.input).map_err(truncated)?;
        let stored_crc = read_u32(&mut self.input).map_err(truncated)?;
        self.payload.resize(payload_len as usize, 0);
        self.input
            .read_exact(&mut self.payload)
            .map_err(truncated)?;
        if crc32(&self.payload) != stored_crc {
            return Err(TraceError::ChunkCrcMismatch { chunk: index });
        }
        self.crc_verified_chunks += 1;
        self.chunk_payload_min = self.chunk_payload_min.min(u64::from(payload_len));
        self.chunk_payload_max = self.chunk_payload_max.max(u64::from(payload_len));
        self.chunk_events_min = self.chunk_events_min.min(u64::from(count));
        self.chunk_events_max = self.chunk_events_max.max(u64::from(count));

        // Decode: each event is (zigzag addr delta, size<<1 | is_store).
        self.chunk.reserve(count as usize);
        let mut prev = first_addr;
        let mut pos = 0usize;
        for _ in 0..count {
            let (delta, n) = varint::read_u64(&self.payload[pos..]).ok_or_else(|| {
                TraceError::MalformedPayload {
                    chunk: index,
                    detail: "payload ends mid-delta".into(),
                }
            })?;
            pos += n;
            let (sk, n) = varint::read_u64(&self.payload[pos..]).ok_or_else(|| {
                TraceError::MalformedPayload {
                    chunk: index,
                    detail: "payload ends mid-size".into(),
                }
            })?;
            pos += n;
            let size = sk >> 1;
            if size > u64::from(u32::MAX) {
                return Err(TraceError::MalformedPayload {
                    chunk: index,
                    detail: format!("event size {size} exceeds u32"),
                });
            }
            let addr = prev.wrapping_add(varint::unzigzag(delta) as u64);
            self.chunk.push(if sk & 1 == 1 {
                TraceEvent::store(addr, size as u32)
            } else {
                TraceEvent::load(addr, size as u32)
            });
            prev = addr;
        }
        if pos != self.payload.len() {
            return Err(TraceError::MalformedPayload {
                chunk: index,
                detail: format!("{} undecoded payload bytes", self.payload.len() - pos),
            });
        }
        self.payload_bytes += u64::from(payload_len);
        Ok(())
    }

    fn read_footer(&mut self) -> Result<(), TraceError> {
        self.done = true;
        let total_events = match read_u64(&mut self.input) {
            Ok(t) => t,
            Err(_) => return Err(TraceError::CorruptFooter),
        };
        let stored_crc = read_u32(&mut self.input).map_err(|_| TraceError::CorruptFooter)?;
        if crc32(&total_events.to_le_bytes()) != stored_crc {
            return Err(TraceError::CorruptFooter);
        }
        // Decoded and skipped chunks together must account for every
        // recorded event.
        let seen = self.events_read + self.events_skipped;
        if total_events != seen {
            return Err(TraceError::EventCountMismatch {
                expected: total_events,
                actual: seen,
            });
        }
        let mut probe = [0u8; 1];
        match self.input.read(&mut probe) {
            Ok(0) => Ok(()),
            Ok(_) => Err(TraceError::TrailingData),
            Err(e) => Err(e.into()),
        }
    }

    /// Read the whole trace into memory (tests and small traces only).
    pub fn read_all(&mut self) -> Result<Vec<TraceEvent>, TraceError> {
        let mut all = Vec::new();
        while let Some(chunk) = self.next_chunk()? {
            all.extend_from_slice(chunk);
        }
        Ok(all)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceEvent, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.cursor < self.chunk.len() {
                let ev = self.chunk[self.cursor];
                self.cursor += 1;
                return Some(Ok(ev));
            }
            match self.next_chunk() {
                Ok(Some(_)) => continue,
                Ok(None) => return None,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;
    use memsim_trace::TraceSink;

    fn write_events(events: &[TraceEvent]) -> Vec<u8> {
        let header = TraceHeader::anonymous(0x1000);
        let mut w = TraceWriter::new(Vec::new(), &header).unwrap();
        for &ev in events {
            w.access(ev);
        }
        w.finish().unwrap().0
    }

    #[test]
    fn round_trip_small() {
        let events = vec![
            TraceEvent::load(0x1000, 8),
            TraceEvent::store(0x1008, 8),
            TraceEvent::load(0x4_0000_0000, 64),
            TraceEvent::store(0x20, 1),
            TraceEvent::load(0x20, 0),
        ];
        let buf = write_events(&events);
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.read_all().unwrap(), events);
        assert_eq!(r.events_read(), 5);
        assert_eq!(r.chunks_read(), 1);
    }

    #[test]
    fn iterator_yields_events_in_order() {
        let events: Vec<TraceEvent> = (0..10_000u64)
            .map(|i| TraceEvent::load(i * 64, 8))
            .collect();
        let buf = write_events(&events);
        let r = TraceReader::new(buf.as_slice()).unwrap();
        let back: Result<Vec<TraceEvent>, TraceError> = r.collect();
        assert_eq!(back.unwrap(), events);
    }

    #[test]
    fn empty_trace_yields_nothing() {
        let buf = write_events(&[]);
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        assert!(r.next_chunk().unwrap().is_none());
        assert!(r.next_chunk().unwrap().is_none(), "idempotent at EOF");
        assert_eq!(r.events_read(), 0);
    }

    #[test]
    fn truncated_file_reports_missing_footer() {
        let buf = write_events(&[TraceEvent::load(0, 8)]);
        // cut the footer (16 bytes) off: EOF lands on a chunk boundary
        let mut r = TraceReader::new(&buf[..buf.len() - 16]).unwrap();
        r.next_chunk().unwrap(); // the one real chunk decodes fine
        assert!(matches!(r.next_chunk(), Err(TraceError::MissingFooter)));
        assert!(r.next_chunk().unwrap().is_none(), "fused after error");
    }

    #[test]
    fn truncated_chunk_reported() {
        let events: Vec<TraceEvent> = (0..100u64).map(|i| TraceEvent::load(i * 8, 8)).collect();
        let buf = write_events(&events);
        // cut inside the first chunk's payload
        let mut r = TraceReader::new(&buf[..buf.len() - 40]).unwrap();
        assert!(matches!(
            r.next_chunk(),
            Err(TraceError::TruncatedChunk { chunk: 0 })
        ));
    }

    #[test]
    fn flipped_payload_byte_fails_crc() {
        let events: Vec<TraceEvent> = (0..100u64).map(|i| TraceEvent::load(i * 8, 8)).collect();
        let mut buf = write_events(&events);
        let n = buf.len();
        buf[n - 30] ^= 0x40; // somewhere inside the chunk payload
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        assert!(matches!(
            r.next_chunk(),
            Err(TraceError::ChunkCrcMismatch { chunk: 0 })
        ));
    }

    #[test]
    fn corrupt_footer_total_detected() {
        let buf = write_events(&[TraceEvent::load(0, 8)]);
        let mut bad = buf.clone();
        let n = bad.len();
        bad[n - 12] ^= 0x01; // low byte of the footer's total_events
        let mut r = TraceReader::new(bad.as_slice()).unwrap();
        r.next_chunk().unwrap();
        assert!(matches!(r.next_chunk(), Err(TraceError::CorruptFooter)));
    }

    #[test]
    fn trailing_data_detected() {
        let mut buf = write_events(&[TraceEvent::load(0, 8)]);
        buf.push(0xAB);
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        r.next_chunk().unwrap();
        assert!(matches!(r.next_chunk(), Err(TraceError::TrailingData)));
    }

    #[test]
    fn skip_walk_sees_every_event_once() {
        // 3 full chunks + a partial tail; decode only every other chunk
        let n = (crate::format::TRACE_CHUNK_EVENTS * 3 + 100) as u64;
        let events: Vec<TraceEvent> = (0..n).map(|i| TraceEvent::load(i * 8, 4)).collect();
        let buf = write_events(&events);
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        let mut decoded = 0u64;
        let mut skipped = 0u64;
        let mut next_first = 0u64;
        let mut toggle = false;
        loop {
            toggle = !toggle;
            match r.next_chunk_where(|first, count| {
                assert_eq!(first, next_first, "first_event index must be contiguous");
                next_first = first + u64::from(count);
                toggle
            }) {
                Ok(ChunkStep::Events(evs)) => {
                    // decoded events match the recorded stream slice
                    let start = (decoded + skipped) as usize;
                    assert_eq!(evs, &events[start..start + evs.len()]);
                    decoded += evs.len() as u64;
                }
                Ok(ChunkStep::Skipped { count, .. }) => skipped += u64::from(count),
                Ok(ChunkStep::End) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(decoded + skipped, n, "footer total covers both");
        assert_eq!(r.events_read(), decoded);
        assert_eq!(r.events_skipped(), skipped);
        assert_eq!(r.chunks_read(), 2);
        assert_eq!(r.chunks_skipped(), 2);
        assert_eq!(
            r.crc_verified_chunks(),
            2,
            "skipped chunks are not CRC-checked"
        );
    }

    #[test]
    fn skip_all_still_validates_footer_total() {
        let events: Vec<TraceEvent> = (0..10_000u64).map(|i| TraceEvent::load(i * 8, 8)).collect();
        let buf = write_events(&events);
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        loop {
            match r.next_chunk_where(|_, _| false).unwrap() {
                ChunkStep::End => break,
                ChunkStep::Skipped { .. } => {}
                ChunkStep::Events(_) => panic!("nothing should decode"),
            }
        }
        assert_eq!(r.events_skipped(), 10_000);

        // a corrupted footer total is still caught on a skip-only walk
        let mut bad = write_events(&events);
        let n = bad.len();
        bad[n - 12] ^= 0x01;
        let mut r = TraceReader::new(bad.as_slice()).unwrap();
        let err = loop {
            match r.next_chunk_where(|_, _| false) {
                Ok(ChunkStep::End) => panic!("must error"),
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        assert!(matches!(err, TraceError::CorruptFooter));
    }

    #[test]
    fn truncation_inside_skipped_chunk_reported() {
        let events: Vec<TraceEvent> = (0..100u64).map(|i| TraceEvent::load(i * 8, 8)).collect();
        let buf = write_events(&events);
        let mut r = TraceReader::new(&buf[..buf.len() - 40]).unwrap();
        assert!(matches!(
            r.next_chunk_where(|_, _| false),
            Err(TraceError::TruncatedChunk { chunk: 0 })
        ));
    }

    #[test]
    fn multi_chunk_traces_decode_across_boundaries() {
        // 3 full chunks plus a partial one, with a huge backwards jump at
        // each chunk boundary to exercise first_addr re-anchoring
        let mut events = Vec::new();
        for i in 0..(crate::format::TRACE_CHUNK_EVENTS * 3 + 100) as u64 {
            let base = if i % 2 == 0 { 0x1000_0000 } else { 0x10 };
            events.push(TraceEvent::load(base + i * 8, 4));
        }
        let buf = write_events(&events);
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.read_all().unwrap(), events);
        assert_eq!(r.chunks_read(), 4);
    }
}
