//! Exact LRU stack-distance (reuse-distance) analysis.
//!
//! The stack distance of a reference is the number of *distinct* blocks
//! touched since the previous reference to the same block (∞ for first
//! touches). Its histogram fully characterizes an address stream's
//! temporal locality: a fully associative LRU cache of capacity `C` blocks
//! hits exactly those references with stack distance `< C` — which makes
//! this analyzer an independent oracle for validating the cache simulator
//! (see the `reuse_distance_validates_cache` integration test) and a way
//! to read off the miss curve for *every* capacity from a single pass.
//!
//! Implementation: Olken's algorithm — a Fenwick (binary-indexed) tree
//! over reference timestamps counts how many *most-recent* references to
//! distinct blocks occurred after the block's previous touch, in
//! `O(log n)` per reference.

use crate::event::{TraceEvent, TraceSink};
use std::collections::HashMap;

/// Streaming exact stack-distance histogram at block granularity.
#[derive(Debug, Clone)]
pub struct ReuseDistance {
    block_shift: u32,
    /// time of the most recent reference to each block
    last_touch: HashMap<u64, u64>,
    /// Fenwick tree over timestamps: 1 where a timestamp is the *current*
    /// last touch of some block, else 0
    fenwick: Vec<u64>,
    time: u64,
    /// histogram bucketed by power of two: bucket `i` counts distances in
    /// `[2^i, 2^(i+1))`; bucket 0 counts distances 0 and 1
    histogram: [u64; 48],
    /// first touches (infinite distance = cold misses)
    cold: u64,
    total: u64,
}

impl ReuseDistance {
    /// Analyze at `block_bytes` granularity (power of two; 64 for cache
    /// lines, a page size for DRAM-cache studies).
    pub fn new(block_bytes: u64) -> Self {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        Self {
            block_shift: block_bytes.trailing_zeros(),
            last_touch: HashMap::new(),
            fenwick: vec![0; 1024],
            time: 0,
            histogram: [0; 48],
            cold: 0,
            total: 0,
        }
    }

    #[inline]
    fn fenwick_add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.fenwick.len() {
            self.fenwick[i] = self.fenwick[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of `fenwick[0..=i]`.
    #[inline]
    fn fenwick_sum(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0u64;
        while i > 0 {
            s = s.wrapping_add(self.fenwick[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }

    fn grow(&mut self, need: usize) {
        if need + 1 >= self.fenwick.len() {
            // rebuild at double size (Fenwick trees do not resize in place)
            let mut bigger = Self {
                fenwick: vec![0; (need + 2).next_power_of_two() * 2],
                ..self.clone()
            };
            for (_, &t) in self.last_touch.iter() {
                bigger.fenwick_add(t as usize, 1);
            }
            self.fenwick = bigger.fenwick;
        }
    }

    /// Record one block touch and return its stack distance (`None` for a
    /// first touch).
    pub fn touch(&mut self, block: u64) -> Option<u64> {
        self.total += 1;
        let t = self.time;
        self.grow(t as usize);
        let dist = match self.last_touch.insert(block, t) {
            Some(prev) => {
                // distinct blocks touched after `prev`: ones in (prev, t)
                let d = self.fenwick_sum(t as usize) - self.fenwick_sum(prev as usize);
                self.fenwick_add(prev as usize, -1);
                Some(d)
            }
            None => {
                self.cold += 1;
                None
            }
        };
        self.fenwick_add(t as usize, 1);
        self.time += 1;
        if let Some(d) = dist {
            let bucket = if d <= 1 {
                0
            } else {
                (63 - d.leading_zeros()) as usize
            };
            self.histogram[bucket.min(47)] += 1;
        }
        dist
    }

    /// Total references analyzed.
    pub fn total_refs(&self) -> u64 {
        self.total
    }

    /// First touches (cold misses at any capacity).
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Distinct blocks seen (the working set in blocks).
    pub fn distinct_blocks(&self) -> u64 {
        self.last_touch.len() as u64
    }

    /// Power-of-two-bucketed histogram of finite distances.
    pub fn histogram(&self) -> &[u64; 48] {
        &self.histogram
    }

    /// Predicted hits of a *fully associative LRU* cache holding
    /// `capacity_blocks` blocks: references with distance < capacity.
    ///
    /// Exact only at power-of-two capacities (bucket edges); other values
    /// round the boundary bucket conservatively down.
    pub fn predicted_lru_hits(&self, capacity_blocks: u64) -> u64 {
        if capacity_blocks == 0 {
            return 0;
        }
        // buckets strictly below capacity
        let full_buckets = if capacity_blocks <= 1 {
            0
        } else {
            (64 - (capacity_blocks - 1).leading_zeros()) as usize
        };
        self.histogram[..full_buckets.min(48)].iter().sum()
    }

    /// The miss ratio curve at power-of-two capacities `2^0 .. 2^max_log2`
    /// (in blocks): `curve[i]` = misses/refs for capacity `2^i`.
    pub fn miss_ratio_curve(&self, max_log2: u32) -> Vec<f64> {
        (0..=max_log2)
            .map(|i| {
                let hits = self.predicted_lru_hits(1 << i);
                (self.total - hits) as f64 / self.total.max(1) as f64
            })
            .collect()
    }
}

impl TraceSink for ReuseDistance {
    #[inline]
    fn access(&mut self, ev: TraceEvent) {
        let first = ev.addr >> self.block_shift;
        let last = (ev.end().saturating_sub(1)) >> self.block_shift;
        for b in first..=last {
            self.touch(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[test]
    fn simple_sequence() {
        let mut r = ReuseDistance::new(64);
        // blocks: A B A  → A's second touch has distance 1 (B in between)
        assert_eq!(r.touch(0), None);
        assert_eq!(r.touch(1), None);
        assert_eq!(r.touch(0), Some(1));
        // immediate re-touch: distance 0
        assert_eq!(r.touch(0), Some(0));
        assert_eq!(r.cold_misses(), 2);
        assert_eq!(r.total_refs(), 4);
        assert_eq!(r.distinct_blocks(), 2);
    }

    #[test]
    fn distance_counts_distinct_not_total() {
        let mut r = ReuseDistance::new(64);
        r.touch(10);
        r.touch(20);
        r.touch(20);
        r.touch(20); // repeats must not inflate the distance
        assert_eq!(r.touch(10), Some(1));
    }

    #[test]
    fn cyclic_sweep_distance_equals_working_set() {
        let n = 100u64;
        let mut r = ReuseDistance::new(64);
        for _ in 0..3 {
            for b in 0..n {
                r.touch(b);
            }
        }
        // every non-cold touch has distance n-1
        let hist = r.histogram();
        let bucket = (63 - (n - 1).leading_zeros()) as usize;
        assert_eq!(hist[bucket], 2 * n);
        assert_eq!(r.cold_misses(), n);
    }

    #[test]
    fn lru_prediction_on_cyclic_sweep() {
        // sweeping n blocks cyclically: LRU with capacity >= n hits after
        // the cold pass; any smaller power-of-two capacity never hits
        let n = 128u64;
        let mut r = ReuseDistance::new(64);
        for _ in 0..4 {
            for b in 0..n {
                r.touch(b);
            }
        }
        assert_eq!(
            r.predicted_lru_hits(n),
            3 * n,
            "capacity n hits all repeats"
        );
        assert_eq!(r.predicted_lru_hits(n / 2), 0, "smaller capacity thrashes");
    }

    #[test]
    fn sink_splits_straddling_events() {
        let mut r = ReuseDistance::new(64);
        r.access(TraceEvent::load(60, 8)); // touches blocks 0 and 1
        assert_eq!(r.distinct_blocks(), 2);
    }

    #[test]
    fn fenwick_grows_transparently() {
        let mut r = ReuseDistance::new(64);
        for i in 0..5000u64 {
            r.touch(i % 100);
        }
        assert_eq!(r.total_refs(), 5000);
        assert_eq!(r.distinct_blocks(), 100);
        // all repeats at distance 99
        assert_eq!(r.predicted_lru_hits(128), 4900);
    }

    #[test]
    fn miss_ratio_curve_is_monotone() {
        let mut r = ReuseDistance::new(64);
        let mut x = 1u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            r.touch(x % 3000);
        }
        let curve = r.miss_ratio_curve(14);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "bigger caches cannot miss more");
        }
        assert!(curve[14] < curve[0]);
    }

    /// Reference implementation: an explicit LRU stack (O(n) per access).
    struct NaiveStack(VecDeque<u64>);

    impl NaiveStack {
        fn touch(&mut self, b: u64) -> Option<u64> {
            if let Some(pos) = self.0.iter().position(|&x| x == b) {
                self.0.remove(pos);
                self.0.push_front(b);
                Some(pos as u64)
            } else {
                self.0.push_front(b);
                None
            }
        }
    }

    proptest! {
        /// Olken's algorithm agrees with the naive LRU stack on arbitrary
        /// block streams.
        #[test]
        fn matches_naive_stack(blocks in proptest::collection::vec(0u64..64, 1..600)) {
            let mut fast = ReuseDistance::new(64);
            let mut slow = NaiveStack(VecDeque::new());
            for b in blocks {
                prop_assert_eq!(fast.touch(b), slow.touch(b));
            }
        }
    }
}
