//! One entry point per table and figure of the paper's evaluation.
//!
//! Every function returns a [`FigureData`] (or [`HeatmapData`]) whose rows
//! correspond to what the paper plots; the `memsim-bench` harness prints
//! them and EXPERIMENTS.md records paper-vs-measured values.

use crate::configs::{eh_configs, n_configs};
use crate::design::Design;
use crate::heatmap::{default_multipliers, heatmap_sampled, Axis, HeatmapData};
use crate::journal::SweepCtx;
use crate::model::NormMetrics;
use crate::report::{FigureData, Series};
use crate::runner::{evaluate_grid_sweep_sampled, Engine, EvalResult, SimCache, SweepError};
use crate::sampling::SampleMode;
use crate::scale::Scale;
use memsim_tech::{TechParams, Technology};
use memsim_workloads::WorkloadKind;
use std::collections::HashMap;

/// Shared context for the experiment suite.
pub struct ExperimentCtx<'a> {
    /// Capacity scale (and workload class).
    pub scale: Scale,
    /// The benchmark set to average over (defaults to the Table 4 set).
    pub workloads: Vec<WorkloadKind>,
    /// Shared simulation memo.
    pub cache: &'a SimCache,
    /// Worker threads (None = available parallelism).
    pub threads: Option<usize>,
    /// Journal/resume/interrupt state shared across the suite (None =
    /// plain run, no checkpointing).
    pub sweep: Option<&'a SweepCtx>,
    /// Which engine walks each structure simulation (results are
    /// engine-independent; this is a throughput choice).
    pub engine: Engine,
    /// Interval sampling mode: `Off` runs every event; `On` simulates
    /// one representative interval per cluster and extrapolates (results
    /// carry confidence intervals).
    pub sample: SampleMode,
}

impl<'a> ExperimentCtx<'a> {
    /// A context over the paper's benchmark set at the given scale.
    pub fn new(scale: Scale, cache: &'a SimCache) -> Self {
        Self {
            scale,
            workloads: WorkloadKind::PAPER_SET.to_vec(),
            cache,
            threads: None,
            sweep: None,
            engine: Engine::Sequential,
            sample: SampleMode::Off,
        }
    }

    /// Restrict the benchmark set (smoke tests).
    pub fn with_workloads(mut self, w: &[WorkloadKind]) -> Self {
        self.workloads = w.to_vec();
        self
    }

    /// Attach a sweep context: every grid evaluation journals completed
    /// points, serves resumed points from the journal, and honors the
    /// interrupt flag.
    pub fn with_sweep(mut self, sweep: &'a SweepCtx) -> Self {
        self.sweep = Some(sweep);
        self
    }

    /// Choose the simulation engine (default sequential).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Choose the sampling mode (default off = full fidelity).
    pub fn with_sample(mut self, sample: SampleMode) -> Self {
        self.sample = sample;
        self
    }
}

/// Run a grid under the context's sweep state and lift the outcome into a
/// `Result`: an interrupt wins over failures (the journal already holds
/// both kinds of entry), and failures abort the *artifact* while every
/// surviving point remains journaled for the next attempt.
fn grid_or_err(
    ctx: &ExperimentCtx,
    points: &[(WorkloadKind, Design)],
) -> Result<Vec<EvalResult>, SweepError> {
    let outcome = evaluate_grid_sweep_sampled(
        points,
        &ctx.scale,
        ctx.cache,
        ctx.threads,
        ctx.sweep,
        ctx.engine,
        ctx.sample,
    );
    if outcome.interrupted {
        return Err(SweepError::Interrupted);
    }
    if !outcome.failures.is_empty() {
        return Err(SweepError::Failed(outcome.failures));
    }
    Ok(outcome
        .results
        .into_iter()
        .map(|slot| slot.expect("missing result"))
        .collect())
}

/// Which normalized metric a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Normalized runtime.
    Time,
    /// Normalized total energy.
    Energy,
    /// Normalized energy-delay product.
    Edp,
}

impl Metric {
    fn pick(&self, n: &NormMetrics) -> f64 {
        match self {
            Metric::Time => n.time,
            Metric::Energy => n.energy,
            Metric::Edp => n.edp,
        }
    }
}

/// Evaluate `designs` × the context's workloads (plus baselines) in
/// parallel and return normalized metrics per (workload, design-label).
pub fn norm_grid(
    ctx: &ExperimentCtx,
    designs: &[Design],
) -> Result<HashMap<(WorkloadKind, String), NormMetrics>, SweepError> {
    let mut points: Vec<(WorkloadKind, Design)> = Vec::new();
    for &w in &ctx.workloads {
        points.push((w, Design::Baseline));
        for d in designs {
            points.push((w, *d));
        }
    }
    let results = grid_or_err(ctx, &points)?;
    let mut base: HashMap<WorkloadKind, EvalResult> = HashMap::new();
    for r in &results {
        if matches!(r.design, Design::Baseline) {
            base.insert(r.workload, r.clone());
        }
    }
    let mut out = HashMap::new();
    for r in &results {
        if matches!(r.design, Design::Baseline) {
            continue;
        }
        let b = &base[&r.workload];
        out.insert(
            (r.workload, r.design.label()),
            r.metrics.normalized_to(&b.metrics),
        );
    }
    Ok(out)
}

fn averaged_series(
    ctx: &ExperimentCtx,
    grid: &HashMap<(WorkloadKind, String), NormMetrics>,
    labels: &[String],
    metric: Metric,
) -> Vec<f64> {
    labels
        .iter()
        .map(|l| {
            let norms: Vec<NormMetrics> = ctx
                .workloads
                .iter()
                .map(|w| grid[&(*w, l.clone())])
                .collect();
            metric.pick(&NormMetrics::mean(&norms))
        })
        .collect()
}

/// Table 1: the technology characterization (verbatim from `memsim-tech`).
pub fn table1() -> FigureData {
    let rows = Technology::ALL;
    FigureData {
        id: "table1".into(),
        title: "Characteristics of different memory technologies".into(),
        x_labels: vec![
            "read delay (ns)".into(),
            "write delay (ns)".into(),
            "read energy (pJ/bit)".into(),
            "write energy (pJ/bit)".into(),
        ],
        series: rows
            .iter()
            .map(|t| {
                let p = TechParams::of(*t);
                Series {
                    name: t.name().to_string(),
                    values: vec![p.read_ns, p.write_ns, p.read_pj_per_bit, p.write_pj_per_bit],
                }
            })
            .collect(),
    }
}

/// Table 4: workload characteristics (footprint and modeled reference time).
pub fn table4(ctx: &ExperimentCtx) -> Result<FigureData, SweepError> {
    let points: Vec<(WorkloadKind, Design)> = ctx
        .workloads
        .iter()
        .map(|w| (*w, Design::Baseline))
        .collect();
    let results = grid_or_err(ctx, &points)?;
    Ok(FigureData {
        id: "table4".into(),
        title: "Characteristics of the benchmarks (model scale)".into(),
        x_labels: vec![
            "footprint (MiB)".into(),
            "references (M)".into(),
            "modeled time (ms)".into(),
            "AMAT (ns)".into(),
        ],
        series: results
            .iter()
            .map(|r| Series {
                name: r.workload.name().to_string(),
                values: vec![
                    r.run.footprint_bytes as f64 / (1 << 20) as f64,
                    r.run.total_refs as f64 / 1e6,
                    r.metrics.time_s * 1e3,
                    r.metrics.amat_ns,
                ],
            })
            .collect(),
    })
}

/// Figures 1 and 2: NMM normalized runtime/energy across N1–N9, averaged
/// over the benchmarks, one series per NVM technology.
pub fn fig_nmm(ctx: &ExperimentCtx, metric: Metric) -> Result<FigureData, SweepError> {
    let designs: Vec<Design> = n_configs()
        .iter()
        .flat_map(|c| {
            Technology::NVM.iter().map(|t| Design::Nmm {
                nvm: *t,
                config: *c,
            })
        })
        .collect();
    let grid = norm_grid(ctx, &designs)?;
    let x_labels: Vec<String> = n_configs().iter().map(|c| c.name.to_string()).collect();
    let series = Technology::NVM
        .iter()
        .map(|t| {
            let labels: Vec<String> = n_configs()
                .iter()
                .map(|c| {
                    Design::Nmm {
                        nvm: *t,
                        config: *c,
                    }
                    .label()
                })
                .collect();
            Series {
                name: t.name().into(),
                values: averaged_series(ctx, &grid, &labels, metric),
            }
        })
        .collect();
    let (id, what) = match metric {
        Metric::Time => ("fig1", "run time"),
        Metric::Energy => ("fig2", "energy"),
        Metric::Edp => ("fig1-edp", "EDP"),
    };
    Ok(FigureData {
        id: id.into(),
        title: format!("Average of normalized {what} of all benchmarks for NMM"),
        x_labels,
        series,
    })
}

/// Figures 3 and 4: 4LC normalized runtime/energy across EH1–EH8, one
/// series per LLC technology.
pub fn fig_4lc(ctx: &ExperimentCtx, metric: Metric) -> Result<FigureData, SweepError> {
    let designs: Vec<Design> = eh_configs()
        .iter()
        .flat_map(|c| {
            Technology::FAST_LLC.iter().map(|t| Design::FourLc {
                llc: *t,
                config: *c,
            })
        })
        .collect();
    let grid = norm_grid(ctx, &designs)?;
    let x_labels: Vec<String> = eh_configs().iter().map(|c| c.name.to_string()).collect();
    let series = Technology::FAST_LLC
        .iter()
        .map(|t| {
            let labels: Vec<String> = eh_configs()
                .iter()
                .map(|c| {
                    Design::FourLc {
                        llc: *t,
                        config: *c,
                    }
                    .label()
                })
                .collect();
            Series {
                name: t.name().into(),
                values: averaged_series(ctx, &grid, &labels, metric),
            }
        })
        .collect();
    let (id, what) = match metric {
        Metric::Time => ("fig3", "run time"),
        Metric::Energy => ("fig4", "total energy"),
        Metric::Edp => ("fig3-edp", "EDP"),
    };
    Ok(FigureData {
        id: id.into(),
        title: format!("Average of normalized {what} of all benchmarks for 4LC"),
        x_labels,
        series,
    })
}

/// Figures 5 and 6: 4LCNVM normalized runtime/energy across EH1–EH8. The
/// series cover both LLC technologies with PCM plus eDRAM with the other
/// NVMs.
pub fn fig_4lcnvm(ctx: &ExperimentCtx, metric: Metric) -> Result<FigureData, SweepError> {
    let combos: Vec<(Technology, Technology)> = vec![
        (Technology::Edram, Technology::Pcm),
        (Technology::Hmc, Technology::Pcm),
        (Technology::Edram, Technology::SttRam),
        (Technology::Edram, Technology::FeRam),
    ];
    let designs: Vec<Design> = eh_configs()
        .iter()
        .flat_map(|c| {
            combos.iter().map(|(l, n)| Design::FourLcNvm {
                llc: *l,
                nvm: *n,
                config: *c,
            })
        })
        .collect();
    let grid = norm_grid(ctx, &designs)?;
    let x_labels: Vec<String> = eh_configs().iter().map(|c| c.name.to_string()).collect();
    let series = combos
        .iter()
        .map(|(l, n)| {
            let labels: Vec<String> = eh_configs()
                .iter()
                .map(|c| {
                    Design::FourLcNvm {
                        llc: *l,
                        nvm: *n,
                        config: *c,
                    }
                    .label()
                })
                .collect();
            Series {
                name: format!("{}+{}", l.name(), n.name()),
                values: averaged_series(ctx, &grid, &labels, metric),
            }
        })
        .collect();
    let (id, what) = match metric {
        Metric::Time => ("fig5", "run time"),
        Metric::Energy => ("fig6", "total energy"),
        Metric::Edp => ("fig5-edp", "EDP"),
    };
    Ok(FigureData {
        id: id.into(),
        title: format!("Average of normalized {what} of all benchmarks for 4LCNVM"),
        x_labels,
        series,
    })
}

/// Figures 7 and 8: NDM normalized runtime/energy per benchmark, one
/// series per NVM technology.
pub fn fig_ndm(ctx: &ExperimentCtx, metric: Metric) -> Result<FigureData, SweepError> {
    let designs: Vec<Design> = Technology::NVM
        .iter()
        .map(|t| Design::Ndm { nvm: *t })
        .collect();
    let grid = norm_grid(ctx, &designs)?;
    let x_labels: Vec<String> = ctx.workloads.iter().map(|w| w.name().to_string()).collect();
    let series = Technology::NVM
        .iter()
        .map(|t| {
            let label = Design::Ndm { nvm: *t }.label();
            Series {
                name: t.name().into(),
                values: ctx
                    .workloads
                    .iter()
                    .map(|w| metric.pick(&grid[&(*w, label.clone())]))
                    .collect(),
            }
        })
        .collect();
    let (id, what) = match metric {
        Metric::Time => ("fig7", "run time"),
        Metric::Energy => ("fig8", "total energy"),
        Metric::Edp => ("fig7-edp", "EDP"),
    };
    Ok(FigureData {
        id: id.into(),
        title: format!("Normalized {what} per benchmark for the NDM design"),
        x_labels,
        series,
    })
}

/// Figure 9: the runtime heat map over read/write latency multipliers.
pub fn fig9(ctx: &ExperimentCtx) -> Result<HeatmapData, SweepError> {
    let m = default_multipliers();
    heatmap_sampled(
        &ctx.workloads,
        &ctx.scale,
        ctx.cache,
        Axis::Latency,
        &m,
        &m,
        ctx.sweep,
        ctx.engine,
        ctx.sample,
    )
}

/// Figure 10: the energy heat map over read/write energy multipliers.
pub fn fig10(ctx: &ExperimentCtx) -> Result<HeatmapData, SweepError> {
    let m = default_multipliers();
    heatmap_sampled(
        &ctx.workloads,
        &ctx.scale,
        ctx.cache,
        Axis::Energy,
        &m,
        &m,
        ctx.sweep,
        ctx.engine,
        ctx.sample,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ctx(cache: &SimCache) -> ExperimentCtx<'_> {
        ExperimentCtx::new(Scale::mini(), cache)
            .with_workloads(&[WorkloadKind::Cg, WorkloadKind::Hash])
    }

    #[test]
    fn table1_is_six_by_four() {
        let t = table1();
        t.validate();
        assert_eq!(t.series.len(), 6);
        assert_eq!(t.x_labels.len(), 4);
        // PCM row, write delay column
        let pcm = t.series.iter().find(|s| s.name == "PCM").unwrap();
        assert_eq!(pcm.values[1], 100.0);
    }

    #[test]
    fn table4_reports_workloads() {
        let cache = SimCache::new();
        let t = table4(&quick_ctx(&cache)).unwrap();
        t.validate();
        assert_eq!(t.series.len(), 2);
        for s in &t.series {
            assert!(s.values[0] > 1.0, "{}: footprint must exceed 1 MiB", s.name);
            assert!(
                s.values[1] > 0.1,
                "{}: references must be nontrivial",
                s.name
            );
        }
    }

    #[test]
    fn fig_nmm_shape_and_sanity() {
        let cache = SimCache::new();
        let f = fig_nmm(&quick_ctx(&cache), Metric::Time).unwrap();
        f.validate();
        assert_eq!(f.x_labels.len(), 9);
        assert_eq!(f.series.len(), 3);
        for s in &f.series {
            for v in &s.values {
                assert!(
                    *v > 0.8 && *v < 4.0,
                    "{}: implausible normalized time {v}",
                    s.name
                );
            }
        }
        // PCM (slow writes) must not beat STT-RAM on time at any config
        let pcm = &f.series.iter().find(|s| s.name == "PCM").unwrap().values;
        let stt = &f.series.iter().find(|s| s.name == "STTRAM").unwrap().values;
        // both within a loose band of each other (DRAM cache filters most traffic)
        for (p, s) in pcm.iter().zip(stt) {
            assert!((p / s - 1.0).abs() < 0.5);
        }
    }

    #[test]
    fn fig_4lc_time_band() {
        let cache = SimCache::new();
        let f = fig_4lc(&quick_ctx(&cache), Metric::Time).unwrap();
        f.validate();
        assert_eq!(f.series.len(), 2);
        // 4LC adds a faster level in front of DRAM: runtime stays near 1.0
        for s in &f.series {
            for v in &s.values {
                assert!(
                    *v > 0.7 && *v < 1.3,
                    "{}: normalized time {v} out of band",
                    s.name
                );
            }
        }
    }

    #[test]
    fn edp_metric_produces_distinct_figure() {
        let cache = SimCache::new();
        let ctx = ExperimentCtx::new(Scale::mini(), &cache).with_workloads(&[WorkloadKind::Cg]);
        let t = fig_nmm(&ctx, Metric::Time).unwrap();
        let e = fig_nmm(&ctx, Metric::Edp).unwrap();
        assert_eq!(e.id, "fig1-edp");
        // EDP = time × energy ratios: at equal x, EDP differs from time
        // whenever energy differs from 1
        let tv = t.series[0].values[0];
        let ev = e.series[0].values[0];
        assert!((tv - ev).abs() > 1e-9 || (tv - 1.0).abs() < 1e-6);
    }

    #[test]
    fn norm_grid_covers_every_point() {
        let cache = SimCache::new();
        let ctx = ExperimentCtx::new(Scale::mini(), &cache).with_workloads(&[WorkloadKind::Cg]);
        let designs = vec![
            Design::Nmm {
                nvm: Technology::Pcm,
                config: n_configs()[0],
            },
            Design::Ndm {
                nvm: Technology::Pcm,
            },
        ];
        let grid = norm_grid(&ctx, &designs).unwrap();
        assert_eq!(grid.len(), 2);
        for d in &designs {
            assert!(
                grid.contains_key(&(WorkloadKind::Cg, d.label())),
                "{}",
                d.label()
            );
        }
    }

    #[test]
    fn fig_ndm_per_benchmark() {
        let cache = SimCache::new();
        let ctx = quick_ctx(&cache);
        let f = fig_ndm(&ctx, Metric::Time).unwrap();
        f.validate();
        assert_eq!(f.x_labels, vec!["CG".to_string(), "Hash".to_string()]);
        assert_eq!(f.series.len(), 3);
        // NDM routes some traffic to NVM: runtime is at or above baseline
        for s in &f.series {
            for v in &s.values {
                assert!(
                    *v >= 0.99,
                    "{}: NDM should not beat baseline runtime: {v}",
                    s.name
                );
            }
        }
    }
}
