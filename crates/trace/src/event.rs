//! Trace events and the streaming sink interface.

/// Whether a memory reference reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read of memory (CPU load, or a block fetch issued by a cache fill).
    Load,
    /// A write to memory (CPU store, or a dirty-block writeback).
    Store,
}

impl AccessKind {
    /// `true` for [`AccessKind::Store`].
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }

    /// `true` for [`AccessKind::Load`].
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, AccessKind::Load)
    }
}

/// One memory reference in the application's address stream.
///
/// `size` is the number of bytes touched (the element size for container
/// accesses). Events never cross a cache-line boundary when produced by the
/// instrumented containers, because [`crate::AddressSpace`] aligns every
/// region and Rust element types are naturally aligned within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual byte address of the first byte touched.
    pub addr: u64,
    /// Number of bytes touched.
    pub size: u32,
    /// Read or write.
    pub kind: AccessKind,
}

impl TraceEvent {
    /// Convenience constructor for a load event.
    #[inline]
    pub fn load(addr: u64, size: u32) -> Self {
        Self {
            addr,
            size,
            kind: AccessKind::Load,
        }
    }

    /// Convenience constructor for a store event.
    #[inline]
    pub fn store(addr: u64, size: u32) -> Self {
        Self {
            addr,
            size,
            kind: AccessKind::Store,
        }
    }

    /// Exclusive end address of the touched range.
    #[inline]
    pub fn end(&self) -> u64 {
        self.addr + u64::from(self.size)
    }
}

/// A consumer of the online address stream.
///
/// Implementors include the cache hierarchy simulator (in `memsim-cache` /
/// `memsim-core`) and the composable utility sinks in [`crate::sinks`].
pub trait TraceSink {
    /// Consume one memory reference.
    fn access(&mut self, ev: TraceEvent);

    /// Consume a batch of references. Equivalent to calling
    /// [`TraceSink::access`] on each event in order — and the default does
    /// exactly that — but a sink with a hot per-event path (the cache
    /// hierarchy) overrides it to pay one virtual dispatch per batch
    /// instead of per event. Implementors must preserve per-event
    /// semantics: same events, same order, no batch-boundary effects.
    fn access_chunk(&mut self, events: &[TraceEvent]) {
        for &ev in events {
            self.access(ev);
        }
    }

    /// Signal the end of the stream. Sinks that buffer (e.g. sampling
    /// aggregators) finalize here. The default does nothing.
    fn flush(&mut self) {}
}

/// A sink that forwards every event to a closure.
///
/// Useful in tests and for ad-hoc filtering.
pub struct FnSink<F: FnMut(TraceEvent)>(pub F);

impl<F: FnMut(TraceEvent)> TraceSink for FnSink<F> {
    #[inline]
    fn access(&mut self, ev: TraceEvent) {
        (self.0)(ev)
    }
}

impl TraceSink for Box<dyn TraceSink + '_> {
    #[inline]
    fn access(&mut self, ev: TraceEvent) {
        (**self).access(ev)
    }

    fn access_chunk(&mut self, events: &[TraceEvent]) {
        (**self).access_chunk(events)
    }

    fn flush(&mut self) {
        (**self).flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Load.is_load());
        assert!(!AccessKind::Load.is_store());
        assert!(AccessKind::Store.is_store());
        assert!(!AccessKind::Store.is_load());
    }

    #[test]
    fn event_constructors() {
        let l = TraceEvent::load(0x100, 8);
        assert_eq!(l.kind, AccessKind::Load);
        assert_eq!(l.end(), 0x108);
        let s = TraceEvent::store(0x200, 4);
        assert_eq!(s.kind, AccessKind::Store);
        assert_eq!(s.end(), 0x204);
    }

    #[test]
    fn fn_sink_forwards() {
        let mut seen = Vec::new();
        {
            let mut sink = FnSink(|ev: TraceEvent| seen.push(ev.addr));
            sink.access(TraceEvent::load(1, 8));
            sink.access(TraceEvent::store(2, 8));
            sink.flush();
        }
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn boxed_sink_dispatches() {
        struct Probe(u64);
        impl TraceSink for Probe {
            fn access(&mut self, _: TraceEvent) {
                self.0 += 1;
            }
        }
        let mut boxed: Box<dyn TraceSink> = Box::new(Probe(0));
        boxed.access(TraceEvent::load(0, 8));
        boxed.flush();
    }
}
