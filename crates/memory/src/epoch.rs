//! Epoch-resolved main-memory profiling.
//!
//! The paper's conclusion calls for "dynamic partitioning, that may change
//! between computation phases". The first requirement is a terminal that
//! records per-region traffic *per execution phase*: this profiler splits
//! the request stream into fixed-size epochs (measured in memory requests,
//! the quantity the terminal actually observes) and keeps one traffic
//! matrix row per epoch. The dynamic-partition oracle in `memsim-core`
//! consumes it.

use crate::partitioned::RegionTraffic;
use memsim_cache::MainMemory;
use memsim_trace::Region;

/// A terminal memory recording per-region traffic for each epoch of
/// `epoch_len` memory requests.
#[derive(Debug, Clone)]
pub struct EpochProfiler {
    starts: Vec<u64>,
    ends: Vec<u64>,
    epoch_len: u64,
    in_epoch: u64,
    /// `epochs[e][r]` = traffic of region `r` during epoch `e`.
    epochs: Vec<Vec<RegionTraffic>>,
    /// Requests that fell outside every region.
    pub unattributed: RegionTraffic,
    total_requests: u64,
}

impl EpochProfiler {
    /// Profile over the address-ordered `regions`, one epoch per
    /// `epoch_len` requests (`>= 1`).
    pub fn new(regions: &[Region], epoch_len: u64) -> Self {
        assert!(epoch_len >= 1, "epoch length must be positive");
        Self {
            starts: regions.iter().map(|r| r.start).collect(),
            ends: regions.iter().map(|r| r.end()).collect(),
            epoch_len,
            in_epoch: 0,
            epochs: vec![vec![RegionTraffic::default(); regions.len()]],
            unattributed: RegionTraffic::default(),
            total_requests: 0,
        }
    }

    #[inline]
    fn locate(&self, addr: u64) -> Option<usize> {
        let idx = self.starts.partition_point(|&s| s <= addr);
        if idx == 0 {
            return None;
        }
        (addr < self.ends[idx - 1]).then_some(idx - 1)
    }

    #[inline]
    fn tick(&mut self) {
        self.total_requests += 1;
        self.in_epoch += 1;
        if self.in_epoch >= self.epoch_len {
            self.in_epoch = 0;
            let regions = self.starts.len();
            self.epochs.push(vec![RegionTraffic::default(); regions]);
        }
    }

    /// The per-epoch traffic matrix (the trailing epoch may be partial;
    /// an all-zero trailing epoch is trimmed).
    pub fn epochs(&self) -> &[Vec<RegionTraffic>] {
        let trim = self
            .epochs
            .last()
            .map(|row| row.iter().all(|t| t.loads == 0 && t.stores == 0))
            .unwrap_or(false);
        if trim && self.epochs.len() > 1 {
            &self.epochs[..self.epochs.len() - 1]
        } else {
            &self.epochs
        }
    }

    /// Total requests observed.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Aggregate traffic per region across every epoch.
    pub fn aggregate(&self) -> Vec<RegionTraffic> {
        let n = self.starts.len();
        let mut agg = vec![RegionTraffic::default(); n];
        for row in &self.epochs {
            for (a, t) in agg.iter_mut().zip(row) {
                a.loads += t.loads;
                a.stores += t.stores;
                a.bytes_loaded += t.bytes_loaded;
                a.bytes_stored += t.bytes_stored;
            }
        }
        agg
    }
}

impl MainMemory for EpochProfiler {
    fn load(&mut self, addr: u64, bytes: u32) {
        if let Some(i) = self.locate(addr) {
            let e = self.epochs.len() - 1;
            self.epochs[e][i].loads += 1;
            self.epochs[e][i].bytes_loaded += u64::from(bytes);
        } else {
            self.unattributed.loads += 1;
            self.unattributed.bytes_loaded += u64::from(bytes);
        }
        self.tick();
    }

    fn store(&mut self, addr: u64, bytes: u32) {
        if let Some(i) = self.locate(addr) {
            let e = self.epochs.len() - 1;
            self.epochs[e][i].stores += 1;
            self.epochs[e][i].bytes_stored += u64::from(bytes);
        } else {
            self.unattributed.stores += 1;
            self.unattributed.bytes_stored += u64::from(bytes);
        }
        self.tick();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim_trace::AddressSpace;
    use proptest::prelude::*;

    fn regions2() -> (AddressSpace, Vec<Region>) {
        let mut s = AddressSpace::new();
        s.alloc("a", 65536);
        s.alloc("b", 65536);
        let r = s.regions().to_vec();
        (s, r)
    }

    #[test]
    fn epochs_split_at_request_boundaries() {
        let (_, regions) = regions2();
        let a = regions[0].start;
        let mut p = EpochProfiler::new(&regions, 3);
        for _ in 0..7 {
            p.load(a, 64);
        }
        // 7 requests at epoch length 3 → epochs of 3, 3, 1
        let e = p.epochs();
        assert_eq!(e.len(), 3);
        assert_eq!(e[0][0].loads, 3);
        assert_eq!(e[1][0].loads, 3);
        assert_eq!(e[2][0].loads, 1);
    }

    #[test]
    fn trailing_empty_epoch_is_trimmed() {
        let (_, regions) = regions2();
        let mut p = EpochProfiler::new(&regions, 2);
        for _ in 0..4 {
            p.load(regions[0].start, 64);
        }
        // exactly 2 full epochs; the pre-created empty third is hidden
        assert_eq!(p.epochs().len(), 2);
    }

    #[test]
    fn phase_change_is_visible() {
        let (_, regions) = regions2();
        let mut p = EpochProfiler::new(&regions, 10);
        for _ in 0..10 {
            p.load(regions[0].start, 64); // phase 1: region a
        }
        for _ in 0..10 {
            p.store(regions[1].start, 64); // phase 2: region b
        }
        let e = p.epochs();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0][0].loads, 10);
        assert_eq!(e[0][1].loads + e[0][1].stores, 0);
        assert_eq!(e[1][1].stores, 10);
        assert_eq!(e[1][0].loads + e[1][0].stores, 0);
    }

    #[test]
    fn unattributed_tracked_separately() {
        let (_, regions) = regions2();
        let mut p = EpochProfiler::new(&regions, 4);
        p.load(0, 64);
        assert_eq!(p.unattributed.loads, 1);
        assert_eq!(p.total_requests(), 1);
    }

    proptest! {
        /// The aggregate over epochs equals a flat profile of the same
        /// stream: epoch splitting never loses or duplicates traffic.
        #[test]
        fn aggregate_conserves(
            ops in proptest::collection::vec((0u64..0x1003_0000, proptest::bool::ANY), 1..300),
            epoch_len in 1u64..50,
        ) {
            let (_, regions) = regions2();
            let mut p = EpochProfiler::new(&regions, epoch_len);
            let mut flat = crate::PartitionedMemory::new(&regions, memsim_tech::Technology::Pcm);
            for &(addr, st) in &ops {
                if st {
                    p.store(addr, 64);
                    flat.store(addr, 64);
                } else {
                    p.load(addr, 64);
                    flat.load(addr, 64);
                }
            }
            let agg = p.aggregate();
            for (a, t) in agg.iter().zip(flat.traffic()) {
                prop_assert_eq!(a.loads, t.loads);
                prop_assert_eq!(a.stores, t.stores);
                prop_assert_eq!(a.bytes_loaded, t.bytes_loaded);
                prop_assert_eq!(a.bytes_stored, t.bytes_stored);
            }
            prop_assert_eq!(p.unattributed.loads, flat.unattributed.loads);
            prop_assert_eq!(p.unattributed.stores, flat.unattributed.stores);
        }
    }
}
