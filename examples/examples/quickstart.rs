//! Quickstart: stream a workload through a hybrid hierarchy and model it.
//!
//! Builds the paper's NMM design (PCM main memory behind a DRAM page
//! cache) by hand from the individual crates, runs the CG benchmark
//! through it, and prints the data-movement statistics and the modeled
//! runtime/energy against the all-DRAM baseline.
//!
//! ```text
//! cargo run --release -p memsim-examples --example quickstart
//! ```

use memsim_core::configs::n_by_name;
use memsim_core::{evaluate, Design, Scale};
use memsim_examples::{human_bytes, pct};
use memsim_tech::Technology;
use memsim_workloads::WorkloadKind;

fn main() {
    let scale = Scale::mini();

    // the design under test: NMM with PCM at Table 3 row N6 (512 MB / 512 B)
    let design = Design::Nmm {
        nvm: Technology::Pcm,
        config: n_by_name("N6").unwrap(),
    };

    println!("simulating CG through {} ...", design.label());
    let result = evaluate(WorkloadKind::Cg, &scale, &design);
    let base = evaluate(WorkloadKind::Cg, &scale, &Design::Baseline);

    println!(
        "\nworkload footprint: {}",
        human_bytes(result.run.footprint_bytes)
    );
    println!("references simulated: {}", result.run.total_refs);

    println!("\nper-level data movement:");
    for s in result.run.all_levels() {
        println!(
            "  {:<4} {:>12} loads {:>12} stores  hit rate {:>6.2}%  moved {}",
            s.name,
            s.loads,
            s.stores,
            s.hit_rate() * 100.0,
            human_bytes(s.bytes_loaded + s.bytes_stored),
        );
    }

    let norm = result.metrics.normalized_to(&base.metrics);
    println!("\nmodel vs the all-DRAM baseline (Equations 1-4 of the paper):");
    println!(
        "  AMAT    {:>8.3} ns  ({})",
        result.metrics.amat_ns,
        pct(norm.time)
    );
    println!(
        "  runtime {:>8.3} ms  ({})",
        result.metrics.time_s * 1e3,
        pct(norm.time)
    );
    println!(
        "  energy  {:>8.3} mJ  ({})",
        result.metrics.energy_j() * 1e3,
        pct(norm.energy)
    );
    println!("  EDP ratio {:>17.4}", norm.edp);

    if norm.energy < 1.0 {
        println!("\nPCM main memory saves energy here: the footprint-sized DRAM");
        println!("and its refresh are gone, and the DRAM page cache absorbs");
        println!(
            "{:.1}% of main-memory traffic.",
            result.run.caches[3].hit_rate() * 100.0
        );
    }
}
