//! CORAL Hash stand-in: open-addressing hash table build and probe.
//!
//! The CORAL data-centric HASH benchmark measures integer hashing over a
//! large table ("-m 30M -n 50K" in the paper). The kernel here inserts `m`
//! random 64-bit keys into a linear-probing table and then issues point
//! lookups for a mix of present and absent keys — a pure random-access
//! pattern with almost no spatial locality, the adversarial case for every
//! page-granularity design in the study.

use crate::{Class, Workload};
use memsim_trace::{AddressSpace, ChunkBuffer, SimVec, TraceSink};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Hash benchmark parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HashParams {
    /// log2 of the table slot count.
    pub log2_slots: u32,
    /// Fraction of slots filled by the build phase (0, 1).
    pub load_factor: f64,
    /// Number of probe-phase lookups.
    pub lookups: usize,
    /// RNG seed.
    pub seed: u64,
}

impl HashParams {
    /// Preset for a size class.
    pub fn class(class: Class) -> Self {
        match class {
            // 16 MiB table; the probe phase matches the build phase in
            // operation count, as in the benchmark's long steady state
            Class::Mini => Self {
                log2_slots: 21,
                load_factor: 0.6,
                lookups: 1_200_000,
                seed: 0x4a54,
            },
            // 128 MiB table
            Class::Demo => Self {
                log2_slots: 24,
                load_factor: 0.6,
                lookups: 10_000_000,
                seed: 0x4a54,
            },
            // 512 MiB table
            Class::Large => Self {
                log2_slots: 26,
                load_factor: 0.6,
                lookups: 40_000_000,
                seed: 0x4a54,
            },
        }
    }
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The Hash benchmark instance.
pub struct Hash {
    params: HashParams,
    space: AddressSpace,
    /// The table: 0 = empty slot, otherwise the stored key.
    table: SimVec<u64>,
    /// Keys to insert (streamed sequentially during the build phase).
    keys: SimVec<u64>,
    mask: usize,
    inserted_distinct: u64,
    found: u64,
    absent_found: u64,
    ran: bool,
}

impl Hash {
    /// Allocate the table and generate keys (untraced).
    pub fn new(params: HashParams) -> Self {
        let slots = 1usize << params.log2_slots;
        let m = (slots as f64 * params.load_factor) as usize;
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let mut space = AddressSpace::new();
        let table = SimVec::<u64>::zeroed(&mut space, "table", slots);
        // nonzero random keys
        let keys = SimVec::from_fn(&mut space, "keys", m, |_| rng.random::<u64>() | 1);
        Self {
            params,
            space,
            table,
            keys,
            mask: slots - 1,
            inserted_distinct: 0,
            found: 0,
            absent_found: 0,
            ran: false,
        }
    }

    /// Traced insert; returns true if the key was new.
    fn insert(&mut self, key: u64, sink: &mut dyn TraceSink) -> bool {
        let mut slot = splitmix64(key) as usize & self.mask;
        loop {
            let cur = self.table.ld(slot, sink);
            if cur == 0 {
                self.table.st(slot, key, sink);
                return true;
            }
            if cur == key {
                return false;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Traced lookup.
    fn contains(&self, key: u64, sink: &mut dyn TraceSink) -> bool {
        let mut slot = splitmix64(key) as usize & self.mask;
        loop {
            let cur = self.table.ld(slot, sink);
            if cur == 0 {
                return false;
            }
            if cur == key {
                return true;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Distinct keys inserted by the build phase.
    pub fn inserted_distinct(&self) -> u64 {
        self.inserted_distinct
    }
}

impl Workload for Hash {
    fn name(&self) -> &'static str {
        "Hash"
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let mut sink = ChunkBuffer::new(sink);
        let sink = &mut sink;
        // build phase
        for i in 0..self.keys.len() {
            let k = self.keys.ld(i, sink);
            if self.insert(k, sink) {
                self.inserted_distinct += 1;
            }
        }
        // probe phase: alternate present and (almost surely) absent keys
        let mut rng = SmallRng::seed_from_u64(self.params.seed ^ 0xdead);
        let m = self.keys.len();
        for p in 0..self.params.lookups {
            if p % 2 == 0 {
                let k = self.keys.ld(rng.random_range(0..m), sink);
                if self.contains(k, sink) {
                    self.found += 1;
                }
            } else {
                // random key: present with probability ~ m / 2^63 ≈ 0
                let k = rng.random::<u64>() | 1;
                if self.contains(k, sink) {
                    self.absent_found += 1;
                }
            }
        }
        sink.flush();
        self.ran = true;
    }

    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn verify(&self) -> Result<(), String> {
        if !self.ran {
            return Err("Hash has not run".into());
        }
        // ground truth from an untraced set
        let truth: std::collections::HashSet<u64> = self.keys.as_slice().iter().copied().collect();
        if self.inserted_distinct != truth.len() as u64 {
            return Err(format!(
                "insert phase found {} distinct keys, ground truth {}",
                self.inserted_distinct,
                truth.len()
            ));
        }
        // occupancy must match
        let occupied = self.table.as_slice().iter().filter(|&&s| s != 0).count() as u64;
        if occupied != self.inserted_distinct {
            return Err(format!(
                "table holds {occupied} keys, expected {}",
                self.inserted_distinct
            ));
        }
        // every present probe must have hit; absent probes can only hit by
        // an astronomically unlikely collision
        let present_probes = self.params.lookups.div_ceil(2) as u64;
        if self.found != present_probes {
            return Err(format!(
                "{} of {present_probes} present lookups found",
                self.found
            ));
        }
        if self.absent_found > 2 {
            return Err(format!(
                "{} absent lookups unexpectedly found",
                self.absent_found
            ));
        }
        // every stored key must verify against the truth set
        for &s in self.table.as_slice() {
            if s != 0 && !truth.contains(&s) {
                return Err(format!("table contains alien key {s:#x}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim_trace::sinks::CountingSink;

    fn tiny() -> HashParams {
        HashParams {
            log2_slots: 12,
            load_factor: 0.6,
            lookups: 2000,
            seed: 3,
        }
    }

    #[test]
    fn builds_probes_verifies() {
        let mut h = Hash::new(tiny());
        let mut sink = CountingSink::new();
        h.run(&mut sink);
        h.verify().unwrap();
        assert!(h.inserted_distinct() > 2000);
        assert!(sink.loads > sink.stores, "probing is load-heavy");
    }

    #[test]
    fn verify_before_run_errors() {
        assert!(Hash::new(tiny()).verify().is_err());
    }

    #[test]
    fn probe_volume_grows_with_load_factor() {
        let events = |lf: f64| {
            let mut h = Hash::new(HashParams {
                log2_slots: 12,
                load_factor: lf,
                lookups: 4000,
                seed: 5,
            });
            let mut sink = CountingSink::new();
            h.run(&mut sink);
            // average probes per lookup rises with load factor
            sink.loads as f64
        };
        assert!(events(0.8) > events(0.2));
    }

    #[test]
    fn accesses_hit_table_region() {
        use memsim_trace::sinks::RegionProfiler;
        let mut h = Hash::new(tiny());
        let mut prof = RegionProfiler::new(h.space());
        h.run(&mut prof);
        let table_idx = h.space().region_by_name("table").unwrap().id.index();
        let total: u64 = prof.loads.iter().sum::<u64>() + prof.stores.iter().sum::<u64>();
        let table_traffic = prof.loads[table_idx] + prof.stores[table_idx];
        assert!(table_traffic * 2 > total, "table traffic must dominate");
        assert_eq!(prof.unattributed, 0);
    }
}
