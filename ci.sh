#!/usr/bin/env bash
# Offline lint gate: formatting + clippy with warnings denied.
# Mirrors what CI runs; everything resolves from the vendored deps, so no
# network access is needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tracefile round-trip property tests"
cargo test -p memsim-tracefile --offline -q

echo "== record -> replay smoke (CLI)"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release --offline -q -p memsim-cli -- record hash -o "$smoke_dir/hash.trace" --scale mini
cargo run --release --offline -q -p memsim-cli -- trace-info "$smoke_dir/hash.trace"
cargo run --release --offline -q -p memsim-cli -- replay "$smoke_dir/hash.trace" --designs baseline,nmm

echo "== observability: metrics export, LevelStats cross-check, byte stability"
MEMSIM_OBS_DETERMINISTIC=1 cargo run --release --offline -q -p memsim-cli -- \
    run --workload hash --design baseline --scale mini --json \
    --metrics-out "$smoke_dir/metrics-a.json" >"$smoke_dir/run.json"
MEMSIM_OBS_DETERMINISTIC=1 cargo run --release --offline -q -p memsim-cli -- \
    run --workload hash --design baseline --scale mini --quiet \
    --metrics-out "$smoke_dir/metrics-b.json"
test -s "$smoke_dir/metrics-a.json"
test -s "$smoke_dir/run.json"
# deterministic mode zeroes span wall-times: identical runs, identical bytes
cmp "$smoke_dir/metrics-a.json" "$smoke_dir/metrics-b.json"
if command -v python3 >/dev/null 2>&1; then
    # both documents parse, and every per-level counter in the registry
    # dump equals the final LevelStats the run itself reported
    python3 - "$smoke_dir/run.json" "$smoke_dir/metrics-a.json" <<'PY'
import json, sys
run = json.load(open(sys.argv[1]))
doc = json.load(open(sys.argv[2]))
assert doc["schema"] == "memsim-obs/1", doc["schema"]
counters = doc["counters"]
fields = ["loads", "stores", "load_hits", "load_misses", "store_hits",
          "store_misses", "writebacks_out", "fills", "bytes_loaded",
          "bytes_stored"]
checked = 0
for lvl in run["levels"]:
    for f in fields:
        key = "sim.Hash.3L.{}.{}".format(lvl["name"], f)
        assert counters[key] == lvl[f], (key, counters[key], lvl[f])
        checked += 1
assert checked >= 40, checked
assert counters["progress.events"] > 0
print("observability cross-check: {} counters match final LevelStats".format(checked))
PY
else
    echo "python3 not found; skipping metrics JSON cross-check"
fi

echo "== crash-resilient reproduce: interrupt mid-flight, resume, compare bytes"
cargo build --release --offline -q -p memsim-cli
BIN=target/release/memsim
# reference: one uninterrupted run
MEMSIM_OBS_DETERMINISTIC=1 "$BIN" reproduce --out "$smoke_dir/clean" \
    --scale mini --workloads cg,hash --threads 2 2>"$smoke_dir/clean.log"
# same sweep again, SIGINT mid-flight (the binary runs directly, not under
# `cargo run`, so the signal reaches the simulator process itself)
MEMSIM_OBS_DETERMINISTIC=1 "$BIN" reproduce --out "$smoke_dir/resumed" \
    --scale mini --workloads cg,hash --threads 2 2>"$smoke_dir/interrupt.log" &
repro_pid=$!
sleep 0.4
kill -INT "$repro_pid" 2>/dev/null || true
if wait "$repro_pid"; then
    echo "note: the run finished before the interrupt landed; resume is a no-op revalidation"
else
    grep -q "resume with:" "$smoke_dir/interrupt.log"
fi
test -f "$smoke_dir/resumed/sweep.journal.jsonl"
# finish the interrupted sweep from its journal
MEMSIM_OBS_DETERMINISTIC=1 "$BIN" reproduce --out "$smoke_dir/resumed" \
    --scale mini --workloads cg,hash --threads 2 --resume 2>"$smoke_dir/resume.log"
# the interrupted-then-resumed reproduction is byte-identical to the clean one
for f in "$smoke_dir"/clean/*.md "$smoke_dir"/clean/*.csv; do
    cmp "$f" "$smoke_dir/resumed/$(basename "$f")"
done
echo "interrupt/resume reproduction is byte-identical ($(ls "$smoke_dir"/clean/*.md | wc -l) artifacts)"

echo "== sharded engine: golden parity at shards=1/2/N + obs-export diff vs sequential"
# the dedicated parity suites (golden tests, proptest, zero-steal pin)
cargo test -p memsim-integration-tests --offline -q --test sharded_parity
# end-to-end: a live run per engine, exported metrics diffed field by field.
# Telemetry that legitimately depends on event adjacency (mru_hits, the L1
# line-buffer split, progress.* and per-shard queue/claim/steal counters)
# is excluded; the ten LevelStats fields and memory counters must be exact.
ncores=$(nproc 2>/dev/null || echo 4)
for shards in 1 2 "$ncores"; do
    MEMSIM_OBS_DETERMINISTIC=1 "$BIN" reproduce --out "$smoke_dir/sharded-$shards" \
        --scale mini --workloads cg,hash --shards "$shards" 2>/dev/null
    for f in "$smoke_dir"/clean/*.md "$smoke_dir"/clean/*.csv; do
        cmp "$f" "$smoke_dir/sharded-$shards/$(basename "$f")"
    done
done
echo "sharded reproduce artifacts byte-identical to sequential at shards=1/2/$ncores"
if command -v python3 >/dev/null 2>&1; then
    MEMSIM_OBS_DETERMINISTIC=1 "$BIN" replay "$smoke_dir/hash.trace" --designs baseline,nmm \
        --shards seq --quiet --metrics-out "$smoke_dir/replay-seq.json"
    MEMSIM_OBS_DETERMINISTIC=1 "$BIN" replay "$smoke_dir/hash.trace" --designs baseline,nmm \
        --shards 2 --quiet --metrics-out "$smoke_dir/replay-sharded.json"
    python3 - "$smoke_dir/replay-seq.json" "$smoke_dir/replay-sharded.json" <<'PY'
import json, sys
seq = json.load(open(sys.argv[1]))["counters"]
shd = json.load(open(sys.argv[2]))["counters"]
skip = ("mru_hits", "line_buffer", "lb_hits")
def stat_keys(c):
    return {k for k in c
            if not k.startswith("progress.")
            and ".shard" not in k
            and ".reader." not in k
            and not any(s in k for s in skip)}
keys = stat_keys(seq)
assert keys == stat_keys(shd), keys ^ stat_keys(shd)
diffs = [(k, seq[k], shd[k]) for k in sorted(keys) if seq[k] != shd[k]]
assert not diffs, diffs
print("obs export parity: {} exported stat counters identical across engines".format(len(keys)))
PY
else
    echo "python3 not found; skipping obs export parity diff"
fi

echo "== sampled-parity: interval-sampled replay vs full fidelity (demo scale)"
# the dedicated accuracy suites: golden sampled-vs-full error/CI coverage,
# the bit-identical degenerate plan, cross-fidelity journal refusal
cargo test -p memsim-integration-tests --offline -q --test sampling
# End-to-end on the acceptance workload: AMG2013 at demo scale is long
# enough (137 one-million-event intervals) that a 12-cluster plan
# simulates under a fifth of the trace. Per-design AMAT and energy are
# asserted within 2% of the full-fidelity replay. The >=5x speedup bound
# is enforced on the deterministic simulated-event ratio from the obs
# export — wall-clock converges to that ratio as fixed costs amortize
# (measured ~5x here; paper-scale traces reach >=10x since the plan cost
# is fixed while the trace grows) — plus a 4x wall-clock floor that
# catches plan/cache regressions without exposing CI to timer noise.
"$BIN" record amg2013 -o "$smoke_dir/amg.trace" --scale demo >/dev/null
full_t0=$(date +%s.%N)
MEMSIM_OBS_DETERMINISTIC=1 "$BIN" replay "$smoke_dir/amg.trace" --scale demo \
    --json --metrics-out "$smoke_dir/obs-full.json" >"$smoke_dir/replay-full.json"
full_t1=$(date +%s.%N)
# the cold run pays the one-time interval-plan build (persisted to the
# plan sidecar); the timed run below sees the steady state a sweep sees
MEMSIM_OBS_DETERMINISTIC=1 "$BIN" replay "$smoke_dir/amg.trace" --scale demo \
    --sample interval=1m,clusters=12 --json \
    --metrics-out "$smoke_dir/obs-sampled.json" >"$smoke_dir/replay-sampled.json"
samp_t0=$(date +%s.%N)
MEMSIM_OBS_DETERMINISTIC=1 "$BIN" replay "$smoke_dir/amg.trace" --scale demo \
    --sample interval=1m,clusters=12 --json >/dev/null
samp_t1=$(date +%s.%N)
rm -f "$smoke_dir/amg.trace"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$smoke_dir/replay-full.json" "$smoke_dir/replay-sampled.json" \
        "$smoke_dir/obs-full.json" "$smoke_dir/obs-sampled.json" \
        "$full_t0" "$full_t1" "$samp_t0" "$samp_t1" <<'PY'
import json, sys
full = json.load(open(sys.argv[1]))
samp = json.load(open(sys.argv[2]))
obs_full = json.load(open(sys.argv[3]))["counters"]
obs_samp = json.load(open(sys.argv[4]))["counters"]
t = [float(a) for a in sys.argv[5:9]]

assert samp["sample"].startswith("interval="), samp["sample"]
fr = {r["design"]: r for r in full["results"]}
worst = 0.0
for r in samp["results"]:
    f = fr[r["design"]]["metrics"]
    s = r["metrics"]
    for key in ("amat_ns", "energy_j"):
        err = abs(s[key] - f[key]) / f[key]
        worst = max(worst, err)
        assert err < 0.02, "{} {}: {:.2%} error >= 2%".format(r["design"], key, err)
    if not r["design"].startswith("NDM"):
        # NDM's oracle partitioner re-places regions per costing, so it
        # carries no per-run CI; every other design must report one
        ci = r["ci_halfwidth"]
        assert all(k in ci for k in ("amat", "time", "energy", "edp")), ci

# the new sample.* keys are exactly the sampled run's additions
new = {k for k in obs_samp if k not in obs_full}
want = {"sample.intervals", "sample.clusters", "sample.events_simulated",
        "sample.events_total"} | {
        "sample.ci_halfwidth." + m for m in ("amat", "time", "energy", "edp")}
assert want <= new, want - new
assert all(k.startswith("sample.") for k in new), new
assert not any(k.startswith("sample.") for k in obs_full)

event_ratio = obs_samp["sample.events_total"] / obs_samp["sample.events_simulated"]
assert event_ratio >= 5.0, "simulated-event ratio {:.2f}x < 5x".format(event_ratio)
wall = (t[1] - t[0]) / (t[3] - t[2])
assert wall >= 4.0, "wall-clock speedup {:.2f}x < 4x floor".format(wall)
print("sampled parity: worst error {:.2%}, event ratio {:.1f}x, wall {:.1f}x".format(
    worst, event_ratio, wall))
PY
else
    echo "python3 not found; skipping sampled-parity error/speedup checks"
fi

echo "== obs-trace: flight-recorder timeline export, byte stability, golden diff"
# Sharded full-fidelity replay: one lane per engine shard with per-chunk
# spans and queue-depth / Mev/s counter tracks. ~2 MB, so it is pinned
# by double-run byte identity plus the structural validation below
# rather than a committed golden.
MEMSIM_OBS_DETERMINISTIC=1 "$BIN" replay "$smoke_dir/hash.trace" --designs baseline,nmm \
    --shards 2 --threads 1 --quiet --trace-out "$smoke_dir/trace-sharded-a.json"
MEMSIM_OBS_DETERMINISTIC=1 "$BIN" replay "$smoke_dir/hash.trace" --designs baseline,nmm \
    --shards 2 --threads 1 --quiet --trace-out "$smoke_dir/trace-sharded-b.json"
cmp "$smoke_dir/trace-sharded-a.json" "$smoke_dir/trace-sharded-b.json"
# Sampled replay: warm-vs-measure phase spans and CI-halfwidth counter
# tracks. The first run pays the one-time interval-plan build (an extra
# sample.plan span) and warms the plan sidecar; the next two are the
# byte-stability pair, diffed against the committed golden.
MEMSIM_OBS_DETERMINISTIC=1 "$BIN" replay "$smoke_dir/hash.trace" --designs baseline,nmm \
    --sample interval=32k,clusters=2 --threads 1 --quiet \
    --trace-out "$smoke_dir/trace-planwarm.json"
for t in a b; do
    MEMSIM_OBS_DETERMINISTIC=1 "$BIN" replay "$smoke_dir/hash.trace" --designs baseline,nmm \
        --sample interval=32k,clusters=2 --threads 1 --quiet \
        --trace-out "$smoke_dir/trace-sampled-$t.json"
done
cmp "$smoke_dir/trace-sampled-a.json" "$smoke_dir/trace-sampled-b.json"
cmp "$smoke_dir/trace-sampled-a.json" tests/golden/sampled_replay.trace.json
echo "flight-recorder exports byte-stable; sampled timeline matches the committed golden"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$smoke_dir/trace-sharded-a.json" "$smoke_dir/trace-sampled-a.json" <<'PY'
import json, sys
sharded = json.load(open(sys.argv[1]))
sampled = json.load(open(sys.argv[2]))

def lanes(doc):
    return {e["args"]["name"]: e["tid"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"}

def check_balanced(doc):
    depth = {}
    for e in doc["traceEvents"]:
        if e["ph"] == "B":
            depth[e["tid"]] = depth.get(e["tid"], 0) + 1
        elif e["ph"] == "E":
            depth[e["tid"]] = depth.get(e["tid"], 0) - 1
            assert depth[e["tid"]] >= 0, ("unbalanced span end", e)
    assert all(v == 0 for v in depth.values()), depth

for doc in (sharded, sampled):
    assert doc["displayTimeUnit"] == "ms", doc.keys()
    check_balanced(doc)

shard_lanes = lanes(sharded)
assert "memsim-shard0" in shard_lanes and "memsim-shard1" in shard_lanes, shard_lanes
names = {e["name"] for e in sharded["traceEvents"]}
for want in ("shard.chunk", "shard.queue_depth", "shard.mev_s"):
    assert want in names, (want, sorted(names))
counters = [e for e in sharded["traceEvents"] if e["ph"] == "C"]
assert counters and all("value" in e["args"] for e in counters)

snames = {e["name"] for e in sampled["traceEvents"]}
for want in ("sample.warm", "sample.measure", "sample.ci_halfwidth.amat"):
    assert want in snames, (want, sorted(snames))
assert "memsim-replay0" in lanes(sampled), lanes(sampled)
print("obs-trace: shard lanes {}, {} sharded events; sampled timeline has warm/measure phases".format(
    sorted(k for k in shard_lanes if k.startswith("memsim-shard")),
    len(sharded["traceEvents"])))
PY
else
    echo "python3 not found; skipping trace structural validation"
fi

echo "== server smoke: daemon up, submit, byte-parity vs batch reproduce, clean SIGINT"
server_state="$smoke_dir/server-state"
mkdir -p "$server_state"
MEMSIM_OBS_DETERMINISTIC=1 "$BIN" serve --port auto --state "$server_state" \
    --threads 2 >"$smoke_dir/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -s "$server_state/server.port" ] && break
    sleep 0.1
done
test -s "$server_state/server.port"
addr="127.0.0.1:$(cat "$server_state/server.port")"
# submit the same grid the batch stage reproduced, fetch the result into
# the reproduce --out layout, and demand byte-identical artifacts
"$BIN" submit --addr "$addr" --artifact table4 --workloads cg,hash --scale mini \
    --out "$smoke_dir/served" --quiet
cmp "$smoke_dir/clean/table4.md" "$smoke_dir/served/table4.md"
cmp "$smoke_dir/clean/table4.csv" "$smoke_dir/served/table4.csv"
echo "served table4 byte-identical to the batch reproduction"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$addr" <<'PY'
import json, sys, urllib.request
addr = sys.argv[1]
doc = json.load(urllib.request.urlopen("http://{}/metrics".format(addr), timeout=10))
assert doc["schema"] == "memsim-obs/1", doc["schema"]
c = doc["counters"]
assert c["server.jobs.completed"] >= 1, c
assert c["server.http.requests"] > 0, c
print("/metrics parses: {} counters exported".format(len(c)))

# The same endpoint content-negotiates Prometheus text exposition.
req = urllib.request.Request("http://{}/metrics".format(addr),
                             headers={"Accept": "text/plain"})
resp = urllib.request.urlopen(req, timeout=10)
ctype = resp.headers.get("Content-Type", "")
assert ctype.startswith("text/plain; version=0.0.4"), ctype
text = resp.read().decode()
assert "# TYPE server_jobs_completed counter" in text, text[:400]
assert "server_jobs_completed 1" in text, text[:400]
lines = [l for l in text.splitlines() if l and not l.startswith("#")]
assert all(len(l.split(" ")) == 2 for l in lines), lines[:5]
print("/metrics Prometheus scrape: {} samples".format(len(lines)))

# healthz carries uptime, build version, and jobs-by-state gauges.
hz = urllib.request.urlopen("http://{}/healthz".format(addr), timeout=10).read().decode()
h = json.loads(hz)
assert h["status"] == "ok" and "uptime_secs" in h and h["version"], h
assert h["jobs"]["done"] >= 1, h
PY
else
    echo "python3 not found; skipping /metrics parse check"
fi
kill -INT "$serve_pid"
wait "$serve_pid"
grep -q "listening on" "$smoke_dir/serve.log"
echo "daemon exited cleanly on SIGINT"

echo "ci.sh: all checks passed"
