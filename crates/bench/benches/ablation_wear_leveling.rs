//! Ablation: start-gap wear leveling on the NVM main memory.
//!
//! The paper defers endurance to future work; this extension quantifies
//! the tradeoff: gap-rotation write overhead (≈ 1/ψ) against wear
//! imbalance (max/mean writes per block), sweeping ψ.

use criterion::{criterion_group, criterion_main, Criterion};
use memsim_bench::bench_scale;
use memsim_cache::{Cache, CacheConfig, Hierarchy};
use memsim_memory::StartGapNvm;
use memsim_tech::Technology;
use memsim_trace::DEFAULT_BASE_ADDR;
use memsim_workloads::WorkloadKind;
use std::hint::black_box;

fn run_psi(scale: &memsim_core::Scale, psi: u64) -> StartGapNvm {
    let mut w = WorkloadKind::Hash.build(scale.class);
    let capacity = w.footprint_bytes().next_power_of_two();
    let caches = vec![
        Cache::new(CacheConfig::new(
            "L1",
            scale.l1_bytes,
            scale.line_bytes,
            scale.l1_ways,
        )),
        Cache::new(CacheConfig::new(
            "L2",
            scale.l2_bytes,
            scale.line_bytes,
            scale.l2_ways,
        )),
        Cache::new(CacheConfig::new(
            "L3",
            scale.l3_bytes,
            scale.line_bytes,
            scale.l3_ways,
        )),
    ];
    let mut h = Hierarchy::new(
        caches,
        StartGapNvm::new(Technology::Pcm, capacity, 256, DEFAULT_BASE_ADDR, psi),
    );
    w.run(&mut h);
    h.drain();
    h.into_memory()
}

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    println!("\n========== ablation: start-gap wear leveling (Hash -> PCM) ==========");
    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>11}",
        "psi", "total writes", "max/block", "imbalance", "gap moves"
    );
    for psi in [0u64, 16, 64, 256, 1024] {
        let dev = run_psi(&scale, psi);
        let s = dev.histogram().stats();
        println!(
            "{:>6} {:>14} {:>12} {:>12.2} {:>11}",
            if psi == 0 {
                "off".to_string()
            } else {
                psi.to_string()
            },
            s.total_writes,
            s.max_writes,
            s.imbalance(),
            dev.gap_moves()
        );
    }
    println!("(smaller psi levels wear faster but adds ~1/psi write overhead)");
    println!("======================================================================\n");

    c.bench_function("ablation_wear_leveling/psi64", |b| {
        b.iter(|| black_box(run_psi(&scale, 64)))
    });
    c.bench_function("ablation_wear_leveling/off", |b| {
        b.iter(|| black_box(run_psi(&scale, 0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
