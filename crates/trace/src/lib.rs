//! Online memory address stream capture.
//!
//! The paper instruments application binaries with PEBIL so that every
//! memory reference is streamed — *online*, without ever being stored — into
//! a cache simulator. This crate is the equivalent substrate for Rust
//! workloads:
//!
//! * [`AddressSpace`] — a deterministic virtual address space with a bump
//!   allocator and a registry of named [`Region`]s (one per data structure),
//!   standing in for the process image of the instrumented binary.
//! * [`SimVec`] / [`SimMatrix2`] / [`SimMatrix3`] — instrumented containers.
//!   Every element access both performs the real operation *and* emits a
//!   [`TraceEvent`] into a [`TraceSink`], so the address stream is exactly
//!   the access pattern of the algorithm being run.
//! * [`sinks`] — composable stream consumers: counting, recording, sampling,
//!   teeing, and per-region profiling.
//!
//! The stream is consumed as it is produced; nothing forces buffering. This
//! mirrors the paper's framework, which "avoids the need to store and
//! process full memory traces offline".
//!
//! # Example
//!
//! ```
//! use memsim_trace::{AddressSpace, SimVec, sinks::CountingSink, TraceSink};
//!
//! let mut space = AddressSpace::new();
//! let mut v = SimVec::<f64>::zeroed(&mut space, "v", 1024);
//! let mut sink = CountingSink::new();
//! for i in 0..v.len() {
//!     let x = v.ld(i, &mut sink);
//!     v.st(i, x + 1.0, &mut sink);
//! }
//! assert_eq!(sink.loads, 1024);
//! assert_eq!(sink.stores, 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod containers;
mod event;
pub mod interval;
pub mod reuse;
pub mod sinks;
mod space;
pub mod stats;

pub use containers::{SimMatrix2, SimMatrix3, SimVec};
pub use event::{AccessKind, FnSink, TraceEvent, TraceSink};
pub use interval::{IntervalSignature, SignatureBuilder, SIGNATURE_DIMS};
pub use reuse::ReuseDistance;
pub use sinks::{ChunkBuffer, CountingSink, CHUNK_EVENTS};
pub use space::{AddressSpace, Region, RegionId, DEFAULT_BASE_ADDR, REGION_ALIGN};
