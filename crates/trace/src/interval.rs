//! Interval locality signatures: the fingerprints behind sampled
//! simulation.
//!
//! Sampled simulation (see `memsim-core`'s `sampling` module) splits an
//! address stream into fixed-size intervals and simulates only one
//! representative per cluster of similar intervals. "Similar" is decided
//! here: every interval is reduced to a small feature vector built from
//! the exact Olken reuse-distance oracle ([`crate::ReuseDistance`]) —
//! the normalized stack-distance histogram plus cold-miss and store
//! fractions. Intervals with near-identical signatures exercise a cache
//! hierarchy near-identically, which is what makes one representative
//! stand in for the whole cluster.
//!
//! The signature deliberately reuses the same event→block splitting as
//! the oracle: size-0 events touch no blocks, and an event straddling a
//! block boundary touches every block it covers — exactly the shapes the
//! sharded-engine audit (PR 6) pinned for the simulation path.

use crate::event::{AccessKind, TraceEvent, TraceSink};
use crate::reuse::ReuseDistance;

/// Feature-vector width: 48 reuse-distance buckets + cold fraction +
/// store fraction.
pub const SIGNATURE_DIMS: usize = 50;

/// One interval's locality fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSignature {
    /// Events observed in the interval (including size-0 events, which
    /// contribute to the count but touch no blocks).
    pub events: u64,
    /// Normalized features: 48 stack-distance buckets (fractions of all
    /// block touches), the cold-touch fraction, and the store-event
    /// fraction. All components lie in `[0, 1]`; an empty interval is
    /// all zeros.
    pub features: [f64; SIGNATURE_DIMS],
}

impl IntervalSignature {
    /// Squared Euclidean distance between two signatures (the k-means
    /// metric).
    pub fn distance2(&self, other: &IntervalSignature) -> f64 {
        self.features
            .iter()
            .zip(other.features.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

/// Builds an [`IntervalSignature`] from a stream slice.
///
/// A [`TraceSink`], so it consumes events exactly the way the simulator
/// does — including batched `access_chunk` delivery.
#[derive(Debug)]
pub struct SignatureBuilder {
    reuse: ReuseDistance,
    events: u64,
    stores: u64,
}

impl SignatureBuilder {
    /// A fresh builder tracking reuse at `block_bytes` granularity
    /// (power of two; typically the cache line size).
    pub fn new(block_bytes: u64) -> Self {
        Self {
            reuse: ReuseDistance::new(block_bytes),
            events: 0,
            stores: 0,
        }
    }

    /// Events consumed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The signature of everything consumed so far.
    pub fn signature(&self) -> IntervalSignature {
        let mut features = [0.0; SIGNATURE_DIMS];
        let touches = self.reuse.total_refs();
        if touches > 0 {
            let hist = self.reuse.histogram();
            for (i, &count) in hist.iter().enumerate() {
                features[i] = count as f64 / touches as f64;
            }
            features[48] = self.reuse.cold_misses() as f64 / touches as f64;
        }
        if self.events > 0 {
            features[49] = self.stores as f64 / self.events as f64;
        }
        IntervalSignature {
            events: self.events,
            features,
        }
    }
}

impl TraceSink for SignatureBuilder {
    #[inline]
    fn access(&mut self, ev: TraceEvent) {
        self.events += 1;
        if ev.kind == AccessKind::Store {
            self.stores += 1;
        }
        // ReuseDistance splits the event into the blocks it covers:
        // size-0 events touch nothing, straddlers touch every covered
        // block — identical accounting to the simulation path.
        self.reuse.access(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(events: &[TraceEvent]) -> IntervalSignature {
        let mut b = SignatureBuilder::new(64);
        for &ev in events {
            b.access(ev);
        }
        b.signature()
    }

    #[test]
    fn empty_interval_is_all_zero() {
        let sig = build(&[]);
        assert_eq!(sig.events, 0);
        assert!(sig.features.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn features_are_normalized_fractions() {
        let events: Vec<TraceEvent> = (0..1000u64)
            .map(|i| {
                if i % 4 == 0 {
                    TraceEvent::store(i % 10 * 64, 8)
                } else {
                    TraceEvent::load(i % 10 * 64, 8)
                }
            })
            .collect();
        let sig = build(&events);
        assert_eq!(sig.events, 1000);
        for &f in &sig.features {
            assert!((0.0..=1.0).contains(&f), "{f}");
        }
        // hist fractions + cold fraction partition all touches
        let total: f64 = sig.features[..49].iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "{total}");
        assert!((sig.features[49] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn identical_phases_have_identical_signatures() {
        let phase: Vec<TraceEvent> = (0..5000u64).map(|i| TraceEvent::load(i * 64, 8)).collect();
        assert_eq!(build(&phase).features, build(&phase).features);
    }

    #[test]
    fn different_phases_are_far_apart() {
        let seq: Vec<TraceEvent> = (0..5000u64).map(|i| TraceEvent::load(i * 8, 8)).collect();
        let loop8: Vec<TraceEvent> = (0..5000u64)
            .map(|i| TraceEvent::load(i % 8 * 64, 8))
            .collect();
        let a = build(&seq);
        let b = build(&loop8);
        let c = build(&seq);
        assert!(a.distance2(&b) > 100.0 * a.distance2(&c));
    }

    #[test]
    fn block_aligned_size_zero_events_touch_no_blocks() {
        // A size-0 event at a block-aligned address produces no demand
        // reference in the simulator (`demand_split` of an empty byte
        // range) and must likewise touch nothing here. (Mid-block size-0
        // events *do* touch their block in both — see the proptest.)
        let real: Vec<TraceEvent> = (0..100u64).map(|i| TraceEvent::load(i * 64, 8)).collect();
        let mut with_zeros = Vec::new();
        for &ev in &real {
            with_zeros.push(ev);
            with_zeros.push(TraceEvent::load(ev.addr ^ 0x5000, 0)); // stays 64-aligned
        }
        let a = build(&real);
        let b = build(&with_zeros);
        // block-touch features identical; only the event count and the
        // store fraction denominator change
        assert_eq!(a.features[..49], b.features[..49]);
        assert_eq!(b.events, 200);
    }

    #[test]
    fn straddler_counts_every_covered_block() {
        // one 128-byte access at offset 32 covers blocks 0, 1, and 2 —
        // same touches as three aligned 8-byte accesses
        let straddle = build(&[TraceEvent::load(32, 128)]);
        let aligned = build(&[
            TraceEvent::load(0, 8),
            TraceEvent::load(64, 8),
            TraceEvent::load(128, 8),
        ]);
        assert_eq!(straddle.features[..49], aligned.features[..49]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// The PR 6 stream shapes: size-0 events, block-aligned runs,
        /// and straddlers, randomly interleaved.
        fn arb_events() -> impl Strategy<Value = Vec<TraceEvent>> {
            // sizes: 0 (degenerate), 8 (within-block), 64 (block-aligned
            // width), 100 (straddler)
            const SIZES: [u32; 4] = [0, 8, 64, 100];
            proptest::collection::vec((0u64..1 << 20, 0usize..4, proptest::bool::ANY), 0..400)
                .prop_map(|raw| {
                    raw.into_iter()
                        .map(|(addr, size_idx, store)| {
                            let size = SIZES[size_idx];
                            if store {
                                TraceEvent::store(addr, size)
                            } else {
                                TraceEvent::load(addr, size)
                            }
                        })
                        .collect()
                })
        }

        proptest! {
            /// Chunked delivery equals event-at-a-time delivery: the
            /// signature cannot depend on batching boundaries.
            #[test]
            fn chunked_equals_sequential(events in arb_events(), split in 1usize..64) {
                let mut one = SignatureBuilder::new(64);
                for &ev in &events {
                    one.access(ev);
                }
                let mut chunked = SignatureBuilder::new(64);
                for chunk in events.chunks(split) {
                    chunked.access_chunk(chunk);
                }
                prop_assert_eq!(one.signature(), chunked.signature());
            }

            /// The signature's event→block splitting agrees with the
            /// simulator's `demand_split` semantics on every shape: a
            /// size>0 event touches every block it covers; a size-0
            /// event touches its block mid-block and nothing when
            /// block-aligned (an empty byte range splits into no demand
            /// references).
            #[test]
            fn touch_splitting_matches_demand_split(events in arb_events()) {
                let mut b = SignatureBuilder::new(64);
                let mut model_touches = 0u64;
                for &ev in &events {
                    b.access(ev);
                    if ev.size == 0 {
                        if ev.addr % 64 != 0 {
                            model_touches += 1;
                        }
                    } else {
                        let first = ev.addr >> 6;
                        let last = (ev.addr + u64::from(ev.size) - 1) >> 6;
                        model_touches += last - first + 1;
                    }
                }
                prop_assert_eq!(b.reuse.total_refs(), model_touches);
            }

            /// Every feature stays a fraction on hostile shapes.
            #[test]
            fn features_bounded(events in arb_events()) {
                let sig = build(&events);
                for &f in &sig.features {
                    prop_assert!((0.0..=1.0).contains(&f));
                }
            }
        }
    }
}
