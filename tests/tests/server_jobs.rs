//! Journal-backed job durability and cross-job memo coalescing.
//!
//! Contracts under test (ISSUE 7 acceptance pins):
//!
//! 1. **Kill-and-restart parity** — a daemon killed mid-job leaves a
//!    partial sweep journal; the restarted daemon re-enqueues the job,
//!    resumes from the journal without re-simulating completed points,
//!    and the final `result.json` is byte-identical to an uninterrupted
//!    run (extends the `sweep_resilience` patterns to the daemon).
//! 2. **Memo coalescing** — two concurrent jobs sharing grid points
//!    simulate the overlap exactly once, observed through the
//!    `sim.memo.hits` / `sim.memo.misses` counters in the `memsim-obs`
//!    export.
//! 3. Queue backpressure, cancellation, and result availability over the
//!    real HTTP surface.

use memsim_core::jsontext::{get_str, get_u64, parse_json};
use memsim_server::client::Client;
use memsim_server::jobs::JobState;
use memsim_server::{Server, ServerConfig};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memsim-srvjobs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(dir: &Path, workers: usize, queue: usize) -> Server {
    let mut config = ServerConfig::new(dir.to_path_buf());
    config.workers = workers;
    config.queue_depth = queue;
    Server::start(config).unwrap()
}

fn client_of(server: &Server) -> Client {
    Client::new(&server.addr().to_string())
}

const SPEC: &str = r#"{"artifact":"table4","workloads":"hash,bt","scale":"mini","shards":"seq"}"#;

/// Run SPEC to completion on a fresh daemon; return (result bytes,
/// journal bytes, job id).
fn reference_run(tag: &str) -> (Vec<u8>, Vec<u8>, String) {
    let dir = tmp_dir(tag);
    let server = start(&dir, 1, 8);
    let client = client_of(&server);
    let id = client.submit(SPEC).unwrap();
    assert_eq!(client.wait(&id, Duration::from_secs(120)).unwrap(), "done");
    let result = client.result(&id).unwrap();
    let journal =
        std::fs::read(dir.join("jobs").join(&id).join(memsim_core::JOURNAL_FILE)).unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    (result, journal, id)
}

#[test]
fn killed_daemon_resumes_job_and_result_is_byte_identical() {
    let (reference, journal, id) = reference_run("ref");
    let lines: Vec<&[u8]> = journal.split_inclusive(|&b| b == b'\n').collect();
    assert!(lines.len() >= 2, "need >=2 journaled points to truncate");

    // Reconstruct the crash site: the job directory as a killed daemon
    // would leave it — job.json present, journal truncated mid-sweep,
    // no result.
    let dir = tmp_dir("resume");
    let job_dir = dir.join("jobs").join(&id);
    std::fs::create_dir_all(&job_dir).unwrap();
    let job_doc = format!("{{\"id\":\"{id}\",\"spec\":{SPEC}}}");
    std::fs::write(job_dir.join("job.json"), job_doc).unwrap();
    let half: Vec<u8> = lines[..lines.len() / 2].concat();
    let kept_points = lines.len() / 2;
    std::fs::write(job_dir.join(memsim_core::JOURNAL_FILE), &half).unwrap();

    // Restart: the job must come back as queued, resume, and finish.
    let server = start(&dir, 1, 8);
    assert_eq!(server.resumed(), std::slice::from_ref(&id));
    let client = client_of(&server);
    assert_eq!(client.wait(&id, Duration::from_secs(120)).unwrap(), "done");

    // Byte-identical result despite the interruption.
    let resumed_result = client.result(&id).unwrap();
    assert_eq!(
        resumed_result, reference,
        "resumed result differs from uninterrupted run"
    );

    // No completed point was re-simulated: resumed points are served
    // from the journal without being re-appended, so the line count
    // matches the uninterrupted journal exactly.
    let resumed_journal = std::fs::read(job_dir.join(memsim_core::JOURNAL_FILE)).unwrap();
    assert_eq!(
        resumed_journal
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .count(),
        lines.len(),
        "journal grew past the uninterrupted run: completed points were re-simulated"
    );
    assert!(kept_points >= 1);

    // Status reflects the terminal state and progress.
    let status = client.status(&id).unwrap();
    let v = parse_json(&status).unwrap();
    let obj = v.as_obj().unwrap();
    assert_eq!(get_str(obj, "state").unwrap(), "done");
    assert_eq!(get_u64(obj, "points_done").unwrap() as usize, lines.len());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_jobs_coalesce_shared_points_in_the_memo() {
    let _guard = memsim_obs::test_lock();
    memsim_obs::reset();
    memsim_obs::set_enabled(true);
    memsim_obs::set_deterministic(true);

    // Phase 1: one job alone — measure how many structure simulations
    // the grid actually needs.
    let dir = tmp_dir("coalesce-single");
    let server = start(&dir, 1, 8);
    let client = client_of(&server);
    let id = client.submit(SPEC).unwrap();
    assert_eq!(client.wait(&id, Duration::from_secs(120)).unwrap(), "done");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    let single_misses = memsim_obs::global()
        .counter_value("sim.memo.misses")
        .expect("memo misses counted");
    assert!(single_misses > 0);

    // Phase 2: two identical jobs racing on two workers sharing one
    // SimCache — the overlap must be simulated exactly once.
    memsim_obs::reset();
    let dir = tmp_dir("coalesce-pair");
    let server = start(&dir, 2, 8);
    let client = client_of(&server);
    let a = client.submit(SPEC).unwrap();
    let b = client.submit(SPEC).unwrap();
    assert_ne!(a, b, "each submission is its own job");
    assert_eq!(client.wait(&a, Duration::from_secs(120)).unwrap(), "done");
    assert_eq!(client.wait(&b, Duration::from_secs(120)).unwrap(), "done");

    // Both results identical except for the embedded job id.
    let ra = String::from_utf8(client.result(&a).unwrap()).unwrap();
    let rb = String::from_utf8(client.result(&b).unwrap()).unwrap();
    assert_eq!(
        ra.replace(&a, "<id>"),
        rb.replace(&b, "<id>"),
        "concurrent identical jobs must produce identical artifacts"
    );

    // The coalescing pin, read from the deterministic /metrics export
    // exactly as a monitoring client would.
    let metrics = client.metrics().unwrap();
    let v = parse_json(metrics.trim_end()).unwrap();
    let obj = v.as_obj().unwrap();
    assert_eq!(get_str(obj, "schema").unwrap(), "memsim-obs/1");
    let counters = obj["counters"].as_obj().unwrap();
    let misses = get_u64(counters, "sim.memo.misses").unwrap();
    let hits = get_u64(counters, "sim.memo.hits").unwrap();
    assert_eq!(
        misses, single_misses,
        "two overlapping jobs must miss exactly as often as one job: \
         every shared point simulated once"
    );
    assert!(
        hits >= single_misses,
        "the second job's points must all land as memo hits ({hits} hits \
         vs {single_misses} unique structures)"
    );
    assert_eq!(get_u64(counters, "server.jobs.completed").unwrap(), 2);

    server.shutdown();
    memsim_obs::set_enabled(false);
    memsim_obs::set_deterministic(false);
    memsim_obs::reset();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn backpressure_answers_503_with_retry_after_and_recovers() {
    let dir = tmp_dir("backpressure");
    // No workers draining: set up a server whose queue fills and stays
    // full by submitting more than `queue` jobs before workers can run
    // them. A 1-deep queue with a slow first job makes this reliable.
    let server = start(&dir, 1, 1);
    let client = client_of(&server);

    // Fill: the first submit may start running immediately, the next
    // sits in the queue; keep submitting until the queue refuses.
    let mut accepted = Vec::new();
    let mut saw_503 = false;
    for _ in 0..8 {
        match client.request("POST", "/jobs", Some(SPEC)) {
            Ok((202, body)) => {
                let v = parse_json(std::str::from_utf8(&body).unwrap()).unwrap();
                accepted.push(get_str(v.as_obj().unwrap(), "id").unwrap().to_string());
            }
            Ok((503, _)) => {
                saw_503 = true;
                break;
            }
            other => panic!("unexpected submit outcome {other:?}"),
        }
    }
    assert!(saw_503, "queue never refused after 8 submissions");

    // The refusal carries Retry-After — read it off the raw socket.
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(
        s,
        "POST /jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
        SPEC.len(),
        SPEC
    )
    .unwrap();
    let mut raw = String::new();
    let refused = match s.read_to_string(&mut raw) {
        Ok(_) => raw,
        Err(e) => panic!("reading 503: {e}"),
    };
    if refused.starts_with("HTTP/1.1 503") {
        let line = refused
            .lines()
            .find(|l| l.to_ascii_lowercase().starts_with("retry-after:"))
            .unwrap_or_else(|| panic!("503 must carry Retry-After: {refused:?}"));
        let secs: u32 = line.split(':').nth(1).unwrap().trim().parse().unwrap();
        assert!(
            (1..=60).contains(&secs),
            "Retry-After {secs} outside the 1..=60 clamp"
        );
    } else {
        // A worker drained the queue between the loop and this probe;
        // the earlier 503 already proved the backpressure path.
        assert!(refused.starts_with("HTTP/1.1 202"), "{refused:?}");
    }

    // Accepted jobs still complete — backpressure never corrupts state.
    for id in &accepted {
        assert_eq!(client.wait(id, Duration::from_secs(240)).unwrap(), "done");
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_drains_and_is_terminal_over_http() {
    let dir = tmp_dir("cancel");
    let server = start(&dir, 1, 8);
    let client = client_of(&server);

    // Saturate the single worker so the second job stays queued.
    let running = client.submit(SPEC).unwrap();
    let queued = client.submit(SPEC).unwrap();
    let state = client.cancel(&queued).unwrap();
    assert!(
        state == "cancelled" || state == "cancelling",
        "unexpected cancel state {state}"
    );
    let final_state = client.wait(&queued, Duration::from_secs(120)).unwrap();
    assert_eq!(final_state, "cancelled");

    // Its result never materializes (409), while the running job's does.
    let (code, _) = client
        .request("GET", &format!("/jobs/{queued}/result"), None)
        .unwrap();
    assert_eq!(code, 409);
    assert_eq!(
        client.wait(&running, Duration::from_secs(120)).unwrap(),
        "done"
    );

    // Cancelled state survives a restart (the marker is durable).
    server.shutdown();
    let server = start(&dir, 1, 8);
    assert_eq!(
        server.registry().get(&queued).unwrap().state(),
        JobState::Cancelled
    );
    assert!(server.resumed().is_empty(), "terminal jobs must not re-run");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_jobs_share_the_content_addressed_trace_store() {
    let dir = tmp_dir("replay");
    let server = start(&dir, 2, 8);
    let client = client_of(&server);
    let spec = r#"{"replay":"hash","designs":"baseline,nmm","scale":"mini"}"#;
    let a = client.submit(spec).unwrap();
    let b = client.submit(spec).unwrap();
    assert_eq!(client.wait(&a, Duration::from_secs(120)).unwrap(), "done");
    assert_eq!(client.wait(&b, Duration::from_secs(120)).unwrap(), "done");

    // Exactly one trace recorded for the shared (workload, scale) key.
    let traces: Vec<_> = std::fs::read_dir(dir.join("traces"))
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "trace"))
        .collect();
    assert_eq!(traces.len(), 1, "same workload+scale must share one trace");

    // Identical deterministic tables from both jobs.
    let ra = String::from_utf8(client.result(&a).unwrap()).unwrap();
    let rb = String::from_utf8(client.result(&b).unwrap()).unwrap();
    assert_eq!(ra.replace(&a, "<id>"), rb.replace(&b, "<id>"));
    let v = parse_json(&ra).unwrap();
    let obj = v.as_obj().unwrap();
    assert_eq!(get_str(obj, "kind").unwrap(), "replay");
    assert!(get_str(obj, "markdown").unwrap().contains("Baseline"));
    assert!(get_u64(obj, "events").unwrap() > 0);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
