//! Capacity planning: how much DRAM cache does a graph workload need in
//! front of PCM?
//!
//! Sweeps the Table 3 NMM configurations (DRAM-cache capacity and page
//! size) for Graph500 and reports normalized runtime, energy, and EDP —
//! the paper's Figure 1/2 study specialized to one workload, ending with
//! an EDP-based recommendation.
//!
//! ```text
//! cargo run --release -p memsim-examples --example capacity_planning
//! ```

use memsim_core::configs::n_configs;
use memsim_core::runner::{evaluate_cached, SimCache};
use memsim_core::{Design, Scale};
use memsim_examples::{human_bytes, pct};
use memsim_tech::Technology;
use memsim_workloads::WorkloadKind;

fn main() {
    let scale = Scale::mini();
    let cache = SimCache::new();
    let workload = WorkloadKind::Graph500;

    println!(
        "sweeping NMM DRAM-cache configurations for {} + PCM\n",
        workload.name()
    );
    let base = evaluate_cached(workload, &scale, &Design::Baseline, &cache);
    println!(
        "baseline: footprint {}, runtime {:.1} ms, energy {:.1} mJ",
        human_bytes(base.run.footprint_bytes),
        base.metrics.time_s * 1e3,
        base.metrics.energy_j() * 1e3
    );

    println!(
        "\n{:<5} {:>10} {:>8} {:>10} {:>10} {:>10} {:>9}",
        "cfg", "capacity", "page", "time", "energy", "EDP", "L4 hit%"
    );
    let mut best: Option<(f64, &str)> = None;
    let configs = n_configs();
    for config in &configs {
        let design = Design::Nmm {
            nvm: Technology::Pcm,
            config: *config,
        };
        let r = evaluate_cached(workload, &scale, &design, &cache);
        let norm = r.metrics.normalized_to(&base.metrics);
        let l4_hit = r.run.caches[3].hit_rate() * 100.0;
        println!(
            "{:<5} {:>10} {:>7}B {:>10} {:>10} {:>10.4} {:>8.2}%",
            config.name,
            human_bytes(scale.scaled_capacity(config.capacity_bytes)),
            config.page_bytes,
            pct(norm.time),
            pct(norm.energy),
            norm.edp,
            l4_hit,
        );
        if best.map(|(b, _)| norm.edp < b).unwrap_or(true) {
            best = Some((norm.edp, config.name));
        }
    }

    let (edp, name) = best.unwrap();
    println!("\nrecommendation: {name} (EDP ratio {edp:.4} vs baseline)");
    println!("(the paper finds N6 — 512 MB with 512 B pages — the most EDP-efficient)");
}
