//! The performance and energy models — Equations 1–4 of the paper.
//!
//! The simulator (see [`crate::runner`]) produces per-level load/store
//! counts and byte volumes; this module combines them with per-level
//! technology parameters:
//!
//! * **Eq. 2** `AMAT = Σ_i (t_ld(i)·loads_i + t_st(i)·stores_i) / refs`
//! * **Eq. 1** `T_design = T_ref · AMAT_design / AMAT_ref` — with the model
//!   reference time `T_ref = AMAT_ref · refs`, this reduces to
//!   `T = AMAT · refs` for every design, so any constant factor between
//!   model time and wall-clock time cancels in normalized figures.
//! * **Eq. 3** dynamic energy = per-bit access energy × bits moved.
//! * **Eq. 4** static energy = runtime × Σ static power, with DRAM/eDRAM
//!   refresh proportional to capacity and zero for NVM.

use memsim_cache::LevelStats;
use memsim_tech::TechParams;

/// Per-level cost parameters: a technology applied to a concrete capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelCost {
    /// Display name (matches the level's stats name).
    pub name: String,
    /// Read latency in ns.
    pub read_ns: f64,
    /// Write latency in ns.
    pub write_ns: f64,
    /// Read energy per bit in pJ.
    pub read_pj_per_bit: f64,
    /// Write energy per bit in pJ.
    pub write_pj_per_bit: f64,
    /// Static (leakage + refresh) power of this level in watts.
    pub static_w: f64,
    /// Optional bandwidth cap in GB/s: when set, each access additionally
    /// pays transfer time for the bytes it moves (1 GB/s = 1 byte/ns).
    /// `None` reproduces the paper's latency-only model.
    pub gb_per_s: Option<f64>,
}

impl LevelCost {
    /// Cost a level of `capacity_bytes` built from `params`.
    pub fn from_tech(name: &str, params: &TechParams, capacity_bytes: u64) -> Self {
        Self {
            name: name.to_string(),
            read_ns: params.read_ns,
            write_ns: params.write_ns,
            read_pj_per_bit: params.read_pj_per_bit,
            write_pj_per_bit: params.write_pj_per_bit,
            static_w: params.static_watts(capacity_bytes),
            gb_per_s: None,
        }
    }

    /// Builder-style: cap this level's bandwidth (an extension beyond the
    /// paper's latency-only Eq. 2; see the `ablation_bandwidth` bench).
    pub fn with_bandwidth(mut self, gb_per_s: f64) -> Self {
        assert!(gb_per_s > 0.0);
        self.gb_per_s = Some(gb_per_s);
        self
    }

    /// Time contribution of `stats` at this level, in ns.
    pub fn time_ns(&self, stats: &LevelStats) -> f64 {
        let latency = self.read_ns * stats.loads as f64 + self.write_ns * stats.stores as f64;
        match self.gb_per_s {
            // 1 GB/s moves 1 byte per ns
            Some(bw) => latency + (stats.bytes_loaded + stats.bytes_stored) as f64 / bw,
            None => latency,
        }
    }

    /// Dynamic energy contribution of `stats` at this level, in pJ.
    pub fn dynamic_pj(&self, stats: &LevelStats) -> f64 {
        self.read_pj_per_bit * (stats.bytes_loaded as f64 * 8.0)
            + self.write_pj_per_bit * (stats.bytes_stored as f64 * 8.0)
    }
}

/// Modeled performance and energy of one (workload, design) point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Average memory access time in ns (Eq. 2).
    pub amat_ns: f64,
    /// Modeled runtime in seconds (Eq. 1 with model `T_ref`).
    pub time_s: f64,
    /// Dynamic energy in joules (Eq. 3).
    pub dynamic_j: f64,
    /// Static energy in joules (Eq. 4).
    pub static_j: f64,
    /// Total memory references.
    pub total_refs: u64,
}

impl Metrics {
    /// Combine per-level stats and costs. `pairs` must align stats with
    /// their cost parameters (caches top-down, then the terminal memory —
    /// possibly several terminal components for partitioned designs).
    pub fn compute(pairs: &[(&LevelStats, &LevelCost)], total_refs: u64) -> Self {
        assert!(total_refs > 0, "cannot model an empty run");
        let mut total_ns = 0.0;
        let mut dyn_pj = 0.0;
        let mut static_w = 0.0;
        for (stats, cost) in pairs {
            debug_assert_eq!(stats.name, cost.name, "stats/cost misalignment");
            total_ns += cost.time_ns(stats);
            dyn_pj += cost.dynamic_pj(stats);
            static_w += cost.static_w;
        }
        let amat_ns = total_ns / total_refs as f64;
        let time_s = total_ns * 1e-9;
        Self {
            amat_ns,
            time_s,
            dynamic_j: dyn_pj * 1e-12,
            static_j: time_s * static_w,
            total_refs,
        }
    }

    /// Total energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.dynamic_j + self.static_j
    }

    /// Energy-delay product in J·s ("product of energy consumed multiplied
    /// by time taken").
    pub fn edp(&self) -> f64 {
        self.energy_j() * self.time_s
    }

    /// Normalize against a baseline (the paper's figures all plot ratios to
    /// the 3-level SRAM + big-DRAM base case).
    pub fn normalized_to(&self, base: &Metrics) -> NormMetrics {
        NormMetrics {
            time: self.time_s / base.time_s,
            energy: self.energy_j() / base.energy_j(),
            dynamic: self.dynamic_j / base.dynamic_j,
            static_: self.static_j / base.static_j,
            edp: self.edp() / base.edp(),
        }
    }
}

/// One level's share of the modeled time and energy.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelBreakdown {
    /// Level name.
    pub name: String,
    /// Total access time spent at this level, ns.
    pub time_ns: f64,
    /// Dynamic energy at this level, joules.
    pub dynamic_j: f64,
    /// Static power of this level, watts.
    pub static_w: f64,
}

/// Per-level decomposition of a design's time and energy (the rows behind
/// `Metrics`; useful for explaining *where* a design wins or loses).
pub fn breakdown(pairs: &[(&LevelStats, &LevelCost)]) -> Vec<LevelBreakdown> {
    pairs
        .iter()
        .map(|(stats, cost)| LevelBreakdown {
            name: cost.name.clone(),
            time_ns: cost.time_ns(stats),
            dynamic_j: cost.dynamic_pj(stats) * 1e-12,
            static_w: cost.static_w,
        })
        .collect()
}

/// Metrics normalized to the baseline configuration (1.0 = parity; < 1 is
/// savings, > 1 is overhead).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormMetrics {
    /// Runtime ratio.
    pub time: f64,
    /// Total energy ratio.
    pub energy: f64,
    /// Dynamic energy ratio.
    pub dynamic: f64,
    /// Static energy ratio.
    pub static_: f64,
    /// EDP ratio.
    pub edp: f64,
}

impl NormMetrics {
    /// Element-wise mean of several normalized results ("average of
    /// normalized run time of all benchmarks", as every figure caption puts
    /// it).
    pub fn mean(items: &[NormMetrics]) -> NormMetrics {
        assert!(!items.is_empty());
        let n = items.len() as f64;
        NormMetrics {
            time: items.iter().map(|m| m.time).sum::<f64>() / n,
            energy: items.iter().map(|m| m.energy).sum::<f64>() / n,
            dynamic: items.iter().map(|m| m.dynamic).sum::<f64>() / n,
            static_: items.iter().map(|m| m.static_).sum::<f64>() / n,
            edp: items.iter().map(|m| m.edp).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim_tech::Technology;

    fn stats(name: &str, loads: u64, stores: u64, bl: u64, bs: u64) -> LevelStats {
        LevelStats {
            name: name.into(),
            loads,
            stores,
            load_hits: loads,
            store_hits: stores,
            bytes_loaded: bl,
            bytes_stored: bs,
            ..Default::default()
        }
    }

    fn cost(name: &str, rns: f64, wns: f64, rpj: f64, wpj: f64, sw: f64) -> LevelCost {
        LevelCost {
            name: name.into(),
            read_ns: rns,
            write_ns: wns,
            read_pj_per_bit: rpj,
            write_pj_per_bit: wpj,
            static_w: sw,
            gb_per_s: None,
        }
    }

    #[test]
    fn amat_equation2() {
        // 10 loads at 2 ns + 5 stores at 4 ns at one level; 15 refs
        let s = stats("x", 10, 5, 80, 40);
        let c = cost("x", 2.0, 4.0, 0.0, 0.0, 0.0);
        let m = Metrics::compute(&[(&s, &c)], 15);
        assert!((m.amat_ns - (10.0 * 2.0 + 5.0 * 4.0) / 15.0).abs() < 1e-12);
        assert!((m.time_s - 40.0e-9).abs() < 1e-21);
    }

    #[test]
    fn dynamic_energy_equation3() {
        // 100 bytes loaded at 10 pJ/bit = 8000 pJ; 50 bytes stored at 2 pJ/bit = 800 pJ
        let s = stats("x", 1, 1, 100, 50);
        let c = cost("x", 1.0, 1.0, 10.0, 2.0, 0.0);
        let m = Metrics::compute(&[(&s, &c)], 2);
        assert!((m.dynamic_j - 8800.0e-12).abs() < 1e-18);
    }

    #[test]
    fn static_energy_equation4() {
        // 1000 refs × 1 ns = 1 µs runtime at 2 W static = 2 µJ
        let s = stats("x", 1000, 0, 8000, 0);
        let c = cost("x", 1.0, 1.0, 0.0, 0.0, 2.0);
        let m = Metrics::compute(&[(&s, &c)], 1000);
        assert!((m.static_j - 2.0e-6).abs() < 1e-15);
    }

    #[test]
    fn multi_level_sums() {
        let s1 = stats("L1", 100, 50, 800, 400);
        let s2 = stats("mem", 10, 5, 640, 320);
        let c1 = cost("L1", 1.0, 1.0, 0.5, 0.5, 1.0);
        let c2 = cost("mem", 10.0, 10.0, 10.0, 10.0, 3.0);
        let m = Metrics::compute(&[(&s1, &c1), (&s2, &c2)], 150);
        let expect_ns = 150.0 * 1.0 + 15.0 * 10.0;
        assert!((m.amat_ns - expect_ns / 150.0).abs() < 1e-12);
        assert!((m.static_j - m.time_s * 4.0).abs() < 1e-18);
    }

    #[test]
    fn edp_and_normalization() {
        let s = stats("x", 100, 0, 800, 0);
        let fast = cost("x", 1.0, 1.0, 1.0, 1.0, 1.0);
        let slow = cost("x", 2.0, 2.0, 2.0, 2.0, 1.0);
        let mf = Metrics::compute(&[(&s, &fast)], 100);
        let ms = Metrics::compute(&[(&s, &slow)], 100);
        let n = ms.normalized_to(&mf);
        assert!((n.time - 2.0).abs() < 1e-12);
        assert!((n.dynamic - 2.0).abs() < 1e-12);
        // static doubles too (same power × double time)
        assert!((n.static_ - 2.0).abs() < 1e-12);
        assert!((n.energy - 2.0).abs() < 1e-12);
        assert!((n.edp - 4.0).abs() < 1e-12);
        assert!(ms.edp() > mf.edp());
    }

    #[test]
    fn mean_of_norms() {
        let a = NormMetrics {
            time: 1.0,
            energy: 0.5,
            dynamic: 1.0,
            static_: 0.2,
            edp: 0.5,
        };
        let b = NormMetrics {
            time: 3.0,
            energy: 1.5,
            dynamic: 2.0,
            static_: 0.4,
            edp: 4.5,
        };
        let m = NormMetrics::mean(&[a, b]);
        assert!((m.time - 2.0).abs() < 1e-12);
        assert!((m.energy - 1.0).abs() < 1e-12);
        assert!((m.edp - 2.5).abs() < 1e-12);
    }

    #[test]
    fn from_tech_uses_table1() {
        let p = TechParams::of(Technology::Pcm);
        let c = LevelCost::from_tech("PCM", &p, 1 << 30);
        assert_eq!(c.read_ns, 21.0);
        assert_eq!(c.write_ns, 100.0);
        assert_eq!(c.static_w, 0.0, "NVM has no static power");
        let d = LevelCost::from_tech("DRAM", &TechParams::of(Technology::Dram), 1 << 30);
        assert!(d.static_w > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty run")]
    fn zero_refs_rejected() {
        Metrics::compute(&[], 0);
    }

    #[test]
    fn bandwidth_term_adds_transfer_time() {
        let s = stats("x", 100, 0, 6400, 0); // 100 loads moving 6400 B
        let lat_only = cost("x", 10.0, 10.0, 0.0, 0.0, 0.0);
        let bw = lat_only.clone().with_bandwidth(6.4); // 6.4 GB/s → 1000 ns for 6400 B
        let m0 = Metrics::compute(&[(&s, &lat_only)], 100);
        let m1 = Metrics::compute(&[(&s, &bw)], 100);
        assert!((m0.time_s - 1000.0e-9).abs() < 1e-18);
        assert!(
            (m1.time_s - 2000.0e-9).abs() < 1e-18,
            "latency 1000 ns + transfer 1000 ns"
        );
        // unlimited bandwidth reproduces the paper's model exactly
        let wide = lat_only.clone().with_bandwidth(1e12);
        let m2 = Metrics::compute(&[(&s, &wide)], 100);
        assert!((m2.time_s - m0.time_s).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        let _ = cost("x", 1.0, 1.0, 0.0, 0.0, 0.0).with_bandwidth(0.0);
    }

    #[test]
    fn breakdown_sums_to_metrics() {
        let s1 = stats("L1", 100, 50, 800, 400);
        let s2 = stats("mem", 10, 5, 640, 320);
        let c1 = cost("L1", 1.0, 1.0, 0.5, 0.5, 1.0);
        let c2 = cost("mem", 10.0, 10.0, 10.0, 10.0, 3.0);
        let pairs = [(&s1, &c1), (&s2, &c2)];
        let m = Metrics::compute(&pairs, 150);
        let b = breakdown(&pairs);
        assert_eq!(b.len(), 2);
        let t: f64 = b.iter().map(|x| x.time_ns).sum();
        assert!((t * 1e-9 - m.time_s).abs() < 1e-18);
        let d: f64 = b.iter().map(|x| x.dynamic_j).sum();
        assert!((d - m.dynamic_j).abs() < 1e-18);
        let w: f64 = b.iter().map(|x| x.static_w).sum();
        assert!((m.static_j - m.time_s * w).abs() < 1e-18);
        assert_eq!(b[0].name, "L1");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_stats() -> impl Strategy<Value = LevelStats> {
            (0u64..1_000_000, 0u64..1_000_000).prop_map(|(loads, stores)| LevelStats {
                name: "x".into(),
                loads,
                stores,
                load_hits: loads,
                store_hits: stores,
                bytes_loaded: loads * 64,
                bytes_stored: stores * 64,
                ..Default::default()
            })
        }

        proptest! {
            /// Scaling any latency component up never decreases AMAT or
            /// the static energy (time × power), and never changes the
            /// dynamic energy.
            #[test]
            fn latency_monotonicity(stats in arb_stats(), factor in 1.0f64..50.0) {
                prop_assume!(stats.loads + stats.stores > 0);
                let base = cost("x", 10.0, 10.0, 5.0, 5.0, 1.0);
                let slower = cost("x", 10.0 * factor, 10.0, 5.0, 5.0, 1.0);
                let refs = stats.loads + stats.stores;
                let m0 = Metrics::compute(&[(&stats, &base)], refs);
                let m1 = Metrics::compute(&[(&stats, &slower)], refs);
                prop_assert!(m1.amat_ns >= m0.amat_ns - 1e-9);
                prop_assert!(m1.static_j >= m0.static_j - 1e-18);
                prop_assert!((m1.dynamic_j - m0.dynamic_j).abs() < 1e-18);
                prop_assert!(m1.edp() >= m0.edp() - 1e-24);
            }

            /// Energy scaling is exactly linear in the per-bit costs.
            #[test]
            fn energy_linearity(stats in arb_stats(), factor in 0.1f64..50.0) {
                prop_assume!(stats.loads + stats.stores > 0);
                let base = cost("x", 1.0, 1.0, 2.0, 4.0, 0.0);
                let scaled = cost("x", 1.0, 1.0, 2.0 * factor, 4.0 * factor, 0.0);
                let refs = stats.loads + stats.stores;
                let m0 = Metrics::compute(&[(&stats, &base)], refs);
                let m1 = Metrics::compute(&[(&stats, &scaled)], refs);
                prop_assert!((m1.dynamic_j - m0.dynamic_j * factor).abs() <= m0.dynamic_j * factor * 1e-12 + 1e-18);
            }

            /// Normalization is reflexive and anti-symmetric: x/x = 1 and
            /// (a/b)·(b/a) = 1 in every component.
            #[test]
            fn normalization_algebra(stats in arb_stats(), f in 1.1f64..8.0) {
                prop_assume!(stats.loads + stats.stores > 0);
                prop_assume!(stats.loads > 0 && stats.stores > 0);
                let refs = stats.loads + stats.stores;
                let a = Metrics::compute(&[(&stats, &cost("x", 1.0, 2.0, 3.0, 4.0, 5.0))], refs);
                let b = Metrics::compute(&[(&stats, &cost("x", f, 2.0 * f, 3.0 * f, 4.0 * f, 5.0))], refs);
                let aa = a.normalized_to(&a);
                prop_assert!((aa.time - 1.0).abs() < 1e-12);
                prop_assert!((aa.energy - 1.0).abs() < 1e-12);
                prop_assert!((aa.edp - 1.0).abs() < 1e-12);
                let ab = a.normalized_to(&b);
                let ba = b.normalized_to(&a);
                prop_assert!((ab.time * ba.time - 1.0).abs() < 1e-9);
                prop_assert!((ab.energy * ba.energy - 1.0).abs() < 1e-9);
            }
        }
    }
}
