//! Latency/energy scaling multipliers for the generalization study.
//!
//! Figures 9 and 10 of the paper model a *hypothetical* memory whose
//! per-operation costs are DRAM's scaled by independent read and write
//! factors, asking "what must an emerging technology achieve to be viable?"

/// Independent multipliers on the four per-operation cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Multipliers {
    /// Factor on read latency.
    pub read_latency: f64,
    /// Factor on write latency.
    pub write_latency: f64,
    /// Factor on read energy per bit.
    pub read_energy: f64,
    /// Factor on write energy per bit.
    pub write_energy: f64,
}

impl Multipliers {
    /// All factors 1.0 (the technology is exactly DRAM).
    pub const fn identity() -> Self {
        Self {
            read_latency: 1.0,
            write_latency: 1.0,
            read_energy: 1.0,
            write_energy: 1.0,
        }
    }

    /// Scale only the latencies (the Figure 9 axis pair).
    pub const fn latency(read: f64, write: f64) -> Self {
        Self {
            read_latency: read,
            write_latency: write,
            read_energy: 1.0,
            write_energy: 1.0,
        }
    }

    /// Scale only the energies (the Figure 10 axis pair).
    pub const fn energy(read: f64, write: f64) -> Self {
        Self {
            read_latency: 1.0,
            write_latency: 1.0,
            read_energy: read,
            write_energy: write,
        }
    }
}

impl Default for Multipliers {
    fn default() -> Self {
        Self::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let l = Multipliers::latency(5.0, 20.0);
        assert_eq!(l.read_latency, 5.0);
        assert_eq!(l.write_latency, 20.0);
        assert_eq!(l.read_energy, 1.0);
        assert_eq!(l.write_energy, 1.0);
        let e = Multipliers::energy(2.0, 9.0);
        assert_eq!(e.read_energy, 2.0);
        assert_eq!(e.write_energy, 9.0);
        assert_eq!(e.read_latency, 1.0);
        assert_eq!(Multipliers::default(), Multipliers::identity());
    }
}
