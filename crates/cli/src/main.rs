//! `memsim` — command-line front end for the hybrid memory simulator.
//!
//! ```text
//! memsim list
//! memsim table tech|eh-configs|nmm-configs|table4 [--scale S] [--workloads W]
//! memsim figure fig1|fig2|...|fig10 [--scale S] [--workloads W] [--csv] [--threads N]
//! memsim run --workload cg --design nmm --nvm pcm --config N5 [--scale S]
//! memsim heatmap latency|energy [--scale S] [--workloads W] [--csv]
//! memsim reproduce --out repro [--resume] [--progress]
//! memsim record cg -o cg.trace [--scale S]
//! memsim replay cg.trace [--designs D,D] [--threads N]
//! memsim trace-info cg.trace
//! ```
//!
//! Sweep commands (`reproduce`, and `table`/`figure`/`heatmap` with
//! `--out DIR`) journal every completed point to
//! `DIR/sweep.journal.jsonl`; `--resume` restores those points instead of
//! re-simulating, and ctrl-c drains in-flight points before exiting with
//! the exact resume command.

mod interrupt;
mod output;

use memsim_core::configs::{eh_by_name, eh_configs, n_by_name, n_configs};
use memsim_core::experiments::{self, ExperimentCtx, Metric};
use memsim_core::report::{heatmap_to_csv, heatmap_to_markdown};
use memsim_core::{
    evaluate, Design, Engine, SampleMode, Scale, SimCache, SweepCtx, SweepError, JOURNAL_FILE,
};
use memsim_obs::json;
use memsim_tech::Technology;
use memsim_tracefile::TraceReader;
use memsim_workloads::{Class, WorkloadKind};
use output::{Mode, Report};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            if e.show_usage {
                eprintln!();
                eprintln!("{}", usage());
            }
            ExitCode::FAILURE
        }
    }
}

/// A CLI failure: usage errors print the help text after the message,
/// runtime failures (failed sweep points, an interrupt) do not — the
/// command line was fine, the run was not.
#[derive(Debug)]
struct CliError {
    message: String,
    show_usage: bool,
}

impl CliError {
    /// A failure of the run itself, not of the invocation.
    fn runtime(message: String) -> Self {
        Self {
            message,
            show_usage: false,
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        Self {
            message,
            show_usage: true,
        }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        Self::from(message.to_string())
    }
}

fn usage() -> &'static str {
    "usage:\n  memsim list\n  memsim table <tech|eh-configs|nmm-configs|table4> [options]\n  memsim figure <fig1..fig10> [options]\n  memsim run --workload <W> --design <baseline|4lc|nmm|4lcnvm|ndm> [--llc T] [--nvm T] [--config C] [options]\n  memsim heatmap <latency|energy> [options]\n  memsim reproduce [--out DIR] [--resume] [options]\n  memsim analyze --workload <W> [options]\n  memsim record <W> -o FILE [options]      record W's address stream to a trace file\n  memsim replay <FILE> [--designs a,b,c]   evaluate designs against a recorded trace\n  memsim trace-info <FILE>                 inspect a trace file\n  memsim serve [--port P|auto] [--state DIR] [--threads N] [--queue N]\n                                           run the simulation-as-a-service daemon\n  memsim submit --addr H:P --artifact A | --replay W [--designs a,b] [options]\n                                           submit a job, wait, print/fetch the result\n  memsim status <JOB-ID> --addr H:P        query one job's status\noptions:\n  --scale mini|demo|paper   capacity scale (default demo)\n  --workloads a,b,c         benchmark subset (default: the Table 4 set)\n  --threads N               worker threads\n  --shards N|auto|seq       simulation engine: N set shards, auto-detected cores,\n                            or the sequential walk (reproduce/figure/heatmap/replay)\n  --sample MODE             interval sampling: off (default), on, or\n                            interval=N,clusters=K[,warmup=functional|cold] —\n                            simulate one representative interval per cluster and\n                            extrapolate with confidence intervals\n  --out DIR                 journal completed sweep points to DIR/sweep.journal.jsonl\n                            (table4/figure/heatmap; reproduce always journals)\n  --resume                  skip points already journaled in --out DIR\n  --csv                     CSV instead of markdown\n  --json                    one JSON object instead of human text (run/replay/record/trace-info)\n  --quiet                   suppress stdout (run/replay/record/trace-info)\n  --progress                live progress line + end-of-run phase timings (run/replay/record/reproduce)\n  --metrics-out FILE        write the metrics/span dump as deterministic JSON (run/replay/record/reproduce)\n  --trace-out FILE          record a flight-recorder timeline and write it as Chrome\n                            trace-event JSON for ui.perfetto.dev / chrome://tracing\n                            (run/replay/reproduce/figure/heatmap)"
}

/// Minimal flag parser: `--key value` pairs after the positional arguments.
#[derive(Debug)]
struct Opts {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags: Vec<(String, String)> = Vec::new();
        let mut switches: Vec<String> = Vec::new();
        // A repeated flag is ambiguous (which value did the user mean?), so
        // it is rejected rather than silently resolved first- or last-wins.
        let seen_dup = |flags: &[(String, String)], switches: &[String], key: &str| {
            if flags.iter().any(|(k, _)| k == key) || switches.iter().any(|s| s == key) {
                Err(format!("duplicate flag '--{key}'"))
            } else {
                Ok(())
            }
        };
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(key) = a.strip_prefix("--") {
                if ["csv", "json", "quiet", "progress", "resume"].contains(&key) {
                    seen_dup(&flags, &switches, key)?;
                    switches.push(key.to_string());
                    i += 1;
                } else {
                    let val = args
                        .get(i + 1)
                        .ok_or_else(|| format!("--{key} needs a value"))?;
                    seen_dup(&flags, &switches, key)?;
                    flags.push((key.to_string(), val.clone()));
                    i += 2;
                }
            } else if a == "-o" {
                // short alias for --out (so `-o x --out y` is a duplicate too)
                let val = args.get(i + 1).ok_or("-o needs a value")?;
                seen_dup(&flags, &switches, "out")?;
                flags.push(("out".to_string(), val.clone()));
                i += 2;
            } else if a.starts_with('-') && a.len() > 1 {
                return Err(format!("unknown flag '{a}'"));
            } else {
                positional.push(a.clone());
                i += 1;
            }
        }
        Ok(Self {
            positional,
            flags,
            switches,
        })
    }

    /// Reject flags and switches a command does not understand — a typo'd
    /// option must fail loudly, not silently fall back to its default.
    fn expect(&self, cmd: &str, flags: &[&str], switches: &[&str]) -> Result<(), String> {
        for (k, _) in &self.flags {
            if !flags.contains(&k.as_str()) {
                return Err(format!("unknown flag '--{k}' for '{cmd}'"));
            }
        }
        for s in &self.switches {
            if !switches.contains(&s.as_str()) {
                return Err(format!("unknown flag '--{s}' for '{cmd}'"));
            }
        }
        Ok(())
    }

    fn get(&self, key: &str) -> Option<&str> {
        // parse() rejects duplicates, so the first match is the only match
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    fn scale(&self) -> Result<Scale, String> {
        match self.get("scale").unwrap_or("demo") {
            "mini" => Ok(Scale::mini()),
            "demo" => Ok(Scale::demo()),
            "paper" => Ok(Scale::paper()),
            other => Err(format!("unknown scale '{other}'")),
        }
    }

    fn workloads(&self) -> Result<Vec<WorkloadKind>, String> {
        match self.get("workloads") {
            None => Ok(WorkloadKind::PAPER_SET.to_vec()),
            Some(list) => list
                .split(',')
                .map(|w| WorkloadKind::parse(w).ok_or_else(|| format!("unknown workload '{w}'")))
                .collect(),
        }
    }

    fn report_mode(&self) -> Result<Mode, String> {
        Mode::from_switches(self.has("json"), self.has("quiet"))
    }

    fn threads(&self) -> Result<Option<usize>, String> {
        match self.get("threads") {
            None => Ok(None),
            Some(t) => t
                .parse()
                .map(Some)
                .map_err(|_| format!("bad thread count '{t}'")),
        }
    }

    /// `--sample`: "off" (the default) walks every event;
    /// `interval=N,clusters=K[,warmup=functional|cold]` (or just "on" for
    /// the defaults) simulates one representative interval per cluster
    /// and extrapolates with confidence intervals.
    fn sample(&self) -> Result<SampleMode, String> {
        match self.get("sample") {
            None => Ok(SampleMode::Off),
            Some(v) => SampleMode::parse(v),
        }
    }

    /// `--shards`: "auto" (the default) picks for this host, "seq" forces
    /// the sequential engine, N >= 1 requests that many set shards. Zero
    /// is rejected (a zero-worker engine cannot make progress) and
    /// duplicates are already rejected by [`Opts::parse`].
    fn shards(&self) -> Result<Engine, String> {
        match self.get("shards").unwrap_or("auto") {
            "auto" => Ok(Engine::auto()),
            "seq" => Ok(Engine::Sequential),
            n => match n.parse::<usize>() {
                Ok(0) => Err("--shards must be at least 1 (or 'auto'/'seq')".into()),
                Ok(n) => Ok(Engine::Sharded(n)),
                Err(_) => Err(format!("bad shard count '{n}' (want N, 'auto', or 'seq')")),
            },
        }
    }
}

/// Per-command observability lifecycle: armed by `--metrics-out`,
/// `--progress`, or `--trace-out`, it resets and enables the global
/// registry, optionally starts the live progress sampler and the flight
/// recorder, accumulates the run manifest, and on [`ObsSession::finish`]
/// renders the phase-timing summary, writes the deterministic metrics
/// JSON, and drains the recorder into a Chrome trace-event file.
struct ObsSession {
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    sampler: Option<memsim_obs::ProgressSampler>,
    progress: bool,
    active: bool,
    manifest: Vec<(&'static str, String)>,
}

impl ObsSession {
    fn start(opts: &Opts, command: &str) -> Self {
        let metrics_out = opts.get("metrics-out").map(PathBuf::from);
        let trace_out = opts.get("trace-out").map(PathBuf::from);
        let progress = opts.has("progress");
        let active = metrics_out.is_some() || trace_out.is_some() || progress;
        if active {
            memsim_obs::reset();
            memsim_obs::set_enabled(true);
            if std::env::var_os("MEMSIM_OBS_DETERMINISTIC").is_some() {
                memsim_obs::set_deterministic(true);
            }
        }
        if trace_out.is_some() {
            memsim_obs::recorder::start(0);
        }
        let sampler = progress.then(|| memsim_obs::ProgressSampler::start(command));
        Self {
            metrics_out,
            trace_out,
            sampler,
            progress,
            active,
            manifest: vec![
                ("command", command.to_string()),
                ("version", env!("CARGO_PKG_VERSION").to_string()),
            ],
        }
    }

    /// Add a manifest entry (workload, design, scale, ...).
    fn annotate(&mut self, key: &'static str, value: String) {
        if self.active {
            self.manifest.push((key, value));
        }
    }

    fn finish(mut self) -> Result<(), String> {
        drop(self.sampler.take());
        if self.progress {
            eprint!("{}", memsim_obs::render_summary(memsim_obs::global()));
        }
        let manifest: Vec<(&str, String)> =
            self.manifest.iter().map(|(k, v)| (*k, v.clone())).collect();
        if let Some(path) = &self.metrics_out {
            let doc = memsim_obs::export_json(&manifest, memsim_obs::global());
            std::fs::write(path, doc)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("metrics written to {}", path.display());
        }
        if let Some(path) = &self.trace_out {
            let lanes = memsim_obs::recorder::stop_and_drain();
            let doc = memsim_obs::chrome_trace_json(&manifest, &lanes);
            std::fs::write(path, doc)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!(
                "timeline trace written to {} (open in ui.perfetto.dev)",
                path.display()
            );
        }
        if self.active {
            // leave global state quiescent for subsequent in-process calls
            memsim_obs::set_enabled(false);
        }
        Ok(())
    }
}

/// Trace-file name for the export manifest. Only the basename goes in:
/// the directory varies per run (tmpdirs, CI workspaces) and would break
/// the byte-stable deterministic exports that CI diffs against goldens.
fn trace_basename(path: &str) -> String {
    std::path::Path::new(path)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

fn run(args: &[String]) -> Result<(), CliError> {
    let cmd = args.first().ok_or("no command given")?.clone();
    let opts = Opts::parse(&args[1..])?;
    match cmd.as_str() {
        "list" => {
            opts.expect("list", &[], &[])?;
            cmd_list().map_err(CliError::from)
        }
        "table" => {
            opts.expect(
                "table",
                &["scale", "workloads", "threads", "out", "sample"],
                &["csv", "resume"],
            )?;
            cmd_table(&opts)
        }
        "figure" => {
            opts.expect(
                "figure",
                &[
                    "scale",
                    "workloads",
                    "threads",
                    "shards",
                    "out",
                    "sample",
                    "trace-out",
                ],
                &["csv", "resume"],
            )?;
            cmd_figure(&opts)
        }
        "run" => {
            opts.expect(
                "run",
                &[
                    "workload",
                    "design",
                    "llc",
                    "nvm",
                    "config",
                    "scale",
                    "metrics-out",
                    "trace-out",
                ],
                &["json", "quiet", "progress"],
            )?;
            cmd_run(&opts).map_err(CliError::from)
        }
        "heatmap" => {
            opts.expect(
                "heatmap",
                &[
                    "scale",
                    "workloads",
                    "threads",
                    "shards",
                    "out",
                    "sample",
                    "trace-out",
                ],
                &["csv", "resume"],
            )?;
            cmd_heatmap(&opts)
        }
        "reproduce" => {
            opts.expect(
                "reproduce",
                &[
                    "out",
                    "scale",
                    "workloads",
                    "threads",
                    "shards",
                    "sample",
                    "metrics-out",
                    "trace-out",
                ],
                &["resume", "progress"],
            )?;
            cmd_reproduce(&opts)
        }
        "analyze" => {
            opts.expect("analyze", &["workload", "scale"], &[])?;
            cmd_analyze(&opts).map_err(CliError::from)
        }
        "record" => {
            opts.expect(
                "record",
                &["out", "scale", "metrics-out"],
                &["json", "quiet", "progress"],
            )?;
            cmd_record(&opts).map_err(CliError::from)
        }
        "replay" => {
            opts.expect(
                "replay",
                &[
                    "designs",
                    "scale",
                    "threads",
                    "shards",
                    "sample",
                    "metrics-out",
                    "trace-out",
                ],
                &["json", "quiet", "progress"],
            )?;
            cmd_replay(&opts)
        }
        "trace-info" => {
            opts.expect("trace-info", &[], &["json", "quiet"])?;
            cmd_trace_info(&opts).map_err(CliError::from)
        }
        "serve" => {
            opts.expect("serve", &["port", "state", "threads", "queue"], &[])?;
            cmd_serve(&opts)
        }
        "submit" => {
            opts.expect(
                "submit",
                &[
                    "addr",
                    "artifact",
                    "replay",
                    "designs",
                    "scale",
                    "workloads",
                    "shards",
                    "sample",
                    "out",
                ],
                &["json", "quiet"],
            )?;
            cmd_submit(&opts)
        }
        "status" => {
            opts.expect("status", &["addr"], &["json"])?;
            cmd_status(&opts).map_err(CliError::from)
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'").into()),
    }
}

fn cmd_list() -> Result<(), String> {
    println!("workloads (Table 4 set marked *):");
    for k in WorkloadKind::ALL {
        let star = if WorkloadKind::PAPER_SET.contains(&k) {
            "*"
        } else {
            " "
        };
        println!("  {star} {}", k.name());
    }
    println!("\ndesigns: baseline, 4lc, nmm, 4lcnvm, ndm");
    println!("\nTable 2 (4LC/4LCNVM eDRAM-HMC configs):");
    for c in eh_configs() {
        println!(
            "  {}: {} MB, {} B pages",
            c.name,
            c.capacity_bytes >> 20,
            c.page_bytes
        );
    }
    println!("\nTable 3 (NMM DRAM-cache configs):");
    for c in n_configs() {
        println!(
            "  {}: {} MB, {} B pages",
            c.name,
            c.capacity_bytes >> 20,
            c.page_bytes
        );
    }
    println!("\nfigures: fig1 fig2 (NMM) fig3 fig4 (4LC) fig5 fig6 (4LCNVM) fig7 fig8 (NDM) fig9 fig10 (heat maps)");
    Ok(())
}

/// Open (or resume) the sweep journal in `out` and arm the ctrl-c flag.
/// The sampling mode joins the journal fingerprint: a sampled journal
/// refuses to resume a full-fidelity sweep and vice versa.
fn start_sweep(
    out: &Path,
    scale: &Scale,
    resume: bool,
    sample: SampleMode,
) -> Result<SweepCtx, String> {
    std::fs::create_dir_all(out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    let journal = out.join(JOURNAL_FILE);
    let mut ctx = if resume {
        let (ctx, rec) = SweepCtx::resume_sampled(scale, &journal, sample)?;
        if rec.corrupt_lines > 0 {
            eprintln!(
                "resume: dropped {} corrupt journal line(s)",
                rec.corrupt_lines
            );
        }
        if rec.mismatched_lines > 0 {
            eprintln!(
                "resume: ignored {} line(s) journaled under a different config or scale",
                rec.mismatched_lines
            );
        }
        eprintln!(
            "resume: restored {} completed point(s) from {}",
            rec.points.len(),
            journal.display()
        );
        ctx
    } else {
        SweepCtx::fresh_sampled(scale, &journal, sample)?
    };
    ctx.set_interrupt(interrupt::install());
    Ok(ctx)
}

/// Journaling for `table`/`figure`/`heatmap`: armed only when `--out` is
/// present (`reproduce` always journals and uses [`start_sweep`] directly).
fn start_sweep_opt(
    opts: &Opts,
    scale: &Scale,
    sample: SampleMode,
) -> Result<Option<SweepCtx>, String> {
    match opts.get("out") {
        Some(out) => start_sweep(Path::new(out), scale, opts.has("resume"), sample).map(Some),
        None if opts.has("resume") => {
            Err("--resume needs --out DIR (the journal lives there)".into())
        }
        None => Ok(None),
    }
}

/// The exact command line that resumes this sweep: the original invocation
/// with `--resume` appended.
fn resume_hint(cmd: &str, opts: &Opts) -> String {
    let mut parts = vec!["memsim".to_string(), cmd.to_string()];
    parts.extend(opts.positional.iter().cloned());
    for (k, v) in &opts.flags {
        parts.push(format!("--{k}"));
        parts.push(v.clone());
    }
    for s in &opts.switches {
        if s != "resume" {
            parts.push(format!("--{s}"));
        }
    }
    parts.push("--resume".to_string());
    parts.join(" ")
}

/// Render a sweep failure or interrupt as a runtime [`CliError`]; on
/// interrupt, report the journal state and print the resume command.
fn sweep_err(e: SweepError, cmd: &str, opts: &Opts, sweep: Option<&SweepCtx>) -> CliError {
    match e {
        SweepError::Interrupted => {
            if let Some(ctx) = sweep {
                eprintln!(
                    "interrupted: {} completed point(s) journaled",
                    ctx.persisted_points()
                );
                eprintln!("resume with: {}", resume_hint(cmd, opts));
            }
            CliError::runtime("interrupted before the sweep completed".into())
        }
        SweepError::Failed(failures) => {
            eprintln!("{} sweep point(s) failed:", failures.len());
            for f in &failures {
                eprintln!("  {f}");
            }
            CliError::runtime(format!("{} sweep point(s) failed", failures.len()))
        }
    }
}

/// Write a rendered artifact's markdown and CSV next to the journal.
fn write_artifact(out: &Path, name: &str, md: &str, csv: &str) -> Result<(), String> {
    std::fs::write(out.join(format!("{name}.md")), md)
        .map_err(|e| format!("cannot write {name}.md: {e}"))?;
    std::fs::write(out.join(format!("{name}.csv")), csv)
        .map_err(|e| format!("cannot write {name}.csv: {e}"))?;
    Ok(())
}

fn cmd_table(opts: &Opts) -> Result<(), CliError> {
    let which = opts.positional.first().ok_or("table needs a name")?;
    if (opts.get("out").is_some() || opts.has("resume"))
        && !matches!(which.as_str(), "table4" | "workloads")
    {
        return Err("--out/--resume only apply to 'table table4' (the others are static)".into());
    }
    match which.as_str() {
        "tech" | "table1" => {
            println!("{}", experiments::table1().to_markdown());
        }
        "eh-configs" | "table2" => {
            println!("| name | capacity (MB) | page (B) |");
            println!("|---|---|---|");
            for c in eh_configs() {
                println!(
                    "| {} | {} | {} |",
                    c.name,
                    c.capacity_bytes >> 20,
                    c.page_bytes
                );
            }
        }
        "nmm-configs" | "table3" => {
            println!("| name | DRAM capacity (MB) | page (B) |");
            println!("|---|---|---|");
            for c in n_configs() {
                println!(
                    "| {} | {} | {} |",
                    c.name,
                    c.capacity_bytes >> 20,
                    c.page_bytes
                );
            }
        }
        "table4" | "workloads" => {
            let scale = opts.scale()?;
            let sample = opts.sample()?;
            let sweep = start_sweep_opt(opts, &scale, sample)?;
            let cache = SimCache::new();
            let mut ctx = ExperimentCtx::new(scale, &cache).with_sample(sample);
            if let Some(s) = &sweep {
                ctx = ctx.with_sweep(s);
            }
            ctx.workloads = opts.workloads()?;
            ctx.threads = opts.threads()?;
            let t = experiments::table4(&ctx)
                .map_err(|e| sweep_err(e, "table", opts, sweep.as_ref()))?;
            println!(
                "{}",
                if opts.has("csv") {
                    t.to_csv()
                } else {
                    t.to_markdown()
                }
            );
            if let Some(out) = opts.get("out") {
                write_artifact(Path::new(out), "table4", &t.to_markdown(), &t.to_csv())?;
            }
        }
        other => return Err(format!("unknown table '{other}'").into()),
    }
    Ok(())
}

use memsim_core::artifacts::{render_figure as render_fig, render_heatmap as render_heat};

fn cmd_figure(opts: &Opts) -> Result<(), CliError> {
    let which = opts
        .positional
        .first()
        .ok_or("figure needs an id (fig1..fig10)")?;
    let scale = opts.scale()?;
    let engine = opts.shards()?;
    let sample = opts.sample()?;
    let mut obs = ObsSession::start(opts, "figure");
    obs.annotate("figure", which.clone());
    obs.annotate("scale", scale.class.name().to_string());
    let mut sweep = start_sweep_opt(opts, &scale, sample)?;
    if let Some(s) = sweep.as_mut() {
        s.set_shards(engine.journal_shards());
    }
    let cache = SimCache::new();
    let mut ctx = ExperimentCtx::new(scale, &cache)
        .with_engine(engine)
        .with_sample(sample);
    if let Some(s) = &sweep {
        ctx = ctx.with_sweep(s);
    }
    ctx.workloads = opts.workloads()?;
    ctx.threads = opts.threads()?;
    let to_err = |e| sweep_err(e, "figure", opts, sweep.as_ref());
    let (md, csv) = match which.as_str() {
        "fig1" => render_fig(&experiments::fig_nmm(&ctx, Metric::Time).map_err(to_err)?),
        "fig2" => render_fig(&experiments::fig_nmm(&ctx, Metric::Energy).map_err(to_err)?),
        "fig3" => render_fig(&experiments::fig_4lc(&ctx, Metric::Time).map_err(to_err)?),
        "fig4" => render_fig(&experiments::fig_4lc(&ctx, Metric::Energy).map_err(to_err)?),
        "fig5" => render_fig(&experiments::fig_4lcnvm(&ctx, Metric::Time).map_err(to_err)?),
        "fig6" => render_fig(&experiments::fig_4lcnvm(&ctx, Metric::Energy).map_err(to_err)?),
        "fig7" => render_fig(&experiments::fig_ndm(&ctx, Metric::Time).map_err(to_err)?),
        "fig8" => render_fig(&experiments::fig_ndm(&ctx, Metric::Energy).map_err(to_err)?),
        "fig9" => render_heat(&experiments::fig9(&ctx).map_err(to_err)?),
        "fig10" => render_heat(&experiments::fig10(&ctx).map_err(to_err)?),
        other => return Err(format!("unknown figure '{other}'").into()),
    };
    println!("{}", if opts.has("csv") { &csv } else { &md });
    if let Some(out) = opts.get("out") {
        write_artifact(Path::new(out), which, &md, &csv)?;
    }
    obs.finish()?;
    Ok(())
}

fn parse_tech(opts: &Opts, key: &str, default: Technology) -> Result<Technology, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(t) => Technology::parse(t).ok_or_else(|| format!("unknown technology '{t}'")),
    }
}

fn cmd_run(opts: &Opts) -> Result<(), String> {
    let workload = WorkloadKind::parse(opts.get("workload").ok_or("--workload required")?)
        .ok_or("unknown workload")?;
    let scale = opts.scale()?;
    let design = match opts.get("design").ok_or("--design required")? {
        "baseline" => Design::Baseline,
        "4lc" => Design::FourLc {
            llc: parse_tech(opts, "llc", Technology::Edram)?,
            config: eh_by_name(opts.get("config").unwrap_or("EH1")).ok_or("unknown EH config")?,
        },
        "nmm" => Design::Nmm {
            nvm: parse_tech(opts, "nvm", Technology::Pcm)?,
            config: n_by_name(opts.get("config").unwrap_or("N6")).ok_or("unknown N config")?,
        },
        "4lcnvm" => Design::FourLcNvm {
            llc: parse_tech(opts, "llc", Technology::Edram)?,
            nvm: parse_tech(opts, "nvm", Technology::Pcm)?,
            config: eh_by_name(opts.get("config").unwrap_or("EH1")).ok_or("unknown EH config")?,
        },
        "ndm" => Design::Ndm {
            nvm: parse_tech(opts, "nvm", Technology::Pcm)?,
        },
        other => return Err(format!("unknown design '{other}'")),
    };
    design.validate()?;

    let mut r = Report::new(opts.report_mode()?);
    let mut obs = ObsSession::start(opts, "run");
    obs.annotate("workload", workload.name().to_string());
    obs.annotate("design", design.label());
    obs.annotate("scale", scale.class.name().to_string());

    let base = evaluate(workload, &scale, &Design::Baseline);
    let result = evaluate(workload, &scale, &design);
    let norm = result.metrics.normalized_to(&base.metrics);

    r.text(format!("# {} on {}", design.label(), workload.name()));
    r.blank();
    r.text("| metric | baseline | design | normalized |");
    r.text("|---|---|---|---|");
    r.text(format!(
        "| AMAT (ns) | {:.3} | {:.3} | {:.4} |",
        base.metrics.amat_ns,
        result.metrics.amat_ns,
        result.metrics.amat_ns / base.metrics.amat_ns
    ));
    r.text(format!(
        "| time (ms) | {:.3} | {:.3} | {:.4} |",
        base.metrics.time_s * 1e3,
        result.metrics.time_s * 1e3,
        norm.time
    ));
    r.text(format!(
        "| dynamic energy (mJ) | {:.3} | {:.3} | {:.4} |",
        base.metrics.dynamic_j * 1e3,
        result.metrics.dynamic_j * 1e3,
        norm.dynamic
    ));
    r.text(format!(
        "| static energy (mJ) | {:.3} | {:.3} | {:.4} |",
        base.metrics.static_j * 1e3,
        result.metrics.static_j * 1e3,
        norm.static_
    ));
    r.text(format!(
        "| total energy (mJ) | {:.3} | {:.3} | {:.4} |",
        base.metrics.energy_j() * 1e3,
        result.metrics.energy_j() * 1e3,
        norm.energy
    ));
    r.text(format!(
        "| EDP (µJ·s) | {:.4} | {:.4} | {:.4} |",
        base.metrics.edp() * 1e6,
        result.metrics.edp() * 1e6,
        norm.edp
    ));
    r.blank();
    r.text(format!("## hierarchy ({} refs)", result.run.total_refs));
    r.blank();
    r.text("| level | loads | stores | hit rate | MiB read | MiB written |");
    r.text("|---|---|---|---|---|---|");
    for s in result.run.all_levels() {
        r.text(format!(
            "| {} | {} | {} | {:.4} | {:.1} | {:.1} |",
            s.name,
            s.loads,
            s.stores,
            s.hit_rate(),
            s.bytes_loaded as f64 / (1 << 20) as f64,
            s.bytes_stored as f64 / (1 << 20) as f64,
        ));
    }
    // per-level energy breakdown (non-NDM designs expose aligned costing)
    if !matches!(design, Design::Ndm { .. }) {
        let costs = design.costing(&scale, &result.run);
        let stats = result.run.all_levels();
        let pairs: Vec<_> = stats.into_iter().zip(costs.iter()).collect();
        r.blank();
        r.text("## energy breakdown");
        r.blank();
        r.text("| level | time share | dynamic (mJ) | static power (mW) |");
        r.text("|---|---|---|---|");
        let total_ns: f64 = pairs.iter().map(|(st, c)| c.time_ns(st)).sum();
        for row in memsim_core::breakdown(&pairs) {
            r.text(format!(
                "| {} | {:.1}% | {:.3} | {:.2} |",
                row.name,
                100.0 * row.time_ns / total_ns,
                row.dynamic_j * 1e3,
                row.static_w * 1e3,
            ));
        }
    }

    if let Some(placement) = &result.placement {
        r.blank();
        r.text("## NDM placement");
        r.blank();
        r.text("| region | bytes | placement | memory refs |");
        r.text("|---|---|---|---|");
        for (i, p) in placement.iter().enumerate() {
            r.text(format!(
                "| {} | {} | {:?} | {} |",
                result.run.region_names[i],
                result.run.region_sizes[i],
                p,
                result.run.per_region[i].loads + result.run.per_region[i].stores,
            ));
        }
    }

    r.str_field("workload", workload.name());
    r.str_field("design", &design.label());
    r.str_field("scale", scale.class.name());
    r.u64_field("total_refs", result.run.total_refs);
    r.raw("baseline", metrics_json(&base.metrics));
    r.raw("design_metrics", metrics_json(&result.metrics));
    let mut normalized = json::Obj::new();
    normalized
        .f64("time", norm.time)
        .f64("dynamic", norm.dynamic)
        .f64("static", norm.static_)
        .f64("energy", norm.energy)
        .f64("edp", norm.edp);
    r.raw("normalized", normalized.finish());
    r.raw("levels", levels_json(&result.run));
    r.finish();
    obs.finish()
}

/// A [`memsim_core::Metrics`] value as a JSON object.
fn metrics_json(m: &memsim_core::Metrics) -> String {
    let mut o = json::Obj::new();
    o.f64("amat_ns", m.amat_ns)
        .f64("time_s", m.time_s)
        .f64("dynamic_j", m.dynamic_j)
        .f64("static_j", m.static_j)
        .f64("energy_j", m.energy_j())
        .f64("edp", m.edp());
    o.finish()
}

/// Every level's counters of a run as a JSON array (same fields the
/// `--metrics-out` registry dump publishes, for cross-checking).
fn levels_json(run: &memsim_core::RawRun) -> String {
    let levels: Vec<String> = run
        .all_levels()
        .into_iter()
        .map(|s| {
            let mut o = json::Obj::new();
            o.str("name", &s.name)
                .u64("loads", s.loads)
                .u64("stores", s.stores)
                .u64("load_hits", s.load_hits)
                .u64("load_misses", s.load_misses)
                .u64("store_hits", s.store_hits)
                .u64("store_misses", s.store_misses)
                .u64("writebacks_out", s.writebacks_out)
                .u64("fills", s.fills)
                .u64("bytes_loaded", s.bytes_loaded)
                .u64("bytes_stored", s.bytes_stored);
            o.finish()
        })
        .collect();
    json::array(&levels)
}

/// Characterize a workload's address stream: reference counts, load/store
/// mix, stride locality, per-region traffic, and the LRU miss-ratio curve
/// from exact stack-distance analysis.
fn cmd_analyze(opts: &Opts) -> Result<(), String> {
    use memsim_trace::sinks::RegionProfiler;
    use memsim_trace::stats::StreamStats;
    use memsim_trace::{ReuseDistance, TraceEvent, TraceSink};

    let workload = WorkloadKind::parse(opts.get("workload").ok_or("--workload required")?)
        .ok_or("unknown workload")?;
    let scale = opts.scale()?;
    let mut w = workload.build(scale.class);

    struct Analyzer {
        stats: StreamStats,
        reuse: ReuseDistance,
        regions: RegionProfiler,
    }
    impl TraceSink for Analyzer {
        fn access(&mut self, ev: TraceEvent) {
            self.stats.access(ev);
            self.reuse.access(ev);
            self.regions.access(ev);
        }
    }

    let mut sink = Analyzer {
        stats: StreamStats::new(),
        reuse: ReuseDistance::new(64),
        regions: RegionProfiler::new(w.space()),
    };
    let names: Vec<String> = w.space().regions().iter().map(|r| r.name.clone()).collect();
    let sizes: Vec<u64> = w.space().regions().iter().map(|r| r.len).collect();
    w.run(&mut sink);
    w.verify()?;

    println!("# {} ({} scale)", workload.name(), scale.class.name());
    println!();
    println!(
        "references: {} ({} loads, {} stores; store fraction {:.1}%)",
        sink.stats.total_refs(),
        sink.stats.loads,
        sink.stats.stores,
        100.0 * sink.stats.stores as f64 / sink.stats.total_refs().max(1) as f64
    );
    println!(
        "footprint: {:.1} MiB over {} regions; touched span {:.1} MiB",
        w.footprint_bytes() as f64 / (1 << 20) as f64,
        names.len(),
        sink.stats.touched_span() as f64 / (1 << 20) as f64
    );
    println!(
        "stride locality (fraction of consecutive refs within 64 B): {:.1}%",
        100.0 * sink.stats.locality_below(64)
    );
    println!(
        "distinct 64 B lines touched: {}",
        sink.reuse.distinct_blocks()
    );
    println!();
    println!("## LRU miss-ratio curve (fully associative, 64 B lines)");
    println!();
    println!("| capacity | miss ratio |");
    println!("|---|---|");
    let curve = sink.reuse.miss_ratio_curve(24);
    for (i, m) in curve.iter().enumerate().step_by(2) {
        println!("| {} | {:.4} |", human_capacity(64u64 << i), m);
    }
    println!();
    println!("## per-region traffic");
    println!();
    println!("| region | bytes | loads | stores | refs/KiB |");
    println!("|---|---|---|---|---|");
    let hot = sink.regions.hottest();
    for (id, total) in hot.iter().take(12) {
        let i = id.index();
        println!(
            "| {} | {} | {} | {} | {:.1} |",
            names[i],
            sizes[i],
            sink.regions.loads[i],
            sink.regions.stores[i],
            *total as f64 / (sizes[i].max(1) as f64 / 1024.0)
        );
    }
    Ok(())
}

fn human_capacity(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{} MiB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{} KiB", bytes >> 10)
    } else {
        format!("{bytes} B")
    }
}

/// Build one `reproduce` artifact as (markdown, CSV) through the shared
/// artifact registry (`memsim_core::artifacts`) — the same code path the
/// server's jobs use, which is what keeps them byte-identical.
fn build_artifact(ctx: &ExperimentCtx, name: &str) -> Result<(String, String), SweepError> {
    memsim_core::build_artifact(ctx, name)
}

/// Regenerate every table and figure into `--out DIR` (markdown + CSV),
/// sharing one simulation memo across all of them.
///
/// Crash-resilient: every completed (workload, design) point is journaled
/// to `DIR/sweep.journal.jsonl` as it finishes, `--resume` restores those
/// points instead of re-simulating (the final report is byte-identical to
/// an uninterrupted run), a panicking point is recorded and skipped while
/// every other artifact still builds, and ctrl-c drains in-flight points
/// and prints the exact resume command.
fn cmd_reproduce(opts: &Opts) -> Result<(), CliError> {
    let out = PathBuf::from(opts.get("out").unwrap_or("reproduction"));
    let scale = opts.scale()?;
    let engine = opts.shards()?;
    let sample = opts.sample()?;
    let mut sweep = start_sweep(&out, &scale, opts.has("resume"), sample)?;
    sweep.set_shards(engine.journal_shards());
    let mut obs = ObsSession::start(opts, "reproduce");
    obs.annotate("scale", scale.class.name().to_string());
    obs.annotate("out", out.display().to_string());
    obs.annotate("engine", engine.to_string());
    obs.annotate("sample", sample.canon());
    let cache = SimCache::new();
    let mut ctx = ExperimentCtx::new(scale, &cache)
        .with_sweep(&sweep)
        .with_engine(engine)
        .with_sample(sample);
    ctx.workloads = opts.workloads()?;
    ctx.threads = opts.threads()?;

    let write = |name: &str, md: String, csv: String| -> Result<(), String> {
        write_artifact(&out, name, &md, &csv)?;
        eprintln!("wrote {name}");
        Ok(())
    };

    let t1 = experiments::table1();
    write("table1", t1.to_markdown(), t1.to_csv())?;

    // A failed artifact does not abort the reproduction: the failure is
    // journaled and every artifact the failed point does not feed still
    // builds. Only an interrupt stops the loop.
    let mut failed: Vec<String> = Vec::new();
    let mut interrupted = false;
    for name in memsim_core::ARTIFACT_NAMES {
        if sweep.interrupted() {
            interrupted = true;
            break;
        }
        match build_artifact(&ctx, name) {
            Ok((md, csv)) => write(name, md, csv)?,
            Err(SweepError::Interrupted) => {
                interrupted = true;
                break;
            }
            Err(SweepError::Failed(failures)) => {
                // the same broken point surfaces in every artifact that
                // needs it — report it once
                for f in failures {
                    let line = f.to_string();
                    if !failed.contains(&line) {
                        failed.push(line);
                    }
                }
            }
        }
    }
    obs.finish()?;

    if interrupted {
        eprintln!(
            "interrupted: {} completed point(s) journaled in {}",
            sweep.persisted_points(),
            out.join(JOURNAL_FILE).display()
        );
        eprintln!("resume with: {}", resume_hint("reproduce", opts));
        return Err(CliError::runtime(
            "interrupted before the reproduction completed".into(),
        ));
    }
    if !failed.is_empty() {
        eprintln!("reproduction incomplete: {} point(s) failed:", failed.len());
        for f in &failed {
            eprintln!("  {f}");
        }
        eprintln!("completed points are journaled; fix the cause and rerun with --resume");
        return Err(CliError::runtime(format!(
            "{} sweep point(s) failed",
            failed.len()
        )));
    }
    eprintln!("reproduction complete: {}", out.display());
    Ok(())
}

/// The scale whose capacities the trace's recorded class corresponds to.
fn scale_for_class(class: Class) -> Scale {
    match class {
        Class::Mini => Scale::mini(),
        Class::Demo => Scale::demo(),
        Class::Large => Scale::paper(),
    }
}

fn cmd_record(opts: &Opts) -> Result<(), String> {
    let wname = opts
        .positional
        .first()
        .ok_or("record needs a workload name")?;
    let kind = WorkloadKind::parse(wname).ok_or_else(|| format!("unknown workload '{wname}'"))?;
    let out = opts.get("out").ok_or("record needs -o <file>")?;
    let scale = opts.scale()?;
    let mut r = Report::new(opts.report_mode()?);
    let mut obs = ObsSession::start(opts, "record");
    obs.annotate("workload", kind.name().to_string());
    obs.annotate("scale", scale.class.name().to_string());
    obs.annotate("trace", trace_basename(out));
    if r.mode() == Mode::Human {
        eprintln!(
            "recording {} at {} scale to {out} ...",
            kind.name(),
            scale.class.name()
        );
    }
    let s = memsim_core::record_workload(kind, scale.class, Path::new(out))?;
    r.text(format!(
        "recorded {} events in {} chunks ({:.1} MiB, {:.2} B/event, {:.1} MiB footprint)",
        s.events,
        s.chunks,
        s.file_bytes as f64 / (1 << 20) as f64,
        s.bytes_per_event(),
        s.footprint_bytes as f64 / (1 << 20) as f64,
    ));
    r.str_field("workload", kind.name());
    r.str_field("scale", scale.class.name());
    r.str_field("trace", out);
    r.u64_field("events", s.events);
    r.u64_field("chunks", s.chunks);
    r.u64_field("file_bytes", s.file_bytes);
    r.f64_field("bytes_per_event", s.bytes_per_event());
    r.u64_field("footprint_bytes", s.footprint_bytes);
    r.finish();
    obs.finish()
}

/// The design grid `replay` evaluates by default: one representative per
/// architecture family, at the configs the paper highlights (shared with
/// the server's design-grid jobs).
fn default_replay_designs() -> Vec<(&'static str, Design)> {
    memsim_core::named_designs()
}

fn cmd_replay(opts: &Opts) -> Result<(), CliError> {
    let file = opts.positional.first().ok_or("replay needs a trace file")?;
    let path = Path::new(file);

    // scale defaults to the class the trace was recorded at
    let header = TraceReader::open(path)
        .map_err(|e| format!("{file}: {e}"))?
        .header()
        .clone();
    let scale = match opts.get("scale") {
        Some(_) => opts.scale()?,
        None => scale_for_class(
            Class::parse(&header.class)
                .ok_or_else(|| format!("trace records unknown class '{}'", header.class))?,
        ),
    };
    if scale.class.name() != header.class {
        eprintln!(
            "warning: trace was recorded at {} scale but is replayed against {} capacities",
            header.class,
            scale.class.name()
        );
    }

    let all = default_replay_designs();
    let designs: Vec<Design> = match opts.get("designs") {
        None => all.iter().map(|(_, d)| *d).collect(),
        Some(list) => list
            .split(',')
            .map(|name| {
                all.iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, d)| *d)
                    .ok_or_else(|| format!("unknown design '{name}'"))
            })
            .collect::<Result<_, _>>()?,
    };
    // Baseline anchors normalization even when not requested explicitly.
    let mut grid = vec![Design::Baseline];
    grid.extend(designs.iter().filter(|d| **d != Design::Baseline).copied());

    let engine = opts.shards()?;
    let sample = opts.sample()?;
    let mut rep = Report::new(opts.report_mode()?);
    let mut obs = ObsSession::start(opts, "replay");
    obs.annotate("trace", trace_basename(file));
    obs.annotate("workload", header.workload.clone());
    obs.annotate("scale", scale.class.name().to_string());
    obs.annotate("engine", engine.to_string());
    obs.annotate("sample", sample.canon());
    obs.annotate(
        "designs",
        grid.iter().map(|d| d.label()).collect::<Vec<_>>().join(","),
    );

    // Fault-isolated: a shard that fails to decode (corrupt chunk,
    // truncation mid-walk) or panics strands only its own designs; the
    // surviving rows still print, and the exit is non-zero.
    let outcome = memsim_core::replay_grid_robust_sampled(
        path,
        &grid,
        &scale,
        opts.threads()?,
        engine,
        sample,
    )?;
    let stranded: Vec<Design> = outcome
        .failures
        .iter()
        .flat_map(|f| f.designs.iter().copied())
        .collect();
    if stranded.contains(&Design::Baseline) {
        // nothing can be normalized without the baseline shard
        let list: Vec<String> = outcome.failures.iter().map(|f| f.to_string()).collect();
        obs.finish()?;
        return Err(CliError::runtime(format!(
            "baseline shard failed, cannot normalize: {}",
            list.join("; ")
        )));
    }
    // surviving results are in grid order; pair them back up with designs
    let mut survivors = outcome.results.iter();
    let results: Vec<(Design, &memsim_core::EvalResult)> = grid
        .iter()
        .filter(|d| !stranded.contains(d))
        .map(|d| (*d, survivors.next().expect("one result per survivor")))
        .collect();
    let base = results[0].1;

    rep.text(format!(
        "# replay of {} ({} events, {} scale{})",
        header.workload,
        base.run.total_refs,
        header.class,
        if sample.is_on() {
            format!(", sampled {}", sample.canon())
        } else {
            String::new()
        }
    ));
    rep.blank();
    if sample.is_on() {
        rep.text("| design | AMAT (ns) | time (ms) | energy (mJ) | EDP (µJ·s) | time× | energy× | EDP× | AMAT CI ±% |");
        rep.text("|---|---|---|---|---|---|---|---|---|");
    } else {
        rep.text(
            "| design | AMAT (ns) | time (ms) | energy (mJ) | EDP (µJ·s) | time× | energy× | EDP× |",
        );
        rep.text("|---|---|---|---|---|---|---|---|");
    }
    let mut rows: Vec<String> = Vec::new();
    for (d, r) in &results {
        if !designs.contains(d) {
            continue;
        }
        let norm = r.metrics.normalized_to(&base.metrics);
        let mut line = format!(
            "| {} | {:.3} | {:.3} | {:.3} | {:.4} | {:.4} | {:.4} | {:.4} |",
            d.label(),
            r.metrics.amat_ns,
            r.metrics.time_s * 1e3,
            r.metrics.energy_j() * 1e3,
            r.metrics.edp() * 1e6,
            norm.time,
            norm.energy,
            norm.edp,
        );
        if sample.is_on() {
            match &r.sample_ci {
                Some(ci) => line.push_str(&format!(" {:.3} |", 100.0 * ci.amat)),
                None => line.push_str(" - |"),
            }
        }
        rep.text(line);
        let mut row = json::Obj::new();
        row.str("design", &d.label())
            .raw("metrics", &metrics_json(&r.metrics))
            .f64("time_x", norm.time)
            .f64("energy_x", norm.energy)
            .f64("edp_x", norm.edp);
        if let Some(ci) = &r.sample_ci {
            let mut c = json::Obj::new();
            c.f64("amat", ci.amat)
                .f64("time", ci.time)
                .f64("energy", ci.energy)
                .f64("edp", ci.edp);
            row.raw("ci_halfwidth", &c.finish());
        }
        rows.push(row.finish());
    }
    rep.str_field("trace", file);
    rep.str_field("workload", &header.workload);
    rep.str_field("scale", scale.class.name());
    rep.str_field("sample", &sample.canon());
    rep.u64_field("events", base.run.total_refs);
    rep.raw("results", json::array(&rows));
    if !outcome.failures.is_empty() {
        let failure_rows: Vec<String> = outcome
            .failures
            .iter()
            .map(|f| {
                let mut o = json::Obj::new();
                o.str("failure", &f.to_string());
                o.finish()
            })
            .collect();
        rep.raw("failures", json::array(&failure_rows));
    }
    rep.finish();
    obs.finish()?;
    if !outcome.failures.is_empty() {
        eprintln!("{} replay shard(s) failed:", outcome.failures.len());
        for f in &outcome.failures {
            eprintln!("  {f}");
        }
        return Err(CliError::runtime(format!(
            "{} replay shard(s) failed",
            outcome.failures.len()
        )));
    }
    Ok(())
}

fn cmd_trace_info(opts: &Opts) -> Result<(), String> {
    let file = opts
        .positional
        .first()
        .ok_or("trace-info needs a trace file")?;
    let path = Path::new(file);
    let mut reader = TraceReader::open(path).map_err(|e| format!("{file}: {e}"))?;
    let header = reader.header().clone();
    let s = memsim_tracefile::summarize(&mut reader).map_err(|e| format!("{file}: {e}"))?;
    let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);

    let mut r = Report::new(opts.report_mode()?);
    r.text(format!("# {file}"));
    r.blank();
    r.text(format!(
        "workload: {} ({} scale)",
        if header.workload.is_empty() {
            "(anonymous)"
        } else {
            &header.workload
        },
        if header.class.is_empty() {
            "unknown"
        } else {
            &header.class
        },
    ));
    r.text(format!("format: v{}", header.version));
    r.text(format!(
        "events: {} ({} loads, {} stores; store fraction {:.1}%)",
        s.events,
        s.loads,
        s.stores,
        100.0 * s.store_fraction()
    ));
    r.text(format!(
        "encoding: {} chunks, {:.2} payload B/event, {:.2} file B/event",
        s.chunks,
        s.payload_bytes_per_event(),
        if s.events == 0 {
            0.0
        } else {
            file_bytes as f64 / s.events as f64
        },
    ));
    r.text(format!(
        "integrity: {}/{} chunks CRC-verified",
        s.crc_verified_chunks, s.chunks
    ));
    if let (Some((min_ev, max_ev)), Some((min_b, max_b))) =
        (s.chunk_events_range, s.chunk_payload_range)
    {
        r.text(format!(
            "chunk shape: {min_ev}-{max_ev} events, {min_b}-{max_b} payload bytes per chunk"
        ));
    }
    r.text(format!(
        "regions: {} ({:.1} MiB registered footprint, base {:#x})",
        header.regions.len(),
        header.footprint_bytes() as f64 / (1 << 20) as f64,
        header.base_addr,
    ));
    if s.events > 0 {
        r.text(format!(
            "touched: {} distinct 64 B lines, address span [{:#x}, {:#x}]",
            s.touched_lines, s.min_addr, s.max_addr
        ));
    }

    r.str_field("trace", file);
    r.str_field("workload", &header.workload);
    r.str_field("class", &header.class);
    r.u64_field("format_version", u64::from(header.version));
    r.u64_field("events", s.events);
    r.u64_field("loads", s.loads);
    r.u64_field("stores", s.stores);
    r.u64_field("chunks", s.chunks);
    r.u64_field("crc_verified_chunks", s.crc_verified_chunks);
    r.u64_field("payload_bytes", s.payload_bytes);
    r.u64_field("file_bytes", file_bytes);
    if let Some((lo, hi)) = s.chunk_events_range {
        r.raw("chunk_events_range", format!("[{lo},{hi}]"));
    }
    if let Some((lo, hi)) = s.chunk_payload_range {
        r.raw("chunk_payload_range", format!("[{lo},{hi}]"));
    }
    r.u64_field("regions", header.regions.len() as u64);
    r.u64_field("footprint_bytes", header.footprint_bytes());
    r.u64_field("touched_lines", s.touched_lines);
    r.finish();
    Ok(())
}

fn cmd_heatmap(opts: &Opts) -> Result<(), CliError> {
    let axis = opts
        .positional
        .first()
        .map(|s| s.as_str())
        .unwrap_or("latency");
    let scale = opts.scale()?;
    let engine = opts.shards()?;
    let sample = opts.sample()?;
    let mut obs = ObsSession::start(opts, "heatmap");
    obs.annotate("axis", axis.to_string());
    obs.annotate("scale", scale.class.name().to_string());
    let mut sweep = start_sweep_opt(opts, &scale, sample)?;
    if let Some(s) = sweep.as_mut() {
        s.set_shards(engine.journal_shards());
    }
    let cache = SimCache::new();
    let mut ctx = ExperimentCtx::new(scale, &cache)
        .with_engine(engine)
        .with_sample(sample);
    if let Some(s) = &sweep {
        ctx = ctx.with_sweep(s);
    }
    ctx.workloads = opts.workloads()?;
    ctx.threads = opts.threads()?;
    let h = match axis {
        "latency" => experiments::fig9(&ctx),
        "energy" => experiments::fig10(&ctx),
        other => return Err(format!("unknown heatmap axis '{other}'").into()),
    }
    .map_err(|e| sweep_err(e, "heatmap", opts, sweep.as_ref()))?;
    println!(
        "{}",
        if opts.has("csv") {
            heatmap_to_csv(&h)
        } else {
            heatmap_to_markdown(&h)
        }
    );
    if let Some(out) = opts.get("out") {
        let (md, csv) = render_heat(&h);
        write_artifact(Path::new(out), axis, &md, &csv)?;
    }
    obs.finish()?;
    Ok(())
}

/// Parse a required-positive integer option, rejecting 0 and junk the
/// same way the `--shards` parser does.
fn positive_opt(opts: &Opts, key: &str, default: usize) -> Result<usize, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => match v.parse::<usize>() {
            Ok(0) => Err(format!("--{key} must be at least 1")),
            Ok(n) => Ok(n),
            Err(_) => Err(format!("bad --{key} value '{v}'")),
        },
    }
}

/// `--port`: `auto` (the default) binds an ephemeral kernel-assigned
/// port (written to `<state>/server.port`); otherwise a literal port.
/// Zero is rejected — say `auto` when you mean "pick one for me".
fn serve_port(opts: &Opts) -> Result<u16, String> {
    match opts.get("port").unwrap_or("auto") {
        "auto" => Ok(0),
        p => match p.parse::<u16>() {
            Ok(0) => Err("--port must be 1-65535 (or 'auto' for ephemeral)".into()),
            Ok(n) => Ok(n),
            Err(_) => Err(format!("bad --port value '{p}' (want 1-65535 or 'auto')")),
        },
    }
}

fn cmd_serve(opts: &Opts) -> Result<(), CliError> {
    let port = serve_port(opts)?;
    let workers = positive_opt(opts, "threads", 2)?;
    let queue_depth = positive_opt(opts, "queue", 16)?;
    let state_dir = PathBuf::from(opts.get("state").unwrap_or("memsim-state"));
    std::fs::create_dir_all(&state_dir)
        .map_err(|e| format!("cannot create state dir {}: {e}", state_dir.display()))?;

    // The daemon always collects metrics — /metrics is part of its API —
    // and keeps the flight recorder armed so a SIGUSR1 (or a job panic)
    // can dump the recent timeline without any prior opt-in.
    memsim_obs::set_enabled(true);
    if std::env::var_os("MEMSIM_OBS_DETERMINISTIC").is_some() {
        memsim_obs::set_deterministic(true);
    }
    memsim_obs::recorder::start(0);

    let mut config = memsim_server::ServerConfig::new(state_dir.clone());
    config.port = port;
    config.workers = workers;
    config.queue_depth = queue_depth;
    let server = memsim_server::Server::start(config).map_err(CliError::runtime)?;
    println!("memsim-server listening on {}", server.addr());
    println!("state dir: {}", state_dir.display());
    for id in server.resumed() {
        println!("resumed job {id}");
    }

    let stop = interrupt::install();
    let dump = interrupt::install_usr1();
    let mut dump_seq = 0u32;
    while !stop.load(std::sync::atomic::Ordering::SeqCst) {
        if dump.swap(false, std::sync::atomic::Ordering::SeqCst) {
            dump_seq += 1;
            let path = state_dir.join(format!("flightrec-{dump_seq}.json"));
            let lanes = memsim_obs::recorder::snapshot_tail(4096);
            let manifest = [("command", "serve".to_string())];
            match std::fs::write(&path, memsim_obs::chrome_trace_json(&manifest, &lanes)) {
                Ok(()) => eprintln!(
                    "SIGUSR1: flight-recorder tail written to {}",
                    path.display()
                ),
                Err(e) => eprintln!("SIGUSR1: cannot write {}: {e}", path.display()),
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("interrupt: draining in-flight points and shutting down");
    server.shutdown();
    Ok(())
}

/// Build the job-spec JSON a `submit` invocation describes, validating
/// it client-side with the same parser the server uses.
fn submit_spec(opts: &Opts) -> Result<String, String> {
    let mut o = json::Obj::new();
    match (opts.get("artifact"), opts.get("replay")) {
        (Some(_), Some(_)) => return Err("give --artifact or --replay, not both".into()),
        (None, None) => return Err("submit needs --artifact or --replay".into()),
        (Some(a), None) => {
            o.str("artifact", a);
            if let Some(w) = opts.get("workloads") {
                o.str("workloads", w);
            }
        }
        (None, Some(w)) => {
            o.str("replay", w);
            if let Some(d) = opts.get("designs") {
                o.str("designs", d);
            }
        }
    }
    if let Some(s) = opts.get("scale") {
        o.str("scale", s);
    }
    if let Some(s) = opts.get("shards") {
        o.str("shards", s);
    }
    if let Some(s) = opts.get("sample") {
        o.str("sample", s);
    }
    let spec = o.finish();
    memsim_server::jobs::parse_spec_bytes(spec.as_bytes())?;
    Ok(spec)
}

fn cmd_submit(opts: &Opts) -> Result<(), CliError> {
    let addr = opts.get("addr").ok_or("submit needs --addr HOST:PORT")?;
    let spec = submit_spec(opts)?;
    let client = memsim_server::client::Client::new(addr);
    let id = client.submit(&spec).map_err(CliError::runtime)?;
    if !opts.has("quiet") {
        eprintln!("submitted {id}");
    }
    let state = client
        .wait(&id, std::time::Duration::from_secs(3600))
        .map_err(CliError::runtime)?;
    if state != "done" {
        let status = client.status(&id).map_err(CliError::runtime)?;
        return Err(CliError::runtime(format!(
            "job {id} ended {state}: {status}"
        )));
    }
    let result = client.result(&id).map_err(CliError::runtime)?;
    let text =
        String::from_utf8(result).map_err(|_| CliError::runtime("non-UTF-8 result".into()))?;
    if opts.has("json") {
        if !opts.has("quiet") {
            println!("{text}");
        }
        return Ok(());
    }
    let v = memsim_core::jsontext::parse_json(&text).map_err(CliError::runtime)?;
    let obj = v
        .as_obj()
        .ok_or_else(|| CliError::runtime("result is not an object".into()))?;
    let md = memsim_core::jsontext::get_str(obj, "markdown").map_err(CliError::runtime)?;
    let csv = memsim_core::jsontext::get_str(obj, "csv").map_err(CliError::runtime)?;
    if !opts.has("quiet") {
        print!("{md}");
    }
    if let Some(out) = opts.get("out") {
        // Same layout as `reproduce --out`: the fetched artifact lands as
        // <name>.md / <name>.csv, byte-comparable against the batch run.
        let name = obj
            .get("artifact")
            .and_then(|a| a.as_str())
            .unwrap_or("replay");
        let dir = Path::new(out);
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::runtime(format!("cannot create {out}: {e}")))?;
        write_artifact(dir, name, md, csv)?;
        if !opts.has("quiet") {
            eprintln!("wrote {name}.md and {name}.csv to {out}");
        }
    }
    Ok(())
}

fn cmd_status(opts: &Opts) -> Result<(), String> {
    let id = opts.positional.first().ok_or("status needs a job id")?;
    let addr = opts.get("addr").ok_or("status needs --addr HOST:PORT")?;
    let client = memsim_server::client::Client::new(addr);
    let doc = client.status(id)?;
    println!("{doc}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn opts_parse_positional_flags_switches() {
        let o = Opts::parse(&args(&[
            "fig1",
            "--scale",
            "mini",
            "--csv",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(o.positional, vec!["fig1"]);
        assert_eq!(o.get("scale"), Some("mini"));
        assert_eq!(o.get("threads"), Some("4"));
        assert!(o.has("csv"));
        assert!(!o.has("md"));
        assert_eq!(o.threads().unwrap(), Some(4));
    }

    #[test]
    fn opts_missing_value_errors() {
        assert!(Opts::parse(&args(&["--scale"])).is_err());
    }

    #[test]
    fn opts_duplicate_flags_are_rejected() {
        // which value did the user mean? refuse to guess
        let err = Opts::parse(&args(&["--scale", "mini", "--scale", "demo"])).unwrap_err();
        assert_eq!(err, "duplicate flag '--scale'");
        // a repeated switch is just as ambiguous (usually a typo'd line)
        assert!(Opts::parse(&args(&["--csv", "--csv"])).is_err());
        // -o is an alias for --out, so mixing the two spellings collides
        assert!(Opts::parse(&args(&["-o", "x", "--out", "y"])).is_err());
        assert!(Opts::parse(&args(&["-o", "x", "-o", "y"])).is_err());
        // distinct flags still coexist
        let o = Opts::parse(&args(&["--scale", "mini", "--threads", "2"])).unwrap();
        assert_eq!(o.get("scale"), Some("mini"));
        assert_eq!(o.get("threads"), Some("2"));
    }

    #[test]
    fn resume_needs_an_out_dir() {
        assert!(run(&args(&["figure", "fig1", "--resume"])).is_err());
        assert!(run(&args(&["heatmap", "latency", "--resume"])).is_err());
        // static tables have no sweep to journal or resume
        assert!(run(&args(&["table", "tech", "--out", "somewhere"])).is_err());
        assert!(run(&args(&["table", "tech", "--resume"])).is_err());
    }

    #[test]
    fn resume_hint_reconstructs_the_invocation() {
        let o = Opts::parse(&args(&[
            "--out",
            "repro",
            "--scale",
            "mini",
            "--progress",
            "--resume",
        ]))
        .unwrap();
        assert_eq!(
            resume_hint("reproduce", &o),
            "memsim reproduce --out repro --scale mini --progress --resume"
        );
        // --resume is appended exactly once even when already present
        assert_eq!(resume_hint("reproduce", &o).matches("--resume").count(), 1);
    }

    #[test]
    fn serve_flag_validation() {
        // unknown flags for serve fail loudly
        assert!(run(&args(&["serve", "--designs", "nmm"])).is_err());
        assert!(run(&args(&["serve", "--csv"])).is_err());
        // port: 0 and junk rejected, 'auto' and literals accepted
        for bad in ["0", "junk", "70000", "-1"] {
            let o = Opts::parse(&args(&["--port", bad])).unwrap();
            assert!(serve_port(&o).is_err(), "--port {bad} accepted");
        }
        let auto = Opts::parse(&args(&[])).unwrap();
        assert_eq!(serve_port(&auto).unwrap(), 0);
        let fixed = Opts::parse(&args(&["--port", "8191"])).unwrap();
        assert_eq!(serve_port(&fixed).unwrap(), 8191);
        // worker/queue counts: zero-sized pools cannot make progress
        for key in ["threads", "queue"] {
            for bad in ["0", "junk"] {
                let o = Opts::parse(&args(&[&format!("--{key}"), bad])).unwrap();
                assert!(positive_opt(&o, key, 2).is_err(), "--{key} {bad} accepted");
            }
            let o = Opts::parse(&args(&[&format!("--{key}"), "3"])).unwrap();
            assert_eq!(positive_opt(&o, key, 2).unwrap(), 3);
        }
        let default = Opts::parse(&args(&[])).unwrap();
        assert_eq!(positive_opt(&default, "queue", 16).unwrap(), 16);
    }

    #[test]
    fn submit_spec_validation() {
        // --artifact and --replay are mutually exclusive and required
        let both = Opts::parse(&args(&["--artifact", "table4", "--replay", "hash"])).unwrap();
        assert!(submit_spec(&both).is_err());
        let neither = Opts::parse(&args(&[])).unwrap();
        assert!(submit_spec(&neither).is_err());
        // a good artifact spec round-trips through the server's parser
        let ok = Opts::parse(&args(&[
            "--artifact",
            "table4",
            "--workloads",
            "hash,bt",
            "--scale",
            "mini",
            "--shards",
            "seq",
        ]))
        .unwrap();
        let spec = submit_spec(&ok).unwrap();
        assert!(spec.contains("\"artifact\":\"table4\""));
        // bad values are caught client-side before any network I/O
        let bad = Opts::parse(&args(&["--artifact", "warp"])).unwrap();
        assert!(submit_spec(&bad).is_err());
        let bad_shards = Opts::parse(&args(&["--artifact", "table4", "--shards", "0"])).unwrap();
        assert!(submit_spec(&bad_shards).is_err());
        // replay spec with designs
        let replay =
            Opts::parse(&args(&["--replay", "hash", "--designs", "baseline,nmm"])).unwrap();
        assert!(submit_spec(&replay)
            .unwrap()
            .contains("\"replay\":\"hash\""));
        // submit/status require --addr; duplicate flags still rejected
        assert!(run(&args(&["submit", "--artifact", "table4"])).is_err());
        assert!(run(&args(&["status", "j1-abc"])).is_err());
        assert!(Opts::parse(&args(&["--addr", "a", "--addr", "b"])).is_err());
    }

    #[test]
    fn scale_parsing() {
        let mini = Opts::parse(&args(&["--scale", "mini"])).unwrap();
        assert_eq!(mini.scale().unwrap(), Scale::mini());
        let default = Opts::parse(&args(&[])).unwrap();
        assert_eq!(default.scale().unwrap(), Scale::demo());
        let bad = Opts::parse(&args(&["--scale", "bogus"])).unwrap();
        assert!(bad.scale().is_err());
    }

    #[test]
    fn workload_list_parsing() {
        let o = Opts::parse(&args(&["--workloads", "cg,hash,graph500"])).unwrap();
        let w = o.workloads().unwrap();
        assert_eq!(
            w,
            vec![WorkloadKind::Cg, WorkloadKind::Hash, WorkloadKind::Graph500]
        );
        let bad = Opts::parse(&args(&["--workloads", "cg,nope"])).unwrap();
        assert!(bad.workloads().is_err());
        let default = Opts::parse(&args(&[])).unwrap();
        assert_eq!(default.workloads().unwrap().len(), 7);
    }

    #[test]
    fn bad_thread_count_errors() {
        let o = Opts::parse(&args(&["--threads", "lots"])).unwrap();
        assert!(o.threads().is_err());
    }

    #[test]
    fn shards_parsing() {
        // default is auto-detection (machine-dependent, but never 0 shards)
        let default = Opts::parse(&args(&[])).unwrap();
        match default.shards().unwrap() {
            Engine::Sequential => {}
            Engine::Sharded(n) => assert!(n >= 2),
        }
        assert_eq!(default.shards().unwrap(), Engine::auto());
        let auto = Opts::parse(&args(&["--shards", "auto"])).unwrap();
        assert_eq!(auto.shards().unwrap(), Engine::auto());
        let seq = Opts::parse(&args(&["--shards", "seq"])).unwrap();
        assert_eq!(seq.shards().unwrap(), Engine::Sequential);
        let four = Opts::parse(&args(&["--shards", "4"])).unwrap();
        assert_eq!(four.shards().unwrap(), Engine::Sharded(4));
        let zero = Opts::parse(&args(&["--shards", "0"])).unwrap();
        assert!(zero.shards().unwrap_err().contains("at least 1"));
        let junk = Opts::parse(&args(&["--shards", "many"])).unwrap();
        assert!(junk.shards().is_err());
        // a repeated --shards is ambiguous, like any duplicate flag
        assert!(Opts::parse(&args(&["--shards", "2", "--shards", "4"])).is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_commands() {
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&args(&[])).is_err());
        assert!(run(&args(&["figure", "fig99"])).is_err());
        assert!(run(&args(&["table", "bogus"])).is_err());
        assert!(run(&args(&["heatmap", "sideways"])).is_err());
    }

    #[test]
    fn dispatch_static_commands_succeed() {
        assert!(run(&args(&["list"])).is_ok());
        assert!(run(&args(&["help"])).is_ok());
        assert!(run(&args(&["table", "tech"])).is_ok());
        assert!(run(&args(&["table", "eh-configs"])).is_ok());
        assert!(run(&args(&["table", "nmm-configs"])).is_ok());
    }

    #[test]
    fn help_lists_every_subcommand() {
        for cmd in [
            "list",
            "table",
            "figure",
            "run",
            "heatmap",
            "reproduce",
            "analyze",
            "record",
            "replay",
            "trace-info",
        ] {
            assert!(
                usage().contains(&format!("memsim {cmd}")),
                "usage() is missing '{cmd}'"
            );
        }
        assert!(run(&args(&["help"])).is_ok());
    }

    #[test]
    fn unknown_flags_are_rejected_per_command() {
        assert!(run(&args(&["list", "--csv"])).is_err());
        assert!(run(&args(&["figure", "fig1", "--bogus", "x"])).is_err());
        assert!(run(&args(&["run", "--workloads", "cg"])).is_err()); // run takes --workload
        assert!(run(&args(&["record", "cg", "--csv"])).is_err());
        assert!(run(&args(&["replay", "x.trace", "--out", "y"])).is_err());
        assert!(run(&args(&["trace-info", "x.trace", "--scale", "mini"])).is_err());
        // the report/obs switches only exist on run/replay/record/trace-info
        assert!(run(&args(&["figure", "fig1", "--json"])).is_err());
        assert!(run(&args(&["list", "--quiet"])).is_err());
        assert!(run(&args(&["trace-info", "x.trace", "--progress"])).is_err());
        assert!(run(&args(&["table", "tech", "--metrics-out", "m.json"])).is_err());
        // short flags other than -o don't exist
        assert!(Opts::parse(&args(&["-x"])).is_err());
        assert!(Opts::parse(&args(&["-o"])).is_err()); // missing value
    }

    #[test]
    fn short_out_flag_is_an_alias() {
        let o = Opts::parse(&args(&["cg", "-o", "cg.trace"])).unwrap();
        assert_eq!(o.positional, vec!["cg"]);
        assert_eq!(o.get("out"), Some("cg.trace"));
    }

    #[test]
    fn record_replay_trace_info_argument_errors() {
        assert!(run(&args(&["record"])).is_err()); // no workload
        assert!(run(&args(&["record", "nope", "-o", "x.trace"])).is_err());
        assert!(run(&args(&["record", "cg"])).is_err()); // no -o
        assert!(run(&args(&["replay"])).is_err());
        assert!(run(&args(&["replay", "/nonexistent/never.trace"])).is_err());
        assert!(run(&args(&["trace-info"])).is_err());
        assert!(run(&args(&["trace-info", "/nonexistent/never.trace"])).is_err());
    }

    #[test]
    fn record_then_replay_and_trace_info_succeed() {
        let dir = std::env::temp_dir().join(format!("memsim-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("hash.trace").display().to_string();

        run(&args(&["record", "hash", "-o", &trace, "--scale", "mini"])).unwrap();
        run(&args(&["trace-info", &trace])).unwrap();
        run(&args(&["replay", &trace, "--designs", "baseline,nmm"])).unwrap();
        // unknown design name in the filter
        assert!(run(&args(&["replay", &trace, "--designs", "warp"])).is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_and_quiet_are_mutually_exclusive() {
        assert!(run(&args(&[
            "run",
            "--workload",
            "cg",
            "--design",
            "baseline",
            "--scale",
            "mini",
            "--json",
            "--quiet"
        ]))
        .is_err());
    }

    #[test]
    fn metrics_out_writes_parseable_json() {
        let _lock = memsim_obs::test_lock();
        let dir = std::env::temp_dir().join(format!("memsim-cli-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("hash.trace").display().to_string();
        let m1 = dir.join("record.json").display().to_string();
        let m2 = dir.join("replay.json").display().to_string();

        run(&args(&[
            "record",
            "hash",
            "-o",
            &trace,
            "--scale",
            "mini",
            "--quiet",
            "--metrics-out",
            &m1,
        ]))
        .unwrap();
        let doc = std::fs::read_to_string(&m1).unwrap();
        assert!(doc.starts_with("{\"schema\":\"memsim-obs/1\""), "{doc}");
        assert!(doc.ends_with("}\n"));
        assert!(doc.contains("\"progress.events\""));
        assert!(doc.contains("\"command\":\"record\""));

        run(&args(&[
            "replay",
            &trace,
            "--designs",
            "baseline",
            "--json",
            "--metrics-out",
            &m2,
        ]))
        .unwrap();
        let doc = std::fs::read_to_string(&m2).unwrap();
        assert!(doc.contains("\"replay.3L.L1.load_hits\""), "{doc}");
        assert!(doc.contains("\"replay.3L.reader.crc_verified_chunks\""));
        assert!(doc.contains("\"progress.shards_done\""));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_requires_design_and_workload() {
        assert!(run(&args(&["run", "--workload", "cg"])).is_err());
        assert!(run(&args(&["run", "--design", "nmm"])).is_err());
        // invalid technology for the design
        assert!(run(&args(&[
            "run",
            "--workload",
            "cg",
            "--design",
            "nmm",
            "--nvm",
            "edram",
            "--scale",
            "mini"
        ]))
        .is_err());
    }
}
