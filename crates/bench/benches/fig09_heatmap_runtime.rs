//! Figure 9: heat map of normalized NMM runtime as a function of read and
//! write latency multipliers (1×–20× over DRAM).
//!
//! Prints the reproduced grid, checks the paper's read-dominance headline,
//! and Criterion-measures the analytic heat-map sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use memsim_bench::bench_ctx;
use memsim_core::experiments::fig9;
use memsim_core::report::heatmap_to_markdown;
use memsim_core::SimCache;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cache = SimCache::new();
    let ctx = bench_ctx(&cache);
    let h = fig9(&ctx).unwrap();
    println!("\n==================== reproduced fig9 ====================");
    println!("{}", heatmap_to_markdown(&h));
    let n = h.read_mults.len() - 1;
    println!(
        "read-dominance check: 20x read -> {:+.1}% vs 20x write -> {:+.1}% (paper: ~+5% at 5x read vs ~+1% at 5x write; ~17% at 20x/20x)",
        (h.at(n, 0) - 1.0) * 100.0,
        (h.at(0, n) - 1.0) * 100.0
    );
    println!("==========================================================\n");
    c.bench_function("fig09_heatmap_runtime/sweep", |b| {
        b.iter(|| black_box(fig9(&ctx)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
