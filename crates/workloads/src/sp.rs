//! NPB SP: scalar pentadiagonal ADI solver on a 3-D structured grid.
//!
//! Like BT, SP sweeps the three grid directions each time step, but the
//! per-line systems are five *independent scalar* pentadiagonal systems
//! (one per solution component) instead of one block-tridiagonal system.
//! The elimination keeps two superdiagonal coefficient arrays per line,
//! which is exactly the scratch traffic the real code generates.

use crate::{Class, Workload};
use memsim_trace::{AddressSpace, ChunkBuffer, SimVec, TraceEvent, TraceSink};

/// Components per grid cell.
const NC: usize = 5;

/// SP problem parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpParams {
    /// Grid extent per dimension (cube grid).
    pub n: usize,
    /// ADI time steps.
    pub steps: usize,
}

impl SpParams {
    /// Preset for a size class.
    pub fn class(class: Class) -> Self {
        match class {
            // ≈ 7 MiB
            Class::Mini => Self { n: 44, steps: 1 },
            // ≈ 41 MiB
            Class::Demo => Self { n: 80, steps: 1 },
            // ≈ 137 MiB
            Class::Large => Self { n: 120, steps: 1 },
        }
    }
}

/// Saved scalar pentadiagonal system (component 0 of one line).
struct LineCheck {
    // full bands, indexed by line position
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    d: Vec<f64>,
    e: Vec<f64>,
    f: Vec<f64>,
    x: Vec<f64>,
}

/// The SP benchmark instance.
pub struct Sp {
    params: SpParams,
    space: AddressSpace,
    /// Cell state, `n³ × 5` doubles.
    u: SimVec<f64>,
    /// Right-hand side, same layout; holds the normalized `F` during solves.
    rhs: SimVec<f64>,
    /// Per-line scratch: normalized first superdiagonal `D`, `n × 5`.
    dcoef: SimVec<f64>,
    /// Per-line scratch: normalized second superdiagonal `E`, `n × 5`.
    ecoef: SimVec<f64>,
    check: Option<LineCheck>,
    ran: bool,
}

type Vec5 = [f64; NC];

impl Sp {
    /// Allocate and initialize (untraced) an SP instance.
    pub fn new(params: SpParams) -> Self {
        let n = params.n;
        assert!(n >= 5, "grid too small");
        let mut space = AddressSpace::new();
        let cells = n * n * n;
        let u = SimVec::from_fn(&mut space, "u", cells * NC, |i| {
            1.0 + 0.4 * ((i % 89) as f64 / 89.0) - 0.2 * ((i % 7) as f64 / 7.0)
        });
        let rhs = SimVec::from_fn(&mut space, "rhs", cells * NC, |i| {
            ((i % 31) as f64 - 15.0) / 31.0
        });
        let dcoef = SimVec::<f64>::zeroed(&mut space, "dcoef", n * NC);
        let ecoef = SimVec::<f64>::zeroed(&mut space, "ecoef", n * NC);
        Self {
            params,
            space,
            u,
            rhs,
            dcoef,
            ecoef,
            check: None,
            ran: false,
        }
    }

    #[inline]
    fn cell(n: usize, i: usize, j: usize, k: usize) -> usize {
        ((i * n + j) * n + k) * NC
    }

    #[inline]
    fn ld5(v: &SimVec<f64>, base: usize, sink: &mut dyn TraceSink) -> Vec5 {
        sink.access(TraceEvent::load(v.addr_of(base), (NC * 8) as u32));
        let s = v.as_slice();
        [s[base], s[base + 1], s[base + 2], s[base + 3], s[base + 4]]
    }

    #[inline]
    fn st5(v: &mut SimVec<f64>, base: usize, val: &Vec5, sink: &mut dyn TraceSink) {
        sink.access(TraceEvent::store(v.addr_of(base), (NC * 8) as u32));
        v.as_mut_slice()[base..base + NC].copy_from_slice(val);
    }

    /// Pentadiagonal bands at a cell, per component, from the cell state.
    /// Strongly diagonally dominant: |c| > |a|+|b|+|d|+|e|.
    #[inline]
    fn bands(u_here: &Vec5, comp: usize) -> (f64, f64, f64, f64, f64) {
        let v = u_here[comp];
        (-0.5, -1.0, 6.0 + 0.2 * v, -1.0, -0.5)
    }

    /// Solve the five scalar pentadiagonal systems along one line.
    #[allow(clippy::too_many_arguments)]
    fn solve_line(
        u: &mut SimVec<f64>,
        rhs: &mut SimVec<f64>,
        dcoef: &mut SimVec<f64>,
        ecoef: &mut SimVec<f64>,
        n: usize,
        idx: impl Fn(usize) -> usize,
        sink: &mut dyn TraceSink,
        mut save: Option<&mut LineCheck>,
    ) {
        // per-component rolling state: (D, E, F) for rows i-1 and i-2
        let mut dm1: Vec5 = [0.0; NC];
        let mut em1: Vec5 = [0.0; NC];
        let mut fm1: Vec5 = [0.0; NC];
        let mut dm2: Vec5 = [0.0; NC];
        let mut em2: Vec5 = [0.0; NC];
        let mut fm2: Vec5 = [0.0; NC];

        for i in 0..n {
            let base = idx(i);
            let u_here = Self::ld5(u, base, sink);
            let f_in = Self::ld5(rhs, base, sink);
            let mut dn: Vec5 = [0.0; NC];
            let mut en: Vec5 = [0.0; NC];
            let mut fn_: Vec5 = [0.0; NC];
            for c in 0..NC {
                let (mut a, mut b, mut cc, mut d, e) = Self::bands(&u_here, c);
                // boundary rows lose their out-of-range bands
                if i < 2 {
                    a = 0.0;
                }
                if i < 1 {
                    b = 0.0;
                }
                let (d_band, e_band) = (d, e);
                if let Some(chk) = save.as_deref_mut() {
                    if c == 0 {
                        chk.a.push(a);
                        chk.b.push(b);
                        chk.c.push(cc);
                        chk.d.push(if i + 1 < n { d_band } else { 0.0 });
                        chk.e.push(if i + 2 < n { e_band } else { 0.0 });
                        chk.f.push(f_in[c]);
                    }
                }
                let mut f = f_in[c];
                // eliminate x_{i-2} via row i-2's normalized relation
                if a != 0.0 {
                    b -= a * dm2[c];
                    cc -= a * em2[c];
                    f -= a * fm2[c];
                }
                // eliminate x_{i-1} via row i-1's normalized relation
                if b != 0.0 {
                    cc -= b * dm1[c];
                    d -= b * em1[c];
                    f -= b * fm1[c];
                }
                debug_assert!(cc.abs() > 1e-10, "pentadiagonal pivot vanished");
                dn[c] = if i + 1 < n { d / cc } else { 0.0 };
                en[c] = if i + 2 < n { e / cc } else { 0.0 };
                fn_[c] = f / cc;
            }
            Self::st5(dcoef, i * NC, &dn, sink);
            Self::st5(ecoef, i * NC, &en, sink);
            Self::st5(rhs, base, &fn_, sink);
            dm2 = dm1;
            em2 = em1;
            fm2 = fm1;
            dm1 = dn;
            em1 = en;
            fm1 = fn_;
        }

        // back substitution: x_i = F_i - D_i x_{i+1} - E_i x_{i+2}
        let mut xp1: Vec5 = [0.0; NC];
        let mut xp2: Vec5 = [0.0; NC];
        for i in (0..n).rev() {
            let base = idx(i);
            let f = Self::ld5(rhs, base, sink);
            let d = Self::ld5(dcoef, i * NC, sink);
            let e = Self::ld5(ecoef, i * NC, sink);
            let mut x: Vec5 = [0.0; NC];
            for c in 0..NC {
                x[c] = f[c] - d[c] * xp1[c] - e[c] * xp2[c];
            }
            Self::st5(u, base, &x, sink);
            if let Some(chk) = save.as_deref_mut() {
                chk.x.push(x[0]);
            }
            xp2 = xp1;
            xp1 = x;
        }
        if let Some(chk) = save {
            chk.x.reverse();
        }
    }
}

impl Workload for Sp {
    fn name(&self) -> &'static str {
        "SP"
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let mut sink = ChunkBuffer::new(sink);
        let sink = &mut sink;
        let n = self.params.n;
        let mut check = LineCheck {
            a: vec![],
            b: vec![],
            c: vec![],
            d: vec![],
            e: vec![],
            f: vec![],
            x: vec![],
        };
        for step in 0..self.params.steps {
            for i in 0..n {
                for j in 0..n {
                    let base = Self::cell(n, i, j, 0);
                    let save = (step == 0 && i == 1 && j == 1).then_some(&mut check);
                    Self::solve_line(
                        &mut self.u,
                        &mut self.rhs,
                        &mut self.dcoef,
                        &mut self.ecoef,
                        n,
                        |t| base + t * NC,
                        sink,
                        save,
                    );
                }
            }
            for i in 0..n {
                for k in 0..n {
                    let base = Self::cell(n, i, 0, k);
                    Self::solve_line(
                        &mut self.u,
                        &mut self.rhs,
                        &mut self.dcoef,
                        &mut self.ecoef,
                        n,
                        |t| base + t * n * NC,
                        sink,
                        None,
                    );
                }
            }
            for j in 0..n {
                for k in 0..n {
                    let base = Self::cell(n, 0, j, k);
                    Self::solve_line(
                        &mut self.u,
                        &mut self.rhs,
                        &mut self.dcoef,
                        &mut self.ecoef,
                        n,
                        |t| base + t * n * n * NC,
                        sink,
                        None,
                    );
                }
            }
        }
        sink.flush();
        self.check = Some(check);
        self.ran = true;
    }

    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn verify(&self) -> Result<(), String> {
        if !self.ran {
            return Err("SP has not run".into());
        }
        let chk = self.check.as_ref().unwrap();
        let n = self.params.n;
        if chk.x.len() != n {
            return Err(format!(
                "verification line has {} solutions, expected {n}",
                chk.x.len()
            ));
        }
        let mut worst = 0.0f64;
        for i in 0..n {
            let mut lhs = chk.c[i] * chk.x[i];
            if i >= 2 {
                lhs += chk.a[i] * chk.x[i - 2];
            }
            if i >= 1 {
                lhs += chk.b[i] * chk.x[i - 1];
            }
            if i + 1 < n {
                lhs += chk.d[i] * chk.x[i + 1];
            }
            if i + 2 < n {
                lhs += chk.e[i] * chk.x[i + 2];
            }
            worst = worst.max((lhs - chk.f[i]).abs());
        }
        if worst > 1e-8 {
            return Err(format!("pentadiagonal residual too large: {worst}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim_trace::sinks::CountingSink;

    #[test]
    fn runs_and_verifies_small() {
        let mut sp = Sp::new(SpParams { n: 10, steps: 1 });
        let mut sink = CountingSink::new();
        sp.run(&mut sink);
        sp.verify().unwrap();
        assert!(sink.loads > 1000);
        assert!(sink.stores > 1000);
    }

    #[test]
    fn verify_before_run_errors() {
        assert!(Sp::new(SpParams { n: 8, steps: 1 }).verify().is_err());
    }

    #[test]
    fn multiple_steps_verify_too() {
        let mut sp = Sp::new(SpParams { n: 8, steps: 2 });
        let mut sink = CountingSink::new();
        sp.run(&mut sink);
        sp.verify().unwrap();
    }

    #[test]
    fn stream_volume_scales_with_grid() {
        let count = |n: usize| {
            let mut sp = Sp::new(SpParams { n, steps: 1 });
            let mut sink = CountingSink::new();
            sp.run(&mut sink);
            sink.total()
        };
        let small = count(8);
        let big = count(16);
        // 8× the cells → ≈ 8× the references
        assert!(
            big > 6 * small && big < 10 * small,
            "small={small} big={big}"
        );
    }
}
