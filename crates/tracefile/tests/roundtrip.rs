//! Property tests for the trace format: arbitrary event streams must
//! round-trip bit-exactly through writer → bytes → reader, and any
//! corruption of the bytes must surface as a typed error, never as a
//! silently different stream.

use memsim_trace::{AddressSpace, TraceEvent, TraceSink};
use memsim_tracefile::{
    encode_to_vec, replay_into, TraceError, TraceHeader, TraceReader, TraceWriter,
    TRACE_CHUNK_EVENTS,
};
use proptest::prelude::*;

/// Build an event list from raw tuples: address (scaled to cover both
/// tiny strides and region-crossing jumps), size, kind.
fn build_events(raws: &[(u64, u32, bool, u32)]) -> Vec<TraceEvent> {
    raws.iter()
        .map(|&(addr_raw, shift, is_store, size_sel)| {
            // shift scatters magnitudes: small shifts keep full-range
            // addresses (region-crossing deltas), large shifts give dense
            // sequential-ish clusters
            let addr = addr_raw >> (shift % 64);
            let size = [0u32, 1, 2, 4, 8, 16, 64, 256, 4096, u32::MAX][size_sel as usize % 10];
            if is_store {
                TraceEvent::store(addr, size)
            } else {
                TraceEvent::load(addr, size)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// writer → reader is the identity on arbitrary event lists, across
    /// chunk boundaries and under both consumption styles.
    #[test]
    fn arbitrary_streams_round_trip(
        raws in proptest::collection::vec(
            (0u64..u64::MAX, 0u32..64, proptest::bool::ANY, 0u32..10),
            0..(TRACE_CHUNK_EVENTS * 2 + 100),
        )
    ) {
        let events = build_events(&raws);
        let buf = encode_to_vec(&TraceHeader::anonymous(0), &events).unwrap();

        // chunked reads
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        prop_assert_eq!(r.read_all().unwrap(), events.clone());

        // per-event iteration
        let r = TraceReader::new(buf.as_slice()).unwrap();
        let iterated: Result<Vec<TraceEvent>, TraceError> = r.collect();
        prop_assert_eq!(iterated.unwrap(), events.clone());

        // replay delivery
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        let mut replayed = Vec::new();
        let mut sink = memsim_trace::FnSink(|ev: TraceEvent| replayed.push(ev));
        let n = replay_into(&mut r, &mut sink).unwrap();
        prop_assert_eq!(n as usize, events.len());
        prop_assert_eq!(replayed, events);
    }

    /// Flipping any single byte of a nonempty trace makes the reader
    /// return an error (or, for the rare flip that lands in an unread
    /// region, still never a different stream).
    #[test]
    fn single_byte_corruption_never_silently_alters_the_stream(
        raws in proptest::collection::vec(
            (0u64..u64::MAX, 0u32..64, proptest::bool::ANY, 0u32..10),
            1..500,
        ),
        flip_pos_raw in 0u64..u64::MAX,
        flip_bit in 0u32..8,
    ) {
        let events = build_events(&raws);
        let buf = encode_to_vec(&TraceHeader::anonymous(0), &events).unwrap();
        let mut bad = buf.clone();
        let pos = (flip_pos_raw % bad.len() as u64) as usize;
        bad[pos] ^= 1 << flip_bit;

        let outcome: Result<Vec<TraceEvent>, TraceError> = match TraceReader::new(bad.as_slice()) {
            Ok(mut r) => r.read_all(),
            Err(e) => Err(e),
        };
        match outcome {
            Err(_) => {} // detected — the expected outcome
            Ok(decoded) => {
                // A flip inside a varint *within* a CRC-protected payload
                // cannot decode: so an Ok must mean the flip was caught by
                // nothing because it didn't change semantics — impossible
                // for a bit flip — or the file layout shifted but decoded
                // to the same events. Either way the stream must be
                // identical to be acceptable.
                prop_assert_eq!(decoded, events, "corruption silently changed the stream");
            }
        }
    }

    /// Truncating a trace at any point yields an error, never a shorter
    /// stream passed off as complete.
    #[test]
    fn truncation_is_always_detected(
        raws in proptest::collection::vec(
            (0u64..u64::MAX, 0u32..64, proptest::bool::ANY, 0u32..10),
            1..500,
        ),
        cut_raw in 0u64..u64::MAX,
    ) {
        let events = build_events(&raws);
        let buf = encode_to_vec(&TraceHeader::anonymous(0), &events).unwrap();
        let cut = (cut_raw % buf.len() as u64) as usize; // strictly shorter
        let outcome: Result<Vec<TraceEvent>, TraceError> =
            match TraceReader::new(&buf[..cut]) {
                Ok(mut r) => r.read_all(),
                Err(e) => Err(e),
            };
        prop_assert!(outcome.is_err(), "truncation at {cut}/{} not detected", buf.len());
    }
}

/// Recording through a real `AddressSpace` preserves the region table and
/// provenance end to end.
#[test]
fn header_provenance_round_trips_through_a_file() {
    let mut space = AddressSpace::new();
    let a = space.alloc("grid.u", 1 << 16);
    let b = space.alloc("grid.rhs", 1 << 14);
    let header = TraceHeader::for_space(&space, "BT", "mini");

    let dir = std::env::temp_dir().join(format!("memsim-tracefile-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("prov.trace");

    let mut w = TraceWriter::create(&path, &header).unwrap();
    w.access(TraceEvent::load(a.start, 8));
    w.access(TraceEvent::store(b.start, 8));
    let (_, total) = w.finish().unwrap();
    assert_eq!(total, 2);

    let mut r = TraceReader::open(&path).unwrap();
    assert_eq!(r.header().workload, "BT");
    assert_eq!(r.header().class, "mini");
    assert_eq!(r.header().base_addr, space.base());
    assert_eq!(r.header().regions, space.regions());
    assert_eq!(r.header().footprint_bytes(), (1 << 16) + (1 << 14));
    assert_eq!(r.read_all().unwrap().len(), 2);

    std::fs::remove_dir_all(&dir).ok();
}

/// The empty trace is a first-class file: header + footer only.
#[test]
fn empty_trace_round_trips() {
    let buf = encode_to_vec(&TraceHeader::anonymous(0x40_0000), &[]).unwrap();
    let mut r = TraceReader::new(buf.as_slice()).unwrap();
    assert_eq!(r.header().base_addr, 0x40_0000);
    assert!(r.read_all().unwrap().is_empty());
}
