//! Sharded/sequential equivalence: the set-sharded parallel engine must
//! produce bit-identical per-level statistics and terminal-memory counters
//! for *any* hierarchy geometry, shard count, and reference stream —
//! including line-straddling and size-0 events — because shards partition
//! address classes that never share a cache set at any level.

use memsim_cache::{
    shard_class_bits, Cache, CacheConfig, CountingMemory, Hierarchy, LevelStats, ShardedHierarchy,
};
use memsim_core::{simulate_structure, simulate_structure_engine, Engine, Scale, Structure};
use memsim_integration_tests::test_scale;
use memsim_trace::{AccessKind, TraceEvent, TraceSink};
use memsim_workloads::WorkloadKind;
use proptest::prelude::*;

/// Geometry of one randomized cache level (sets and ways as exponents so
/// every generated configuration validates).
#[derive(Debug, Clone, Copy)]
struct LevelSpec {
    block_bytes: u32,
    sets_log2: u32,
    ways: u32,
    full: bool,
}

fn build_levels(specs: &[LevelSpec]) -> Vec<Cache> {
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let name = format!("L{}", i + 1);
            let cfg = if s.full {
                // fully associative: one set, so the class field collapses
                // and the engine must fall back to a single shard
                CacheConfig::fully_associative(
                    &name,
                    u64::from(s.block_bytes) << s.sets_log2,
                    s.block_bytes,
                )
            } else {
                let capacity = (u64::from(s.block_bytes) * u64::from(s.ways)) << s.sets_log2;
                CacheConfig::new(&name, capacity, s.block_bytes, s.ways)
            };
            Cache::new(cfg)
        })
        .collect()
}

/// Decode one generated `(seed, class, store)` triple into an event. The
/// class picks the shape: plain in-block accesses, unaligned and aligned
/// size-0 probes, and straddlers spanning several L1 blocks.
fn decode_event(seed: u64, class: u8, store: bool, l1_block: u32) -> TraceEvent {
    let addr = seed % (1 << 20);
    let size = match class % 6 {
        0 | 1 => 1 + (seed % 16) as u32,         // small in-block
        2 => l1_block / 2,                       // half-block
        3 => 0,                                  // size-0 (any alignment)
        4 => l1_block + 1 + (seed % 64) as u32,  // straddles 2 blocks
        _ => 3 * l1_block + (seed % 128) as u32, // straddles 4+ blocks
    };
    let kind = if store {
        AccessKind::Store
    } else {
        AccessKind::Load
    };
    TraceEvent { addr, size, kind }
}

fn sequential_run(levels: Vec<Cache>, events: &[TraceEvent]) -> (Vec<LevelStats>, CountingMemory) {
    let mut h = Hierarchy::new(levels, CountingMemory::default());
    for &ev in events {
        h.access(ev);
    }
    h.drain();
    h.assert_consistent();
    let stats = h.levels().iter().map(Cache::stats).collect();
    (stats, h.into_memory())
}

fn shard_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 2, 7];
    if !counts.contains(&cores) {
        counts.push(cores);
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized geometry × randomized stream: every shard count gives
    /// the exact sequential LevelStats and memory counters.
    #[test]
    fn sharded_stats_bit_identical_to_sequential(
        raw_specs in proptest::collection::vec(
            // (block selector, log2 sets, log2 ways, full-assoc percent)
            (0u32..3, 4u32..9, 0u32..4, 0u32..100),
            1..4,
        ),
        stream in proptest::collection::vec(
            (0u64..(1 << 62), 0u8..6, 0u32..100),
            200..600,
        ),
    ) {
        // deeper levels get same-or-larger blocks and more sets, like
        // every real hierarchy the simulator models
        let mut specs: Vec<LevelSpec> = Vec::new();
        let mut min_block = 32u32;
        for (i, (block_sel, sets_log2, ways_log2, full_pct)) in raw_specs.iter().enumerate() {
            let block = (32u32 << block_sel).max(min_block);
            min_block = block;
            specs.push(LevelSpec {
                block_bytes: block,
                sets_log2: sets_log2 + i as u32,
                ways: 1 << ways_log2,
                full: *full_pct < 15,
            });
        }
        let levels = build_levels(&specs);
        let l1_block = specs[0].block_bytes;
        let events: Vec<TraceEvent> = stream
            .iter()
            .map(|(seed, class, store_pct)| decode_event(*seed, *class, *store_pct < 30, l1_block))
            .collect();

        let (seq_stats, seq_mem) = sequential_run(levels.clone(), &events);
        let (lo, hi) = shard_class_bits(&levels);
        prop_assert!(hi >= lo);

        for shards in shard_counts() {
            let mut sh = ShardedHierarchy::new(
                levels.clone(),
                CountingMemory::default(),
                shards,
                None,
            );
            for &ev in &events {
                sh.access(ev);
            }
            let run = sh.finish();
            prop_assert_eq!(
                &run.levels, &seq_stats,
                "stats diverged at {} shards (class bits [{}, {}))", shards, lo, hi
            );
            prop_assert_eq!(run.memory, seq_mem, "memory diverged at {shards} shards");
        }
    }
}

/// The paper's own structures (baseline three-level, and the 4LC/NMM
/// four-level with a sectored page cache) through the full runner: the
/// sharded engine's RawRun matches the sequential walk field for field.
#[test]
fn paper_structures_match_across_engines() {
    let scale = test_scale();
    let structures = [
        Structure::ThreeLevel,
        Structure::WithL4 {
            capacity_bytes: 1 << 20,
            page_bytes: 512,
        },
        Structure::WithL4 {
            capacity_bytes: 1 << 21,
            page_bytes: 1024,
        },
    ];
    for kind in [WorkloadKind::Cg, WorkloadKind::Hash] {
        for structure in &structures {
            let seq = simulate_structure(kind, &scale, structure);
            for shards in [2usize, 7] {
                let par =
                    simulate_structure_engine(kind, &scale, structure, Engine::Sharded(shards));
                assert_eq!(
                    par.caches, seq.caches,
                    "{kind:?} {structure:?} diverged at {shards} shards"
                );
                assert_eq!(par.mem, seq.mem, "{kind:?} {structure:?}");
                assert_eq!(par.per_region, seq.per_region, "{kind:?} {structure:?}");
                assert_eq!(par.total_refs, seq.total_refs);
                assert_eq!(par.footprint_bytes, seq.footprint_bytes);
            }
        }
    }
}

/// `Engine::auto()` never picks a sequential-diverging configuration
/// either — whatever the host's core count resolves to.
#[test]
fn auto_engine_matches_sequential() {
    let scale = Scale::mini();
    let seq = simulate_structure(WorkloadKind::Lu, &scale, &Structure::ThreeLevel);
    let auto = simulate_structure_engine(
        WorkloadKind::Lu,
        &scale,
        &Structure::ThreeLevel,
        Engine::auto(),
    );
    assert_eq!(auto.caches, seq.caches);
    assert_eq!(auto.mem, seq.mem);
}

/// Work stealing is structurally impossible in the set-sharded engine
/// (each shard's cache state is bound to its address classes), so the
/// exported steal counters must stay pinned at zero. If this test ever
/// fails, someone added migration without revisiting the determinism
/// argument in the module docs.
#[test]
fn steal_counters_stay_zero() {
    let _lock = memsim_obs::test_lock();
    memsim_obs::reset();
    memsim_obs::set_enabled(true);

    let specs = [
        LevelSpec {
            block_bytes: 64,
            sets_log2: 6,
            ways: 2,
            full: false,
        },
        LevelSpec {
            block_bytes: 64,
            sets_log2: 8,
            ways: 4,
            full: false,
        },
    ];
    let levels = build_levels(&specs);
    let shards = 4;
    let mut sh = ShardedHierarchy::new(
        levels,
        CountingMemory::default(),
        shards,
        Some("parity.sim"),
    );
    for i in 0..20_000u64 {
        sh.access(TraceEvent::load((i * 67) % (1 << 16), 8));
    }
    let run = sh.finish();
    assert!(run.total_refs > 0);

    let reg = memsim_obs::global();
    let mut claims_total = 0;
    for i in 0..shards {
        let steals = reg
            .counter_value(&format!("parity.sim.shard{i}.steals"))
            .expect("steal counter is registered");
        assert_eq!(steals, 0, "shard {i} recorded a steal");
        claims_total += reg
            .counter_value(&format!("parity.sim.shard{i}.claims"))
            .expect("claim counter is registered");
    }
    assert!(claims_total > 0, "shards claimed no chunks");

    memsim_obs::set_enabled(false);
    memsim_obs::reset();
}
