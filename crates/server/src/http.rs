//! A hardened, minimal HTTP/1.1 reader and writer.
//!
//! The daemon listens on a plain TCP port, so every byte it reads must be
//! treated as hostile. This parser is written to *never* panic and to map
//! every malformed, oversized, truncated, or stalled input onto a 4xx
//! response:
//!
//! | condition | status |
//! |---|---|
//! | request line over [`MAX_REQUEST_LINE`] bytes | 414 |
//! | more than [`MAX_HEADERS`] headers, or one over [`MAX_HEADER_LINE`] | 431 |
//! | declared body over [`MAX_BODY`] bytes | 413 |
//! | malformed request line / header / Content-Length (incl. duplicates) | 400 |
//! | truncated body or mid-request EOF | 400 |
//! | socket read timeout (slow-loris) | 408 |
//! | method other than GET/POST/DELETE | 405 |
//!
//! Reading is generic over [`BufRead`] so the entire grammar is testable
//! (and fuzzable with proptest) against in-memory byte slices — no socket
//! required.

use std::io::{BufRead, ErrorKind, Write};

/// Longest accepted request line (`GET /path HTTP/1.1\r\n`), in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted single header line, in bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// The request methods the job API serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read a resource (status, result, metrics, health).
    Get,
    /// Submit a job.
    Post,
    /// Cancel a job.
    Delete,
}

impl Method {
    fn parse(token: &str) -> Result<Method, HttpError> {
        match token {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            "DELETE" => Ok(Method::Delete),
            // Anything else — HEAD, PUT, gibberish — is refused uniformly.
            _ => Err(HttpError::MethodNotAllowed),
        }
    }
}

/// A fully-read request: method, path (query stripped), lower-cased
/// headers in arrival order, and the exact declared body.
#[derive(Debug, PartialEq, Eq)]
pub struct Request {
    /// Parsed method.
    pub method: Method,
    /// Request path with any `?query` removed.
    pub path: String,
    /// `(name, value)` pairs; names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Body bytes, exactly `Content-Length` of them.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lower-case) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Everything that can go wrong while reading a request, each mapping to
/// one response status.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// 400 — malformed framing, bad Content-Length, truncated body.
    BadRequest(String),
    /// 405 — method not one of GET/POST/DELETE.
    MethodNotAllowed,
    /// 408 — the peer stalled past the socket read timeout.
    Timeout,
    /// 413 — declared body larger than [`MAX_BODY`].
    PayloadTooLarge,
    /// 414 — request line larger than [`MAX_REQUEST_LINE`].
    UriTooLong,
    /// 431 — too many or too-long headers.
    HeadersTooLarge,
    /// The peer closed before sending anything: not an error worth
    /// answering, just drop the connection.
    Closed,
}

impl HttpError {
    /// The response this error answers with, or `None` for a silent drop.
    pub fn response(&self) -> Option<Response> {
        let (status, msg) = match self {
            HttpError::BadRequest(m) => (400, m.as_str()),
            HttpError::MethodNotAllowed => (405, "method not allowed"),
            HttpError::Timeout => (408, "request timeout"),
            HttpError::PayloadTooLarge => (413, "body too large"),
            HttpError::UriTooLong => (414, "request line too long"),
            HttpError::HeadersTooLarge => (431, "headers too large"),
            HttpError::Closed => return None,
        };
        Some(Response::error(status, msg))
    }
}

/// Classify an I/O failure mid-request: timeouts get 408 so a slow-loris
/// peer is answered and disconnected, everything else is a plain 400.
fn io_err(e: std::io::Error) -> HttpError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::BadRequest(format!("read failed: {}", e.kind())),
    }
}

/// Read one `\n`-terminated line of at most `max` bytes (terminator
/// included). `Ok(None)` is clean EOF before any byte.
fn read_line_limited<R: BufRead>(
    r: &mut R,
    max: usize,
    over: HttpError,
) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = r.fill_buf().map_err(io_err)?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::BadRequest("truncated request".into()));
        }
        let nl = buf.iter().position(|&b| b == b'\n');
        let take = nl.map(|i| i + 1).unwrap_or(buf.len());
        if line.len() + take > max {
            return Err(over);
        }
        line.extend_from_slice(&buf[..take]);
        r.consume(take);
        if nl.is_some() {
            // Strip \n and an optional preceding \r.
            line.pop();
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            let text = String::from_utf8(line)
                .map_err(|_| HttpError::BadRequest("non-UTF-8 request bytes".into()))?;
            return Ok(Some(text));
        }
    }
}

/// Read and validate one request from `r`. See the module table for how
/// hostile inputs are answered; this function never panics.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, HttpError> {
    let line = match read_line_limited(r, MAX_REQUEST_LINE, HttpError::UriTooLong)? {
        Some(l) => l,
        None => return Err(HttpError::Closed),
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequest("malformed request line".into())),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!("bad version '{version}'")));
    }
    let method = Method::parse(method)?;
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest("path must start with '/'".into()));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let line = read_line_limited(r, MAX_HEADER_LINE, HttpError::HeadersTooLarge)?
            .ok_or_else(|| HttpError::BadRequest("truncated headers".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest("malformed header".into()))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest("malformed header name".into()));
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            let n: usize = value
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length '{value}'")))?;
            // Duplicate Content-Length headers are a request-smuggling
            // vector; refuse them even when the values agree.
            if content_length.is_some() {
                return Err(HttpError::BadRequest("duplicate content-length".into()));
            }
            if n > MAX_BODY {
                return Err(HttpError::PayloadTooLarge);
            }
            content_length = Some(n);
        }
        if name == "transfer-encoding" {
            // The job API never needs chunked bodies; refusing the header
            // outright removes the whole smuggling class.
            return Err(HttpError::BadRequest(
                "transfer-encoding unsupported".into(),
            ));
        }
        headers.push((name, value));
    }

    let mut body = vec![0u8; content_length.unwrap_or(0)];
    if !body.is_empty() {
        let mut filled = 0;
        while filled < body.len() {
            let buf = r.fill_buf().map_err(io_err)?;
            if buf.is_empty() {
                return Err(HttpError::BadRequest("truncated body".into()));
            }
            let take = buf.len().min(body.len() - filled);
            body[filled..filled + take].copy_from_slice(&buf[..take]);
            r.consume(take);
            filled += take;
        }
    }

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// A response ready to serialize: status, content type, body, and the
/// optional `Retry-After` used by queue backpressure. Connections are
/// always `Connection: close` — one request per connection keeps the
/// state machine (and its attack surface) trivial.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Retry-After` seconds (503 backpressure).
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// A JSON error envelope: `{"error":"..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        let mut o = memsim_obs::json::Obj::new();
        o.str("error", message);
        Response::json(status, o.finish())
    }

    /// Standard reason phrase for the handful of statuses the API emits.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            414 => "URI Too Long",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }

    /// Serialize onto `w` (headers + body, `Connection: close`).
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        if let Some(secs) = self.retry_after {
            write!(w, "retry-after: {secs}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_basic_get() {
        let req = read(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_body_and_strips_query() {
        let req = read(b"POST /jobs?x=1 HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_oversized_request_line() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert_eq!(read(&raw), Err(HttpError::UriTooLong));
    }

    #[test]
    fn rejects_oversized_header_and_too_many_headers() {
        let mut raw = b"GET / HTTP/1.1\r\nh: ".to_vec();
        raw.extend(std::iter::repeat_n(b'v', MAX_HEADER_LINE));
        raw.extend_from_slice(b"\r\n\r\n");
        assert_eq!(read(&raw), Err(HttpError::HeadersTooLarge));

        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADERS {
            raw.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert_eq!(read(&raw), Err(HttpError::HeadersTooLarge));
    }

    #[test]
    fn rejects_bad_content_length() {
        for bad in ["-1", "4x", "", "18446744073709551616"] {
            let raw = format!("POST /jobs HTTP/1.1\r\ncontent-length: {bad}\r\n\r\n");
            assert!(
                matches!(read(raw.as_bytes()), Err(HttpError::BadRequest(_))),
                "{bad}"
            );
        }
        let raw = format!(
            "POST /jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(read(raw.as_bytes()), Err(HttpError::PayloadTooLarge));
    }

    #[test]
    fn rejects_duplicate_content_length() {
        let raw = b"POST /jobs HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 2\r\n\r\nab";
        assert!(matches!(read(raw), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn rejects_truncated_body_and_headers() {
        assert!(matches!(
            read(b"POST /jobs HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            read(b"GET / HTTP/1.1\r\nhost: x"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_unknown_method_and_bad_version() {
        assert_eq!(
            read(b"BREW /coffee HTTP/1.1\r\n\r\n"),
            Err(HttpError::MethodNotAllowed)
        );
        assert!(matches!(
            read(b"GET / HTTP/9.9\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_transfer_encoding() {
        assert!(matches!(
            read(b"POST /jobs HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn clean_eof_is_closed_not_error() {
        assert_eq!(read(b""), Err(HttpError::Closed));
    }

    #[test]
    fn response_serializes_with_retry_after() {
        let mut r = Response::error(503, "queue full");
        r.retry_after = Some(2);
        let mut out = Vec::new();
        r.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }
}
