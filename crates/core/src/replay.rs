//! Record/replay: persist a workload's address stream once, then drive
//! any number of hierarchy configurations from the file.
//!
//! The live path re-generates the stream per structure (`runner`
//! memoizes, but each distinct structure still pays a full workload
//! execution — data initialization, kernel arithmetic, verification). The
//! replay path pays the workload once at record time; after that every
//! structure in the config grid is a pure trace walk, and the walks shard
//! across threads with each worker streaming the file independently.
//! Cache statistics depend only on the address stream and the geometry,
//! so a replayed run is bit-identical to the live run it was recorded
//! from (the `record_replay` integration tests pin this).

use crate::design::{Design, Structure};
use crate::runner::{
    build_caches, evaluate_run, raw_run_from_hierarchy, raw_run_from_parts, Engine, EvalResult,
    RawRun,
};
use crate::sampling::{plan_for, replay_structure_sampled, SampleMode};
use crate::scale::Scale;
use memsim_cache::{Hierarchy, HierarchyProbes, ShardedHierarchy};
use memsim_memory::PartitionedMemory;
use memsim_tech::Technology;
use memsim_tracefile::{replay_into, TraceError, TraceHeader, TraceReader, TraceWriter};
use memsim_workloads::{Class, WorkloadKind};
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// What [`record_workload`] wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordSummary {
    /// Events recorded.
    pub events: u64,
    /// Chunks framed.
    pub chunks: u64,
    /// Total file size in bytes (header + chunks + footer).
    pub file_bytes: u64,
    /// The workload's registered footprint.
    pub footprint_bytes: u64,
}

impl RecordSummary {
    /// Mean encoded bytes per event over the whole file (0 when empty).
    pub fn bytes_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.file_bytes as f64 / self.events as f64
        }
    }
}

/// Run `kind` at `class` with a [`TraceWriter`] as its sink, persisting
/// the complete address stream (plus the region table and provenance) to
/// `path`. The workload's self-verification still runs, so a recording of
/// a silently broken kernel fails loudly instead of poisoning the file.
pub fn record_workload(
    kind: WorkloadKind,
    class: Class,
    path: &Path,
) -> Result<RecordSummary, String> {
    let mut span = memsim_obs::span!("record.{}", kind.name());
    let mut workload = {
        let _s = memsim_obs::span!("generate");
        kind.build(class)
    };
    let header = TraceHeader::for_space(workload.space(), kind.name(), class.name());
    let footprint_bytes = workload.footprint_bytes();
    let mut writer = TraceWriter::create(path, &header)
        .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
    if memsim_obs::enabled() {
        let reg = memsim_obs::global();
        writer.set_probe(
            reg.counter("progress.events"),
            reg.counter("progress.chunks"),
        );
    }
    {
        let _s = memsim_obs::span!("stream");
        workload.run(&mut writer);
    }
    {
        let _s = memsim_obs::span!("verify");
        workload
            .verify()
            .map_err(|e| format!("{} failed self-verification: {e}", kind.name()))?;
    }
    let chunks = {
        use memsim_trace::TraceSink;
        writer.flush();
        writer.chunks_written()
    };
    let (_, events) = writer
        .finish()
        .map_err(|e| format!("recording {}: {e}", path.display()))?;
    span.add_events(events);
    let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    Ok(RecordSummary {
        events,
        chunks,
        file_bytes,
        footprint_bytes,
    })
}

/// Replay the trace at `path` through `structure`'s hierarchy at `scale`.
///
/// The terminal memory's region table comes from the trace header, so
/// per-region traffic (the NDM oracle's input) is attributed exactly as
/// in the live run.
pub fn replay_structure(
    path: &Path,
    scale: &Scale,
    structure: &Structure,
) -> Result<RawRun, TraceError> {
    replay_structure_shard(path, scale, structure, None, Engine::Sequential)
}

/// [`replay_structure`] with an explicit engine: the set-sharded engine
/// fans the file's 4096-event chunks out across its workers and merges at
/// drain, producing the same [`RawRun`] counters as the sequential walk.
pub fn replay_structure_engine(
    path: &Path,
    scale: &Scale,
    structure: &Structure,
    engine: Engine,
) -> Result<RawRun, TraceError> {
    replay_structure_shard(path, scale, structure, None, engine)
}

/// [`replay_structure`] with observability shard attribution: `shard`
/// names this walk's `progress.shard{i}.events` counter and span, so the
/// sampler can show per-shard lag across `replay_grid` workers. (With the
/// set-sharded engine the engine's own per-shard counters take over that
/// role instead.)
fn replay_structure_shard(
    path: &Path,
    scale: &Scale,
    structure: &Structure,
    shard: Option<usize>,
    engine: Engine,
) -> Result<RawRun, TraceError> {
    let mut span = match shard {
        Some(i) => memsim_obs::span!("replay.shard{}", i),
        None => memsim_obs::span!("replay.walk"),
    };
    let obs_prefix = memsim_obs::enabled().then(|| format!("replay.{}", structure.obs_label()));

    let mut reader = TraceReader::open(path)?;
    let regions = reader.header().regions.clone();
    let caches = build_caches(scale, structure);
    let terminal = PartitionedMemory::new(&regions, Technology::Pcm);

    if let Engine::Sharded(shards) = engine {
        let mut sharded = ShardedHierarchy::new(caches, terminal, shards, obs_prefix.as_deref());
        replay_into(&mut reader, &mut sharded)?;
        let run = sharded.finish();
        if let Some(prefix) = &obs_prefix {
            let reg = memsim_obs::global();
            let store = |field: &str, v: u64| {
                reg.counter(&format!("{prefix}.reader.{field}")).store(v);
            };
            store("chunks", reader.chunks_read());
            store("crc_verified_chunks", reader.crc_verified_chunks());
            store("payload_bytes", reader.payload_bytes());
        }
        span.add_events(run.total_refs);
        return Ok(raw_run_from_parts(
            run.levels,
            run.memory,
            &regions,
            run.total_refs,
            obs_prefix.as_deref(),
        ));
    }

    let mut hierarchy = Hierarchy::new(caches, terminal);
    if let Some(prefix) = &obs_prefix {
        let reg = memsim_obs::global();
        let names: Vec<String> = hierarchy
            .levels()
            .iter()
            .map(|c| c.config().name.clone())
            .collect();
        let names: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut probes = HierarchyProbes::register(reg, prefix, &names);
        if let Some(i) = shard {
            probes.add_events_counter(reg.counter(&format!("progress.shard{i}.events")));
        }
        hierarchy.set_probes(probes);
    }
    replay_into(&mut reader, &mut hierarchy)?;
    hierarchy.drain();
    hierarchy.assert_consistent();
    if let Some(prefix) = &obs_prefix {
        // Trace-health counters from the reader: every chunk that reached
        // the sink passed its CRC check.
        let reg = memsim_obs::global();
        let store = |field: &str, v: u64| {
            reg.counter(&format!("{prefix}.reader.{field}")).store(v);
        };
        store("chunks", reader.chunks_read());
        store("crc_verified_chunks", reader.crc_verified_chunks());
        store("payload_bytes", reader.payload_bytes());
    }
    span.add_events(hierarchy.total_refs());
    Ok(raw_run_from_hierarchy(
        hierarchy,
        &regions,
        obs_prefix.as_deref(),
    ))
}

/// The workload a trace records, parsed from its header.
pub fn trace_workload(path: &Path) -> Result<WorkloadKind, String> {
    let reader = TraceReader::open(path).map_err(|e| e.to_string())?;
    let name = &reader.header().workload;
    WorkloadKind::parse(name).ok_or_else(|| {
        if name.is_empty() {
            "trace has no recorded workload name (anonymous stream)".to_string()
        } else {
            format!("trace records unknown workload '{name}'")
        }
    })
}

/// One hierarchy structure whose trace walk did not survive, with every
/// design that depended on it.
#[derive(Debug, Clone)]
pub struct ReplayFailure {
    /// The structure whose shard failed.
    pub structure: Structure,
    /// The designs that would have been costed from that structure's run.
    pub designs: Vec<Design>,
    /// The shard's error (decode error, or a panic payload).
    pub message: String,
}

impl std::fmt::Display for ReplayFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let labels: Vec<String> = self.designs.iter().map(Design::label).collect();
        write!(
            f,
            "structure {} (designs {}): {}",
            self.structure.obs_label(),
            labels.join(", "),
            self.message
        )
    }
}

/// What a fault-isolated [`replay_grid_robust`] produced: results for every
/// design whose structure replayed cleanly, plus the per-structure
/// failures.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Surviving designs' results, in input order.
    pub results: Vec<EvalResult>,
    /// Structures that failed to replay, with the designs they strand.
    pub failures: Vec<ReplayFailure>,
}

/// Evaluate a grid of designs against one recorded trace, sharded in
/// parallel: the distinct hierarchy *structures* among `designs` are
/// replayed concurrently (each worker streams the file independently, so
/// there is no shared decode state to contend on), then every design is
/// costed analytically from its structure's replayed run — the same
/// two-phase split as the live `evaluate_grid`, with the workload
/// execution replaced by a trace walk.
///
/// Fault-isolated: a shard that fails to decode (corrupt chunk, truncated
/// file mid-walk) or panics strands only the designs sharing its
/// structure; every other shard completes and its designs are costed.
/// Errors that precede the walk (unreadable header, invalid design) still
/// fail the whole call.
pub fn replay_grid_robust(
    path: &Path,
    designs: &[Design],
    scale: &Scale,
    threads: Option<usize>,
) -> Result<ReplayOutcome, String> {
    replay_grid_robust_engine(path, designs, scale, threads, Engine::Sequential)
}

/// [`replay_grid_robust`] with an explicit engine for each structure's
/// trace walk.
pub fn replay_grid_robust_engine(
    path: &Path,
    designs: &[Design],
    scale: &Scale,
    threads: Option<usize>,
    engine: Engine,
) -> Result<ReplayOutcome, String> {
    replay_grid_robust_sampled(path, designs, scale, threads, engine, SampleMode::Off)
}

/// [`replay_grid_robust`] with an explicit engine and sampling mode: with
/// sampling on, each structure's walk simulates one representative
/// interval per cluster of the trace (per the shared [`SamplePlan`]) and
/// extrapolates, instead of walking every event. The plan is built once
/// per (trace, spec) and shared by every worker; a plan that cannot be
/// built fails the whole call, like an unreadable header.
pub fn replay_grid_robust_sampled(
    path: &Path,
    designs: &[Design],
    scale: &Scale,
    threads: Option<usize>,
    engine: Engine,
    sample: SampleMode,
) -> Result<ReplayOutcome, String> {
    let _span = memsim_obs::span!("replay");
    for d in designs {
        d.validate()?;
    }
    let kind = trace_workload(path)?;
    let plan = match sample {
        SampleMode::Off => None,
        SampleMode::On(spec) => Some(plan_for(path, spec)?),
    };

    // distinct structures, in first-appearance order
    let mut structures: Vec<Structure> = Vec::new();
    for d in designs {
        let s = d.structure(scale);
        if !structures.contains(&s) {
            structures.push(s);
        }
    }

    let obs_on = memsim_obs::enabled();
    if obs_on {
        // Seed the shard progress counters so the sampler can show
        // completion and extrapolate an ETA from the first finished shard.
        let reg = memsim_obs::global();
        reg.gauge("progress.shards_total")
            .set(structures.len() as u64);
        reg.counter("progress.shards_done");
    }

    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .clamp(1, structures.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<OnceLock<Result<Arc<RawRun>, String>>> =
        (0..structures.len()).map(|_| OnceLock::new()).collect();
    std::thread::scope(|s| {
        for w in 0..threads {
            // Named so flight-recorder lanes are stable and readable.
            let worker = || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= structures.len() {
                    break;
                }
                // Isolate panics per shard for the same reason as the live
                // grid: an unwinding worker must not take the completed
                // shards' results down with the scope.
                let run =
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &plan {
                        Some(plan) => replay_structure_sampled(path, scale, &structures[i], plan),
                        None => {
                            replay_structure_shard(path, scale, &structures[i], Some(i), engine)
                        }
                    })) {
                        Ok(Ok(run)) => Ok(Arc::new(run)),
                        Ok(Err(e)) => Err(e.to_string()),
                        Err(payload) => Err(format!(
                            "shard panicked: {}",
                            crate::runner::panic_message(payload)
                        )),
                    };
                slots[i].set(run).expect("replay slot written twice");
                if obs_on {
                    memsim_obs::global().counter("progress.shards_done").inc();
                }
            };
            std::thread::Builder::new()
                .name(format!("memsim-replay{w}"))
                .spawn_scoped(s, worker)
                .expect("spawn replay worker");
        }
    });
    let runs: Vec<Result<Arc<RawRun>, String>> = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("missing replay result"))
        .collect();

    let mut results = Vec::new();
    let mut failures: Vec<ReplayFailure> = Vec::new();
    for d in designs {
        let idx = structures
            .iter()
            .position(|s| *s == d.structure(scale))
            .expect("structure recorded for every design");
        match &runs[idx] {
            Ok(run) => results.push(evaluate_run(kind, scale, d, Arc::clone(run))),
            Err(message) => {
                if let Some(f) = failures.iter_mut().find(|f| f.structure == structures[idx]) {
                    f.designs.push(*d);
                } else {
                    failures.push(ReplayFailure {
                        structure: structures[idx],
                        designs: vec![*d],
                        message: message.clone(),
                    });
                }
            }
        }
    }
    let cis: Vec<crate::sampling::SampleCi> = results.iter().filter_map(|r| r.sample_ci).collect();
    crate::sampling::publish_ci_summary(&cis);
    Ok(ReplayOutcome { results, failures })
}

/// Strict [`replay_grid_robust`]: any failed shard turns the whole grid
/// into an `Err` naming every stranded structure and design.
pub fn replay_grid(
    path: &Path,
    designs: &[Design],
    scale: &Scale,
    threads: Option<usize>,
) -> Result<Vec<EvalResult>, String> {
    replay_grid_engine(path, designs, scale, threads, Engine::Sequential)
}

/// Strict [`replay_grid`] with an explicit engine choice.
pub fn replay_grid_engine(
    path: &Path,
    designs: &[Design],
    scale: &Scale,
    threads: Option<usize>,
    engine: Engine,
) -> Result<Vec<EvalResult>, String> {
    let outcome = replay_grid_robust_engine(path, designs, scale, threads, engine)?;
    if !outcome.failures.is_empty() {
        let list: Vec<String> = outcome
            .failures
            .iter()
            .map(ReplayFailure::to_string)
            .collect();
        return Err(format!(
            "{} replay shard(s) failed: {}",
            outcome.failures.len(),
            list.join("; ")
        ));
    }
    Ok(outcome.results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::n_configs;
    use std::path::PathBuf;

    fn temp_trace(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("memsim-core-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn record_then_replay_grid_matches_live_grid() {
        let scale = Scale::mini();
        let path = temp_trace("hash.trace");
        let summary = record_workload(WorkloadKind::Hash, Class::Mini, &path).unwrap();
        assert!(summary.events > 100_000);
        assert!(summary.chunks > 0);
        assert!(summary.bytes_per_event() > 0.0);
        assert_eq!(trace_workload(&path).unwrap(), WorkloadKind::Hash);

        let designs = vec![
            Design::Baseline,
            Design::Nmm {
                nvm: Technology::Pcm,
                config: n_configs()[0],
            },
        ];
        let replayed = replay_grid(&path, &designs, &scale, Some(2)).unwrap();

        let cache = crate::runner::SimCache::new();
        for (r, d) in replayed.iter().zip(&designs) {
            let live = crate::runner::evaluate_cached(WorkloadKind::Hash, &scale, d, &cache);
            assert_eq!(r.workload, WorkloadKind::Hash);
            assert_eq!(r.run.caches, live.run.caches, "{}", d.label());
            assert_eq!(r.run.mem, live.run.mem, "{}", d.label());
            assert_eq!(r.run.total_refs, live.run.total_refs);
            assert!((r.metrics.time_s - live.metrics.time_s).abs() < 1e-15);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_replay_matches_sequential_replay() {
        let scale = Scale::mini();
        let path = temp_trace("hash-sharded.trace");
        record_workload(WorkloadKind::Hash, Class::Mini, &path).unwrap();
        let st = Structure::ThreeLevel;
        let seq = replay_structure(&path, &scale, &st).unwrap();
        for shards in [2usize, 7] {
            let sh = replay_structure_engine(&path, &scale, &st, Engine::Sharded(shards)).unwrap();
            assert_eq!(sh.caches, seq.caches, "shards={shards}");
            assert_eq!(sh.mem, seq.mem, "shards={shards}");
            assert_eq!(sh.per_region, seq.per_region, "shards={shards}");
            assert_eq!(sh.total_refs, seq.total_refs, "shards={shards}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_of_missing_file_errors() {
        let scale = Scale::mini();
        let err = replay_grid(
            Path::new("/nonexistent/never.trace"),
            &[Design::Baseline],
            &scale,
            None,
        )
        .unwrap_err();
        assert!(err.contains("I/O error"), "{err}");
    }
}
