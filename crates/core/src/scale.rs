//! Capacity scaling presets.
//!
//! Normalized results are driven by hit-rate structure, i.e. by capacity
//! *ratios* (footprint : DRAM-cache : LLC), not absolute sizes (see
//! DESIGN.md §5). Each preset divides the paper's Table 2/3 capacities and
//! the workload footprints by a common factor while leaving line and page
//! sizes untouched.

use memsim_workloads::Class;

/// A coherent set of cache geometries, capacity divisors, and the workload
/// class to pair with them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scale {
    /// L1 capacity in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: u32,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: u32,
    /// L3 capacity in bytes.
    pub l3_bytes: u64,
    /// L3 associativity.
    pub l3_ways: u32,
    /// Cache line size in bytes (all SRAM levels).
    pub line_bytes: u32,
    /// Divisor applied to the Table 2/3 eDRAM/HMC and DRAM-cache capacities.
    pub capacity_divisor: u64,
    /// Associativity of the added eDRAM/HMC/DRAM-cache level.
    pub l4_ways: u32,
    /// Factor between this scale's workload footprints and the paper's
    /// (static-power representation of the main memory; see
    /// `design::represented_bytes`).
    pub footprint_multiplier: u64,
    /// Workload size class this scale is calibrated for.
    pub class: Class,
}

impl Scale {
    /// The paper's exact geometry: L1 32 KB/8w, L2 256 KB/8w, L3 20 MB/20w,
    /// 64 B lines, unscaled Table 2/3 capacities, `Class::Large` workloads.
    /// Usable, but a full experiment grid takes hours.
    pub fn paper() -> Self {
        Self {
            l1_bytes: 32 << 10,
            l1_ways: 8,
            l2_bytes: 256 << 10,
            l2_ways: 8,
            l3_bytes: 20 << 20,
            l3_ways: 20,
            line_bytes: 64,
            capacity_divisor: 1,
            l4_ways: 16,
            // Class::Large footprints are still ~1/8 of the paper's
            footprint_multiplier: 8,
            class: Class::Large,
        }
    }

    /// Figure-regeneration scale: capacities ÷ 32 (L3 640 KB, eDRAM 512 KB,
    /// DRAM cache 4–16 MB) against `Class::Demo` footprints (25–128 MiB),
    /// preserving the paper's footprint : capacity ratios.
    pub fn demo() -> Self {
        Self {
            l1_bytes: 32 << 10,
            l1_ways: 8,
            l2_bytes: 256 << 10,
            l2_ways: 8,
            l3_bytes: (20 << 20) / 32,
            l3_ways: 20,
            line_bytes: 64,
            capacity_divisor: 32,
            l4_ways: 16,
            footprint_multiplier: 32,
            class: Class::Demo,
        }
    }

    /// Smoke-test scale for unit tests and Criterion runs: capacities ÷ 64
    /// against `Class::Mini` footprints. Ratios are compressed (footprints
    /// shrink faster than capacities) so every level still sees traffic,
    /// but runs take milliseconds.
    pub fn mini() -> Self {
        Self {
            l1_bytes: 32 << 10,
            l1_ways: 8,
            l2_bytes: 128 << 10,
            l2_ways: 8,
            l3_bytes: (20 << 20) / 64,
            l3_ways: 20,
            line_bytes: 64,
            capacity_divisor: 64,
            l4_ways: 16,
            // Mini footprints are ~1/256 of the paper's while cache
            // capacities are only 1/64: ratios are compressed for speed
            footprint_multiplier: 256,
            class: Class::Mini,
        }
    }

    /// Scale a Table 2/3 capacity (given in bytes at paper scale).
    pub fn scaled_capacity(&self, paper_bytes: u64) -> u64 {
        (paper_bytes / self.capacity_divisor)
            .max(u64::from(self.line_bytes) * u64::from(self.l4_ways))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_pyramids() {
        for s in [Scale::paper(), Scale::demo(), Scale::mini()] {
            assert!(s.l1_bytes < s.l2_bytes);
            assert!(s.l2_bytes < s.l3_bytes);
            assert!(s.line_bytes == 64);
        }
    }

    #[test]
    fn paper_scale_matches_reference_system() {
        let s = Scale::paper();
        assert_eq!(s.l1_bytes, 32 * 1024);
        assert_eq!(s.l2_bytes, 256 * 1024);
        assert_eq!(s.l3_bytes, 20 * 1024 * 1024);
        assert_eq!((s.l1_ways, s.l2_ways, s.l3_ways), (8, 8, 20));
        assert_eq!(s.capacity_divisor, 1);
    }

    #[test]
    fn scaled_capacity_divides_and_floors() {
        let s = Scale::demo();
        assert_eq!(s.scaled_capacity(512 << 20), 16 << 20);
        assert_eq!(s.scaled_capacity(16 << 20), 512 << 10);
        // never below one set's worth
        assert_eq!(s.scaled_capacity(1024), 64 * 16);
    }

    #[test]
    fn set_counts_stay_power_of_two() {
        use memsim_cache::CacheConfig;
        for s in [Scale::paper(), Scale::demo(), Scale::mini()] {
            CacheConfig::new("L1", s.l1_bytes, s.line_bytes, s.l1_ways).validate();
            CacheConfig::new("L2", s.l2_bytes, s.line_bytes, s.l2_ways).validate();
            CacheConfig::new("L3", s.l3_bytes, s.line_bytes, s.l3_ways).validate();
        }
    }
}
