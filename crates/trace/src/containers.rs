//! Instrumented containers: real data, traced accesses.
//!
//! Each container owns ordinary Rust storage *plus* a base address inside an
//! [`AddressSpace`] region. Traced accessors (`ld`, `st`, `update`) emit a
//! [`TraceEvent`] for the exact byte range an equivalent C array access
//! would touch, then perform the operation. Untraced accessors (`peek`,
//! `poke`, `as_slice`) exist for initialization and verification code that
//! must not pollute the stream — the paper likewise only measures the timed
//! kernel region of each benchmark.

use crate::event::{AccessKind, TraceEvent, TraceSink};
use crate::space::{AddressSpace, RegionId};

/// An instrumented, fixed-length vector of `T`.
#[derive(Debug, Clone)]
pub struct SimVec<T> {
    data: Vec<T>,
    base: u64,
    region: RegionId,
    elem_size: u32,
}

impl<T: Copy + Default> SimVec<T> {
    /// Allocate a vector of `len` default-initialized elements as a new
    /// region named `name`.
    pub fn zeroed(space: &mut AddressSpace, name: &str, len: usize) -> Self {
        Self::from_fn(space, name, len, |_| T::default())
    }
}

impl<T: Copy> SimVec<T> {
    /// Allocate a vector of `len` elements, filled by `f(index)`, as a new
    /// region named `name`. Initialization is untraced.
    pub fn from_fn(
        space: &mut AddressSpace,
        name: &str,
        len: usize,
        f: impl FnMut(usize) -> T,
    ) -> Self {
        let elem_size = std::mem::size_of::<T>() as u32;
        let region = space.alloc(name, len as u64 * u64::from(elem_size));
        let mut f = f;
        Self {
            data: (0..len).map(&mut f).collect(),
            base: region.start,
            region: region.id,
            elem_size,
        }
    }

    /// Allocate from an existing `Vec`, taking ownership. Untraced.
    pub fn from_vec(space: &mut AddressSpace, name: &str, data: Vec<T>) -> Self {
        let elem_size = std::mem::size_of::<T>() as u32;
        let region = space.alloc(name, data.len() as u64 * u64::from(elem_size));
        Self {
            data,
            base: region.start,
            region: region.id,
            elem_size,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The simulated address of element `i`.
    #[inline]
    pub fn addr_of(&self, i: usize) -> u64 {
        debug_assert!(i < self.data.len());
        self.base + i as u64 * u64::from(self.elem_size)
    }

    /// The region id this vector occupies.
    #[inline]
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Traced load of element `i`.
    #[inline]
    pub fn ld(&self, i: usize, sink: &mut dyn TraceSink) -> T {
        sink.access(TraceEvent {
            addr: self.addr_of(i),
            size: self.elem_size,
            kind: AccessKind::Load,
        });
        self.data[i]
    }

    /// Traced store of `v` into element `i`.
    #[inline]
    pub fn st(&mut self, i: usize, v: T, sink: &mut dyn TraceSink) {
        sink.access(TraceEvent {
            addr: self.addr_of(i),
            size: self.elem_size,
            kind: AccessKind::Store,
        });
        self.data[i] = v;
    }

    /// Traced read-modify-write: loads element `i`, applies `f`, stores the
    /// result back. Emits one load then one store at the same address.
    #[inline]
    pub fn update(&mut self, i: usize, f: impl FnOnce(T) -> T, sink: &mut dyn TraceSink) {
        let v = self.ld(i, sink);
        self.st(i, f(v), sink);
    }

    /// Untraced read (for initialization / result verification).
    #[inline]
    pub fn peek(&self, i: usize) -> T {
        self.data[i]
    }

    /// Untraced write (for initialization).
    #[inline]
    pub fn poke(&mut self, i: usize, v: T) {
        self.data[i] = v;
    }

    /// Untraced view of the underlying storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Untraced mutable view of the underlying storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Bytes occupied by the payload.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.data.len() as u64 * u64::from(self.elem_size)
    }
}

/// An instrumented row-major 2-D matrix.
///
/// Thin layout wrapper over [`SimVec`]; `(r, c)` maps to `r * cols + c`, so
/// row sweeps are unit-stride and column sweeps stride by the row length —
/// the access-pattern distinction the cache experiments care about.
#[derive(Debug, Clone)]
pub struct SimMatrix2<T> {
    inner: SimVec<T>,
    rows: usize,
    cols: usize,
}

impl<T: Copy + Default> SimMatrix2<T> {
    /// Allocate a `rows × cols` matrix of default values.
    pub fn zeroed(space: &mut AddressSpace, name: &str, rows: usize, cols: usize) -> Self {
        Self {
            inner: SimVec::zeroed(space, name, rows * cols),
            rows,
            cols,
        }
    }
}

impl<T: Copy> SimMatrix2<T> {
    /// Row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.rows && c < self.cols);
        r * self.cols + c
    }

    /// Traced load of `(r, c)`.
    #[inline]
    pub fn ld(&self, r: usize, c: usize, sink: &mut dyn TraceSink) -> T {
        self.inner.ld(self.idx(r, c), sink)
    }

    /// Traced store into `(r, c)`.
    #[inline]
    pub fn st(&mut self, r: usize, c: usize, v: T, sink: &mut dyn TraceSink) {
        self.inner.st(self.idx(r, c), v, sink)
    }

    /// Untraced read.
    #[inline]
    pub fn peek(&self, r: usize, c: usize) -> T {
        self.inner.peek(self.idx(r, c))
    }

    /// Untraced write.
    #[inline]
    pub fn poke(&mut self, r: usize, c: usize, v: T) {
        self.inner.poke(self.idx(r, c), v)
    }

    /// The region id this matrix occupies.
    #[inline]
    pub fn region(&self) -> RegionId {
        self.inner.region()
    }

    /// Bytes occupied by the payload.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.inner.bytes()
    }
}

/// An instrumented row-major 3-D array (`(i, j, k)` maps to
/// `(i * ny + j) * nz + k`), used by the structured-grid workloads.
#[derive(Debug, Clone)]
pub struct SimMatrix3<T> {
    inner: SimVec<T>,
    nx: usize,
    ny: usize,
    nz: usize,
}

impl<T: Copy + Default> SimMatrix3<T> {
    /// Allocate an `nx × ny × nz` array of default values.
    pub fn zeroed(space: &mut AddressSpace, name: &str, nx: usize, ny: usize, nz: usize) -> Self {
        Self {
            inner: SimVec::zeroed(space, name, nx * ny * nz),
            nx,
            ny,
            nz,
        }
    }
}

impl<T: Copy> SimMatrix3<T> {
    /// Extents `(nx, ny, nz)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        (i * self.ny + j) * self.nz + k
    }

    /// Traced load of `(i, j, k)`.
    #[inline]
    pub fn ld(&self, i: usize, j: usize, k: usize, sink: &mut dyn TraceSink) -> T {
        self.inner.ld(self.idx(i, j, k), sink)
    }

    /// Traced store into `(i, j, k)`.
    #[inline]
    pub fn st(&mut self, i: usize, j: usize, k: usize, v: T, sink: &mut dyn TraceSink) {
        self.inner.st(self.idx(i, j, k), v, sink)
    }

    /// Traced read-modify-write of `(i, j, k)`.
    #[inline]
    pub fn update(
        &mut self,
        i: usize,
        j: usize,
        k: usize,
        f: impl FnOnce(T) -> T,
        sink: &mut dyn TraceSink,
    ) {
        let v = self.ld(i, j, k, sink);
        self.st(i, j, k, f(v), sink);
    }

    /// Untraced read.
    #[inline]
    pub fn peek(&self, i: usize, j: usize, k: usize) -> T {
        self.inner.peek(self.idx(i, j, k))
    }

    /// Untraced write.
    #[inline]
    pub fn poke(&mut self, i: usize, j: usize, k: usize, v: T) {
        self.inner.poke(self.idx(i, j, k), v)
    }

    /// The region id this array occupies.
    #[inline]
    pub fn region(&self) -> RegionId {
        self.inner.region()
    }

    /// Bytes occupied by the payload.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.inner.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::RecordingSink;

    #[test]
    fn simvec_addresses_are_contiguous() {
        let mut space = AddressSpace::new();
        let v = SimVec::<f64>::zeroed(&mut space, "v", 16);
        for i in 1..16 {
            assert_eq!(v.addr_of(i) - v.addr_of(i - 1), 8);
        }
        let r = space.region(v.region());
        assert_eq!(r.start, v.addr_of(0));
        assert_eq!(r.len, 16 * 8);
    }

    #[test]
    fn ld_st_emit_and_operate() {
        let mut space = AddressSpace::new();
        let mut v = SimVec::<u32>::zeroed(&mut space, "v", 4);
        let mut rec = RecordingSink::new();
        v.st(2, 77, &mut rec);
        assert_eq!(v.ld(2, &mut rec), 77);
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.events[0], TraceEvent::store(v.addr_of(2), 4));
        assert_eq!(rec.events[1], TraceEvent::load(v.addr_of(2), 4));
    }

    #[test]
    fn update_is_load_then_store() {
        let mut space = AddressSpace::new();
        let mut v = SimVec::<i64>::from_fn(&mut space, "v", 3, |i| i as i64);
        let mut rec = RecordingSink::new();
        v.update(1, |x| x * 10, &mut rec);
        assert_eq!(v.peek(1), 10);
        assert_eq!(rec.events[0].kind, AccessKind::Load);
        assert_eq!(rec.events[1].kind, AccessKind::Store);
        assert_eq!(rec.events[0].addr, rec.events[1].addr);
    }

    #[test]
    fn peek_poke_do_not_emit() {
        let mut space = AddressSpace::new();
        let mut v = SimVec::<u8>::zeroed(&mut space, "v", 8);
        let mut rec = RecordingSink::new();
        v.poke(0, 1);
        let _ = v.peek(0);
        let _ = v.as_slice();
        assert!(rec.events.is_empty());
        // keep the sink "used" so the borrow checker sees symmetric usage
        v.st(0, 2, &mut rec);
        assert_eq!(rec.events.len(), 1);
    }

    #[test]
    fn matrix2_row_major_layout() {
        let mut space = AddressSpace::new();
        let m = SimMatrix2::<f32>::zeroed(&mut space, "m", 4, 8);
        let mut rec = RecordingSink::new();
        let _ = m.ld(0, 0, &mut rec);
        let _ = m.ld(0, 1, &mut rec);
        let _ = m.ld(1, 0, &mut rec);
        let a00 = rec.events[0].addr;
        let a01 = rec.events[1].addr;
        let a10 = rec.events[2].addr;
        assert_eq!(a01 - a00, 4); // unit stride along a row
        assert_eq!(a10 - a00, 8 * 4); // row stride = cols * elem
    }

    #[test]
    fn matrix3_layout_and_rmw() {
        let mut space = AddressSpace::new();
        let mut g = SimMatrix3::<f64>::zeroed(&mut space, "g", 3, 4, 5);
        assert_eq!(g.dims(), (3, 4, 5));
        let mut rec = RecordingSink::new();
        let _ = g.ld(0, 0, 0, &mut rec);
        let _ = g.ld(0, 0, 1, &mut rec);
        let _ = g.ld(0, 1, 0, &mut rec);
        let _ = g.ld(1, 0, 0, &mut rec);
        let base = rec.events[0].addr;
        assert_eq!(rec.events[1].addr - base, 8);
        assert_eq!(rec.events[2].addr - base, 5 * 8);
        assert_eq!(rec.events[3].addr - base, 4 * 5 * 8);

        g.update(2, 3, 4, |x| x + 1.0, &mut rec);
        assert_eq!(g.peek(2, 3, 4), 1.0);
    }

    #[test]
    fn from_vec_preserves_data() {
        let mut space = AddressSpace::new();
        let v = SimVec::from_vec(&mut space, "v", vec![10u16, 20, 30]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.peek(2), 30);
        assert_eq!(v.bytes(), 6);
    }

    #[test]
    fn distinct_vectors_get_distinct_regions() {
        let mut space = AddressSpace::new();
        let a = SimVec::<u64>::zeroed(&mut space, "a", 100);
        let b = SimVec::<u64>::zeroed(&mut space, "b", 100);
        assert_ne!(a.region(), b.region());
        let ra = space.region(a.region()).clone();
        let rb = space.region(b.region()).clone();
        assert!(ra.end() <= rb.start);
    }
}
