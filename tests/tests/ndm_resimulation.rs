//! Validates the NDM analytic shortcut against a genuine re-simulation:
//! costing a placement from one run's per-region traffic must agree with
//! physically routing requests through a placement-configured
//! `PartitionedMemory`.

use memsim_cache::{Cache, CacheConfig, Hierarchy};
use memsim_core::partition::{cost_placement, oracle, Placement};
use memsim_core::{simulate_structure, Structure};
use memsim_integration_tests::test_scale;
use memsim_memory::PartitionedMemory;
use memsim_tech::Technology;
use memsim_trace::TraceSink;
use memsim_workloads::{Class, WorkloadKind};

/// Re-simulate CG with the oracle's placement physically applied and check
/// the partition traffic equals the analytic attribution.
#[test]
fn analytic_placement_equals_resimulation() {
    let scale = test_scale();
    let kind = WorkloadKind::Cg;
    let run = simulate_structure(kind, &scale, &Structure::ThreeLevel);
    let choice = oracle(&run, Technology::Pcm, &scale);

    // physical re-simulation with the placement routed in the terminal
    let mut workload = kind.build(Class::Mini);
    let caches = vec![
        Cache::new(CacheConfig::new(
            "L1",
            scale.l1_bytes,
            scale.line_bytes,
            scale.l1_ways,
        )),
        Cache::new(CacheConfig::new(
            "L2",
            scale.l2_bytes,
            scale.line_bytes,
            scale.l2_ways,
        )),
        Cache::new(CacheConfig::new(
            "L3",
            scale.l3_bytes,
            scale.line_bytes,
            scale.l3_ways,
        )),
    ];
    let regions = workload.space().regions().to_vec();
    let mut terminal = PartitionedMemory::new(&regions, Technology::Pcm);
    for (i, p) in choice.placement.iter().enumerate() {
        terminal.place(i, *p);
    }
    let mut h = Hierarchy::new(caches, terminal);
    workload.run(&mut h);
    h.flush();
    let mem = h.into_memory();

    // aggregate DRAM/NVM traffic from the analytic attribution
    let mut dram_loads = 0u64;
    let mut dram_stores = 0u64;
    let mut nvm_loads = 0u64;
    let mut nvm_stores = 0u64;
    for (i, t) in run.per_region.iter().enumerate() {
        match choice.placement[i] {
            Placement::Dram => {
                dram_loads += t.loads;
                dram_stores += t.stores;
            }
            Placement::Nvm => {
                nvm_loads += t.loads;
                nvm_stores += t.stores;
            }
        }
    }

    assert_eq!(mem.dram_stats().loads, dram_loads, "DRAM loads diverge");
    assert_eq!(mem.dram_stats().stores, dram_stores, "DRAM stores diverge");
    assert_eq!(mem.nvm_stats().loads, nvm_loads, "NVM loads diverge");
    assert_eq!(mem.nvm_stats().stores, nvm_stores, "NVM stores diverge");
}

/// Monotonicity of the analytic model: moving a trafficked region from
/// DRAM to PCM can only increase modeled time.
#[test]
fn moving_hot_region_to_nvm_increases_time() {
    let scale = test_scale();
    let run = simulate_structure(WorkloadKind::Hash, &scale, &Structure::ThreeLevel);
    // find the hottest region
    let hottest = run
        .per_region
        .iter()
        .enumerate()
        .max_by_key(|(_, t)| t.loads + t.stores)
        .map(|(i, _)| i)
        .unwrap();
    let mut all_dram = vec![Placement::Dram; run.per_region.len()];
    let with_dram = cost_placement(&run, &all_dram, Technology::Pcm, &scale);
    all_dram[hottest] = Placement::Nvm;
    let with_nvm = cost_placement(&run, &all_dram, Technology::Pcm, &scale);
    assert!(
        with_nvm.time_s > with_dram.time_s,
        "PCM-resident hot region must cost time: {} vs {}",
        with_nvm.time_s,
        with_dram.time_s
    );
    assert!(with_nvm.dynamic_j > with_dram.dynamic_j);
}

/// The oracle is genuinely optimal among the placements it enumerates:
/// no single-group flip of its answer improves EDP.
#[test]
fn oracle_is_locally_optimal() {
    let scale = test_scale();
    let run = simulate_structure(WorkloadKind::Cg, &scale, &Structure::ThreeLevel);
    let choice = oracle(&run, Technology::SttRam, &scale);
    let base_edp = choice.metrics.edp();
    let budget = memsim_core::partition::ndm_dram_budget(&scale, run.footprint_bytes);
    let groups = memsim_core::partition::merge_into_ranges(&run, 4);
    for group in &groups {
        let mut flipped = choice.placement.clone();
        let currently_dram = matches!(flipped[group.regions[0]], Placement::Dram);
        for &r in &group.regions {
            flipped[r] = if currently_dram {
                Placement::Nvm
            } else {
                Placement::Dram
            };
        }
        // recompute DRAM bytes for feasibility
        let dram_bytes: u64 = flipped
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, Placement::Dram))
            .map(|(i, _)| run.region_sizes[i])
            .sum();
        if dram_bytes > budget {
            continue;
        }
        let m = cost_placement(&run, &flipped, Technology::SttRam, &scale);
        assert!(
            m.edp() >= base_edp - 1e-12,
            "flipping a group improved EDP: {} < {base_edp}",
            m.edp()
        );
    }
}
