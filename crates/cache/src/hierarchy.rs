//! Composition of cache levels over a terminal main memory.

use crate::cache::{AccessOutcome, Cache, WritebackOutcome};
use crate::probes::{HierarchyProbes, PROBE_EPOCH};
use memsim_trace::{AccessKind, TraceEvent, TraceSink};

/// The terminal level of a hierarchy (below the last cache).
///
/// Implementations record the request in whatever structure they need —
/// a flat DRAM/NVM counter, a partitioned DRAM+NVM address space, a
/// wear-leveling NVM front end, … (see `memsim-memory`).
pub trait MainMemory {
    /// A block-fetch read of `bytes` at `addr` (a fill request from the
    /// last cache level, or a demand read when there are no caches).
    fn load(&mut self, addr: u64, bytes: u32);
    /// A write of `bytes` at `addr` (a dirty writeback from the last cache
    /// level, or a demand write when there are no caches).
    fn store(&mut self, addr: u64, bytes: u32);
}

/// The simplest terminal: counts requests and bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingMemory {
    /// Read requests received.
    pub loads: u64,
    /// Write requests received.
    pub stores: u64,
    /// Bytes read.
    pub bytes_loaded: u64,
    /// Bytes written.
    pub bytes_stored: u64,
}

impl MainMemory for CountingMemory {
    #[inline]
    fn load(&mut self, _addr: u64, bytes: u32) {
        self.loads += 1;
        self.bytes_loaded += u64::from(bytes);
    }

    #[inline]
    fn store(&mut self, _addr: u64, bytes: u32) {
        self.stores += 1;
        self.bytes_stored += u64::from(bytes);
    }
}

/// A stack of caches over a terminal memory.
///
/// Implements [`TraceSink`]: feed it the raw application address stream.
/// Each reference walks the levels top-down; misses fetch the missing
/// block from the next level (counted there as a *load* of that block's
/// size) and dirty evictions propagate downward as *stores* — including,
/// transitively, evictions triggered by those writebacks themselves.
///
/// Call [`Hierarchy::flush`] (or drop the stream) at end of trace to drain
/// resident dirty blocks to memory, so that "dirty cache lines eventually
/// make their way to the main memory and count as write operations".
#[derive(Debug, Clone)]
pub struct Hierarchy<M: MainMemory> {
    levels: Vec<Cache>,
    memory: M,
    /// Demand references consumed (after line splitting) when there are no
    /// cache levels. With caches present the count is derived from L1's
    /// counters instead — every post-split reference reaches L1 exactly
    /// once and writebacks never do — so the per-event path carries no
    /// separate counter.
    uncached_refs: u64,
    /// Demand bytes moved when there are no cache levels (see above).
    uncached_bytes: u64,
    drained: bool,
    /// `log2` of L1's block size, for shift/mask splitting (0 if no caches).
    l1_shift: u32,
    /// L1 block id of the most recent demand reference — the one-entry
    /// "line buffer". A consecutive reference to the same block is a
    /// guaranteed L1 hit at the set's MRU way and skips the walk entirely.
    lb_block: u64,
    /// Line buffer armed: at least one cache with a block of ≥ 2 bytes
    /// (so a real block id can never equal the `u64::MAX` sentinel).
    lb_enabled: bool,
    /// Demand references filtered by the line buffer (skipped the walk).
    lb_hits: u64,
    /// Events until the next probe publication. Kept inline (not in
    /// [`ProbeState`]) so the per-event tick touches only this already-hot
    /// struct, never the probe allocation: without probes it starts at
    /// `u64::MAX` and can never reach zero, so the uninstrumented path
    /// pays one decrement and one never-taken branch.
    probe_countdown: u64,
    /// Observability hook, absent unless telemetry was requested.
    probes: Option<Box<ProbeState>>,
}

/// Attached-probe bookkeeping (see [`crate::probes`] for the protocol).
#[derive(Debug, Clone)]
struct ProbeState {
    probes: HierarchyProbes,
    /// Cumulative events already added into the shared progress counters.
    published_events: u64,
}

impl<M: MainMemory> Hierarchy<M> {
    /// Build a hierarchy; `levels[0]` is closest to the CPU.
    pub fn new(levels: Vec<Cache>, memory: M) -> Self {
        let l1_shift = levels
            .first()
            .map(|c| c.block_bytes().trailing_zeros())
            .unwrap_or(0);
        let lb_enabled = levels
            .first()
            .map(|c| c.block_bytes() >= 2)
            .unwrap_or(false);
        Self {
            levels,
            memory,
            uncached_refs: 0,
            uncached_bytes: 0,
            drained: false,
            l1_shift,
            lb_block: u64::MAX,
            lb_enabled,
            lb_hits: 0,
            probe_countdown: u64::MAX,
            probes: None,
        }
    }

    /// Attach observability probes. From now until drain, cumulative
    /// counter values are published into the probes' registry handles once
    /// per ~[`PROBE_EPOCH`] events; [`Hierarchy::drain`] publishes the
    /// exact final values.
    pub fn set_probes(&mut self, probes: HierarchyProbes) {
        debug_assert_eq!(
            probes.level_count(),
            self.levels.len(),
            "probes must cover every cache level"
        );
        self.probe_countdown = PROBE_EPOCH;
        self.probes = Some(Box::new(ProbeState {
            probes,
            published_events: 0,
        }));
    }

    /// Demand references answered by the one-entry line buffer (the
    /// filter's short-circuit count; a subset of L1 hits).
    pub fn line_buffer_hits(&self) -> u64 {
        self.lb_hits
    }

    /// Publish exact cumulative counter values to the attached probes
    /// (no-op when none are attached). Called automatically at drain.
    pub fn publish_probes(&mut self) {
        if self.probes.is_some() {
            self.probe_publish();
        }
    }

    /// Epoch boundary reached by the per-event tick: republish and re-arm
    /// the countdown (to "never" when no probes are attached).
    #[cold]
    fn probe_epoch(&mut self) {
        if self.probes.is_some() {
            self.probe_countdown = PROBE_EPOCH;
            self.probe_publish();
        } else {
            self.probe_countdown = u64::MAX;
        }
    }

    /// Per-chunk probe tick: bumps chunk counters, then publishes if the
    /// chunk crossed an epoch boundary.
    fn probe_chunk(&mut self, events_in_chunk: u64) {
        let Some(state) = self.probes.as_deref_mut() else {
            return;
        };
        for c in &state.probes.chunks {
            c.inc();
        }
        if self.probe_countdown <= events_in_chunk {
            self.probe_countdown = PROBE_EPOCH;
            self.probe_publish();
        } else {
            self.probe_countdown -= events_in_chunk;
        }
    }

    /// Publish cumulative values: per-level counters by absolute store,
    /// shared progress counters by delta.
    #[cold]
    fn probe_publish(&mut self) {
        let total = self.total_refs();
        let lb_hits = self.lb_hits;
        let Some(state) = self.probes.as_deref_mut() else {
            return;
        };
        let delta = total.saturating_sub(state.published_events);
        state.published_events = total;
        if delta > 0 {
            for c in &state.probes.events {
                c.add(delta);
            }
        }
        state.probes.lb_hits.store(lb_hits);
        for (probe, cache) in state.probes.levels.iter().zip(self.levels.iter()) {
            probe.publish(&cache.counter_values());
        }
    }

    /// The cache levels, top-down.
    pub fn levels(&self) -> &[Cache] {
        &self.levels
    }

    /// The terminal memory.
    pub fn memory(&self) -> &M {
        &self.memory
    }

    /// Mutable access to the terminal memory.
    pub fn memory_mut(&mut self) -> &mut M {
        &mut self.memory
    }

    /// Total demand references consumed (the paper's "Total Number of
    /// References" denominator in Equation 2).
    pub fn total_refs(&self) -> u64 {
        match self.levels.first() {
            Some(l1) => l1.demand_refs(),
            None => self.uncached_refs,
        }
    }

    /// Total demand bytes moved by the CPU reference stream.
    pub fn demand_bytes(&self) -> u64 {
        match self.levels.first() {
            Some(l1) => l1.demand_bytes(),
            None => self.uncached_bytes,
        }
    }

    /// Consume the hierarchy, returning the terminal memory.
    pub fn into_memory(self) -> M {
        self.memory
    }

    /// Process one demand reference already confined to a single L1 block.
    /// Callers guarantee at least one cache level. The L1 lookup is
    /// inlined; the multi-level miss walk lives out of line so the
    /// (dominant) hit path stays small.
    #[inline]
    fn demand(&mut self, addr: u64, kind: AccessKind, size: u32) {
        if let AccessOutcome::Miss { evicted_dirty } = self.levels[0].access(addr, kind, size) {
            self.demand_miss(addr, evicted_dirty);
        }
    }

    /// Demand path of a cache-less hierarchy: forward straight to memory.
    fn demand_uncached(&mut self, addr: u64, kind: AccessKind, size: u32) {
        self.uncached_refs += 1;
        self.uncached_bytes += u64::from(size);
        match kind {
            AccessKind::Load => self.memory.load(addr, size),
            AccessKind::Store => self.memory.store(addr, size),
        }
    }

    /// Continue a demand reference that missed L1: walk down until a hit
    /// or the terminal memory. Writebacks from evictions are handled after
    /// the fill, per level; fetches from below are always reads.
    #[inline(never)]
    fn demand_miss(&mut self, addr: u64, l1_evicted: Option<u64>) {
        let mut level = 0;
        let mut evicted_dirty = l1_evicted;
        loop {
            let block = self.levels[level].block_bytes();
            if let Some(victim) = evicted_dirty {
                self.writeback_parts(level, victim);
            }
            level += 1;
            if level == self.levels.len() {
                self.memory.load(addr, block);
                return;
            }
            match self.levels[level].access(addr, AccessKind::Load, block) {
                AccessOutcome::Hit => return,
                AccessOutcome::Miss { evicted_dirty: e } => evicted_dirty = e,
            }
        }
    }

    /// Deliver a dirty eviction from `level` as one writeback transaction
    /// carrying the block's dirty bytes (whole block, or only the dirty
    /// sectors of a sectored page cache).
    fn writeback_parts(&mut self, level: usize, victim: u64) {
        let bytes = self.levels[level].take_eviction_bytes();
        self.writeback(level + 1, victim, bytes);
    }

    /// Deliver a writeback of `bytes` at `addr` to `level` (may recurse
    /// further down when it misses or displaces more dirty blocks).
    fn writeback(&mut self, level: usize, addr: u64, bytes: u32) {
        if level == self.levels.len() {
            self.memory.store(addr, bytes);
            return;
        }
        match self.levels[level].writeback(addr, bytes) {
            WritebackOutcome::HitMarkedDirty => {}
            WritebackOutcome::MissBypass => self.writeback(level + 1, addr, bytes),
            WritebackOutcome::MissAllocated { evicted_dirty } => {
                if let Some(victim) = evicted_dirty {
                    self.writeback_parts(level, victim);
                }
            }
        }
    }

    /// Process one demand event: line-buffer fast path for a repeat of the
    /// previous L1 block, split-and-walk otherwise.
    #[inline]
    fn process_event(&mut self, ev: TraceEvent) {
        debug_assert!(!self.drained, "stream continued after flush()");
        if self.levels.is_empty() {
            self.demand_uncached(ev.addr, ev.kind, ev.size);
            return;
        }
        let shift = self.l1_shift;
        let first = ev.addr >> shift;
        let last = ev.end().saturating_sub(1) >> shift;
        if first == last {
            if self.lb_enabled && first == self.lb_block {
                // Consecutive reference to the same L1 block: it is
                // resident (write-allocate installs on every miss) and
                // most-recent in its set, so apply the hit bookkeeping
                // directly without walking the level.
                self.lb_hits += 1;
                self.levels[0].rehit(ev.addr, ev.kind, ev.size);
                return;
            }
            self.demand(ev.addr, ev.kind, ev.size);
        } else {
            self.demand_split(ev);
        }
        // A size-0 event must not arm the buffer: when it sits at a block
        // boundary the split loop touches nothing, so `last` (the block
        // *before* the address) was not necessarily referenced. It must
        // clear the buffer instead of leaving it: a size-0 probe can still
        // miss and install, evicting the very block the buffer points at,
        // and a stale buffer would then count a false re-hit. Clearing a
        // *valid* buffer is free (the probe path books the same counters),
        // so the invariant stays simple: an armed buffer is always
        // resident and most-recent.
        if ev.size > 0 {
            self.lb_block = last;
        } else {
            self.lb_block = u64::MAX;
        }
    }

    /// Split a reference that straddles an L1 block boundary (rare: the
    /// instrumented containers align all regions, but synthetic streams
    /// may not) into per-block demand references.
    #[cold]
    fn demand_split(&mut self, ev: TraceEvent) {
        let block = 1u64 << self.l1_shift;
        let mask = block - 1;
        let mut addr = ev.addr;
        let mut remaining = u64::from(ev.size);
        while remaining > 0 {
            let in_block = (block - (addr & mask)).min(remaining);
            self.demand(addr, ev.kind, in_block as u32);
            addr += in_block;
            remaining -= in_block;
        }
    }

    /// Drain all resident dirty blocks to memory, top-down. Idempotent.
    pub fn drain(&mut self) {
        if self.drained {
            return;
        }
        self.drained = true;
        self.lb_block = u64::MAX;
        for level in 0..self.levels.len() {
            for (addr, bytes) in self.levels[level].drain_dirty() {
                self.writeback(level + 1, addr, bytes);
            }
        }
        // Authoritative final publication: after this, registry values are
        // exact, not one-epoch-stale.
        self.publish_probes();
    }

    /// Run a consistency check over every level's counters, panicking
    /// with the specific broken invariant.
    pub fn assert_consistent(&self) {
        for c in &self.levels {
            if let Some(err) = c.stats().consistency_error() {
                panic!("stats inconsistent — {err} (full: {:?})", c.stats());
            }
        }
    }
}

impl<M: MainMemory> TraceSink for Hierarchy<M> {
    #[inline]
    fn access(&mut self, ev: TraceEvent) {
        self.process_event(ev);
        // probe tick: countdown is u64::MAX-armed without probes, so this
        // is one decrement plus a never-taken branch on the plain path
        self.probe_countdown -= 1;
        if self.probe_countdown == 0 {
            self.probe_epoch();
        }
    }

    /// Batched delivery: one virtual call, then alternating runs of the L1
    /// batched hit probe and the scalar walk. `access_hit_batch` consumes
    /// leading events while each stays in one L1 block and hits; the first
    /// event it rejects (miss, straddler, or size 0) takes the scalar path,
    /// and the loop resumes batching behind it. Per-event bookkeeping is
    /// identical to the scalar path, so `LevelStats` are bit-equal to
    /// event-at-a-time delivery; only the line-buffer/MRU-ring telemetry
    /// split differs (batched events probe the ring instead of the buffer).
    fn access_chunk(&mut self, events: &[TraceEvent]) {
        if self.levels.is_empty() {
            for &ev in events {
                self.process_event(ev);
            }
        } else {
            debug_assert!(!self.drained, "stream continued after flush()");
            let mut i = 0;
            while i < events.len() {
                let n = self.levels[0].access_hit_batch(&events[i..]);
                if n > 0 {
                    i += n;
                    // every batched event is a size>0 single-block hit, so
                    // re-arming from the last one mirrors the scalar path:
                    // its block is resident and most-recent in its set
                    self.lb_block = events[i - 1].addr >> self.l1_shift;
                }
                if i < events.len() {
                    self.process_event(events[i]);
                    i += 1;
                }
            }
        }
        if self.probes.is_some() {
            self.probe_chunk(events.len() as u64);
        }
    }

    fn flush(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn two_level() -> Hierarchy<CountingMemory> {
        let l1 = Cache::new(CacheConfig::new("L1", 4 * 64, 64, 1)); // 4 sets, direct
        let l2 = Cache::new(CacheConfig::new("L2", 16 * 64, 64, 2)); // 8 sets, 2-way
        Hierarchy::new(vec![l1, l2], CountingMemory::default())
    }

    #[test]
    fn load_miss_walks_to_memory() {
        let mut h = two_level();
        h.access(TraceEvent::load(0x1000, 8));
        assert_eq!(h.levels()[0].stats().load_misses, 1);
        assert_eq!(h.levels()[1].stats().load_misses, 1);
        assert_eq!(h.memory().loads, 1);
        assert_eq!(h.memory().bytes_loaded, 64, "memory supplies L2's block");
        assert_eq!(h.total_refs(), 1);
    }

    #[test]
    fn l1_hit_stops_the_walk() {
        let mut h = two_level();
        h.access(TraceEvent::load(0x1000, 8));
        h.access(TraceEvent::load(0x1010, 8));
        assert_eq!(h.levels()[0].stats().load_hits, 1);
        assert_eq!(h.levels()[1].stats().loads, 1, "L2 only saw the first fill");
        assert_eq!(h.memory().loads, 1);
    }

    #[test]
    fn store_miss_fetches_below_as_load() {
        let mut h = two_level();
        h.access(TraceEvent::store(0x2000, 8));
        let l1 = h.levels()[0].stats();
        assert_eq!(l1.store_misses, 1);
        assert_eq!(l1.stores, 1);
        // the fill from L2 is a load there
        assert_eq!(h.levels()[1].stats().loads, 1);
        assert_eq!(h.levels()[1].stats().stores, 0);
        assert_eq!(h.memory().loads, 1);
        assert_eq!(h.memory().stores, 0);
    }

    #[test]
    fn dirty_eviction_propagates_as_store() {
        let mut h = two_level();
        // L1 is direct-mapped with 4 sets of 64 B: 0x0 and 0x100 conflict.
        h.access(TraceEvent::store(0x0, 8));
        h.access(TraceEvent::load(0x100, 8)); // evicts dirty 0x0 from L1
                                              // the writeback lands in L2, which holds 0x0 from the original fill
        assert_eq!(h.levels()[0].stats().writebacks_out, 1);
        assert!(h.levels()[1].is_dirty(0x0));
        assert_eq!(h.memory().stores, 0, "writeback absorbed by L2");
    }

    #[test]
    fn flush_drains_dirty_lines_to_memory() {
        let mut h = two_level();
        h.access(TraceEvent::store(0x0, 8));
        h.flush();
        // L1 dirty line 0x0 -> L2 (hit, marked dirty) -> L2 drain -> memory
        assert_eq!(h.memory().stores, 1);
        assert_eq!(h.memory().bytes_stored, 64);
        h.flush(); // idempotent
        assert_eq!(h.memory().stores, 1);
    }

    #[test]
    fn writeback_bypass_reaches_memory_when_absent_below() {
        // L2 tiny: 2 blocks direct-mapped; fill for 0x0 lands in set 0,
        // then 0x80 fill replaces it (clean), so the later L1 writeback of
        // 0x0 misses L2 and must bypass to memory.
        let l1 = Cache::new(CacheConfig::new("L1", 2 * 64, 64, 1));
        let l2 = Cache::new(CacheConfig::new("L2", 2 * 64, 64, 1));
        let mut h = Hierarchy::new(vec![l1, l2], CountingMemory::default());
        h.access(TraceEvent::store(0x0, 8)); // L1 set0 dirty; L2 set0 = 0x0
        h.access(TraceEvent::load(0x100, 8)); // L2 set0 replaced by 0x100; L1 set0 evicts dirty 0x0
        assert_eq!(h.memory().stores, 1, "bypassed writeback hits memory");
    }

    #[test]
    fn no_cache_hierarchy_forwards_directly() {
        let mut h = Hierarchy::new(vec![], CountingMemory::default());
        h.access(TraceEvent::load(0x0, 8));
        h.access(TraceEvent::store(0x8, 8));
        assert_eq!(h.memory().loads, 1);
        assert_eq!(h.memory().stores, 1);
        assert_eq!(h.memory().bytes_loaded, 8);
        assert_eq!(h.memory().bytes_stored, 8);
    }

    #[test]
    fn straddling_access_is_split() {
        let mut h = two_level();
        // 8 bytes starting 4 bytes before a line boundary
        h.access(TraceEvent::load(60, 8));
        assert_eq!(h.total_refs(), 2);
        assert_eq!(h.levels()[0].stats().loads, 2);
    }

    #[test]
    fn counters_conserve_through_random_stream() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut h = two_level();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..20_000 {
            let addr = rng.random_range(0u64..1 << 14);
            let kind = if rng.random_bool(0.3) {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            h.access(TraceEvent {
                addr: addr & !7,
                size: 8,
                kind,
            });
        }
        h.flush();
        h.assert_consistent();
        let l1 = h.levels()[0].stats();
        let l2 = h.levels()[1].stats();
        // every L1 load miss and store miss produces exactly one L2 load
        assert_eq!(l2.loads, l1.misses());
        // every L2 load miss produces a memory load; L2 store misses bypass
        assert_eq!(h.memory().loads, l2.load_misses);
    }

    #[test]
    fn probes_publish_exact_final_counters() {
        let reg = memsim_obs::MetricsRegistry::new();
        let mut h = two_level();
        let names: Vec<&str> = vec!["L1", "L2"];
        h.set_probes(HierarchyProbes::register(&reg, "t", &names));
        // Fewer events than one epoch: only the drain publication runs.
        for i in 0..100u64 {
            h.access(TraceEvent::load(i * 8, 8));
        }
        h.access(TraceEvent::store(0x0, 8));
        h.flush();
        let l1 = h.levels()[0].stats();
        assert_eq!(reg.counter_value("t.L1.loads"), Some(l1.loads));
        assert_eq!(reg.counter_value("t.L1.load_hits"), Some(l1.load_hits));
        assert_eq!(reg.counter_value("t.L1.load_misses"), Some(l1.load_misses));
        assert_eq!(
            reg.counter_value("t.L1.writebacks_out"),
            Some(l1.writebacks_out)
        );
        assert_eq!(
            reg.counter_value("t.L1.mru_hits"),
            Some(h.levels()[0].mru_short_circuits())
        );
        let l2 = h.levels()[1].stats();
        assert_eq!(reg.counter_value("t.L2.loads"), Some(l2.loads));
        assert_eq!(
            reg.counter_value("t.l1_line_buffer_hits"),
            Some(h.line_buffer_hits())
        );
        assert_eq!(reg.counter_value("progress.events"), Some(h.total_refs()));
    }

    #[test]
    fn chunked_probe_publication_counts_chunks_and_epochs() {
        let reg = memsim_obs::MetricsRegistry::new();
        let mut h = two_level();
        h.set_probes(HierarchyProbes::register(&reg, "t", &["L1", "L2"]));
        let chunk: Vec<TraceEvent> = (0..512u64).map(|i| TraceEvent::load(i * 8, 8)).collect();
        let chunks = 2 * PROBE_EPOCH / 512; // 2× epoch worth of events
        for _ in 0..chunks {
            h.access_chunk(&chunk); // crosses ≥1 epoch mid-stream
        }
        assert_eq!(reg.counter_value("progress.chunks"), Some(chunks));
        let published = reg.counter_value("progress.events").unwrap();
        assert!(
            published >= PROBE_EPOCH && published <= h.total_refs(),
            "mid-stream publication lags by at most one epoch: {published}"
        );
        h.flush();
        assert_eq!(reg.counter_value("progress.events"), Some(h.total_refs()));
    }

    #[test]
    fn memory_write_traffic_matches_dirty_data() {
        // Property: with a drain at the end, the number of distinct dirty
        // blocks created at L1 equals memory store *blocks* when caches
        // can't re-dirty (each block stored exactly once here).
        let l1 = Cache::new(CacheConfig::new("L1", 4 * 64, 64, 1));
        let mut h = Hierarchy::new(vec![l1], CountingMemory::default());
        for i in 0..64u64 {
            h.access(TraceEvent::store(i * 64, 8));
        }
        h.flush();
        // 64 distinct blocks dirtied; all must reach memory exactly once
        assert_eq!(h.memory().stores, 64);
        assert_eq!(h.memory().bytes_stored, 64 * 64);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use crate::config::CacheConfig;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Conservation invariants hold for random hierarchies (2–4 levels
        /// with random geometry) over random streams: per-kind hit/miss
        /// consistency at every level, demand-fetch balance between
        /// adjacent levels, and writeback conservation through the drain.
        #[test]
        fn random_hierarchy_conserves(
            level_count in 2usize..5,
            l1_sets_log in 2u32..5,
            growth in 1u32..3,
            page_log in 6u32..10,
            ops in proptest::collection::vec((0u64..(1 << 16), proptest::bool::ANY), 50..400),
        ) {
            let mut caches = Vec::new();
            for lvl in 0..level_count {
                let block = if lvl + 1 == level_count { 1u32 << page_log } else { 64 };
                let sets = 1u64 << (l1_sets_log + growth * lvl as u32);
                let ways = 2;
                let mut cfg = CacheConfig::new(&format!("C{lvl}"), sets * u64::from(block) * ways, block, ways as u32);
                if block > 64 {
                    cfg = cfg.with_sectors(64);
                }
                caches.push(Cache::new(cfg));
            }
            let mut h = Hierarchy::new(caches, CountingMemory::default());
            for &(addr, is_store) in &ops {
                let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
                h.access(TraceEvent { addr: addr & !7, size: 8, kind });
            }
            h.flush();
            h.assert_consistent();
            // adjacent-level demand balance
            for (i, w) in h.levels().windows(2).enumerate() {
                let expected = if i == 0 { w[0].stats().misses() } else { w[0].stats().load_misses };
                prop_assert_eq!(w[1].stats().loads, expected, "level {} fetch balance", i + 1);
            }
            let last = h.levels().last().unwrap().stats();
            prop_assert_eq!(h.memory().loads, last.load_misses);
            // stores never amplify beyond CPU stores plus per-level writebacks
            let cpu_stores = ops.iter().filter(|(_, s)| *s).count() as u64;
            prop_assert!(h.memory().stores <= cpu_stores, "memory stores {} > CPU stores {cpu_stores}", h.memory().stores);
            // all dirty data drained: nothing dirty remains anywhere
            for c in h.levels() {
                let drained: u64 = 0;
                let _ = drained;
                prop_assert_eq!(c.resident_blocks(), 0, "{} not fully drained", c.config().name);
            }
        }

        /// `flush` is idempotent: once the hierarchy has drained, flushing
        /// again must not move another byte or bump any counter.
        #[test]
        fn flush_after_drain_changes_nothing(
            ops in proptest::collection::vec((0u64..(1 << 14), proptest::bool::ANY), 1..300),
        ) {
            let l1 = Cache::new(CacheConfig::new("L1", 4 * 64, 64, 1));
            let l2 = Cache::new(CacheConfig::new("L2", 16 * 64, 64, 2).with_sectors(64));
            let mut h = Hierarchy::new(vec![l1, l2], CountingMemory::default());
            for &(addr, is_store) in &ops {
                let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
                h.access(TraceEvent { addr: addr & !7, size: 8, kind });
            }
            h.flush();
            let level_stats: Vec<_> = h.levels().iter().map(|c| c.stats()).collect();
            let memory = *h.memory();
            let refs = h.total_refs();
            h.flush();
            let again: Vec<_> = h.levels().iter().map(|c| c.stats()).collect();
            prop_assert_eq!(level_stats, again);
            prop_assert_eq!(memory, *h.memory());
            prop_assert_eq!(refs, h.total_refs());
        }
    }
}
