//! Crash-durable sweep journal: checkpoint/resume for long design-space
//! sweeps.
//!
//! A full `reproduce` run evaluates the paper's whole design space in one
//! long parallel sweep. Each completed (workload, design) point is worth
//! minutes of simulation; losing all of them to one panic or a Ctrl-C is
//! the failure mode this module removes. The journal is an append-only
//! JSONL file (`sweep.journal.jsonl` in the output directory): one
//! self-describing, CRC-tagged line per completed point, flushed as the
//! point lands. On `--resume`, lines that validate (CRC intact, schema
//! version and config fingerprint matching) restore their [`EvalResult`]
//! bit-exactly — every float is stored as its IEEE-754 bit pattern — so a
//! resumed sweep's report is byte-identical to an uninterrupted one.
//!
//! Line format (one per line, `\n`-terminated):
//!
//! ```text
//! {"crc":"<8 hex>","p":{<payload object>}}
//! ```
//!
//! The CRC-32 (IEEE, the trace-file polynomial) is computed over the exact
//! payload bytes between `"p":` and the closing `}` of the envelope, so a
//! truncated tail line, a flipped bit, or a hand-edited entry fails closed:
//! the point is re-simulated, never trusted.

use crate::design::Design;
use crate::jsontext::{get, get_str, get_u64, parse_json, JVal};
use crate::model::Metrics;
use crate::runner::{EvalResult, RawRun};
use crate::sampling::{SampleCi, SampleMode};
use crate::scale::Scale;
use memsim_cache::LevelStats;
use memsim_memory::{Placement, RegionTraffic};
use memsim_obs::json;
use memsim_tracefile::crc32;
use memsim_workloads::WorkloadKind;
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Journal schema version; bumped whenever a field changes meaning.
pub const JOURNAL_VERSION: u64 = 1;

/// Conventional journal file name inside a sweep output directory.
pub const JOURNAL_FILE: &str = "sweep.journal.jsonl";

/// Identity of one sweep point: `(workload name, design label)`. The scale
/// is covered by the per-line fingerprint instead of the key, so a journal
/// written at one scale is never trusted at another.
pub type PointKey = (String, String);

/// Fingerprint of everything that could invalidate a journaled point:
/// journal schema, crate version, and the full [`Scale`] geometry (which
/// also pins the workload class). Two runs with equal fingerprints produce
/// bit-identical simulation results, so their journal entries are
/// interchangeable.
pub fn sweep_fingerprint(scale: &Scale) -> String {
    sweep_fingerprint_sampled(scale, SampleMode::Off)
}

/// [`sweep_fingerprint`] for a sampled sweep: the sampling parameters
/// join the canonical string (full-fidelity runs hash the exact legacy
/// string, so existing journals stay valid). Sampled results are
/// extrapolations, not measurements — a sampled point must never be
/// served to a full-fidelity resume or vice versa, and distinct sampling
/// parameters must not mix either.
pub fn sweep_fingerprint_sampled(scale: &Scale, sample: SampleMode) -> String {
    let mut canon = format!(
        "memsim-sweep-v{JOURNAL_VERSION}|{}|l1={}:{}|l2={}:{}|l3={}:{}|line={}|div={}|l4w={}|fpm={}|class={}",
        env!("CARGO_PKG_VERSION"),
        scale.l1_bytes,
        scale.l1_ways,
        scale.l2_bytes,
        scale.l2_ways,
        scale.l3_bytes,
        scale.l3_ways,
        scale.line_bytes,
        scale.capacity_divisor,
        scale.l4_ways,
        scale.footprint_multiplier,
        scale.class.name(),
    );
    if sample.is_on() {
        canon.push_str("|sample=");
        canon.push_str(&sample.canon());
    }
    format!("{:08x}", crc32(canon.as_bytes()))
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn level_stats_json(s: &LevelStats) -> String {
    let mut o = json::Obj::new();
    o.str("name", &s.name)
        .u64("loads", s.loads)
        .u64("stores", s.stores)
        .u64("load_hits", s.load_hits)
        .u64("load_misses", s.load_misses)
        .u64("store_hits", s.store_hits)
        .u64("store_misses", s.store_misses)
        .u64("writebacks_out", s.writebacks_out)
        .u64("fills", s.fills)
        .u64("bytes_loaded", s.bytes_loaded)
        .u64("bytes_stored", s.bytes_stored);
    o.finish()
}

/// Floats are journaled as IEEE-754 bit patterns (`f64::to_bits`): decimal
/// round-trips would be close but not certainly byte-identical in derived
/// reports, and "close" is exactly what a resume must not be.
fn metrics_json(m: &Metrics) -> String {
    let mut o = json::Obj::new();
    o.u64("amat_ns_bits", m.amat_ns.to_bits())
        .u64("time_s_bits", m.time_s.to_bits())
        .u64("dynamic_j_bits", m.dynamic_j.to_bits())
        .u64("static_j_bits", m.static_j.to_bits())
        .u64("total_refs", m.total_refs);
    o.finish()
}

fn run_json(r: &RawRun) -> String {
    let caches: Vec<String> = r.caches.iter().map(level_stats_json).collect();
    let regions: Vec<String> = r
        .per_region
        .iter()
        .map(|t| {
            let mut o = json::Obj::new();
            o.u64("loads", t.loads)
                .u64("stores", t.stores)
                .u64("bytes_loaded", t.bytes_loaded)
                .u64("bytes_stored", t.bytes_stored);
            o.finish()
        })
        .collect();
    let names: Vec<String> = r
        .region_names
        .iter()
        .map(|n| format!("\"{}\"", json::escape(n)))
        .collect();
    let sizes: Vec<String> = r.region_sizes.iter().map(u64::to_string).collect();
    let starts: Vec<String> = r.region_starts.iter().map(u64::to_string).collect();
    let mut o = json::Obj::new();
    o.raw("caches", &json::array(&caches))
        .raw("mem", &level_stats_json(&r.mem))
        .raw("per_region", &json::array(&regions))
        .raw("region_names", &json::array(&names))
        .raw("region_sizes", &json::array(&sizes))
        .raw("region_starts", &json::array(&starts))
        .u64("total_refs", r.total_refs)
        .u64("footprint_bytes", r.footprint_bytes);
    o.finish()
}

fn point_payload(
    fingerprint: &str,
    scale: &Scale,
    res: &EvalResult,
    shards: u64,
    sample: SampleMode,
) -> String {
    let mut o = json::Obj::new();
    o.u64("v", JOURNAL_VERSION)
        .str("fp", fingerprint)
        // provenance only (0 = sequential engine): the decoder ignores it,
        // and it is deliberately NOT part of the sweep fingerprint — both
        // engines journal bit-identical stats, so a resume may freely mix
        // shard counts (asserted by `shard_count_never_gates_resume`)
        .u64("shards", shards)
        // NOT provenance: the sampling mode changes the numbers, so it
        // both joins the fingerprint and gates resume explicitly (a
        // mismatch is a hard refusal, never a silent skip)
        .str("sample", &sample.canon())
        .str("scale", scale.class.name())
        .str("workload", res.workload.name())
        .str("design", &res.design.label())
        .raw("metrics", &metrics_json(&res.metrics))
        .raw("run", &run_json(&res.run));
    match &res.sample_ci {
        None => o.raw("ci", "null"),
        Some(ci) => {
            let mut c = json::Obj::new();
            c.u64("amat_bits", ci.amat.to_bits())
                .u64("time_bits", ci.time.to_bits())
                .u64("energy_bits", ci.energy.to_bits())
                .u64("edp_bits", ci.edp.to_bits());
            o.raw("ci", &c.finish())
        }
    };
    match &res.placement {
        None => o.raw("placement", "null"),
        Some(p) => {
            let items: Vec<String> = p
                .iter()
                .map(|pl| match pl {
                    Placement::Dram => "\"Dram\"".to_string(),
                    Placement::Nvm => "\"Nvm\"".to_string(),
                })
                .collect();
            o.raw("placement", &json::array(&items))
        }
    };
    o.finish()
}

fn failure_payload(
    fingerprint: &str,
    scale: &Scale,
    key: &PointKey,
    message: &str,
    sample: SampleMode,
) -> String {
    let mut o = json::Obj::new();
    o.u64("v", JOURNAL_VERSION)
        .str("fp", fingerprint)
        .str("sample", &sample.canon())
        .str("scale", scale.class.name())
        .str("workload", &key.0)
        .str("design", &key.1)
        .str("failed", message);
    o.finish()
}

/// Wrap a payload in the CRC envelope: `{"crc":"xxxxxxxx","p":<payload>}`.
fn envelope(payload: &str) -> String {
    format!(
        "{{\"crc\":\"{:08x}\",\"p\":{payload}}}\n",
        crc32(payload.as_bytes())
    )
}

// ---------------------------------------------------------------------------
// Decoding — built on the shared minimal JSON reader (`crate::jsontext`),
// which accepts exactly the shapes the writer above emits: anything else
// is corruption by definition.
// ---------------------------------------------------------------------------

fn level_stats_from(v: &JVal) -> Result<LevelStats, String> {
    let o = v.as_obj().ok_or("level stats entry is not an object")?;
    Ok(LevelStats {
        name: get_str(o, "name")?.to_string(),
        loads: get_u64(o, "loads")?,
        stores: get_u64(o, "stores")?,
        load_hits: get_u64(o, "load_hits")?,
        load_misses: get_u64(o, "load_misses")?,
        store_hits: get_u64(o, "store_hits")?,
        store_misses: get_u64(o, "store_misses")?,
        writebacks_out: get_u64(o, "writebacks_out")?,
        fills: get_u64(o, "fills")?,
        bytes_loaded: get_u64(o, "bytes_loaded")?,
        bytes_stored: get_u64(o, "bytes_stored")?,
    })
}

fn run_from(v: &JVal) -> Result<RawRun, String> {
    let o = v.as_obj().ok_or("'run' is not an object")?;
    let caches = get(o, "caches")?
        .as_arr()
        .ok_or("'caches' is not an array")?
        .iter()
        .map(level_stats_from)
        .collect::<Result<Vec<_>, _>>()?;
    let per_region = get(o, "per_region")?
        .as_arr()
        .ok_or("'per_region' is not an array")?
        .iter()
        .map(|t| {
            let to = t.as_obj().ok_or("region traffic entry is not an object")?;
            Ok::<RegionTraffic, String>(RegionTraffic {
                loads: get_u64(to, "loads")?,
                stores: get_u64(to, "stores")?,
                bytes_loaded: get_u64(to, "bytes_loaded")?,
                bytes_stored: get_u64(to, "bytes_stored")?,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let str_arr = |key: &str| -> Result<Vec<String>, String> {
        get(o, key)?
            .as_arr()
            .ok_or_else(|| format!("'{key}' is not an array"))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("'{key}' item is not a string"))
            })
            .collect()
    };
    let u64_arr = |key: &str| -> Result<Vec<u64>, String> {
        get(o, key)?
            .as_arr()
            .ok_or_else(|| format!("'{key}' is not an array"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| format!("'{key}' item is not an integer"))
            })
            .collect()
    };
    Ok(RawRun {
        caches,
        mem: level_stats_from(get(o, "mem")?)?,
        per_region,
        region_names: str_arr("region_names")?,
        region_sizes: u64_arr("region_sizes")?,
        region_starts: u64_arr("region_starts")?,
        total_refs: get_u64(o, "total_refs")?,
        footprint_bytes: get_u64(o, "footprint_bytes")?,
        // the journal persists the extrapolated counters and the derived
        // CI (see `ci` in the payload), not the per-cluster detail
        sample: None,
    })
}

/// A point restored from the journal: everything of an [`EvalResult`]
/// except the [`Design`] value itself (the label is the lookup key; the
/// caller supplies the design it asked for).
#[derive(Debug, Clone)]
pub struct RestoredPoint {
    /// Bit-exact modeled metrics.
    pub metrics: Metrics,
    /// The underlying simulation counters.
    pub run: Arc<RawRun>,
    /// NDM only: the oracle's region placement.
    pub placement: Option<Vec<Placement>>,
    /// Sampled sweeps only: the point's bit-exact confidence intervals.
    pub sample_ci: Option<SampleCi>,
}

/// One decoded journal line: the point key, the restored point (None for
/// failure entries), the line's fingerprint, and the line's sampling
/// mode in canonical form (`"off"` for lines written before sampling
/// existed).
type DecodedLine = (PointKey, Option<RestoredPoint>, String, String);

fn decode_line(line: &str) -> Result<DecodedLine, String> {
    // Envelope: {"crc":"xxxxxxxx","p":<payload>}
    let line = line.trim_end_matches(['\n', '\r']);
    let rest = line
        .strip_prefix("{\"crc\":\"")
        .ok_or("missing crc envelope")?;
    let (crc_hex, rest) = rest.split_at_checked(8).ok_or("truncated crc")?;
    let want = u32::from_str_radix(crc_hex, 16).map_err(|_| "bad crc hex".to_string())?;
    let payload = rest
        .strip_prefix("\",\"p\":")
        .and_then(|r| r.strip_suffix('}'))
        .ok_or("malformed envelope")?;
    if crc32(payload.as_bytes()) != want {
        return Err("crc mismatch".into());
    }
    let v = parse_json(payload)?;
    let o = v.as_obj().ok_or("payload is not an object")?;
    if get_u64(o, "v")? != JOURNAL_VERSION {
        return Err(format!("unsupported journal version {}", get_u64(o, "v")?));
    }
    let fp = get_str(o, "fp")?.to_string();
    let sample = match o.get("sample") {
        Some(v) => v.as_str().ok_or("'sample' is not a string")?.to_string(),
        // journals written before sampling existed are full-fidelity
        None => "off".to_string(),
    };
    let key = (
        get_str(o, "workload")?.to_string(),
        get_str(o, "design")?.to_string(),
    );
    if o.contains_key("failed") {
        // A recorded failure is provenance, not a checkpoint.
        return Ok((key, None, fp, sample));
    }
    let m = get(o, "metrics")?
        .as_obj()
        .ok_or("'metrics' not an object")?;
    let metrics = Metrics {
        amat_ns: f64::from_bits(get_u64(m, "amat_ns_bits")?),
        time_s: f64::from_bits(get_u64(m, "time_s_bits")?),
        dynamic_j: f64::from_bits(get_u64(m, "dynamic_j_bits")?),
        static_j: f64::from_bits(get_u64(m, "static_j_bits")?),
        total_refs: get_u64(m, "total_refs")?,
    };
    let run = Arc::new(run_from(get(o, "run")?)?);
    let sample_ci = match o.get("ci") {
        None | Some(JVal::Null) => None,
        Some(v) => {
            let c = v.as_obj().ok_or("'ci' is neither null nor an object")?;
            Some(SampleCi {
                amat: f64::from_bits(get_u64(c, "amat_bits")?),
                time: f64::from_bits(get_u64(c, "time_bits")?),
                energy: f64::from_bits(get_u64(c, "energy_bits")?),
                edp: f64::from_bits(get_u64(c, "edp_bits")?),
            })
        }
    };
    let placement = match get(o, "placement")? {
        JVal::Null => None,
        JVal::Arr(items) => Some(
            items
                .iter()
                .map(|p| match p.as_str() {
                    Some("Dram") => Ok(Placement::Dram),
                    Some("Nvm") => Ok(Placement::Nvm),
                    _ => Err("bad placement entry".to_string()),
                })
                .collect::<Result<Vec<_>, _>>()?,
        ),
        _ => return Err("'placement' is neither null nor an array".into()),
    };
    Ok((
        key,
        Some(RestoredPoint {
            metrics,
            run,
            placement,
            sample_ci,
        }),
        fp,
        sample,
    ))
}

// ---------------------------------------------------------------------------
// The journal file
// ---------------------------------------------------------------------------

/// Append-only journal writer. Every append is flushed before returning,
/// so a kill after the call cannot lose the point.
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl SweepJournal {
    /// Start a fresh journal at `path`, truncating any existing file.
    pub fn create(path: &Path) -> Result<Self, String> {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create journal {}: {e}", path.display()))?;
        Ok(Self {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// Open `path` for appending (creating it if missing) — the resume path.
    pub fn append_to(path: &Path) -> Result<Self, String> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        Ok(Self {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_line(&self, line: &str) {
        let mut f = self.file.lock().unwrap_or_else(|e| e.into_inner());
        // A failing journal write must not abort the sweep it protects:
        // losing durability is strictly better than losing the run.
        if f.write_all(line.as_bytes())
            .and_then(|()| f.flush())
            .is_err()
        {
            eprintln!("warning: journal append to {} failed", self.path.display());
        }
    }
}

/// What [`load_journal`] recovered.
#[derive(Debug, Default)]
pub struct JournalRecovery {
    /// Validated completed points, keyed by (workload, design label).
    pub points: HashMap<PointKey, RestoredPoint>,
    /// Lines dropped for CRC/format/version damage.
    pub corrupt_lines: usize,
    /// Valid lines dropped because their fingerprint does not match.
    pub mismatched_lines: usize,
    /// Recorded failure entries (informational; never skipped on resume).
    pub failed_entries: usize,
}

/// Read and validate a journal for a full-fidelity resume.
/// See [`load_journal_sampled`].
pub fn load_journal(path: &Path, expected_fp: &str) -> Result<JournalRecovery, String> {
    load_journal_sampled(path, expected_fp, SampleMode::Off)
}

/// Read and validate a journal. A missing file is an empty recovery, not
/// an error — `--resume` on a sweep that never started is a fresh run.
/// Damaged or foreign lines are counted and dropped, never trusted.
///
/// Exception: a *sampling-mode* mismatch on any intact line is a hard
/// error, not a skipped line. Sampled results are extrapolations with
/// error bars; resuming a full-fidelity sweep from them (or burying a
/// full-fidelity journal under sampled points) would silently change
/// what the artifact means. The caller must pick a different output
/// directory or delete the journal, and the error says so.
pub fn load_journal_sampled(
    path: &Path,
    expected_fp: &str,
    expected_sample: SampleMode,
) -> Result<JournalRecovery, String> {
    let mut rec = JournalRecovery::default();
    let expected_canon = expected_sample.canon();
    // Bytes, not a String: a bit flip can make a line invalid UTF-8, and
    // that must drop the damaged line like any other corruption instead of
    // failing the whole recovery.
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(rec),
        Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
    };
    for raw in bytes.split(|b| *b == b'\n') {
        let Ok(line) = std::str::from_utf8(raw) else {
            rec.corrupt_lines += 1;
            continue;
        };
        if line.trim().is_empty() {
            continue;
        }
        match decode_line(line) {
            Err(_) => rec.corrupt_lines += 1,
            Ok((_, _, _, sample)) if sample != expected_canon => {
                let describe = |canon: &str| {
                    if canon == "off" {
                        "a full-fidelity".to_string()
                    } else {
                        format!("an interval-sampled ({canon})")
                    }
                };
                return Err(format!(
                    "journal {} holds points from {} sweep, but this run is {} sweep: \
                     refusing to resume across sampling modes — use a different output \
                     directory or delete the journal to start fresh",
                    path.display(),
                    describe(&sample),
                    describe(&expected_canon),
                ));
            }
            Ok((_, _, fp, _)) if fp != expected_fp => rec.mismatched_lines += 1,
            Ok((_, None, _, _)) => rec.failed_entries += 1,
            Ok((key, Some(point), _, _)) => {
                rec.points.insert(key, point);
            }
        }
    }
    Ok(rec)
}

// ---------------------------------------------------------------------------
// Sweep context: resume map + journal + interrupt flag + obs counters
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct CtxState {
    /// Keys already persisted (restored on resume, or appended this run) —
    /// the journal dedup set: a point evaluated by several figures is
    /// journaled once.
    persisted: HashSet<PointKey>,
    /// Keys whose skip has been counted, so `sweep.points_skipped` means
    /// "distinct points served from the journal", not lookup calls.
    skip_counted: HashSet<PointKey>,
    /// Failed keys already recorded, for the same dedup reason.
    failed: HashSet<PointKey>,
}

/// Shared state of one resumable sweep: the validated resume map, the
/// append journal, the Ctrl-C flag, and the `sweep.*` observability
/// counters. Threaded through [`crate::experiments::ExperimentCtx`] and
/// [`crate::runner::evaluate_grid_sweep`].
#[derive(Debug)]
pub struct SweepCtx {
    scale: Scale,
    fingerprint: String,
    journal: Option<SweepJournal>,
    resumed: HashMap<PointKey, RestoredPoint>,
    interrupt: Option<Arc<AtomicBool>>,
    /// Shard count journaled with each point for provenance (0 =
    /// sequential engine). Never part of the fingerprint: results are
    /// engine-independent, so resume must not refuse on a mismatch.
    shards: u64,
    /// The sweep's sampling mode — part of the fingerprint *and* an
    /// explicit resume gate (unlike `shards`): sampled and full-fidelity
    /// points must never mix.
    sample: SampleMode,
    state: Mutex<CtxState>,
}

impl SweepCtx {
    /// A context with no journal and no resume data (tests, ad-hoc grids):
    /// panic isolation and interrupt draining still work.
    pub fn detached(scale: &Scale) -> Self {
        Self::detached_sampled(scale, SampleMode::Off)
    }

    /// [`SweepCtx::detached`] for a sampled sweep.
    pub fn detached_sampled(scale: &Scale, sample: SampleMode) -> Self {
        Self {
            scale: *scale,
            fingerprint: sweep_fingerprint_sampled(scale, sample),
            journal: None,
            resumed: HashMap::new(),
            interrupt: None,
            shards: 0,
            sample,
            state: Mutex::new(CtxState::default()),
        }
    }

    /// Start a fresh journaled sweep, truncating any journal at `path`.
    pub fn fresh(scale: &Scale, path: &Path) -> Result<Self, String> {
        Self::fresh_sampled(scale, path, SampleMode::Off)
    }

    /// [`SweepCtx::fresh`] for a sampled sweep.
    pub fn fresh_sampled(scale: &Scale, path: &Path, sample: SampleMode) -> Result<Self, String> {
        let mut ctx = Self::detached_sampled(scale, sample);
        ctx.journal = Some(SweepJournal::create(path)?);
        Ok(ctx)
    }

    /// Resume a journaled sweep: load and validate `path`, then append.
    /// Returns the context plus the recovery statistics.
    pub fn resume(scale: &Scale, path: &Path) -> Result<(Self, JournalRecovery), String> {
        Self::resume_sampled(scale, path, SampleMode::Off)
    }

    /// [`SweepCtx::resume`] for a sampled sweep: refuses (does not
    /// silently skip) a journal whose sampling mode differs — see
    /// [`load_journal_sampled`].
    pub fn resume_sampled(
        scale: &Scale,
        path: &Path,
        sample: SampleMode,
    ) -> Result<(Self, JournalRecovery), String> {
        let mut ctx = Self::detached_sampled(scale, sample);
        let rec = load_journal_sampled(path, &ctx.fingerprint, sample)?;
        ctx.journal = Some(SweepJournal::append_to(path)?);
        {
            let mut st = ctx.state.lock().unwrap_or_else(|e| e.into_inner());
            for key in rec.points.keys() {
                st.persisted.insert(key.clone());
            }
        }
        ctx.resumed = rec
            .points
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        Ok((ctx, rec))
    }

    /// Arm graceful-interrupt draining: workers stop claiming new points
    /// once `flag` is set; in-flight points finish and are journaled.
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag);
    }

    /// Record the engine's shard count (0 = sequential) in every journaled
    /// point, as provenance only — see [`crate::runner::Engine`].
    pub fn set_shards(&mut self, shards: u64) {
        self.shards = shards;
    }

    /// Has the interrupt flag been raised?
    pub fn interrupted(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// This sweep's config fingerprint (what journal lines are tagged with).
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Number of distinct points persisted so far (restored + appended).
    pub fn persisted_points(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .persisted
            .len()
    }

    /// Serve a point from the journal if a validated entry exists.
    /// Increments `sweep.points_skipped` the first time each key hits.
    pub fn lookup(&self, kind: WorkloadKind, design: &Design) -> Option<EvalResult> {
        let key = (kind.name().to_string(), design.label());
        let point = self.resumed.get(&key)?;
        {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.skip_counted.insert(key) {
                memsim_obs::global().counter("sweep.points_skipped").inc();
            }
        }
        Some(EvalResult {
            design: *design,
            workload: kind,
            metrics: point.metrics,
            run: Arc::clone(&point.run),
            placement: point.placement.clone(),
            sample_ci: point.sample_ci,
        })
    }

    /// Whether this point has been served from the journal during this run
    /// (i.e. [`SweepCtx::lookup`] hit for it at least once).
    pub fn was_skipped(&self, kind: WorkloadKind, design: &Design) -> bool {
        let key = (kind.name().to_string(), design.label());
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .skip_counted
            .contains(&key)
    }

    /// Journal a completed point (first completion only; later evaluations
    /// of the same point are no-ops). Increments `sweep.points_done`.
    pub fn record(&self, res: &EvalResult) {
        let key = (res.workload.name().to_string(), res.design.label());
        {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if !st.persisted.insert(key) {
                return;
            }
        }
        memsim_obs::global().counter("sweep.points_done").inc();
        if let Some(j) = &self.journal {
            j.write_line(&envelope(&point_payload(
                &self.fingerprint,
                &self.scale,
                res,
                self.shards,
                self.sample,
            )));
        }
    }

    /// Journal a failed point (panic payload or shard error) for
    /// post-mortem provenance. Increments `sweep.points_failed` once per
    /// distinct point. Failure entries are never trusted on resume.
    pub fn record_failure(&self, kind: WorkloadKind, design: &Design, message: &str) {
        let key = (kind.name().to_string(), design.label());
        {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if !st.failed.insert(key.clone()) {
                return;
            }
        }
        memsim_obs::global().counter("sweep.points_failed").inc();
        if let Some(j) = &self.journal {
            j.write_line(&envelope(&failure_payload(
                &self.fingerprint,
                &self.scale,
                &key,
                message,
                self.sample,
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::evaluate;
    use memsim_tech::Technology;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("memsim-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn fingerprint_distinguishes_scales() {
        let mini = sweep_fingerprint(&Scale::mini());
        let demo = sweep_fingerprint(&Scale::demo());
        assert_ne!(mini, demo);
        assert_eq!(mini, sweep_fingerprint(&Scale::mini()));
        assert_eq!(mini.len(), 8);
    }

    #[test]
    fn parser_roundtrips_writer_output() {
        let mut o = json::Obj::new();
        o.str("s", "a\"b\\c\nd")
            .u64("n", u64::MAX)
            .raw("a", "[1,2,3]")
            .raw("z", "null");
        let v = parse_json(&o.finish()).unwrap();
        let m = v.as_obj().unwrap();
        assert_eq!(get_str(m, "s").unwrap(), "a\"b\\c\nd");
        assert_eq!(get_u64(m, "n").unwrap(), u64::MAX);
        assert_eq!(m["a"].as_arr().unwrap().len(), 3);
        assert_eq!(m["z"], JVal::Null);
    }

    #[test]
    fn parser_rejects_floats_and_garbage() {
        assert!(parse_json("{\"x\":1.5}").is_err());
        assert!(parse_json("{\"x\":-3}").is_err());
        assert!(parse_json("{\"x\":1e9}").is_err());
        assert!(parse_json("{\"x\":1}garbage").is_err());
        assert!(parse_json("").is_err());
        assert!(parse_json("{\"x\"").is_err());
    }

    #[test]
    fn point_roundtrips_bit_exactly() {
        let scale = Scale::mini();
        let res = evaluate(
            WorkloadKind::Hash,
            &scale,
            &Design::Ndm {
                nvm: Technology::Pcm,
            },
        );
        let fp = sweep_fingerprint(&scale);
        let line = envelope(&point_payload(&fp, &scale, &res, 3, SampleMode::Off));
        let (key, point, got_fp, got_sample) = decode_line(&line).unwrap();
        assert_eq!(got_fp, fp);
        assert_eq!(got_sample, "off");
        assert_eq!(key.0, "Hash");
        assert_eq!(key.1, res.design.label());
        let point = point.expect("completed point");
        assert_eq!(
            point.metrics.amat_ns.to_bits(),
            res.metrics.amat_ns.to_bits()
        );
        assert_eq!(point.metrics.time_s.to_bits(), res.metrics.time_s.to_bits());
        assert_eq!(point.run.caches, res.run.caches);
        assert_eq!(point.run.mem, res.run.mem);
        assert_eq!(point.run.per_region, res.run.per_region);
        assert_eq!(point.run.region_names, res.run.region_names);
        assert_eq!(point.run.total_refs, res.run.total_refs);
        assert_eq!(point.placement, res.placement);
    }

    #[test]
    fn shard_count_never_gates_resume() {
        // The shard count is provenance, not identity: a point journaled
        // by the sharded engine must decode to the same RestoredPoint as a
        // sequential one, and a resume with a different shard count must
        // accept it (results are engine-independent by the parity tests).
        let scale = Scale::mini();
        let res = evaluate(WorkloadKind::Hash, &scale, &Design::Baseline);
        let fp = sweep_fingerprint(&scale);
        let seq_line = envelope(&point_payload(&fp, &scale, &res, 0, SampleMode::Off));
        let sharded_line = envelope(&point_payload(&fp, &scale, &res, 4, SampleMode::Off));
        let (seq_key, seq_point, seq_fp, _) = decode_line(&seq_line).unwrap();
        let (sh_key, sh_point, sh_fp, _) = decode_line(&sharded_line).unwrap();
        assert_eq!(seq_fp, sh_fp, "fingerprint must not encode the engine");
        assert_eq!(seq_key, sh_key);
        let (seq_point, sh_point) = (seq_point.unwrap(), sh_point.unwrap());
        assert_eq!(seq_point.run.caches, sh_point.run.caches);
        assert_eq!(seq_point.run.mem, sh_point.run.mem);
        assert_eq!(
            seq_point.metrics.time_s.to_bits(),
            sh_point.metrics.time_s.to_bits()
        );

        // end to end: journal under shards=4, resume with the default
        // (sequential) context — the point must be served, not refused
        let path = temp_path("xengine.journal.jsonl");
        {
            let mut ctx = SweepCtx::fresh(&scale, &path).unwrap();
            ctx.set_shards(4);
            ctx.record(&res);
        }
        let (ctx, rec) = SweepCtx::resume(&scale, &path).unwrap();
        assert_eq!(rec.points.len(), 1, "sharded entry refused on resume");
        assert!(ctx.lookup(WorkloadKind::Hash, &Design::Baseline).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_lines_fail_closed() {
        let scale = Scale::mini();
        let res = evaluate(WorkloadKind::Hash, &scale, &Design::Baseline);
        let fp = sweep_fingerprint(&scale);
        let line = envelope(&point_payload(&fp, &scale, &res, 0, SampleMode::Off));

        // truncation at any prefix length must never decode
        for cut in [0, 1, 9, 20, line.len() / 2, line.len() - 2] {
            assert!(decode_line(&line[..cut]).is_err(), "cut at {cut} decoded");
        }
        // a flipped payload byte must fail the CRC
        let mut bytes = line.clone().into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        if let Ok(flipped) = String::from_utf8(bytes) {
            assert!(decode_line(&flipped).is_err(), "bit flip decoded");
        }
    }

    #[test]
    fn journal_load_skips_damage_and_foreign_fingerprints() {
        let scale = Scale::mini();
        let path = temp_path("load.journal.jsonl");
        let ctx = SweepCtx::fresh(&scale, &path).unwrap();
        let good = evaluate(WorkloadKind::Hash, &scale, &Design::Baseline);
        ctx.record(&good);
        ctx.record_failure(
            WorkloadKind::Cg,
            &Design::Ndm {
                nvm: Technology::Pcm,
            },
            "injected",
        );
        // hand-append damage: a truncated line and a foreign fingerprint
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(f, "{{\"crc\":\"00000000\",\"p\":{{garbage").unwrap();
            let foreign = envelope(&point_payload(
                "ffffffff",
                &scale,
                &good,
                0,
                SampleMode::Off,
            ));
            f.write_all(foreign.as_bytes()).unwrap();
        }
        let rec = load_journal(&path, &sweep_fingerprint(&scale)).unwrap();
        assert_eq!(rec.points.len(), 1);
        assert_eq!(rec.corrupt_lines, 1);
        assert_eq!(rec.mismatched_lines, 1);
        assert_eq!(rec.failed_entries, 1);
        assert!(rec
            .points
            .contains_key(&("Hash".to_string(), "Baseline".to_string())));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_serves_points_and_dedups_appends() {
        let scale = Scale::mini();
        let path = temp_path("resume.journal.jsonl");
        let res = evaluate(WorkloadKind::Hash, &scale, &Design::Baseline);
        {
            let ctx = SweepCtx::fresh(&scale, &path).unwrap();
            ctx.record(&res);
            ctx.record(&res); // dedup: second append is a no-op
        }
        let lines = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(lines, 1);

        let (ctx, rec) = SweepCtx::resume(&scale, &path).unwrap();
        assert_eq!(rec.points.len(), 1);
        let restored = ctx
            .lookup(WorkloadKind::Hash, &Design::Baseline)
            .expect("journaled point must resolve");
        assert_eq!(
            restored.metrics.time_s.to_bits(),
            res.metrics.time_s.to_bits()
        );
        assert!(ctx.lookup(WorkloadKind::Cg, &Design::Baseline).is_none());
        // recording the restored point again must not grow the file
        ctx.record(&restored);
        let lines2 = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(lines2, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sampling_mode_gates_resume_both_directions() {
        use crate::sampling::SampleSpec;
        let scale = Scale::mini();
        let spec = SampleMode::On(SampleSpec::default());

        // distinct fingerprints per mode (and per parameters)
        let off = sweep_fingerprint(&scale);
        let on = sweep_fingerprint_sampled(&scale, spec);
        assert_ne!(off, on);
        let other = SampleMode::parse("interval=2m,clusters=4").unwrap();
        assert_ne!(on, sweep_fingerprint_sampled(&scale, other));

        // a full-fidelity journal must refuse a sampled resume...
        let path = temp_path("xsample-full.journal.jsonl");
        {
            let ctx = SweepCtx::fresh(&scale, &path).unwrap();
            ctx.record(&evaluate(WorkloadKind::Hash, &scale, &Design::Baseline));
        }
        let err = SweepCtx::resume_sampled(&scale, &path, spec).unwrap_err();
        assert!(err.contains("full-fidelity"), "{err}");
        assert!(err.contains("interval-sampled"), "{err}");
        assert!(err.contains("refusing"), "{err}");

        // ...and a sampled journal must refuse a full-fidelity resume,
        // even when the sampled side only recorded a failure
        let path2 = temp_path("xsample-sampled.journal.jsonl");
        {
            let ctx = SweepCtx::fresh_sampled(&scale, &path2, spec).unwrap();
            ctx.record_failure(WorkloadKind::Hash, &Design::Baseline, "injected");
        }
        let err2 = SweepCtx::resume(&scale, &path2).unwrap_err();
        assert!(err2.contains("refusing"), "{err2}");

        // same mode resumes fine
        let (_, rec) = SweepCtx::resume_sampled(&scale, &path2, spec).unwrap();
        assert_eq!(rec.failed_entries, 1);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn missing_journal_is_empty_recovery() {
        let rec = load_journal(Path::new("/nonexistent/never.jsonl"), "00000000").unwrap();
        assert!(rec.points.is_empty());
        assert_eq!(rec.corrupt_lines, 0);
    }
}
