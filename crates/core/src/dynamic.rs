//! Dynamic (phase-aware) DRAM/NVM partitioning — the paper's stated
//! future work: "Further investigation should explore dynamic
//! partitioning, that may change between computation phases".
//!
//! The static NDM oracle picks one placement for the whole run; here the
//! run is split into epochs (fixed counts of memory requests) and an exact
//! dynamic program chooses a placement *per epoch*, paying an explicit
//! migration cost (read the region from the old device + write it to the
//! new one) at every change. Placement only affects the memory level, so
//! the DP optimizes memory-level energy and adds the placement-independent
//! cache costs afterwards.

use crate::configs::NDM_DRAM_BYTES;
use crate::design::{represented_footprint, sram_costs};
use crate::model::Metrics;
use crate::partition::{merge_into_ranges, Placement};
use crate::runner::RawRun;
use crate::scale::Scale;
use memsim_cache::{Cache, CacheConfig, Hierarchy, LevelStats};
use memsim_memory::{EpochProfiler, RegionTraffic};
use memsim_tech::{TechParams, Technology};
use memsim_workloads::WorkloadKind;

/// An epoch-resolved simulation of a workload (three-level structure).
#[derive(Debug, Clone)]
pub struct EpochRun {
    /// The aggregate run view (cache stats, regions, totals).
    pub run: RawRun,
    /// `epochs[e][r]` = memory traffic of region `r` during epoch `e`.
    pub epochs: Vec<Vec<RegionTraffic>>,
}

/// Simulate `kind` through L1–L3 with an epoch-profiling terminal.
pub fn simulate_epochs(kind: WorkloadKind, scale: &Scale, epoch_requests: u64) -> EpochRun {
    let mut workload = kind.build(scale.class);
    let caches = vec![
        Cache::new(CacheConfig::new(
            "L1",
            scale.l1_bytes,
            scale.line_bytes,
            scale.l1_ways,
        )),
        Cache::new(CacheConfig::new(
            "L2",
            scale.l2_bytes,
            scale.line_bytes,
            scale.l2_ways,
        )),
        Cache::new(CacheConfig::new(
            "L3",
            scale.l3_bytes,
            scale.line_bytes,
            scale.l3_ways,
        )),
    ];
    let regions = workload.space().regions().to_vec();
    let mut hierarchy = Hierarchy::new(caches, EpochProfiler::new(&regions, epoch_requests));
    workload.run(&mut hierarchy);
    hierarchy.drain();
    workload
        .verify()
        .unwrap_or_else(|e| panic!("{} failed self-verification: {e}", workload.name()));

    let total_refs = hierarchy.total_refs();
    let cache_stats: Vec<LevelStats> = hierarchy.levels().iter().map(|c| c.stats()).collect();
    let profiler = hierarchy.into_memory();
    let epochs = profiler.epochs().to_vec();
    let per_region = profiler.aggregate();

    let mut mem = LevelStats::new("MEM");
    for t in &per_region {
        mem.loads += t.loads;
        mem.stores += t.stores;
        mem.bytes_loaded += t.bytes_loaded;
        mem.bytes_stored += t.bytes_stored;
    }

    let run = RawRun {
        caches: cache_stats,
        mem,
        per_region,
        region_names: regions.iter().map(|r| r.name.clone()).collect(),
        region_sizes: regions.iter().map(|r| r.len).collect(),
        region_starts: regions.iter().map(|r| r.start).collect(),
        total_refs,
        footprint_bytes: regions.iter().map(|r| r.len).sum(),
        sample: None,
    };
    EpochRun { run, epochs }
}

/// Memory-level time (ns) and dynamic energy (pJ) of one epoch's traffic
/// under a group placement mask (bit set = group in DRAM).
fn epoch_mem_cost(
    epoch: &[RegionTraffic],
    group_of: &[usize],
    mask: u32,
    dram: &TechParams,
    nvm: &TechParams,
) -> (f64, f64) {
    let mut ns = 0.0;
    let mut pj = 0.0;
    for (r, t) in epoch.iter().enumerate() {
        let p = if mask & (1 << group_of[r]) != 0 {
            dram
        } else {
            nvm
        };
        ns += p.read_ns * t.loads as f64 + p.write_ns * t.stores as f64;
        pj += p.read_pj_per_bit * t.bytes_loaded as f64 * 8.0
            + p.write_pj_per_bit * t.bytes_stored as f64 * 8.0;
    }
    (ns, pj)
}

/// Cost of migrating the regions whose group placement changed between
/// `from` and `to` (in ns and pJ): each moved byte is read from the old
/// device and written to the new one, in 4 KiB transfer units.
fn migration_cost(
    groups_bytes: &[u64],
    from: u32,
    to: u32,
    dram: &TechParams,
    nvm: &TechParams,
) -> (f64, f64) {
    const UNIT: f64 = 4096.0;
    let mut ns = 0.0;
    let mut pj = 0.0;
    let changed = from ^ to;
    for (g, &bytes) in groups_bytes.iter().enumerate() {
        if changed & (1 << g) == 0 {
            continue;
        }
        let to_dram = to & (1 << g) != 0;
        let (src, dst) = if to_dram { (nvm, dram) } else { (dram, nvm) };
        let units = (bytes as f64 / UNIT).ceil();
        ns += units * (src.read_ns + dst.write_ns);
        pj += bytes as f64 * 8.0 * (src.read_pj_per_bit + dst.write_pj_per_bit);
    }
    (ns, pj)
}

/// The dynamic oracle's schedule.
#[derive(Debug, Clone)]
pub struct DynamicChoice {
    /// Group placement mask per epoch (bit set = group in DRAM).
    pub schedule: Vec<u32>,
    /// Number of epochs whose placement differs from the previous one.
    pub migrations: usize,
    /// Full-run metrics including migration costs.
    pub metrics: Metrics,
    /// The merged-range group of each region.
    pub group_of: Vec<usize>,
    /// Bytes per group.
    pub group_bytes: Vec<u64>,
}

/// Choose a per-epoch placement schedule minimizing total energy (memory
/// dynamic + migration + static over the resulting runtime), by exact DP
/// over `2^groups` states per epoch.
pub fn dynamic_oracle(
    epoch_run: &EpochRun,
    nvm_tech: Technology,
    scale: &Scale,
    max_groups: usize,
) -> DynamicChoice {
    let run = &epoch_run.run;
    let groups = merge_into_ranges(run, max_groups);
    let mut group_of = vec![0usize; run.per_region.len()];
    for (g, gr) in groups.iter().enumerate() {
        for &r in &gr.regions {
            group_of[r] = g;
        }
    }
    let group_bytes: Vec<u64> = groups.iter().map(|g| g.bytes).collect();
    let n_states = 1u32 << groups.len();
    let dram = TechParams::of(Technology::Dram);
    let nvm = TechParams::of(nvm_tech);
    let budget = crate::partition::ndm_dram_budget(scale, run.footprint_bytes);

    let feasible: Vec<bool> = (0..n_states)
        .map(|m| {
            let bytes: u64 = group_bytes
                .iter()
                .enumerate()
                .filter(|(g, _)| m & (1 << *g) != 0)
                .map(|(_, b)| *b)
                .sum();
            bytes <= budget
        })
        .collect();

    // DP over epochs: cost = weighted ns+pj objective. Energy is the
    // optimization target; runtime is carried along for reporting. To keep
    // a single scalar objective we minimize energy (pJ) + static power ×
    // time contribution of the memory level — static power is placement-
    // independent here (provisioned DRAM device), so energy ordering is
    // dominated by (dynamic pJ, migration pJ); ties broken by ns.
    let n_epochs = epoch_run.epochs.len().max(1);
    let big = f64::INFINITY;
    let mut cost = vec![vec![big; n_states as usize]; n_epochs];
    let mut time = vec![vec![0.0f64; n_states as usize]; n_epochs];
    let mut prev = vec![vec![u32::MAX; n_states as usize]; n_epochs];

    for s in 0..n_states {
        if !feasible[s as usize] {
            continue;
        }
        let (ns, pj) = epoch_mem_cost(&epoch_run.epochs[0], &group_of, s, &dram, &nvm);
        cost[0][s as usize] = pj;
        time[0][s as usize] = ns;
    }
    for e in 1..n_epochs {
        for s in 0..n_states {
            if !feasible[s as usize] {
                continue;
            }
            let (ns_e, pj_e) = epoch_mem_cost(&epoch_run.epochs[e], &group_of, s, &dram, &nvm);
            for p in 0..n_states {
                if cost[e - 1][p as usize].is_infinite() {
                    continue;
                }
                let (ns_m, pj_m) = migration_cost(&group_bytes, p, s, &dram, &nvm);
                let c = cost[e - 1][p as usize] + pj_e + pj_m;
                if c < cost[e][s as usize] {
                    cost[e][s as usize] = c;
                    time[e][s as usize] = time[e - 1][p as usize] + ns_e + ns_m;
                    prev[e][s as usize] = p;
                }
            }
        }
    }

    // backtrack the cheapest final state
    let (mut best_state, _) = cost[n_epochs - 1]
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, c)| (i as u32, *c))
        .expect("at least the all-NVM state is feasible");
    let mut schedule = vec![0u32; n_epochs];
    for e in (0..n_epochs).rev() {
        schedule[e] = best_state;
        if e > 0 {
            best_state = prev[e][best_state as usize];
        }
    }
    let migrations = schedule.windows(2).filter(|w| w[0] != w[1]).count();

    // assemble full metrics: caches + memory-level DP result + static
    let mem_pj = cost[n_epochs - 1][schedule[n_epochs - 1] as usize];
    let mem_ns = time[n_epochs - 1][schedule[n_epochs - 1] as usize];
    let cache_costs = sram_costs(scale);
    let mut total_ns = mem_ns;
    let mut dyn_pj = mem_pj;
    let mut static_w = 0.0;
    for (stats, c) in run.caches.iter().zip(cache_costs.iter()) {
        total_ns += c.time_ns(stats);
        dyn_pj += c.dynamic_pj(stats);
        static_w += c.static_w;
    }
    let dram_device = NDM_DRAM_BYTES
        .min(represented_footprint(scale, run.footprint_bytes) / 2)
        .max(1);
    static_w += TechParams::of(Technology::Dram).static_watts(dram_device);
    let time_s = total_ns * 1e-9;
    let metrics = Metrics {
        amat_ns: total_ns / run.total_refs as f64,
        time_s,
        dynamic_j: dyn_pj * 1e-12,
        static_j: time_s * static_w,
        total_refs: run.total_refs,
    };

    DynamicChoice {
        schedule,
        migrations,
        metrics,
        group_of,
        group_bytes,
    }
}

/// Static-equivalent baseline through the same costing path: the best
/// single placement held for the whole run (used to quantify the benefit
/// of adapting between phases).
pub fn best_static_schedule(
    epoch_run: &EpochRun,
    nvm_tech: Technology,
    scale: &Scale,
    max_groups: usize,
) -> DynamicChoice {
    // reuse the DP with an infinite migration cost by evaluating each
    // constant schedule directly
    let run = &epoch_run.run;
    let groups = merge_into_ranges(run, max_groups);
    let mut group_of = vec![0usize; run.per_region.len()];
    for (g, gr) in groups.iter().enumerate() {
        for &r in &gr.regions {
            group_of[r] = g;
        }
    }
    let group_bytes: Vec<u64> = groups.iter().map(|g| g.bytes).collect();
    let n_states = 1u32 << groups.len();
    let dram = TechParams::of(Technology::Dram);
    let nvm = TechParams::of(nvm_tech);
    let budget = crate::partition::ndm_dram_budget(scale, run.footprint_bytes);

    let mut best: Option<(f64, f64, u32)> = None;
    for s in 0..n_states {
        let bytes: u64 = group_bytes
            .iter()
            .enumerate()
            .filter(|(g, _)| s & (1 << *g) != 0)
            .map(|(_, b)| *b)
            .sum();
        if bytes > budget {
            continue;
        }
        let mut pj = 0.0;
        let mut ns = 0.0;
        for epoch in &epoch_run.epochs {
            let (e_ns, e_pj) = epoch_mem_cost(epoch, &group_of, s, &dram, &nvm);
            ns += e_ns;
            pj += e_pj;
        }
        if best.map(|(b, ..)| pj < b).unwrap_or(true) {
            best = Some((pj, ns, s));
        }
    }
    let (mem_pj, mem_ns, state) = best.expect("all-NVM is feasible");

    let cache_costs = sram_costs(scale);
    let mut total_ns = mem_ns;
    let mut dyn_pj = mem_pj;
    let mut static_w = 0.0;
    for (stats, c) in run.caches.iter().zip(cache_costs.iter()) {
        total_ns += c.time_ns(stats);
        dyn_pj += c.dynamic_pj(stats);
        static_w += c.static_w;
    }
    let dram_device = NDM_DRAM_BYTES
        .min(represented_footprint(scale, run.footprint_bytes) / 2)
        .max(1);
    static_w += TechParams::of(Technology::Dram).static_watts(dram_device);
    let time_s = total_ns * 1e-9;
    DynamicChoice {
        schedule: vec![state; epoch_run.epochs.len().max(1)],
        migrations: 0,
        metrics: Metrics {
            amat_ns: total_ns / run.total_refs as f64,
            time_s,
            dynamic_j: dyn_pj * 1e-12,
            static_j: time_s * static_w,
            total_refs: run.total_refs,
        },
        group_of,
        group_bytes,
    }
}

/// Placement of each region in a given epoch of a schedule.
pub fn placements_at(choice: &DynamicChoice, epoch: usize) -> Vec<Placement> {
    let mask = choice.schedule[epoch.min(choice.schedule.len() - 1)];
    choice
        .group_of
        .iter()
        .map(|&g| {
            if mask & (1 << g) != 0 {
                Placement::Dram
            } else {
                Placement::Nvm
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch_run() -> EpochRun {
        simulate_epochs(WorkloadKind::Cg, &Scale::mini(), 20_000)
    }

    #[test]
    fn epoch_run_conserves_aggregate() {
        let er = epoch_run();
        let total_mem: u64 = er
            .epochs
            .iter()
            .flat_map(|row| row.iter())
            .map(|t| t.loads + t.stores)
            .sum();
        assert_eq!(total_mem, er.run.mem.loads + er.run.mem.stores);
        assert!(er.epochs.len() > 1, "expected multiple epochs");
    }

    #[test]
    fn dynamic_never_loses_to_static() {
        let er = epoch_run();
        let scale = Scale::mini();
        let dynamic = dynamic_oracle(&er, Technology::Pcm, &scale, 3);
        let static_ = best_static_schedule(&er, Technology::Pcm, &scale, 3);
        // a constant schedule is always available to the DP (migration
        // cost 0 along it), so the dynamic optimum can only be ≤
        assert!(
            dynamic.metrics.dynamic_j <= static_.metrics.dynamic_j + 1e-15,
            "dynamic {} > static {}",
            dynamic.metrics.dynamic_j,
            static_.metrics.dynamic_j
        );
        assert_eq!(static_.migrations, 0);
        assert_eq!(dynamic.schedule.len(), er.epochs.len());
    }

    #[test]
    fn schedule_respects_budget() {
        let er = epoch_run();
        let scale = Scale::mini();
        let choice = dynamic_oracle(&er, Technology::SttRam, &scale, 3);
        let budget = crate::partition::ndm_dram_budget(&scale, er.run.footprint_bytes);
        for (e, &mask) in choice.schedule.iter().enumerate() {
            let bytes: u64 = choice
                .group_bytes
                .iter()
                .enumerate()
                .filter(|(g, _)| mask & (1 << *g) != 0)
                .map(|(_, b)| *b)
                .sum();
            assert!(bytes <= budget, "epoch {e} over budget");
        }
    }

    #[test]
    fn migration_cost_is_zero_for_identical_masks() {
        let dram = TechParams::of(Technology::Dram);
        let nvm = TechParams::of(Technology::Pcm);
        let (ns, pj) = migration_cost(&[1 << 20, 1 << 21], 0b01, 0b01, &dram, &nvm);
        assert_eq!((ns, pj), (0.0, 0.0));
        let (ns2, pj2) = migration_cost(&[1 << 20, 1 << 21], 0b01, 0b10, &dram, &nvm);
        assert!(ns2 > 0.0 && pj2 > 0.0);
    }

    #[test]
    fn placements_at_translates_masks() {
        let er = epoch_run();
        let choice = dynamic_oracle(&er, Technology::Pcm, &Scale::mini(), 2);
        let p0 = placements_at(&choice, 0);
        assert_eq!(p0.len(), er.run.per_region.len());
    }

    #[test]
    fn synthetic_phase_shift_triggers_migration() {
        // hand-build an epoch run with two groups whose hotness swaps
        use memsim_cache::LevelStats;
        let hot = RegionTraffic {
            loads: 1_000_000,
            stores: 100_000,
            bytes_loaded: 64_000_000,
            bytes_stored: 6_400_000,
        };
        let cold = RegionTraffic {
            loads: 10,
            stores: 1,
            bytes_loaded: 640,
            bytes_stored: 64,
        };
        let run = RawRun {
            caches: vec![
                LevelStats::new("L1"),
                LevelStats::new("L2"),
                LevelStats::new("L3"),
            ],
            mem: LevelStats::new("MEM"),
            per_region: vec![hot, cold],
            region_names: vec!["a".into(), "b".into()],
            region_sizes: vec![4 << 20, 4 << 20],
            region_starts: vec![0x1000_0000, 0x2000_0000],
            total_refs: 10_000_000,
            footprint_bytes: 8 << 20,
            sample: None,
        };
        // epoch 0: region a hot; epoch 1: region b hot — repeated so the
        // migration amortizes
        let e0 = vec![hot, cold];
        let e1 = vec![cold, hot];
        let er = EpochRun {
            run,
            epochs: vec![e0.clone(), e0, e1.clone(), e1],
        };
        let scale = Scale::mini();
        let choice = dynamic_oracle(&er, Technology::Pcm, &scale, 2);
        // budget at mini = min(8 MiB, footprint/2 = 4 MiB): one group fits
        assert!(
            choice.migrations >= 1,
            "oracle should follow the phase shift"
        );
        let static_ = best_static_schedule(&er, Technology::Pcm, &scale, 2);
        assert!(choice.metrics.dynamic_j < static_.metrics.dynamic_j);
    }
}
