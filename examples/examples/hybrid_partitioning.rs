//! Hybrid DRAM+NVM partitioning: the NDM oracle, step by step.
//!
//! Simulates CG once, shows the per-region main-memory traffic profile,
//! merges the regions into contiguous address ranges (as the paper does),
//! evaluates every feasible range placement analytically, and prints the
//! oracle's choice.
//!
//! ```text
//! cargo run --release -p memsim-examples --example hybrid_partitioning
//! ```

use memsim_core::partition::{
    cost_placement, merge_into_ranges, ndm_dram_budget, oracle, Placement,
};
use memsim_core::runner::evaluate;
use memsim_core::{simulate_structure, Design, Scale, Structure};
use memsim_examples::{human_bytes, pct};
use memsim_tech::Technology;
use memsim_workloads::WorkloadKind;

fn main() {
    let scale = Scale::mini();
    let workload = WorkloadKind::Cg;
    let nvm = Technology::Pcm;

    println!(
        "profiling {} main-memory traffic per data region ...\n",
        workload.name()
    );
    let run = simulate_structure(workload, &scale, &Structure::ThreeLevel);

    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10}",
        "region", "bytes", "mem loads", "mem stores", "refs/KiB"
    );
    for i in 0..run.region_names.len() {
        let t = &run.per_region[i];
        let density = (t.loads + t.stores) as f64 / (run.region_sizes[i].max(1) as f64 / 1024.0);
        println!(
            "{:<12} {:>10} {:>12} {:>12} {:>10.2}",
            run.region_names[i],
            human_bytes(run.region_sizes[i]),
            t.loads,
            t.stores,
            density,
        );
    }

    let groups = merge_into_ranges(&run, 3);
    println!(
        "\nmerged into {} contiguous address ranges (paper: 'typically 2 or 3'):",
        groups.len()
    );
    for (g, group) in groups.iter().enumerate() {
        let names: Vec<&str> = group
            .regions
            .iter()
            .map(|&i| run.region_names[i].as_str())
            .collect();
        println!(
            "  range {}: {} ({} refs) = {}",
            g,
            human_bytes(group.bytes),
            group.refs,
            names.join(" + ")
        );
    }

    let budget = ndm_dram_budget(&scale, run.footprint_bytes);
    println!(
        "\nDRAM partition budget at this scale: {}",
        human_bytes(budget)
    );

    // enumerate the placements the oracle considers
    println!(
        "\n{:<24} {:>10} {:>12} {:>12}",
        "placement (DRAM ranges)", "dram", "energy (mJ)", "EDP (µJ·s)"
    );
    for mask in 0u32..(1 << groups.len()) {
        let mut placement = vec![Placement::Nvm; run.per_region.len()];
        let mut dram_bytes = 0u64;
        let mut label = Vec::new();
        for (g, group) in groups.iter().enumerate() {
            if mask & (1 << g) != 0 {
                dram_bytes += group.bytes;
                label.push(g.to_string());
                for &r in &group.regions {
                    placement[r] = Placement::Dram;
                }
            }
        }
        let feasible = dram_bytes <= budget;
        let m = cost_placement(&run, &placement, nvm, &scale);
        println!(
            "{:<24} {:>10} {:>12.3} {:>12.4}{}",
            if label.is_empty() {
                "(all NVM)".to_string()
            } else {
                format!("{{{}}}", label.join(","))
            },
            human_bytes(dram_bytes),
            m.energy_j() * 1e3,
            m.edp() * 1e6,
            if feasible { "" } else { "  (over budget)" },
        );
    }

    let choice = oracle(&run, nvm, &scale);
    let base = evaluate(workload, &scale, &Design::Baseline);
    let norm = choice.metrics.normalized_to(&base.metrics);
    println!(
        "\noracle choice: {} in DRAM, {} in {} — runtime {}, energy {} vs baseline",
        human_bytes(choice.dram_bytes),
        human_bytes(choice.nvm_bytes),
        nvm.name(),
        pct(norm.time),
        pct(norm.energy),
    );
    println!("(the paper reports ~25% average runtime overhead with ~42% energy savings");
    println!(" for static-energy-dominated workloads at full 0.8-4 GB footprints)");
}
