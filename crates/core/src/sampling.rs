//! Interval-sampled simulation with error bounds.
//!
//! A full run walks every reference of the workload through the
//! hierarchy. This module trades a bounded, *reported* error for a large
//! speedup, SimPoint-style: split the recorded stream into fixed-size
//! intervals, fingerprint each with a locality signature
//! ([`memsim_trace::SignatureBuilder`] — normalized Olken stack-distance
//! histogram plus cold/store fractions), k-means-cluster the signatures,
//! simulate **one representative interval per cluster**, and extrapolate
//! every [`LevelStats`] counter weighted by cluster population. Because
//! each cluster contributes an independent estimate, the spread across
//! clusters yields per-metric confidence intervals ([`SampleCi`]).
//!
//! Two warmup policies handle the state a representative inherits from
//! the stream it never saw:
//!
//! * [`Warmup::Functional`] (default): one shared hierarchy walks the
//!   file once; each representative is preceded by a one-interval warm
//!   window fed without being measured, and the representative's
//!   contribution is the *delta* between snapshots at its boundaries.
//!   With `clusters >= intervals` every interval is its own
//!   representative, the windows tile the whole stream, and the deltas
//!   telescope to the exact full-run counters — sampled and full runs
//!   agree bit-for-bit (pinned by tests).
//! * [`Warmup::Cold`]: each representative starts from an empty
//!   hierarchy and is drained afterwards. Cheaper and embarrassingly
//!   independent, but cold misses and the final writeback flush are
//!   charged to every cluster (a documented bias), so `Functional` is
//!   the default.
//!
//! The sampled path is trace-backed: live entry points record the
//! workload's stream once (per process, shared across all structures)
//! and replay windows of it. The interval plan is itself built with a
//! cheap pass that decodes only a strided subset of chunks for the
//! signatures and *skips* the rest without decoding
//! ([`memsim_tracefile::TraceReader::next_chunk_where`]) — the plan
//! costs far less than one full decode.

use crate::design::{Structure, MEM_NAME};
use crate::model::{LevelCost, Metrics};
use crate::runner::{build_caches, RawRun};
use crate::scale::Scale;
use memsim_cache::{Hierarchy, LevelStats};
use memsim_memory::{PartitionedMemory, RegionTraffic};
use memsim_tech::Technology;
use memsim_trace::{SignatureBuilder, TraceSink, SIGNATURE_DIMS};
use memsim_tracefile::{ChunkStep, TraceError, TraceReader, TRACE_CHUNK_EVENTS};
use memsim_workloads::{Class, WorkloadKind};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// How a representative interval's inherited cache state is handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Warmup {
    /// One shared hierarchy, a one-interval warm window before each
    /// representative, contributions measured as snapshot deltas.
    /// Exact (bit-for-bit) when every interval is its own cluster.
    #[default]
    Functional,
    /// A fresh hierarchy per representative, drained afterwards; cold
    /// misses and the writeback flush are charged to every cluster.
    Cold,
}

impl Warmup {
    fn name(self) -> &'static str {
        match self {
            Warmup::Functional => "functional",
            Warmup::Cold => "cold",
        }
    }
}

/// The parameters of a sampled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SampleSpec {
    /// Events per interval.
    pub interval: u64,
    /// Number of k-means clusters over the full intervals (a partial
    /// tail interval always forms its own extra cluster).
    pub clusters: usize,
    /// Warmup policy for representative intervals.
    pub warmup: Warmup,
}

impl Default for SampleSpec {
    fn default() -> Self {
        Self {
            interval: 1_000_000,
            clusters: 8,
            warmup: Warmup::Functional,
        }
    }
}

/// Whether (and how) a run is sampled. The canonical string form
/// ([`SampleMode::canon`]) is what flows through CLI flags, job specs,
/// and the sweep journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SampleMode {
    /// Full-fidelity simulation.
    #[default]
    Off,
    /// Interval-sampled simulation with these parameters.
    On(SampleSpec),
}

impl SampleMode {
    /// Whether sampling is on.
    pub fn is_on(&self) -> bool {
        matches!(self, SampleMode::On(_))
    }

    /// Parse `"off"`, `"on"` (all defaults), or a comma-separated
    /// `interval=N,clusters=K,warmup=functional|cold` list (each key
    /// optional; `N` accepts `k`/`m` suffixes).
    pub fn parse(s: &str) -> Result<SampleMode, String> {
        let s = s.trim();
        match s {
            "off" => return Ok(SampleMode::Off),
            "on" => return Ok(SampleMode::On(SampleSpec::default())),
            _ => {}
        }
        let mut spec = SampleSpec::default();
        for part in s.split(',') {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("--sample: expected key=value, got '{part}'"))?;
            let v = v.trim();
            match k.trim() {
                "interval" => {
                    spec.interval = parse_count(v)?;
                    if spec.interval == 0 {
                        return Err("--sample: interval must be positive".into());
                    }
                }
                "clusters" => {
                    spec.clusters = v
                        .parse()
                        .map_err(|_| format!("--sample: bad cluster count '{v}'"))?;
                    if spec.clusters == 0 {
                        return Err("--sample: clusters must be positive".into());
                    }
                }
                "warmup" => {
                    spec.warmup = match v {
                        "functional" => Warmup::Functional,
                        "cold" => Warmup::Cold,
                        other => {
                            return Err(format!(
                                "--sample: unknown warmup '{other}' (functional|cold)"
                            ))
                        }
                    };
                }
                other => {
                    return Err(format!(
                        "--sample: unknown key '{other}' (interval=, clusters=, warmup=)"
                    ))
                }
            }
        }
        Ok(SampleMode::On(spec))
    }

    /// The canonical string form; `parse(canon())` round-trips.
    pub fn canon(&self) -> String {
        match self {
            SampleMode::Off => "off".to_string(),
            SampleMode::On(s) => format!(
                "interval={},clusters={},warmup={}",
                s.interval,
                s.clusters,
                s.warmup.name()
            ),
        }
    }
}

impl std::fmt::Display for SampleMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canon())
    }
}

fn parse_count(v: &str) -> Result<u64, String> {
    let lower = v.to_ascii_lowercase();
    let (digits, mult) = match lower.strip_suffix(['k', 'm']) {
        Some(d) if lower.ends_with('k') => (d, 1_000u64),
        Some(d) => (d, 1_000_000u64),
        None => (lower.as_str(), 1),
    };
    digits
        .parse::<u64>()
        .map(|n| n * mult)
        .map_err(|_| format!("--sample: bad count '{v}'"))
}

/// One cluster of similar intervals in a [`SamplePlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleCluster {
    /// The interval simulated on the cluster's behalf.
    pub representative: u64,
    /// Member count — the extrapolation weight.
    pub weight: u64,
    /// Member interval indices, ascending.
    pub members: Vec<u64>,
}

/// The clustering of one trace at one [`SampleSpec`]: which intervals
/// exist, and which representative stands in for which population.
/// Structure- and scale-independent, so one plan serves the whole
/// design grid (memoized per `(trace, spec)` by [`plan_for`]).
#[derive(Debug, Clone)]
pub struct SamplePlan {
    /// The spec the plan was built under.
    pub spec: SampleSpec,
    /// Events in the trace.
    pub total_events: u64,
    /// Number of intervals (`ceil(total_events / interval)`).
    pub intervals: u64,
    /// The clusters; representatives are distinct intervals.
    pub clusters: Vec<SampleCluster>,
}

impl SamplePlan {
    /// Event-index bounds `[start, end)` of interval `i`.
    pub fn interval_bounds(&self, i: u64) -> (u64, u64) {
        let start = i * self.spec.interval;
        let end = ((i + 1) * self.spec.interval).min(self.total_events);
        (start, end)
    }

    /// Events simulated by a [`Warmup::Functional`] pass (warm windows
    /// included), for speedup estimates.
    pub fn simulated_events(&self) -> u64 {
        self.functional_segments().iter().map(|(a, b)| b - a).sum()
    }

    /// The disjoint, ascending event ranges a Functional pass feeds:
    /// each representative preceded by a one-interval warm window,
    /// overlaps merged.
    fn functional_segments(&self) -> Vec<(u64, u64)> {
        let mut reps: Vec<u64> = self.clusters.iter().map(|c| c.representative).collect();
        reps.sort_unstable();
        let mut segments: Vec<(u64, u64)> = Vec::new();
        for r in reps {
            let (rs, re) = self.interval_bounds(r);
            let ws = rs.saturating_sub(self.spec.interval);
            match segments.last_mut() {
                Some(last) if ws <= last.1 => last.1 = last.1.max(re),
                _ => segments.push((ws, re)),
            }
        }
        segments
    }
}

/// Build the interval plan for the trace at `path`.
///
/// One pass over the file: a strided subset of each interval's chunks is
/// decoded into that interval's [`SignatureBuilder`] (decoded chunks
/// straddling an interval boundary are split at it); all other chunks
/// are skipped without decoding. Full intervals are k-means-clustered on
/// their signatures with deterministic seeding; a partial tail interval
/// is always its own singleton cluster so it never stands in for (or
/// hides behind) full-length intervals.
pub fn build_plan(path: &Path, spec: SampleSpec) -> Result<SamplePlan, String> {
    let _span = memsim_obs::span!("sample.plan");
    let mut reader =
        TraceReader::open(path).map_err(|e| format!("sample plan: {}: {e}", path.display()))?;
    reader.enable_seek_skip();

    // decode ~8 chunks per interval for the signature, skip the rest
    let chunks_per_interval = (spec.interval / TRACE_CHUNK_EVENTS as u64).max(1);
    let stride = (chunks_per_interval / 8).max(1);

    let mut chunk_idx = 0u64;
    let mut sigs: Vec<[f64; SIGNATURE_DIMS]> = Vec::new();
    let mut cur: Option<(u64, SignatureBuilder)> = None;
    let finalize = |cur: &mut Option<(u64, SignatureBuilder)>,
                    sigs: &mut Vec<[f64; SIGNATURE_DIMS]>,
                    upto: u64| {
        if let Some((iv, b)) = cur.take() {
            while (sigs.len() as u64) < iv {
                sigs.push([0.0; SIGNATURE_DIMS]);
            }
            sigs.push(b.signature().features);
        }
        while (sigs.len() as u64) < upto {
            sigs.push([0.0; SIGNATURE_DIMS]);
        }
    };
    loop {
        let want = chunk_idx.is_multiple_of(stride);
        // the next chunk's first event index, whether it ends up decoded
        // or skipped
        let base = reader.events_read() + reader.events_skipped();
        let step = reader
            .next_chunk_where(|_, _| want)
            .map_err(|e| format!("sample plan: {}: {e}", path.display()))?;
        chunk_idx += 1;
        match step {
            ChunkStep::End => break,
            ChunkStep::Skipped { .. } => {}
            ChunkStep::Events(evs) => {
                let mut off = 0usize;
                while off < evs.len() {
                    let g = base + off as u64;
                    let iv = g / spec.interval;
                    let take = (((iv + 1) * spec.interval - g) as usize).min(evs.len() - off);
                    match &mut cur {
                        Some((ci, b)) if *ci == iv => b.access_chunk(&evs[off..off + take]),
                        _ => {
                            finalize(&mut cur, &mut sigs, iv);
                            // signature granularity is the ubiquitous
                            // 64-byte line; the plan must not depend on
                            // scale so it can be shared across them
                            let mut b = SignatureBuilder::new(64);
                            b.access_chunk(&evs[off..off + take]);
                            cur = Some((iv, b));
                        }
                    }
                    off += take;
                }
            }
        }
    }
    let total_events = reader.events_read() + reader.events_skipped();
    if total_events == 0 {
        return Err(format!("sample plan: {} records no events", path.display()));
    }
    let intervals = total_events.div_ceil(spec.interval);
    finalize(&mut cur, &mut sigs, intervals);

    let nfull = (total_events / spec.interval) as usize;
    let mut clusters = if nfull > 0 {
        kmeans(&sigs[..nfull], spec.clusters.min(nfull))
    } else {
        Vec::new()
    };
    if total_events % spec.interval != 0 {
        clusters.push(SampleCluster {
            representative: nfull as u64,
            weight: 1,
            members: vec![nfull as u64],
        });
    }
    Ok(SamplePlan {
        spec,
        total_events,
        intervals,
        clusters,
    })
}

fn dist2(a: &[f64; SIGNATURE_DIMS], b: &[f64; SIGNATURE_DIMS]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Deterministic Lloyd k-means: centers seeded by farthest-point
/// traversal from the first signature (evenly spaced indices would
/// collapse when a long phase yields several identical signatures),
/// nearest-center assignment with lowest-index tie-breaks, at most 32
/// refinement rounds. Empty clusters are dropped; each surviving
/// cluster's representative is its member closest to the centroid.
fn kmeans(points: &[[f64; SIGNATURE_DIMS]], k: usize) -> Vec<SampleCluster> {
    let n = points.len();
    debug_assert!(k >= 1 && k <= n);
    let mut centers: Vec<[f64; SIGNATURE_DIMS]> = vec![points[0]];
    while centers.len() < k {
        let far = points
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let da = centers
                    .iter()
                    .map(|c| dist2(a, c))
                    .fold(f64::INFINITY, f64::min);
                let db = centers
                    .iter()
                    .map(|c| dist2(b, c))
                    .fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db).unwrap()
            })
            .map(|(i, _)| i)
            .unwrap();
        centers.push(points[far]);
    }
    let mut assign = vec![0usize; n];
    for _ in 0..32 {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let d = dist2(p, center);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        for (c, center) in centers.iter_mut().enumerate() {
            let mut sum = [0.0; SIGNATURE_DIMS];
            let mut count = 0u64;
            for (i, p) in points.iter().enumerate() {
                if assign[i] == c {
                    for (s, v) in sum.iter_mut().zip(p.iter()) {
                        *s += v;
                    }
                    count += 1;
                }
            }
            if count > 0 {
                for s in sum.iter_mut() {
                    *s /= count as f64;
                }
                *center = sum;
            }
        }
        if !changed {
            break;
        }
    }
    let mut clusters = Vec::new();
    for (c, center) in centers.iter().enumerate() {
        let members: Vec<u64> = (0..n)
            .filter(|&i| assign[i] == c)
            .map(|i| i as u64)
            .collect();
        if members.is_empty() {
            continue;
        }
        let representative = members
            .iter()
            .copied()
            .min_by(|&a, &b| {
                dist2(&points[a as usize], center)
                    .partial_cmp(&dist2(&points[b as usize], center))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("nonempty cluster");
        clusters.push(SampleCluster {
            representative,
            weight: members.len() as u64,
            members,
        });
    }
    clusters
}

/// One simulated representative's measured contribution: the per-level
/// stat deltas over exactly its interval, plus the cluster population it
/// stands in for.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// The representative interval index.
    pub representative: u64,
    /// Cluster population (extrapolation weight).
    pub weight: u64,
    /// Demand references issued inside the representative interval.
    pub refs: u64,
    /// Per-cache stat deltas, top-down.
    pub caches: Vec<LevelStats>,
    /// Terminal-memory stat delta.
    pub mem: LevelStats,
    /// Per-region terminal traffic delta.
    pub per_region: Vec<RegionTraffic>,
}

/// Everything a sampled run knows beyond the extrapolated counters —
/// carried on [`RawRun::sample`] so downstream costing can derive
/// confidence intervals.
#[derive(Debug, Clone)]
pub struct SampleDetail {
    /// The sampling parameters.
    pub spec: SampleSpec,
    /// Intervals in the trace.
    pub intervals: u64,
    /// Per-cluster measured contributions.
    pub cluster_runs: Vec<ClusterRun>,
}

/// Per-metric relative confidence-interval halfwidths (z = 2, i.e.
/// ~95%) of a sampled run's extrapolated metrics: the spread of the
/// per-cluster estimates, weighted by the stream population each
/// cluster represents. All zero when the sample is exact (every cluster
/// a singleton).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleCi {
    /// Relative halfwidth of AMAT.
    pub amat: f64,
    /// Relative halfwidth of total time (equals `amat`: time is AMAT ×
    /// a fixed reference count).
    pub time: f64,
    /// Relative halfwidth of total energy.
    pub energy: f64,
    /// Relative halfwidth of EDP (first-order: time + energy).
    pub edp: f64,
}

/// Derive the confidence intervals of a sampled run under a concrete
/// cost assignment (`costs` aligned like [`RawRun::all_levels`]).
/// `None` for full-fidelity runs.
pub fn sample_ci(run: &RawRun, costs: &[LevelCost]) -> Option<SampleCi> {
    let detail = run.sample.as_ref()?;
    // every cluster a singleton → the extrapolation is a sum of directly
    // measured intervals: exact, no sampling error
    if detail.cluster_runs.iter().all(|c| c.weight <= 1) {
        return Some(SampleCi::default());
    }
    // per-cluster intensive estimates: AMAT and energy per reference
    let mut w = Vec::new();
    let mut amat = Vec::new();
    let mut energy = Vec::new();
    for c in &detail.cluster_runs {
        if c.refs == 0 {
            continue;
        }
        let stats: Vec<&LevelStats> = c.caches.iter().chain(std::iter::once(&c.mem)).collect();
        let pairs: Vec<_> = stats.into_iter().zip(costs.iter()).collect();
        let m = Metrics::compute(&pairs, c.refs);
        w.push((c.weight * c.refs) as f64);
        amat.push(m.amat_ns);
        energy.push(m.energy_j() / c.refs as f64);
    }
    let amat_rel = weighted_rel_halfwidth(&w, &amat);
    let energy_rel = weighted_rel_halfwidth(&w, &energy);
    Some(SampleCi {
        amat: amat_rel,
        time: amat_rel,
        energy: energy_rel,
        edp: amat_rel + energy_rel,
    })
}

/// z·sqrt(s²/n_eff) / μ for a weighted sample: the weighted standard
/// error of the mean with Kish's effective sample size, z = 2.
fn weighted_rel_halfwidth(weights: &[f64], xs: &[f64]) -> f64 {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || xs.len() < 2 {
        return 0.0;
    }
    let norm: Vec<f64> = weights.iter().map(|w| w / total).collect();
    let mean: f64 = norm.iter().zip(xs.iter()).map(|(w, x)| w * x).sum();
    if mean <= 0.0 {
        return 0.0;
    }
    let var: f64 = norm
        .iter()
        .zip(xs.iter())
        .map(|(w, x)| w * (x - mean) * (x - mean))
        .sum();
    let n_eff = 1.0 / norm.iter().map(|w| w * w).sum::<f64>();
    2.0 * (var / n_eff).sqrt() / mean
}

/// Publish the worst (largest) CI halfwidths across a batch of results
/// into the observability registry, in parts-per-million, plus the
/// plan shape: `sample.intervals`, `sample.clusters`,
/// `sample.ci_halfwidth.{amat,time,energy,edp}`. A deterministic
/// summary (max over the batch) so exports diff cleanly.
pub fn publish_ci_summary(cis: &[SampleCi]) {
    if !memsim_obs::enabled() || cis.is_empty() {
        return;
    }
    let reg = memsim_obs::global();
    let max = |f: fn(&SampleCi) -> f64| cis.iter().map(f).fold(0.0f64, f64::max);
    let store = |key: &str, rel: f64| {
        reg.counter(&format!("sample.ci_halfwidth.{key}"))
            .store((rel * 1e6).round() as u64);
        // CI-halfwidth counter track on the caller's timeline lane
        memsim_obs::recorder::counter(&format!("sample.ci_halfwidth.{key}"), rel);
    };
    store("amat", max(|c| c.amat));
    store("time", max(|c| c.time));
    store("energy", max(|c| c.energy));
    store("edp", max(|c| c.edp));
}

// ---------------------------------------------------------------------------
// sampled replay
// ---------------------------------------------------------------------------

/// A pure-read snapshot of a running hierarchy's counters.
struct Snap {
    levels: Vec<LevelStats>,
    mem: LevelStats,
    traffic: Vec<RegionTraffic>,
    refs: u64,
}

fn snap(h: &Hierarchy<PartitionedMemory>) -> Snap {
    Snap {
        levels: h.levels().iter().map(|c| c.stats()).collect(),
        mem: h.memory().dram_stats().clone(),
        traffic: h.memory().traffic().to_vec(),
        refs: h.total_refs(),
    }
}

fn stats_delta(end: &LevelStats, start: &LevelStats) -> LevelStats {
    LevelStats {
        name: end.name.clone(),
        loads: end.loads - start.loads,
        stores: end.stores - start.stores,
        load_hits: end.load_hits - start.load_hits,
        load_misses: end.load_misses - start.load_misses,
        store_hits: end.store_hits - start.store_hits,
        store_misses: end.store_misses - start.store_misses,
        writebacks_out: end.writebacks_out - start.writebacks_out,
        fills: end.fills - start.fills,
        bytes_loaded: end.bytes_loaded - start.bytes_loaded,
        bytes_stored: end.bytes_stored - start.bytes_stored,
    }
}

fn stats_scaled_add(acc: &mut LevelStats, d: &LevelStats, w: u64) {
    acc.loads += d.loads * w;
    acc.stores += d.stores * w;
    acc.load_hits += d.load_hits * w;
    acc.load_misses += d.load_misses * w;
    acc.store_hits += d.store_hits * w;
    acc.store_misses += d.store_misses * w;
    acc.writebacks_out += d.writebacks_out * w;
    acc.fills += d.fills * w;
    acc.bytes_loaded += d.bytes_loaded * w;
    acc.bytes_stored += d.bytes_stored * w;
}

fn traffic_delta(end: &[RegionTraffic], start: &[RegionTraffic]) -> Vec<RegionTraffic> {
    end.iter()
        .zip(start.iter())
        .map(|(e, s)| RegionTraffic {
            loads: e.loads - s.loads,
            stores: e.stores - s.stores,
            bytes_loaded: e.bytes_loaded - s.bytes_loaded,
            bytes_stored: e.bytes_stored - s.bytes_stored,
        })
        .collect()
}

fn snap_delta(c: &SampleCluster, end: &Snap, start: &Snap) -> ClusterRun {
    // the terminal delta takes the canonical name so downstream costing
    // (which aligns stats to costs by name, like the extrapolated run's
    // own terminal) accepts cluster runs too
    let mut mem = stats_delta(&end.mem, &start.mem);
    mem.name = MEM_NAME.to_string();
    ClusterRun {
        representative: c.representative,
        weight: c.weight,
        refs: end.refs - start.refs,
        caches: end
            .levels
            .iter()
            .zip(start.levels.iter())
            .map(|(e, s)| stats_delta(e, s))
            .collect(),
        mem,
        per_region: traffic_delta(&end.traffic, &start.traffic),
    }
}

enum Mark {
    Start(usize),
    End(usize),
}

/// Replay only the plan's representative windows of the trace at `path`
/// through `structure`'s hierarchy and extrapolate a full-stream
/// [`RawRun`] (with [`RawRun::sample`] set).
///
/// Always a sequential walk: snapshot deltas need one hierarchy with a
/// well-defined event order, so the engine choice upstream applies only
/// to full-fidelity runs.
pub fn replay_structure_sampled(
    path: &Path,
    scale: &Scale,
    structure: &Structure,
    plan: &SamplePlan,
) -> Result<RawRun, TraceError> {
    let mut span = memsim_obs::span!("sample.replay.{}", structure.obs_label());

    // window layout: ascending representatives, each with its warm
    // window (Functional) or bare interval (Cold); marks at interval
    // boundaries, End sorted before Start at equal positions so
    // back-to-back representatives hand over correctly
    let mut reps: Vec<(usize, u64)> = plan
        .clusters
        .iter()
        .enumerate()
        .map(|(c, cl)| (c, cl.representative))
        .collect();
    reps.sort_by_key(|&(_, r)| r);
    let functional = plan.spec.warmup == Warmup::Functional;
    let mut segments: Vec<(u64, u64)> = Vec::new();
    let mut marks: Vec<(u64, Mark)> = Vec::new();
    for &(c, r) in &reps {
        let (rs, re) = plan.interval_bounds(r);
        let ws = if functional {
            rs.saturating_sub(plan.spec.interval)
        } else {
            rs
        };
        match segments.last_mut() {
            Some(last) if ws <= last.1 => last.1 = last.1.max(re),
            _ => segments.push((ws, re)),
        }
        marks.push((rs, Mark::Start(c)));
        marks.push((re, Mark::End(c)));
    }
    marks.sort_by_key(|&(p, ref m)| (p, matches!(m, Mark::Start(_)) as u8));

    let mut reader = TraceReader::open(path)?;
    reader.enable_seek_skip();
    let regions = reader.header().regions.clone();
    let fresh = |scale: &Scale, structure: &Structure| {
        Hierarchy::new(
            build_caches(scale, structure),
            PartitionedMemory::new(&regions, Technology::Pcm),
        )
    };
    let mut hierarchy: Option<Hierarchy<PartitionedMemory>> =
        functional.then(|| fresh(scale, structure));
    let mut starts: Vec<Option<Snap>> = (0..plan.clusters.len()).map(|_| None).collect();
    let mut runs: Vec<Option<ClusterRun>> = (0..plan.clusters.len()).map(|_| None).collect();
    let mut mark_i = 0usize;
    let mut seg_i = 0usize;
    // Flight-recorder phase spans: the timeline distinguishes warm-window
    // feeding (`sample.warm`, Functional warmup only) from measured
    // representative windows (`sample.measure`). Mark application and
    // feed ranges are deterministic given the plan, so the emitted event
    // stream is too.
    let mut warm_open = false;
    let mut measuring = false;

    // applies every mark at stream position <= `pos` (no events between
    // the mark position and `pos` have been fed, so the counters at
    // `pos` equal the counters at the mark)
    macro_rules! apply_marks_through {
        ($pos:expr) => {
            while mark_i < marks.len() && marks[mark_i].0 <= $pos {
                match marks[mark_i].1 {
                    Mark::Start(c) => {
                        if warm_open {
                            memsim_obs::recorder::span_end("sample.warm");
                            warm_open = false;
                        }
                        if memsim_obs::recorder::recording() {
                            memsim_obs::recorder::span_begin("sample.measure");
                        }
                        measuring = true;
                        if functional {
                            starts[c] = Some(snap(hierarchy.as_ref().expect("live hierarchy")));
                        } else {
                            hierarchy = Some(fresh(scale, structure));
                        }
                    }
                    Mark::End(c) => {
                        if measuring && memsim_obs::recorder::recording() {
                            memsim_obs::recorder::span_end("sample.measure");
                        }
                        measuring = false;
                        if functional {
                            let s0 = starts[c].take().expect("start snapshot");
                            let s1 = snap(hierarchy.as_ref().expect("live hierarchy"));
                            runs[c] = Some(snap_delta(&plan.clusters[c], &s1, &s0));
                        } else {
                            let mut h = hierarchy.take().expect("live hierarchy");
                            h.drain();
                            h.assert_consistent();
                            let refs = h.total_refs();
                            let caches: Vec<LevelStats> =
                                h.levels().iter().map(|x| x.stats()).collect();
                            let mem_part = h.into_memory();
                            runs[c] = Some(ClusterRun {
                                representative: plan.clusters[c].representative,
                                weight: plan.clusters[c].weight,
                                refs,
                                caches,
                                mem: mem_part.dram_stats().clone(),
                                per_region: mem_part.traffic().to_vec(),
                            });
                        }
                    }
                }
                mark_i += 1;
            }
        };
    }

    loop {
        let si = seg_i;
        let segs = &segments;
        let base = reader.events_read() + reader.events_skipped();
        let step = reader.next_chunk_where(move |first, count| {
            let end = first + u64::from(count);
            let mut i = si;
            while i < segs.len() && segs[i].1 <= first {
                i += 1;
            }
            i < segs.len() && segs[i].0 < end
        })?;
        match step {
            ChunkStep::End => break,
            ChunkStep::Skipped { .. } => {}
            ChunkStep::Events(evs) => {
                let len = evs.len() as u64;
                let mut off = 0u64;
                while off < len {
                    let g = base + off;
                    apply_marks_through!(g);
                    let mut s = seg_i;
                    while s < segments.len() && segments[s].1 <= g {
                        s += 1;
                    }
                    if s >= segments.len() {
                        break;
                    }
                    let (s0, s1) = segments[s];
                    if g < s0 {
                        off = (s0 - base).min(len);
                        continue;
                    }
                    let mut until = (s1 - base).min(len);
                    if mark_i < marks.len() {
                        until = until.min(marks[mark_i].0 - base);
                    }
                    if !measuring && !warm_open && memsim_obs::recorder::recording() {
                        memsim_obs::recorder::span_begin("sample.warm");
                        warm_open = true;
                    }
                    hierarchy
                        .as_mut()
                        .expect("feeding outside a representative window")
                        .access_chunk(&evs[off as usize..until as usize]);
                    off = until;
                }
            }
        }
        let pos = reader.events_read() + reader.events_skipped();
        while seg_i < segments.len() && segments[seg_i].1 <= pos {
            seg_i += 1;
        }
    }
    apply_marks_through!(plan.total_events);
    if warm_open {
        memsim_obs::recorder::span_end("sample.warm");
    }

    let cluster_runs: Vec<ClusterRun> = runs
        .into_iter()
        .map(|r| r.expect("every representative measured"))
        .collect();

    // extrapolate: population-weighted cluster deltas, plus (Functional
    // only) the end-of-run drain flush, once and unweighted — it is a
    // terminal artifact of the whole run, not of any interval. At
    // clusters == intervals the weighted sum telescopes to the exact
    // pre-drain counters and this lands the exact finals.
    let level_names: Vec<String> = cluster_runs[0]
        .caches
        .iter()
        .map(|s| s.name.clone())
        .collect();
    let mut caches: Vec<LevelStats> = level_names
        .into_iter()
        .map(|name| LevelStats {
            name,
            ..Default::default()
        })
        .collect();
    let mut mem = LevelStats {
        name: MEM_NAME.to_string(),
        ..Default::default()
    };
    let mut per_region = vec![RegionTraffic::default(); regions.len()];
    let mut total_refs = 0u64;
    for cr in &cluster_runs {
        for (acc, d) in caches.iter_mut().zip(cr.caches.iter()) {
            stats_scaled_add(acc, d, cr.weight);
        }
        stats_scaled_add(&mut mem, &cr.mem, cr.weight);
        for (acc, d) in per_region.iter_mut().zip(cr.per_region.iter()) {
            acc.loads += d.loads * cr.weight;
            acc.stores += d.stores * cr.weight;
            acc.bytes_loaded += d.bytes_loaded * cr.weight;
            acc.bytes_stored += d.bytes_stored * cr.weight;
        }
        total_refs += cr.refs * cr.weight;
    }
    if functional {
        let h = hierarchy.as_mut().expect("live hierarchy");
        let pre = snap(h);
        h.drain();
        h.assert_consistent();
        let post = snap(h);
        for (acc, (e, s)) in caches
            .iter_mut()
            .zip(post.levels.iter().zip(pre.levels.iter()))
        {
            stats_scaled_add(acc, &stats_delta(e, s), 1);
        }
        stats_scaled_add(&mut mem, &stats_delta(&post.mem, &pre.mem), 1);
        for (acc, d) in per_region
            .iter_mut()
            .zip(traffic_delta(&post.traffic, &pre.traffic).iter())
        {
            acc.loads += d.loads;
            acc.stores += d.stores;
            acc.bytes_loaded += d.bytes_loaded;
            acc.bytes_stored += d.bytes_stored;
        }
        total_refs += post.refs - pre.refs;
    }

    if memsim_obs::enabled() {
        let reg = memsim_obs::global();
        reg.counter("sample.intervals").store(plan.intervals);
        reg.counter("sample.clusters")
            .store(plan.clusters.len() as u64);
        // the deterministic speedup proxy: events fed to the hierarchy
        // (warm windows included) vs events in the trace — wall-clock
        // converges to this ratio as fixed costs amortize
        reg.counter("sample.events_simulated")
            .store(plan.simulated_events());
        reg.counter("sample.events_total").store(plan.total_events);
    }
    span.add_events(cluster_runs.iter().map(|c| c.refs).sum());

    Ok(RawRun {
        caches,
        mem,
        per_region,
        region_names: regions.iter().map(|r| r.name.clone()).collect(),
        region_sizes: regions.iter().map(|r| r.len).collect(),
        region_starts: regions.iter().map(|r| r.start).collect(),
        total_refs,
        footprint_bytes: regions.iter().map(|r| r.len).sum(),
        sample: Some(SampleDetail {
            spec: plan.spec,
            intervals: plan.intervals,
            cluster_runs,
        }),
    })
}

// ---------------------------------------------------------------------------
// process-wide caches: recorded traces and interval plans
// ---------------------------------------------------------------------------

/// The directory holding auto-recorded sample traces, shared across
/// processes: the crate version in the name keeps a stale trace from an
/// older build from poisoning a newer run, and within a version the
/// one-time recording cost of each workload amortizes over every
/// sampled run on the machine (a cold `--sample` sweep records; every
/// later one goes straight to the window replays).
pub fn sample_trace_dir() -> PathBuf {
    std::env::temp_dir().join(format!(
        "memsim-sample-traces-v{}",
        env!("CARGO_PKG_VERSION")
    ))
}

/// Record `kind` at `class` once per machine (per crate version) and
/// return the trace path; concurrent and repeated callers share the
/// first recording. The recording lands by atomic rename from a
/// pid-suffixed temp file, so a reader can never observe a torn trace
/// and racing processes at worst record twice, never corrupt.
pub fn cached_trace(kind: WorkloadKind, class: Class) -> Result<PathBuf, String> {
    static LOCK: Mutex<()> = Mutex::new(());
    let dir = sample_trace_dir();
    let path = dir.join(format!("{}-{}.trace", kind.name(), class.name()));
    let _g = LOCK.lock().expect("trace cache poisoned");
    if path.exists() {
        return Ok(path);
    }
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let tmp = dir.join(format!(
        "{}-{}-{}.tmp",
        kind.name(),
        class.name(),
        std::process::id()
    ));
    crate::replay::record_workload(kind, class, &tmp)?;
    std::fs::rename(&tmp, &path).map_err(|e| format!("cannot finalize {}: {e}", path.display()))?;
    Ok(path)
}

type PlanCell = Arc<OnceLock<Result<Arc<SamplePlan>, String>>>;

/// Memoized [`build_plan`]: one plan per `(trace path, spec)` per
/// process, shared across every structure of a grid, and persisted to a
/// sidecar in [`sample_trace_dir`] so later *processes* skip the
/// signature pass over the trace as well (the sidecar is keyed by the
/// trace's size and mtime and silently rebuilt when stale).
pub fn plan_for(path: &Path, spec: SampleSpec) -> Result<Arc<SamplePlan>, String> {
    static PLANS: OnceLock<Mutex<HashMap<(PathBuf, SampleSpec), PlanCell>>> = OnceLock::new();
    let map = PLANS.get_or_init(|| Mutex::new(HashMap::new()));
    let cell = {
        let mut map = map.lock().expect("plan cache poisoned");
        Arc::clone(map.entry((path.to_path_buf(), spec)).or_default())
    };
    cell.get_or_init(|| {
        let sidecar = trace_identity(path).map(|id| plan_sidecar_path(path, spec, id));
        if let Some(sc) = &sidecar {
            if let Some(plan) = load_plan_sidecar(sc, spec) {
                return Ok(Arc::new(plan));
            }
        }
        let plan = build_plan(path, spec)?;
        if let Some(sc) = &sidecar {
            store_plan_sidecar(sc, &plan);
        }
        Ok(Arc::new(plan))
    })
    .clone()
}

/// `(len, mtime ns)` of the trace file — the staleness key for plan
/// sidecars. `None` (unreadable metadata) just disables the sidecar.
fn trace_identity(path: &Path) -> Option<(u64, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    let mtime = meta
        .modified()
        .ok()?
        .duration_since(std::time::UNIX_EPOCH)
        .ok()?;
    Some((meta.len(), mtime.as_nanos() as u64))
}

/// Sidecar file for one `(trace, identity, spec)` triple. DefaultHasher
/// is keyed with process-independent constants, so the name is stable
/// across processes; the version-keyed directory guards across builds.
fn plan_sidecar_path(path: &Path, spec: SampleSpec, identity: (u64, u64)) -> PathBuf {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    path.hash(&mut h);
    identity.hash(&mut h);
    spec.hash(&mut h);
    sample_trace_dir().join(format!("plan-{:016x}.txt", h.finish()))
}

/// Best-effort persist: a pid-suffixed temp file renamed into place, so
/// a concurrent loader never sees a torn sidecar. Failure is silent —
/// the sidecar is purely an optimization.
fn store_plan_sidecar(file: &Path, plan: &SamplePlan) {
    use std::fmt::Write as _;
    let mut out = format!(
        "memsim-plan v1 {}\n{} {}\n",
        SampleMode::On(plan.spec).canon(),
        plan.total_events,
        plan.intervals
    );
    for c in &plan.clusters {
        let members: Vec<String> = c.members.iter().map(|m| m.to_string()).collect();
        let _ = writeln!(
            out,
            "{} {} {}",
            c.representative,
            c.weight,
            members.join(",")
        );
    }
    let Some(dir) = file.parent() else { return };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let tmp = dir.join(format!("plan-{}.tmp", std::process::id()));
    if std::fs::write(&tmp, &out).is_ok() {
        let _ = std::fs::rename(&tmp, file);
    }
}

/// Parse a sidecar back into a plan; any mismatch or malformation —
/// wrong version, wrong spec, bad counts — returns `None` and the
/// caller rebuilds from the trace.
fn load_plan_sidecar(file: &Path, spec: SampleSpec) -> Option<SamplePlan> {
    let text = std::fs::read_to_string(file).ok()?;
    let mut lines = text.lines();
    let head = lines.next()?;
    let canon = head.strip_prefix("memsim-plan v1 ")?;
    if SampleMode::parse(canon).ok()? != SampleMode::On(spec) {
        return None;
    }
    let (events, intervals) = lines.next()?.split_once(' ')?;
    let total_events: u64 = events.parse().ok()?;
    let intervals: u64 = intervals.parse().ok()?;
    let mut clusters = Vec::new();
    for line in lines {
        let mut f = line.splitn(3, ' ');
        let representative: u64 = f.next()?.parse().ok()?;
        let weight: u64 = f.next()?.parse().ok()?;
        let members: Vec<u64> = f
            .next()?
            .split(',')
            .map(|m| m.parse().ok())
            .collect::<Option<_>>()?;
        if representative >= intervals || weight as usize != members.len() {
            return None;
        }
        clusters.push(SampleCluster {
            representative,
            weight,
            members,
        });
    }
    let covered: u64 = clusters.iter().map(|c| c.weight).sum();
    if clusters.is_empty() || covered != intervals {
        return None;
    }
    Some(SamplePlan {
        spec,
        total_events,
        intervals,
        clusters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim_trace::TraceEvent;
    use memsim_tracefile::{TraceHeader, TraceWriter};

    #[test]
    fn parse_and_canon_round_trip() {
        assert_eq!(SampleMode::parse("off").unwrap(), SampleMode::Off);
        assert_eq!(
            SampleMode::parse("on").unwrap(),
            SampleMode::On(SampleSpec::default())
        );
        let m = SampleMode::parse("interval=64k,clusters=3,warmup=cold").unwrap();
        assert_eq!(
            m,
            SampleMode::On(SampleSpec {
                interval: 64_000,
                clusters: 3,
                warmup: Warmup::Cold,
            })
        );
        assert_eq!(SampleMode::parse(&m.canon()).unwrap(), m);
        assert_eq!(SampleMode::Off.canon(), "off");
        assert!(SampleMode::parse("interval=0").is_err());
        assert!(SampleMode::parse("clusters=0").is_err());
        assert!(SampleMode::parse("warmup=warm").is_err());
        assert!(SampleMode::parse("bogus=1").is_err());
        assert!(SampleMode::parse("interval").is_err());
    }

    #[test]
    fn plan_sidecar_round_trips_and_rejects_mismatches() {
        let spec = SampleSpec {
            interval: 1000,
            clusters: 2,
            warmup: Warmup::Functional,
        };
        let plan = SamplePlan {
            spec,
            total_events: 4500,
            intervals: 5,
            clusters: vec![
                SampleCluster {
                    representative: 1,
                    weight: 3,
                    members: vec![0, 1, 3],
                },
                SampleCluster {
                    representative: 2,
                    weight: 1,
                    members: vec![2],
                },
                SampleCluster {
                    representative: 4,
                    weight: 1,
                    members: vec![4],
                },
            ],
        };
        let dir = std::env::temp_dir().join(format!("memsim-plan-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("plan.txt");
        store_plan_sidecar(&file, &plan);
        let back = load_plan_sidecar(&file, spec).expect("sidecar loads");
        assert_eq!(back.total_events, plan.total_events);
        assert_eq!(back.intervals, plan.intervals);
        assert_eq!(back.clusters, plan.clusters);

        // a different spec must not match the stored plan
        let other = SampleSpec {
            clusters: 3,
            ..spec
        };
        assert!(load_plan_sidecar(&file, other).is_none());
        // and a torn/garbled sidecar falls back to rebuilding
        std::fs::write(
            &file,
            "memsim-plan v1 interval=1000,clusters=2,warmup=functional\n4500 5\n1 3 0,1",
        )
        .unwrap();
        assert!(load_plan_sidecar(&file, spec).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_count_suffixes() {
        assert_eq!(parse_count("1000").unwrap(), 1000);
        assert_eq!(parse_count("64k").unwrap(), 64_000);
        assert_eq!(parse_count("2M").unwrap(), 2_000_000);
        assert!(parse_count("64q").is_err());
    }

    fn write_trace(path: &Path, events: &[TraceEvent]) {
        let header = TraceHeader::anonymous(1 << 24);
        let mut w = TraceWriter::create(path, &header).unwrap();
        for &ev in events {
            w.access(ev);
        }
        w.finish().unwrap();
    }

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("memsim-sampling-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn plan_covers_every_interval_once() {
        // two phases: sequential then a tight loop, 3.5 intervals of 10k
        let mut events = Vec::new();
        for i in 0..20_000u64 {
            events.push(TraceEvent::load(i * 64, 8));
        }
        for i in 0..15_000u64 {
            events.push(TraceEvent::load(i % 16 * 64, 8));
        }
        let path = temp("plan.trace");
        write_trace(&path, &events);
        let spec = SampleSpec {
            interval: 10_000,
            clusters: 2,
            warmup: Warmup::Functional,
        };
        let plan = build_plan(&path, spec).unwrap();
        assert_eq!(plan.total_events, 35_000);
        assert_eq!(plan.intervals, 4);
        // every interval in exactly one cluster; tail is a singleton
        let mut seen: Vec<u64> = plan
            .clusters
            .iter()
            .flat_map(|c| c.members.iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        let tail = plan.clusters.last().unwrap();
        assert_eq!((tail.representative, tail.weight), (3, 1));
        for c in &plan.clusters {
            assert!(c.members.contains(&c.representative));
            assert_eq!(c.weight as usize, c.members.len());
        }
        // the two phases should land in different clusters
        let cluster_of = |iv: u64| {
            plan.clusters
                .iter()
                .position(|c| c.members.contains(&iv))
                .unwrap()
        };
        assert_ne!(cluster_of(0), cluster_of(2));
        assert_eq!(plan.interval_bounds(3), (30_000, 35_000));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn plan_is_deterministic() {
        let events: Vec<TraceEvent> = (0..50_000u64)
            .map(|i| TraceEvent::load((i * 7919) % (1 << 20), 8))
            .collect();
        let path = temp("det.trace");
        write_trace(&path, &events);
        let spec = SampleSpec {
            interval: 8_192,
            clusters: 3,
            warmup: Warmup::Functional,
        };
        let a = build_plan(&path, spec).unwrap();
        let b = build_plan(&path, spec).unwrap();
        assert_eq!(a.clusters, b.clusters);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_is_rejected() {
        let path = temp("empty.trace");
        write_trace(&path, &[]);
        let err = build_plan(&path, SampleSpec::default()).unwrap_err();
        assert!(err.contains("no events"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kmeans_all_singletons_when_k_equals_n() {
        let points: Vec<[f64; SIGNATURE_DIMS]> = (0..5)
            .map(|i| {
                let mut p = [0.0; SIGNATURE_DIMS];
                p[i] = 1.0;
                p
            })
            .collect();
        let clusters = kmeans(&points, 5);
        assert_eq!(clusters.len(), 5);
        for c in &clusters {
            assert_eq!(c.weight, 1);
        }
    }

    #[test]
    fn ci_zero_when_exact_and_positive_when_spread() {
        let mk = |weight, refs, miss: u64| ClusterRun {
            representative: 0,
            weight,
            refs,
            caches: vec![LevelStats {
                name: "L1".into(),
                loads: refs,
                load_hits: refs - miss,
                load_misses: miss,
                fills: miss,
                bytes_loaded: miss * 64,
                ..Default::default()
            }],
            mem: LevelStats {
                name: MEM_NAME.into(),
                loads: miss,
                load_misses: miss,
                bytes_loaded: miss * 64,
                ..Default::default()
            },
            per_region: vec![],
        };
        let costs = vec![
            LevelCost::from_tech(
                "L1",
                &memsim_tech::TechParams::of(memsim_tech::Technology::Sram),
                1 << 15,
            ),
            LevelCost::from_tech(
                MEM_NAME,
                &memsim_tech::TechParams::of(memsim_tech::Technology::Dram),
                1 << 30,
            ),
        ];
        let base = RawRun {
            caches: vec![],
            mem: LevelStats::default(),
            per_region: vec![],
            region_names: vec![],
            region_sizes: vec![],
            region_starts: vec![],
            total_refs: 1,
            footprint_bytes: 0,
            sample: None,
        };
        assert!(sample_ci(&base, &costs).is_none());

        let exact = RawRun {
            sample: Some(SampleDetail {
                spec: SampleSpec::default(),
                intervals: 2,
                cluster_runs: vec![mk(1, 1000, 10), mk(1, 1000, 500)],
            }),
            ..base.clone()
        };
        assert_eq!(sample_ci(&exact, &costs).unwrap(), SampleCi::default());

        let spread = RawRun {
            sample: Some(SampleDetail {
                spec: SampleSpec::default(),
                intervals: 20,
                cluster_runs: vec![mk(10, 1000, 10), mk(10, 1000, 500)],
            }),
            ..base
        };
        let ci = sample_ci(&spread, &costs).unwrap();
        assert!(ci.amat > 0.0, "{ci:?}");
        assert_eq!(ci.time, ci.amat);
        assert!(ci.edp >= ci.energy && ci.edp >= ci.time);
    }
}
