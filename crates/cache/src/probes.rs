//! Observability probes: epoch-based publication of hierarchy counters
//! into a [`memsim_obs::MetricsRegistry`].
//!
//! The hot path keeps its plain (non-atomic) per-level counters; when a
//! [`HierarchyProbes`] is attached, the hierarchy publishes *cumulative*
//! counter values into registry atomics once per epoch (~[`PROBE_EPOCH`]
//! events) and once more, authoritatively, at drain. Between epochs the
//! registry lags by at most one epoch; after drain it is exact. Shared
//! `progress.*` counters are advanced by delta (several hierarchies — the
//! replay shards — add into the same counter), per-level counters by
//! absolute store (each hierarchy owns its prefix).

use crate::cache::CounterValues;
use memsim_obs::{Counter, MetricsRegistry};
use std::sync::Arc;

/// Events between probe publications. Chosen to make the per-event cost
/// one predictable decrement-and-branch, with the ~30 atomic stores of a
/// publication amortized to noise (<2% even on the L1-resident stream,
/// where a reference costs only a few nanoseconds); at simulation rates
/// the registry still refreshes hundreds of times per sampler tick.
pub const PROBE_EPOCH: u64 = 32 * 1024;

/// Registry handles for one cache level's counters.
#[derive(Debug, Clone)]
pub struct LevelProbes {
    loads: Arc<Counter>,
    stores: Arc<Counter>,
    load_hits: Arc<Counter>,
    load_misses: Arc<Counter>,
    store_hits: Arc<Counter>,
    store_misses: Arc<Counter>,
    writebacks_out: Arc<Counter>,
    fills: Arc<Counter>,
    bytes_loaded: Arc<Counter>,
    bytes_stored: Arc<Counter>,
    mru_hits: Arc<Counter>,
}

impl LevelProbes {
    /// Register this level's counters as `{prefix}.{field}`.
    pub fn register(reg: &MetricsRegistry, prefix: &str) -> Self {
        let c = |field: &str| reg.counter(&format!("{prefix}.{field}"));
        Self {
            loads: c("loads"),
            stores: c("stores"),
            load_hits: c("load_hits"),
            load_misses: c("load_misses"),
            store_hits: c("store_hits"),
            store_misses: c("store_misses"),
            writebacks_out: c("writebacks_out"),
            fills: c("fills"),
            bytes_loaded: c("bytes_loaded"),
            bytes_stored: c("bytes_stored"),
            mru_hits: c("mru_hits"),
        }
    }

    /// Publish cumulative values (absolute stores — this prefix has one
    /// writer).
    pub fn publish(&self, v: &CounterValues) {
        self.loads.store(v.load_hits.saturating_add(v.load_misses));
        self.stores
            .store(v.store_hits.saturating_add(v.store_misses));
        self.load_hits.store(v.load_hits);
        self.load_misses.store(v.load_misses);
        self.store_hits.store(v.store_hits);
        self.store_misses.store(v.store_misses);
        self.writebacks_out.store(v.writebacks_out);
        self.fills.store(v.fills);
        self.bytes_loaded.store(v.bytes_loaded);
        self.bytes_stored.store(v.bytes_stored);
        self.mru_hits.store(v.mru_hits);
    }
}

/// Everything a [`crate::Hierarchy`] publishes when observability is on.
///
/// Built by [`HierarchyProbes::register`] and attached with
/// [`crate::Hierarchy::set_probes`]. The shared `progress.events` /
/// `progress.chunks` counters are registered automatically; replay shards
/// append their per-shard counter via
/// [`HierarchyProbes::add_events_counter`].
#[derive(Debug, Clone)]
pub struct HierarchyProbes {
    pub(crate) events: Vec<Arc<Counter>>,
    pub(crate) chunks: Vec<Arc<Counter>>,
    pub(crate) lb_hits: Arc<Counter>,
    pub(crate) levels: Vec<LevelProbes>,
}

impl HierarchyProbes {
    /// Register probes under `prefix` for a hierarchy whose cache levels
    /// are named `level_names` (top-down). Creates
    /// `{prefix}.{level}.{field}` counters per level,
    /// `{prefix}.l1_line_buffer_hits`, and hooks the shared
    /// `progress.events` / `progress.chunks` counters.
    pub fn register(reg: &MetricsRegistry, prefix: &str, level_names: &[&str]) -> Self {
        Self {
            events: vec![reg.counter("progress.events")],
            chunks: vec![reg.counter("progress.chunks")],
            lb_hits: reg.counter(&format!("{prefix}.l1_line_buffer_hits")),
            levels: level_names
                .iter()
                .map(|name| LevelProbes::register(reg, &format!("{prefix}.{name}")))
                .collect(),
        }
    }

    /// Also advance `counter` by the per-epoch event delta (e.g. a replay
    /// shard's `progress.shard{i}.events`).
    pub fn add_events_counter(&mut self, counter: Arc<Counter>) {
        self.events.push(counter);
    }

    /// Also bump `counter` once per consumed chunk.
    pub fn add_chunks_counter(&mut self, counter: Arc<Counter>) {
        self.chunks.push(counter);
    }

    /// Number of per-level probe sets.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }
}
