//! Graceful SIGINT handling for long sweeps.
//!
//! [`install`] registers a handler that flips a shared [`AtomicBool`] on the
//! first ctrl-c and then restores the default disposition, so a second ctrl-c
//! kills the process immediately. Sweep workers poll the flag between points,
//! drain in-flight work, and the CLI prints the exact `--resume` command.
//!
//! This is the only unsafe code in the binary: the libc `signal(2)` binding.
//! On non-unix targets `install` returns a flag that is simply never set.

use std::sync::atomic::AtomicBool;
use std::sync::{Arc, OnceLock};

static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
static USR1: OnceLock<Arc<AtomicBool>> = OnceLock::new();

#[cfg(unix)]
mod sys {
    use std::sync::atomic::Ordering;

    pub(super) const SIGINT: i32 = 2;
    pub(super) const SIGUSR1: i32 = 10;
    pub(super) const SIG_DFL: usize = 0;

    extern "C" {
        pub(super) fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Async-signal-safe: one atomic store plus re-arming the default
    /// disposition so the next ctrl-c terminates immediately.
    pub(super) extern "C" fn on_sigint(_signum: i32) {
        if let Some(flag) = super::FLAG.get() {
            flag.store(true, Ordering::SeqCst);
        }
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    /// Async-signal-safe: one atomic store. The handler stays armed —
    /// every SIGUSR1 requests another flight-recorder dump.
    pub(super) extern "C" fn on_sigusr1(_signum: i32) {
        if let Some(flag) = super::USR1.get() {
            flag.store(true, Ordering::SeqCst);
        }
    }
}

/// Install the SIGINT handler (idempotent) and return the shared flag.
pub fn install() -> Arc<AtomicBool> {
    let flag = Arc::clone(FLAG.get_or_init(|| Arc::new(AtomicBool::new(false))));
    #[cfg(unix)]
    unsafe {
        sys::signal(sys::SIGINT, sys::on_sigint as extern "C" fn(i32) as usize);
    }
    flag
}

/// Install the SIGUSR1 handler (idempotent) and return its flag. The
/// daemon polls it and dumps the flight-recorder tail when set; the
/// poller clears the flag, so repeated signals request repeated dumps.
/// On non-unix targets the flag is simply never set.
pub fn install_usr1() -> Arc<AtomicBool> {
    let flag = Arc::clone(USR1.get_or_init(|| Arc::new(AtomicBool::new(false))));
    #[cfg(unix)]
    unsafe {
        sys::signal(sys::SIGUSR1, sys::on_sigusr1 as extern "C" fn(i32) as usize);
    }
    flag
}
