//! Ablation: bandwidth-capped main memory.
//!
//! The paper's Eq. 2 is latency-only ("the memory wall" it cites is a
//! bandwidth story, but the model charges per access). This extension caps
//! the NVM interface bandwidth and shows when transfer time, not access
//! latency, dominates the NMM design — especially at large page sizes,
//! where every miss moves 4 KiB.

use criterion::{criterion_group, criterion_main, Criterion};
use memsim_bench::bench_scale;
use memsim_core::configs::n_by_name;
use memsim_core::runner::{evaluate_cached, SimCache};
use memsim_core::{Design, LevelCost, Metrics};
use memsim_tech::Technology;
use memsim_workloads::WorkloadKind;
use std::hint::black_box;

/// Recost one NMM evaluation with a bandwidth cap on the memory level.
fn recost(
    result: &memsim_core::EvalResult,
    scale: &memsim_core::Scale,
    gbps: Option<f64>,
) -> Metrics {
    let design = result.design;
    let mut costs = design.costing(scale, &result.run);
    if let (Some(bw), Some(mem)) = (gbps, costs.last_mut()) {
        *mem = LevelCost {
            gb_per_s: Some(bw),
            ..mem.clone()
        };
    }
    let stats = result.run.all_levels();
    let pairs: Vec<_> = stats.into_iter().zip(costs.iter()).collect();
    Metrics::compute(&pairs, result.run.total_refs)
}

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let cache = SimCache::new();
    println!("\n========== ablation: NVM interface bandwidth (NMM + PCM) ==========");
    for (cfg_name, kind) in [
        ("N3", WorkloadKind::Hash),
        ("N6", WorkloadKind::Hash),
        ("N3", WorkloadKind::Cg),
    ] {
        let config = n_by_name(cfg_name).unwrap();
        let design = Design::Nmm {
            nvm: Technology::Pcm,
            config,
        };
        let r = evaluate_cached(kind, &scale, &design, &cache);
        println!(
            "\n{} @ {} ({} B pages):",
            kind.name(),
            cfg_name,
            config.page_bytes
        );
        println!(
            "{:>14} {:>12} {:>14}",
            "bandwidth", "time (ms)", "vs unlimited"
        );
        let unlimited = recost(&r, &scale, None);
        for bw in [3.2, 6.4, 12.8, 25.6] {
            let m = recost(&r, &scale, Some(bw));
            println!(
                "{:>11.1} GB/s {:>12.3} {:>13.2}x",
                bw,
                m.time_s * 1e3,
                m.time_s / unlimited.time_s
            );
        }
        println!(
            "{:>14} {:>12.3} {:>14}",
            "unlimited",
            unlimited.time_s * 1e3,
            "1.00x"
        );
    }
    println!("(large pages amplify the cap: every miss moves a whole page)");
    println!("====================================================================\n");

    let config = n_by_name("N3").unwrap();
    let r = evaluate_cached(
        WorkloadKind::Cg,
        &scale,
        &Design::Nmm {
            nvm: Technology::Pcm,
            config,
        },
        &cache,
    );
    c.bench_function("ablation_bandwidth/recost", |b| {
        b.iter(|| black_box(recost(&r, &scale, Some(12.8))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
