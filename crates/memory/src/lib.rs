//! Main-memory organizations for the hybrid-hierarchy designs.
//!
//! The cache levels of every design live in `memsim-cache`; this crate
//! provides the *terminal* memories below them:
//!
//! * [`FlatMemory`] — a single DRAM or NVM main memory (the terminal of the
//!   baseline, 4LC, NMM, and 4LCNVM designs).
//! * [`PartitionedMemory`] — the NDM design's DRAM + NVM partitioned
//!   address space, with per-region accounting that feeds the oracle
//!   partitioner in `memsim-core`.
//! * [`EpochProfiler`] — per-phase traffic profiling, the substrate for
//!   the dynamic-partitioning extension (the paper's stated future work).
//! * [`StartGapNvm`] — start-gap wear leveling (Qureshi et al., MICRO'09)
//!   wrapped around a flat NVM, with a per-block write histogram for
//!   endurance analysis. The paper lists wear as future work; this is the
//!   corresponding extension, exercised by the `ablation_wear_leveling`
//!   bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod epoch;
mod flat;
mod partitioned;
mod wear;

pub use epoch::EpochProfiler;
pub use flat::FlatMemory;
pub use partitioned::{PartitionedMemory, Placement, RegionTraffic};
pub use wear::{EnduranceStats, StartGapNvm, WriteHistogram};
