//! Chrome trace-event JSON export of a drained flight recording.
//!
//! The output is the Trace Event Format's JSON-object form
//! (`{"traceEvents":[...]}`), loadable directly in ui.perfetto.dev or
//! chrome://tracing. Every [`Lane`] becomes one timeline thread: a
//! `thread_name` metadata record plus its events — duration spans as
//! `ph:"B"`/`ph:"E"` pairs, instants as `ph:"i"`, counter samples as
//! `ph:"C"` tracks (queue depth, Mev/s, CI halfwidths, ...).
//!
//! Determinism contract: for a fixed set of lanes the emitted bytes are
//! identical — lanes arrive name-sorted from the recorder, tids are
//! assigned in that order, and under [`crate::set_deterministic`] the
//! recorder has already sequenced timestamps and zeroed counter values,
//! so the whole document is byte-stable across runs (the property the
//! ci.sh golden diff pins).

use crate::json;
use crate::recorder::{EventKind, Lane};

const PID: u64 = 1;

/// Render drained recorder lanes as a Chrome trace-event JSON document
/// (trailing newline included). `manifest` entries become string args on
/// the `process_name` metadata record, in the order given.
pub fn chrome_trace_json(manifest: &[(&str, String)], lanes: &[Lane]) -> String {
    let mut events: Vec<String> = Vec::new();

    let mut args = json::Obj::new();
    args.str("name", "memsim");
    for (key, value) in manifest {
        args.str(key, value);
    }
    let mut proc_meta = json::Obj::new();
    proc_meta
        .str("name", "process_name")
        .str("ph", "M")
        .u64("pid", PID)
        .u64("tid", 0)
        .raw("args", &args.finish());
    events.push(proc_meta.finish());

    for (i, lane) in lanes.iter().enumerate() {
        let tid = i as u64 + 1;
        let mut meta = json::Obj::new();
        let mut args = json::Obj::new();
        args.str("name", &lane.name);
        meta.str("name", "thread_name")
            .str("ph", "M")
            .u64("pid", PID)
            .u64("tid", tid)
            .raw("args", &args.finish());
        events.push(meta.finish());

        for ev in &lane.events {
            let mut obj = json::Obj::new();
            obj.str("name", &ev.name);
            match ev.kind {
                EventKind::SpanBegin => {
                    obj.str("ph", "B");
                }
                EventKind::SpanEnd => {
                    obj.str("ph", "E");
                }
                EventKind::Instant => {
                    obj.str("ph", "i").str("s", "t");
                }
                EventKind::Counter => {
                    obj.str("ph", "C");
                }
            }
            obj.u64("pid", PID).u64("tid", tid).u64("ts", ev.ts_us);
            if ev.kind == EventKind::Counter {
                let mut args = json::Obj::new();
                args.f64("value", ev.value);
                obj.raw("args", &args.finish());
            }
            events.push(obj.finish());
        }

        if lane.dropped > 0 {
            let mut obj = json::Obj::new();
            let last_ts = lane.events.last().map_or(0, |e| e.ts_us);
            let mut args = json::Obj::new();
            args.u64("value", lane.dropped);
            obj.str("name", "recorder.dropped")
                .str("ph", "C")
                .u64("pid", PID)
                .u64("tid", tid)
                .u64("ts", last_ts)
                .raw("args", &args.finish());
            events.push(obj.finish());
        }
    }

    let mut root = json::Obj::new();
    root.raw("traceEvents", &json::array(&events))
        .str("displayTimeUnit", "ms");
    let mut out = root.finish();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RecordedEvent;

    fn lane(name: &str, events: Vec<RecordedEvent>, dropped: u64) -> Lane {
        Lane {
            name: name.to_string(),
            events,
            dropped,
        }
    }

    fn ev(ts_us: u64, kind: EventKind, name: &str, value: f64) -> RecordedEvent {
        RecordedEvent {
            ts_us,
            kind,
            name: name.to_string(),
            value,
        }
    }

    #[test]
    fn emits_metadata_lanes_and_event_phases() {
        let lanes = vec![
            lane(
                "memsim-shard0",
                vec![
                    ev(0, EventKind::SpanBegin, "shard.chunk", 0.0),
                    ev(1, EventKind::Counter, "queue_depth", 3.0),
                    ev(2, EventKind::SpanEnd, "shard.chunk", 0.0),
                ],
                0,
            ),
            lane("main", vec![ev(0, EventKind::Instant, "mark", 0.0)], 2),
        ];
        let doc = chrome_trace_json(&[("command", "test".to_string())], &lanes);
        assert!(doc.starts_with(r#"{"traceEvents":["#));
        assert!(doc.contains(r#""name":"process_name""#));
        assert!(doc.contains(r#""name":"memsim-shard0""#));
        assert!(doc.contains(r#""command":"test""#));
        assert!(doc.contains(r#""ph":"B""#));
        assert!(doc.contains(r#""ph":"E""#));
        assert!(doc.contains(r#""ph":"i""#));
        assert!(doc.contains(r#""name":"queue_depth","ph":"C""#));
        assert!(doc.contains(r#""name":"recorder.dropped""#));
        assert!(doc.ends_with("\n"));
        // Fixed input, fixed bytes.
        assert_eq!(
            doc,
            chrome_trace_json(&[("command", "test".to_string())], &lanes)
        );
    }

    #[test]
    fn tids_follow_lane_order() {
        let lanes = vec![
            lane("a", vec![ev(0, EventKind::Instant, "x", 0.0)], 0),
            lane("b", vec![ev(0, EventKind::Instant, "y", 0.0)], 0),
        ];
        let doc = chrome_trace_json(&[], &lanes);
        let a = doc.find(r#""name":"x","ph":"i","s":"t","pid":1,"tid":1"#);
        let b = doc.find(r#""name":"y","ph":"i","s":"t","pid":1,"tid":2"#);
        assert!(a.is_some() && b.is_some(), "{doc}");
    }
}
