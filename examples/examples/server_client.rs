//! Simulation-as-a-service round trip: submit, poll, fetch, verify.
//!
//! Starts an in-process [`memsim_server::Server`] on an ephemeral port,
//! drives it exactly like an external tool would — over plain TCP with
//! the zero-dependency [`Client`] — and then proves the service lane is
//! honest: the fetched Table 4 artifact is compared byte for byte
//! against the same table built directly through the library API.
//!
//! ```text
//! cargo run --release -p memsim-examples --example server_client
//! ```

use memsim_core::experiments::ExperimentCtx;
use memsim_core::jsontext::{get_str, parse_json};
use memsim_core::{build_artifact, Scale, SimCache};
use memsim_server::client::Client;
use memsim_server::{Server, ServerConfig};
use memsim_workloads::WorkloadKind;
use std::time::Duration;

const WORKLOADS: &str = "hash,bt";

fn main() {
    // 1. Stand the daemon up, exactly as `memsim serve` would.
    let state = std::env::temp_dir().join(format!("memsim-server-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state);
    std::fs::create_dir_all(&state).expect("create state dir");
    let server = Server::start(ServerConfig::new(state.clone())).expect("start server");
    println!("daemon listening on {}", server.addr());

    // 2. Submit the Table 4 grid over the wire.
    let client = Client::new(&server.addr().to_string());
    let spec = format!(r#"{{"artifact":"table4","workloads":"{WORKLOADS}","scale":"mini"}}"#);
    let id = client.submit(&spec).expect("submit job");
    println!("submitted {id}: {spec}");

    // 3. Poll until the job reaches a terminal state.
    let status = client
        .wait(&id, Duration::from_secs(600))
        .expect("wait for job");
    println!("finished: {}", status.trim_end());

    // 4. Fetch the result and unwrap the rendered artifact.
    let result = client.result(&id).expect("fetch result");
    let result = String::from_utf8(result).expect("result is UTF-8");
    let v = parse_json(result.trim_end()).expect("result is valid JSON");
    let obj = v.as_obj().expect("result is an object");
    let served_md = get_str(obj, "markdown").expect("markdown field");
    let served_csv = get_str(obj, "csv").expect("csv field");
    println!("\n{served_md}");

    // 5. Rebuild the same table straight through the library and diff.
    let cache = SimCache::new();
    let workloads: Vec<WorkloadKind> = WORKLOADS
        .split(',')
        .map(|w| WorkloadKind::parse(w).expect("workload"))
        .collect();
    let ctx = ExperimentCtx::new(Scale::mini(), &cache).with_workloads(&workloads);
    let (direct_md, direct_csv) = build_artifact(&ctx, "table4").expect("direct build");

    assert_eq!(served_md, direct_md, "served markdown != direct build");
    assert_eq!(served_csv, direct_csv, "served csv != direct build");
    println!("served artifact is byte-identical to the direct library build");

    // 6. Shut down cleanly and tidy the scratch state.
    server.shutdown();
    let _ = std::fs::remove_dir_all(&state);
}
