//! Set-associative cache simulation and hierarchy composition.
//!
//! This crate is the data-movement simulator at the center of the paper's
//! methodology: it consumes the online address stream produced by
//! `memsim-trace` and yields, for every level of a configurable memory
//! hierarchy, the load/store/hit/miss/writeback counts that drive the AMAT
//! and energy models (Equations 1–4 of the paper).
//!
//! * [`Cache`] — one write-back, write-allocate set-associative level with a
//!   pluggable [`ReplacementPolicy`] and dirty-line tracking.
//! * [`Hierarchy`] — a stack of caches over a terminal [`MainMemory`]. It
//!   implements [`TraceSink`](memsim_trace::TraceSink), so a workload
//!   streams straight into it. Dirty evictions propagate downward as
//!   stores; fills propagate upward as loads; at the terminal memory
//!   "every access to fetch a cache line is counted as a read operation"
//!   and dirty writebacks count as writes — the paper's counting semantics.
//! * [`LevelStats`] — the per-level statistics consumed by `memsim-core`.
//!
//! # Example
//!
//! ```
//! use memsim_cache::{Cache, CacheConfig, CountingMemory, Hierarchy};
//! use memsim_trace::{TraceEvent, TraceSink};
//!
//! let l1 = Cache::new(CacheConfig::new("L1", 32 * 1024, 64, 8));
//! let mut h = Hierarchy::new(vec![l1], CountingMemory::default());
//! h.access(TraceEvent::load(0x1000, 8));
//! h.access(TraceEvent::load(0x1008, 8)); // same line: L1 hit
//! h.flush();
//! assert_eq!(h.levels()[0].stats().load_hits, 1);
//! assert_eq!(h.levels()[0].stats().load_misses, 1);
//! assert_eq!(h.memory().loads, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod hierarchy;
mod policy;
pub mod probes;
mod sharded;
mod stats;

pub use cache::{AccessOutcome, Cache, CounterValues, WritebackOutcome};
pub use config::{Associativity, CacheConfig, WritebackMissPolicy};
pub use hierarchy::{CountingMemory, Hierarchy, MainMemory};
pub use policy::ReplacementPolicy;
pub use probes::{HierarchyProbes, LevelProbes};
pub use sharded::{shard_class_bits, ShardMerge, ShardedHierarchy, ShardedRun, CHUNK_EVENTS};
pub use stats::LevelStats;
