//! Observability overhead: the probed hot path versus the plain one, on
//! the two streams the overhead budget is specified against (`l1_hits`
//! and `streaming` from `simulator_throughput`).
//!
//! "Plain" is the production default — probes compiled in but not
//! attached, so each event pays one `Option` discriminant branch.
//! "Probed" attaches registered [`HierarchyProbes`] with the global
//! registry enabled, so each event additionally pays the epoch countdown
//! and every `PROBE_EPOCH`th event a publication (~30 relaxed atomic
//! stores).
//!
//! Besides the criterion samples, the harness prints an interleaved
//! min-of-12 A/B comparison (`OBS_OVERHEAD ...` lines) — minima are
//! robust to this host's frequency throttling, which swings criterion
//! medians far more than the effect under measurement; those lines are
//! what `BENCH_throughput.json` records.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use memsim_bench::bench_scale;
use memsim_cache::{Cache, CacheConfig, CountingMemory, Hierarchy, HierarchyProbes};
use memsim_trace::{TraceEvent, TraceSink};
use std::hint::black_box;
use std::time::Instant;

const N: u64 = 100_000;

fn full_hierarchy(scale: &memsim_core::Scale) -> Hierarchy<CountingMemory> {
    let caches = vec![
        Cache::new(CacheConfig::new(
            "L1",
            scale.l1_bytes,
            scale.line_bytes,
            scale.l1_ways,
        )),
        Cache::new(CacheConfig::new(
            "L2",
            scale.l2_bytes,
            scale.line_bytes,
            scale.l2_ways,
        )),
        Cache::new(CacheConfig::new(
            "L3",
            scale.l3_bytes,
            scale.line_bytes,
            scale.l3_ways,
        )),
        Cache::new(
            CacheConfig::new("L4", scale.scaled_capacity(512 << 20), 1024, 16).with_sectors(64),
        ),
    ];
    Hierarchy::new(caches, CountingMemory::default())
}

fn attach_probes(h: &mut Hierarchy<CountingMemory>, prefix: &str) {
    memsim_obs::set_enabled(true);
    let probes = HierarchyProbes::register(memsim_obs::global(), prefix, &["L1", "L2", "L3", "L4"]);
    h.set_probes(probes);
}

fn l1_hits_pass(h: &mut Hierarchy<CountingMemory>) {
    for i in 0..N {
        h.access(TraceEvent::load((i % 512) * 64, 8));
    }
    black_box(h.total_refs());
}

fn streaming_pass(h: &mut Hierarchy<CountingMemory>, pos: &mut u64) {
    for _ in 0..N {
        h.access(TraceEvent::load(*pos % (256 << 20), 8));
        *pos += 8;
    }
    black_box(h.total_refs());
}

/// Interleaved A/B minima: alternate the two passes and keep each side's
/// best ns/event over `rounds` rounds (after one warmup pass each).
fn ab_compare(mut plain: impl FnMut(), mut probed: impl FnMut(), rounds: usize) -> (f64, f64) {
    plain();
    probed();
    let mut best_plain = f64::INFINITY;
    let mut best_probed = f64::INFINITY;
    for _ in 0..rounds {
        let t = Instant::now();
        plain();
        best_plain = best_plain.min(t.elapsed().as_nanos() as f64 / N as f64);
        let t = Instant::now();
        probed();
        best_probed = best_probed.min(t.elapsed().as_nanos() as f64 / N as f64);
    }
    (best_plain, best_probed)
}

fn report(case: &str, plain_ns: f64, probed_ns: f64) {
    println!(
        "OBS_OVERHEAD {case}: plain {plain_ns:.3} ns/ref, probed {probed_ns:.3} ns/ref, overhead {:+.2}%",
        100.0 * (probed_ns - plain_ns) / plain_ns
    );
}

fn bench(c: &mut Criterion) {
    let scale = bench_scale();

    {
        let mut plain = full_hierarchy(&scale);
        let mut probed = full_hierarchy(&scale);
        attach_probes(&mut probed, "bench.ab.l1");
        let (p, q) = ab_compare(
            || l1_hits_pass(&mut plain),
            || l1_hits_pass(&mut probed),
            12,
        );
        report("l1_hits", p, q);
    }
    {
        let mut plain = full_hierarchy(&scale);
        let mut probed = full_hierarchy(&scale);
        attach_probes(&mut probed, "bench.ab.stream");
        let (mut pp, mut pq) = (0u64, 0u64);
        let (p, q) = ab_compare(
            || streaming_pass(&mut plain, &mut pp),
            || streaming_pass(&mut probed, &mut pq),
            12,
        );
        report("streaming", p, q);
    }

    let mut g = c.benchmark_group("obs_overhead");
    g.throughput(Throughput::Elements(N));

    g.bench_function("l1_hits_plain", |b| {
        let mut h = full_hierarchy(&scale);
        b.iter(|| l1_hits_pass(&mut h))
    });
    g.bench_function("l1_hits_probed", |b| {
        let mut h = full_hierarchy(&scale);
        attach_probes(&mut h, "bench.cr.l1");
        b.iter(|| l1_hits_pass(&mut h))
    });
    g.bench_function("streaming_plain", |b| {
        let mut h = full_hierarchy(&scale);
        let mut pos = 0u64;
        b.iter(|| streaming_pass(&mut h, &mut pos))
    });
    g.bench_function("streaming_probed", |b| {
        let mut h = full_hierarchy(&scale);
        attach_probes(&mut h, "bench.cr.stream");
        let mut pos = 0u64;
        b.iter(|| streaming_pass(&mut h, &mut pos))
    });
    g.finish();

    memsim_obs::set_enabled(false);
}

criterion_group!(benches, bench);
criterion_main!(benches);
