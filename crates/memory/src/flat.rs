//! A single flat main memory.

use memsim_cache::{LevelStats, MainMemory};
use memsim_tech::Technology;

/// A flat DRAM or NVM main memory: the terminal level of the baseline,
/// 4LC, NMM, and 4LCNVM designs. Records arriving fetches as loads and
/// writebacks as stores, per the paper's counting rule.
#[derive(Debug, Clone)]
pub struct FlatMemory {
    tech: Technology,
    capacity_bytes: u64,
    stats: LevelStats,
}

impl FlatMemory {
    /// A memory of `capacity_bytes` built from `tech`.
    pub fn new(tech: Technology, capacity_bytes: u64) -> Self {
        Self {
            tech,
            capacity_bytes,
            stats: LevelStats::new(tech.name()),
        }
    }

    /// The technology backing this memory.
    pub fn tech(&self) -> Technology {
        self.tech
    }

    /// Device capacity in bytes (drives static power in the energy model).
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Request statistics (only `loads`/`stores`/`bytes_*` are meaningful;
    /// a terminal memory has no hits or misses).
    pub fn stats(&self) -> &LevelStats {
        &self.stats
    }
}

impl MainMemory for FlatMemory {
    #[inline]
    fn load(&mut self, _addr: u64, bytes: u32) {
        self.stats.loads += 1;
        self.stats.bytes_loaded += u64::from(bytes);
    }

    #[inline]
    fn store(&mut self, _addr: u64, bytes: u32) {
        self.stats.stores += 1;
        self.stats.bytes_stored += u64::from(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_requests() {
        let mut m = FlatMemory::new(Technology::Pcm, 1 << 30);
        m.load(0, 1024);
        m.store(4096, 1024);
        m.store(8192, 64);
        assert_eq!(m.stats().loads, 1);
        assert_eq!(m.stats().stores, 2);
        assert_eq!(m.stats().bytes_loaded, 1024);
        assert_eq!(m.stats().bytes_stored, 1088);
        assert_eq!(m.tech(), Technology::Pcm);
        assert_eq!(m.capacity_bytes(), 1 << 30);
        assert_eq!(m.stats().name, "PCM");
    }
}
