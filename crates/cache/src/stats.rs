//! Per-level data-movement statistics.

/// Counters collected at one level of the hierarchy.
///
/// A "load" is any read request arriving at this level (a demand load or a
/// block-fill fetch from the level above); a "store" is any write request
/// (a demand store at L1, or a dirty-block writeback from above). These are
/// precisely the `Loads_Li` / `Stores_Li` terms of the paper's Equation 2.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Display name of the level.
    pub name: String,
    /// Read requests that arrived at this level.
    pub loads: u64,
    /// Write requests that arrived at this level.
    pub stores: u64,
    /// Read requests that hit.
    pub load_hits: u64,
    /// Read requests that missed.
    pub load_misses: u64,
    /// Write requests that hit.
    pub store_hits: u64,
    /// Write requests that missed.
    pub store_misses: u64,
    /// Dirty blocks this level evicted and sent downward.
    pub writebacks_out: u64,
    /// Blocks installed (fills).
    pub fills: u64,
    /// Bytes moved out of this level by read requests (request size × count).
    pub bytes_loaded: u64,
    /// Bytes moved into this level by write requests.
    pub bytes_stored: u64,
}

impl LevelStats {
    /// Fresh statistics for a level called `name`.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Total requests (loads + stores). Saturates rather than wrapping, so
    /// a miscounting probe can never make a derived total look small.
    pub fn accesses(&self) -> u64 {
        self.loads.saturating_add(self.stores)
    }

    /// Total hits (saturating).
    pub fn hits(&self) -> u64 {
        self.load_hits.saturating_add(self.store_hits)
    }

    /// Total misses (saturating).
    pub fn misses(&self) -> u64 {
        self.load_misses.saturating_add(self.store_misses)
    }

    /// Hit rate in `[0, 1]`; 0 for an idle level.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.accesses() as f64
        }
    }

    /// Internal consistency: hits + misses == accesses, split by kind.
    ///
    /// Used by tests and debug assertions.
    pub fn is_consistent(&self) -> bool {
        self.consistency_error().is_none()
    }

    /// Which invariant is broken, if any, as a readable message — so a
    /// probe miscount surfaces as "L2: load_hits (3) + load_misses (1) !=
    /// loads (5)" instead of a bare boolean.
    pub fn consistency_error(&self) -> Option<String> {
        let check = |kind: &str, hits: u64, misses: u64, total: u64| -> Option<String> {
            match hits.checked_add(misses) {
                None => Some(format!(
                    "{}: {kind}_hits ({hits}) + {kind}_misses ({misses}) overflows u64",
                    self.name
                )),
                Some(sum) if sum != total => Some(format!(
                    "{}: {kind}_hits ({hits}) + {kind}_misses ({misses}) != {kind}s ({total})",
                    self.name
                )),
                Some(_) => None,
            }
        };
        check("load", self.load_hits, self.load_misses, self.loads)
            .or_else(|| check("store", self.store_hits, self.store_misses, self.stores))
    }

    /// Merge another level's counters into this one (used when averaging
    /// across workloads or accumulating shards). Saturating: an overflow
    /// pegs at `u64::MAX`, where `consistency_error` reports it, instead
    /// of silently wrapping into a plausible-looking small number.
    ///
    /// Saturation is never expected in practice, so it is loud: debug
    /// builds assert, and every build bumps the `stats.merge_saturated`
    /// registry counter first so a release-mode sweep that kept going on
    /// pegged totals still shows the event in its metrics dump.
    pub fn merge(&mut self, other: &LevelStats) {
        let mut saturated = false;
        let mut add = |a: u64, b: u64| {
            a.checked_add(b).unwrap_or_else(|| {
                saturated = true;
                u64::MAX
            })
        };
        self.loads = add(self.loads, other.loads);
        self.stores = add(self.stores, other.stores);
        self.load_hits = add(self.load_hits, other.load_hits);
        self.load_misses = add(self.load_misses, other.load_misses);
        self.store_hits = add(self.store_hits, other.store_hits);
        self.store_misses = add(self.store_misses, other.store_misses);
        self.writebacks_out = add(self.writebacks_out, other.writebacks_out);
        self.fills = add(self.fills, other.fills);
        self.bytes_loaded = add(self.bytes_loaded, other.bytes_loaded);
        self.bytes_stored = add(self.bytes_stored, other.bytes_stored);
        if saturated {
            memsim_obs::global().counter("stats.merge_saturated").inc();
            debug_assert!(
                false,
                "LevelStats::merge saturated a counter in '{}'",
                self.name
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let s = LevelStats {
            name: "L1".into(),
            loads: 10,
            stores: 5,
            load_hits: 8,
            load_misses: 2,
            store_hits: 5,
            store_misses: 0,
            ..Default::default()
        };
        assert_eq!(s.accesses(), 15);
        assert_eq!(s.hits(), 13);
        assert_eq!(s.misses(), 2);
        assert!((s.hit_rate() - 13.0 / 15.0).abs() < 1e-12);
        assert!(s.is_consistent());
    }

    #[test]
    fn idle_level_hit_rate_zero() {
        assert_eq!(LevelStats::new("x").hit_rate(), 0.0);
    }

    #[test]
    fn inconsistency_detected() {
        let s = LevelStats {
            loads: 3,
            load_hits: 1,
            load_misses: 1,
            ..Default::default()
        };
        assert!(!s.is_consistent());
    }

    #[test]
    fn consistency_error_names_the_broken_invariant() {
        let s = LevelStats {
            name: "L2".into(),
            loads: 5,
            load_hits: 3,
            load_misses: 1,
            ..Default::default()
        };
        let msg = s.consistency_error().expect("must be inconsistent");
        assert_eq!(msg, "L2: load_hits (3) + load_misses (1) != loads (5)");

        let s = LevelStats {
            name: "L1".into(),
            stores: 2,
            store_hits: 1,
            store_misses: 0,
            ..Default::default()
        };
        let msg = s.consistency_error().unwrap();
        assert!(msg.contains("store_hits"), "{msg}");
        assert!(LevelStats::new("ok").consistency_error().is_none());
    }

    #[test]
    fn consistency_error_reports_overflowing_sum() {
        let s = LevelStats {
            name: "L3".into(),
            loads: u64::MAX,
            load_hits: u64::MAX,
            load_misses: 2,
            ..Default::default()
        };
        let msg = s.consistency_error().unwrap();
        assert!(msg.contains("overflows"), "{msg}");
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let _lock = memsim_obs::test_lock();
        memsim_obs::reset();
        let mut a = LevelStats {
            name: "L9".into(),
            loads: u64::MAX - 1,
            ..Default::default()
        };
        let b = LevelStats {
            loads: 5,
            ..Default::default()
        };
        if cfg!(debug_assertions) {
            // debug builds assert — but only after pegging the counter and
            // recording the event, so the state the panic leaves behind is
            // the same state a release build continues on
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.merge(&b)));
            assert!(r.is_err(), "debug builds must assert on saturation");
        } else {
            a.merge(&b);
        }
        assert_eq!(a.loads, u64::MAX);
        assert_eq!(
            memsim_obs::global().counter_value("stats.merge_saturated"),
            Some(1)
        );
        memsim_obs::reset();
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LevelStats {
            loads: 1,
            bytes_loaded: 64,
            ..Default::default()
        };
        let b = LevelStats {
            loads: 2,
            stores: 3,
            bytes_loaded: 128,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.loads, 3);
        assert_eq!(a.stores, 3);
        assert_eq!(a.bytes_loaded, 192);
    }
}
