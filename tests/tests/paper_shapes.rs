//! Qualitative shapes from the paper's results section, checked at the
//! mini scale (loose bands — EXPERIMENTS.md records the demo-scale runs
//! against the paper's numbers).

use memsim_core::configs::{eh_configs, n_configs};
use memsim_core::experiments::{self, ExperimentCtx, Metric};
use memsim_core::runner::{evaluate_cached, SimCache};
use memsim_core::{Design, Scale};
use memsim_integration_tests::{fast_workloads, test_scale};
use memsim_tech::Technology;
use memsim_workloads::WorkloadKind;

fn ctx(cache: &SimCache) -> ExperimentCtx<'_> {
    ExperimentCtx::new(test_scale(), cache).with_workloads(&fast_workloads())
}

/// 4LC: "the run time decreases by approximately 2%" — an eDRAM L4 in
/// front of DRAM must not slow things down materially, and HMC (0.18 ns)
/// must be at least as fast as eDRAM (4.4 ns).
#[test]
fn fourlc_runtime_shape() {
    let cache = SimCache::new();
    let f = experiments::fig_4lc(&ctx(&cache), Metric::Time).unwrap();
    let edram = &f.series.iter().find(|s| s.name == "eDRAM").unwrap().values;
    let hmc = &f.series.iter().find(|s| s.name == "HMC").unwrap().values;
    for (e, h) in edram.iter().zip(hmc) {
        assert!(
            *e < 1.15,
            "eDRAM 4LC should stay near baseline runtime: {e}"
        );
        assert!(h <= e, "HMC ({h}) must not be slower than eDRAM ({e})");
    }
}

/// 4LC energy: "using a page-size comparable with the cache line size
/// results in large energy savings … increasing the page size results in
/// an increase of dynamic and hence total energy" — EH1 (64 B pages) must
/// beat EH6 (2 KiB pages) on energy.
#[test]
fn fourlc_small_pages_save_energy() {
    let cache = SimCache::new();
    let f = experiments::fig_4lc(&ctx(&cache), Metric::Energy).unwrap();
    for s in &f.series {
        let eh1 = s.values[0];
        let eh6 = s.values[5];
        assert!(
            eh1 < eh6,
            "{}: 64 B pages ({eh1}) must use less energy than 2 KiB pages ({eh6})",
            s.name
        );
    }
}

/// NMM: growing the DRAM cache (N1→N3 at fixed 4 KiB pages) must not
/// increase runtime — "increase in DRAM capacity results in increase in
/// hit rate, which causes decrease in total access time".
#[test]
fn nmm_capacity_helps_runtime() {
    let cache = SimCache::new();
    let scale = test_scale();
    for kind in fast_workloads() {
        let base = evaluate_cached(kind, &scale, &Design::Baseline, &cache);
        let time = |idx: usize| {
            let d = Design::Nmm {
                nvm: Technology::Pcm,
                config: n_configs()[idx],
            };
            evaluate_cached(kind, &scale, &d, &cache)
                .metrics
                .normalized_to(&base.metrics)
                .time
        };
        let n1 = time(0);
        let n3 = time(2);
        assert!(
            n3 <= n1 * 1.01,
            "{kind:?}: N3 ({n3}) should not be slower than N1 ({n1})"
        );
    }
}

/// NMM page-size effect on the memory interface: smaller pages move fewer
/// bits per miss, so the *dynamic energy at the NVM* per unit data must
/// not grow as pages shrink from 4 KiB (N3) to 64 B (N9).
#[test]
fn nmm_small_pages_move_fewer_bits() {
    let cache = SimCache::new();
    let scale = test_scale();
    for kind in fast_workloads() {
        let run_for = |idx: usize| {
            let d = Design::Nmm {
                nvm: Technology::Pcm,
                config: n_configs()[idx],
            };
            evaluate_cached(kind, &scale, &d, &cache).run
        };
        let n3 = run_for(2);
        let n9 = run_for(8);
        let bytes = |r: &memsim_core::RawRun| r.mem.bytes_loaded + r.mem.bytes_stored;
        assert!(
            bytes(&n9) < bytes(&n3),
            "{kind:?}: 64 B pages should move fewer memory bytes ({} vs {})",
            bytes(&n9),
            bytes(&n3)
        );
    }
}

/// 4LCNVM: "combining the two … improves the overall energy reduction"
/// — at EH1, 4LCNVM(eDRAM+PCM) must use less energy than 4LC(eDRAM)
/// (which keeps the footprint-sized refreshing DRAM).
#[test]
fn fourlcnvm_beats_fourlc_on_energy() {
    let cache = SimCache::new();
    let scale = test_scale();
    let eh1 = eh_configs()[0];
    for kind in fast_workloads() {
        let base = evaluate_cached(kind, &scale, &Design::Baseline, &cache);
        let flc = evaluate_cached(
            kind,
            &scale,
            &Design::FourLc {
                llc: Technology::Edram,
                config: eh1,
            },
            &cache,
        );
        let flcnvm = evaluate_cached(
            kind,
            &scale,
            &Design::FourLcNvm {
                llc: Technology::Edram,
                nvm: Technology::Pcm,
                config: eh1,
            },
            &cache,
        );
        let e_flc = flc.metrics.normalized_to(&base.metrics).energy;
        let e_flcnvm = flcnvm.metrics.normalized_to(&base.metrics).energy;
        // the mechanism: dropping the refreshing DRAM must cut the static
        // *power* (static energy / runtime)
        let p_flc = flc.metrics.static_j / flc.metrics.time_s;
        let p_flcnvm = flcnvm.metrics.static_j / flcnvm.metrics.time_s;
        assert!(
            p_flcnvm < p_flc,
            "{kind:?}: removing DRAM must reduce static power ({p_flcnvm} vs {p_flc})"
        );
        // mini-scale compression exaggerates the memory-traffic share (and
        // with it PCM's dynamic premium), so allow a modest margin here;
        // the demo-scale figures in EXPERIMENTS.md check the paper's claim
        assert!(
            e_flcnvm < e_flc * 1.10,
            "{kind:?}: 4LCNVM ({e_flcnvm}) should not lose to 4LC ({e_flc}) on energy"
        );
    }
}

/// NDM: runtime overhead is nonnegative for every NVM (the paper reports
/// +5% to +63%), and NVM partitions actually receive traffic.
#[test]
fn ndm_has_runtime_overhead_and_real_nvm_traffic() {
    let cache = SimCache::new();
    let scale = test_scale();
    for kind in fast_workloads() {
        let base = evaluate_cached(kind, &scale, &Design::Baseline, &cache);
        for nvm in Technology::NVM {
            let r = evaluate_cached(kind, &scale, &Design::Ndm { nvm }, &cache);
            let norm = r.metrics.normalized_to(&base.metrics);
            assert!(
                norm.time >= 1.0 - 1e-9,
                "{kind:?}/{nvm:?}: NDM cannot beat baseline runtime"
            );
            let placement = r.placement.as_ref().unwrap();
            let nvm_refs: u64 = placement
                .iter()
                .enumerate()
                .filter(|(_, p)| matches!(p, memsim_core::partition::Placement::Nvm))
                .map(|(i, _)| r.run.per_region[i].loads + r.run.per_region[i].stores)
                .sum();
            assert!(nvm_refs > 0, "{kind:?}/{nvm:?}: oracle left NVM idle");
        }
    }
}

/// Heat map headline: "an increase in read latency has higher impact than
/// an increase in write latency", and the 20×/20× corner stays a bounded
/// penalty (the paper reports 17%; the DRAM cache filters almost all
/// traffic).
#[test]
fn heatmap_read_dominance_and_bounded_corner() {
    let cache = SimCache::new();
    // read-dominated set (the paper's full-suite average is read-heavy;
    // Hash's build phase dirties nearly every page it touches, so on its
    // own it sits at the loads == stores boundary)
    let c = ExperimentCtx::new(test_scale(), &cache)
        .with_workloads(&[WorkloadKind::Cg, WorkloadKind::Graph500]);
    let h = experiments::fig9(&c).unwrap();
    let n = h.read_mults.len() - 1;
    let read_only = h.at(n, 0);
    let write_only = h.at(0, n);
    let corner = h.at(n, n);
    assert!(
        read_only > write_only,
        "read {read_only} vs write {write_only}"
    );
    assert!(
        corner < 2.0,
        "20×/20× corner should be a bounded penalty, got {corner}"
    );
    assert!(
        (h.at(0, 0) - 1.0).abs() < 0.35,
        "1×/1× should sit near baseline"
    );
}

/// Figure-generation API smoke: every figure builds with consistent shape
/// at mini scale.
#[test]
fn all_figures_build() {
    let cache = SimCache::new();
    let c = ctx(&cache);
    for f in [
        experiments::fig_nmm(&c, Metric::Time).unwrap(),
        experiments::fig_nmm(&c, Metric::Energy).unwrap(),
        experiments::fig_4lc(&c, Metric::Time).unwrap(),
        experiments::fig_4lc(&c, Metric::Energy).unwrap(),
        experiments::fig_4lcnvm(&c, Metric::Time).unwrap(),
        experiments::fig_4lcnvm(&c, Metric::Energy).unwrap(),
        experiments::fig_ndm(&c, Metric::Time).unwrap(),
        experiments::fig_ndm(&c, Metric::Energy).unwrap(),
        experiments::table1(),
        experiments::table4(&c).unwrap(),
    ] {
        f.validate();
        assert!(!f.series.is_empty());
        assert!(!f.to_markdown().is_empty());
        assert!(!f.to_csv().is_empty());
    }
    let _ = Scale::demo(); // demo preset stays constructible
}
