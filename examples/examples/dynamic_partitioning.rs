//! Dynamic phase-aware DRAM/NVM partitioning — the paper's future work.
//!
//! Profiles AMG (whose V-cycles walk different grid levels in different
//! phases) with an epoch-resolved terminal, then compares the best static
//! placement against the dynamic-programming schedule that may migrate
//! regions between epochs, paying explicit migration costs.
//!
//! ```text
//! cargo run --release -p memsim-examples --example dynamic_partitioning
//! ```

use memsim_core::dynamic::{best_static_schedule, dynamic_oracle, placements_at, simulate_epochs};
use memsim_core::partition::Placement;
use memsim_core::Scale;
use memsim_examples::{human_bytes, pct};
use memsim_tech::Technology;
use memsim_workloads::WorkloadKind;

fn main() {
    let scale = Scale::mini();
    let workload = WorkloadKind::Amg;
    let nvm = Technology::Pcm;

    println!(
        "profiling {} in epochs of 50k memory requests ...\n",
        workload.name()
    );
    let er = simulate_epochs(workload, &scale, 50_000);
    println!(
        "{} epochs over {} regions ({} footprint)",
        er.epochs.len(),
        er.run.per_region.len(),
        human_bytes(er.run.footprint_bytes)
    );

    // show how the hottest region changes across epochs (the phase signal)
    println!("\nhottest region per epoch:");
    for (e, row) in er.epochs.iter().enumerate().take(12) {
        let (hot, t) = row
            .iter()
            .enumerate()
            .max_by_key(|(_, t)| t.loads + t.stores)
            .map(|(i, t)| (i, t.loads + t.stores))
            .unwrap();
        println!(
            "  epoch {e:>2}: {:<10} ({t} refs)",
            er.run.region_names[hot]
        );
    }
    if er.epochs.len() > 12 {
        println!("  ... ({} more epochs)", er.epochs.len() - 12);
    }

    let static_ = best_static_schedule(&er, nvm, &scale, 3);
    let dynamic = dynamic_oracle(&er, nvm, &scale, 3);

    println!("\nbest static placement (held for the whole run):");
    println!(
        "  energy {:.3} mJ, time {:.3} ms",
        static_.metrics.energy_j() * 1e3,
        static_.metrics.time_s * 1e3
    );

    println!("\ndynamic schedule ({} migrations):", dynamic.migrations);
    println!(
        "  energy {:.3} mJ, time {:.3} ms",
        dynamic.metrics.energy_j() * 1e3,
        dynamic.metrics.time_s * 1e3
    );
    let ratio = dynamic.metrics.energy_j() / static_.metrics.energy_j();
    println!("  vs static: {} energy", pct(ratio));

    // describe the schedule's distinct phases
    println!("\nschedule (DRAM-resident ranges per epoch):");
    let mut last = u32::MAX;
    for (e, &mask) in dynamic.schedule.iter().enumerate() {
        if mask != last {
            let dram_regions: Vec<&str> = placements_at(&dynamic, e)
                .iter()
                .enumerate()
                .filter(|(_, p)| matches!(p, Placement::Dram))
                .map(|(i, _)| er.run.region_names[i].as_str())
                .collect();
            println!(
                "  from epoch {e:>2}: DRAM holds {}",
                if dram_regions.is_empty() {
                    "(nothing)".to_string()
                } else {
                    dram_regions.join(", ")
                }
            );
            last = mask;
        }
    }

    println!("\n(the paper: \"Further investigation should explore dynamic partitioning,");
    println!(" that may change between computation phases\" — this is that study.)");
}
