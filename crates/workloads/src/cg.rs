//! NPB CG: conjugate gradient on a random sparse SPD matrix.
//!
//! The paper's description: "conjugate gradient solver with irregular
//! memory access". The matrix is random-pattern symmetric positive
//! definite (diagonally dominant), so the `x` gather in each SpMV is the
//! irregular stream; the vector updates are the regular streams.

use crate::sparse::CsrMatrix;
use crate::{Class, Workload};
use memsim_trace::{AddressSpace, ChunkBuffer, SimVec, TraceSink};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// CG problem parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CgParams {
    /// Matrix dimension.
    pub n: usize,
    /// Random off-diagonal entries added per row (each is mirrored, so the
    /// expected row degree is `1 + 2 × offdiag_per_row`).
    pub offdiag_per_row: usize,
    /// CG iterations to run.
    pub iterations: usize,
    /// RNG seed for the matrix pattern.
    pub seed: u64,
}

impl CgParams {
    /// Preset for a size class (see crate docs for footprint targets).
    pub fn class(class: Class) -> Self {
        match class {
            // ≈ 6 MiB
            Class::Mini => Self {
                n: 22_000,
                offdiag_per_row: 7,
                iterations: 4,
                seed: 0xC6,
            },
            // ≈ 48 MiB
            Class::Demo => Self {
                n: 190_000,
                offdiag_per_row: 7,
                iterations: 6,
                seed: 0xC6,
            },
            // ≈ 190 MiB
            Class::Large => Self {
                n: 760_000,
                offdiag_per_row: 7,
                iterations: 8,
                seed: 0xC6,
            },
        }
    }
}

/// The CG benchmark instance.
pub struct Cg {
    params: CgParams,
    space: AddressSpace,
    a: CsrMatrix,
    x: SimVec<f64>,
    b: SimVec<f64>,
    r: SimVec<f64>,
    p: SimVec<f64>,
    q: SimVec<f64>,
    initial_residual: f64,
    final_residual: Option<f64>,
}

impl Cg {
    /// Allocate and initialize (untraced) a CG instance.
    pub fn new(params: CgParams) -> Self {
        let mut space = AddressSpace::new();
        let n = params.n;
        let mut rng = SmallRng::seed_from_u64(params.seed);

        // Random symmetric pattern with guaranteed diagonal dominance:
        // A = D + B + Bᵀ where |D_ii| > Σ_j |A_ij|.
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for i in 0..n {
            for _ in 0..params.offdiag_per_row {
                let j = rng.random_range(0..n);
                if j == i {
                    continue;
                }
                let v = rng.random_range(-1.0..1.0);
                rows[i].push((j as u32, v));
                rows[j].push((i as u32, v));
            }
        }
        for (i, row) in rows.iter_mut().enumerate() {
            row.sort_by_key(|&(c, _)| c);
            // merge duplicate columns (rare collisions)
            row.dedup_by(|a, b| {
                if a.0 == b.0 {
                    b.1 += a.1;
                    true
                } else {
                    false
                }
            });
            let dominance: f64 = row.iter().map(|&(_, v)| v.abs()).sum::<f64>() + 1.0;
            let pos = row.partition_point(|&(c, _)| c < i as u32);
            row.insert(pos, (i as u32, dominance));
        }
        let a = CsrMatrix::from_rows(&mut space, "A", &rows);

        let x = SimVec::<f64>::zeroed(&mut space, "x", n);
        let b = SimVec::from_fn(&mut space, "b", n, |i| ((i % 17) as f64 - 8.0) / 8.0);
        let mut r = SimVec::<f64>::zeroed(&mut space, "r", n);
        let mut p = SimVec::<f64>::zeroed(&mut space, "p", n);
        let q = SimVec::<f64>::zeroed(&mut space, "q", n);

        // r = b - A·0 = b; p = r (untraced initialization)
        let mut rho0 = 0.0;
        for i in 0..n {
            let bi = b.peek(i);
            r.poke(i, bi);
            p.poke(i, bi);
            rho0 += bi * bi;
        }

        Self {
            params,
            space,
            a,
            x,
            b,
            r,
            p,
            q,
            initial_residual: rho0.sqrt(),
            final_residual: None,
        }
    }

    /// The parameters this instance was built with.
    pub fn params(&self) -> &CgParams {
        &self.params
    }

    /// ‖r‖ after the run (None before).
    pub fn final_residual(&self) -> Option<f64> {
        self.final_residual
    }
}

impl Workload for Cg {
    fn name(&self) -> &'static str {
        "CG"
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let mut sink = ChunkBuffer::new(sink);
        let sink = &mut sink;
        let n = self.params.n;
        // rho = rᵀr
        let mut rho = 0.0;
        for i in 0..n {
            let ri = self.r.ld(i, sink);
            rho += ri * ri;
        }
        for _ in 0..self.params.iterations {
            // q = A p
            self.a.spmv(&self.p, &mut self.q, sink);
            // alpha = rho / pᵀq
            let mut pq = 0.0;
            for i in 0..n {
                pq += self.p.ld(i, sink) * self.q.ld(i, sink);
            }
            let alpha = rho / pq;
            // x += alpha p ; r -= alpha q
            let mut rho_next = 0.0;
            for i in 0..n {
                let xi = self.x.ld(i, sink) + alpha * self.p.ld(i, sink);
                self.x.st(i, xi, sink);
                let ri = self.r.ld(i, sink) - alpha * self.q.ld(i, sink);
                self.r.st(i, ri, sink);
                rho_next += ri * ri;
            }
            let beta = rho_next / rho;
            rho = rho_next;
            // p = r + beta p
            for i in 0..n {
                let pi = self.r.ld(i, sink) + beta * self.p.ld(i, sink);
                self.p.st(i, pi, sink);
            }
        }
        sink.flush();
        self.final_residual = Some(rho.sqrt());
    }

    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn verify(&self) -> Result<(), String> {
        let rho = self.final_residual.ok_or("CG has not run")?;
        // check the residual really dropped
        if rho >= 0.5 * self.initial_residual {
            return Err(format!(
                "residual did not converge: initial {} final {rho}",
                self.initial_residual
            ));
        }
        // cross-check ‖b - A x‖ against the recurrence's residual
        let n = self.params.n;
        let mut ax = vec![0.0; n];
        self.a.spmv_untraced(self.x.as_slice(), &mut ax);
        let true_r: f64 = (0..n)
            .map(|i| (self.b.peek(i) - ax[i]).powi(2))
            .sum::<f64>()
            .sqrt();
        let err = (true_r - rho).abs() / self.initial_residual;
        if err > 1e-6 {
            return Err(format!(
                "recurrence residual {rho} diverged from true residual {true_r}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim_trace::sinks::{CountingSink, RegionProfiler};

    fn tiny() -> CgParams {
        CgParams {
            n: 500,
            offdiag_per_row: 5,
            iterations: 8,
            seed: 1,
        }
    }

    #[test]
    fn converges_and_verifies() {
        let mut cg = Cg::new(tiny());
        let init = cg.initial_residual;
        let mut sink = CountingSink::new();
        cg.run(&mut sink);
        cg.verify().unwrap();
        assert!(cg.final_residual().unwrap() < 0.1 * init);
    }

    #[test]
    fn emits_expected_stream_volume() {
        let mut cg = Cg::new(tiny());
        let mut sink = CountingSink::new();
        cg.run(&mut sink);
        // ~ (3 nnz + 8n) per iteration, very loosely bounded here
        let nnz = cg.a.nnz() as u64;
        let per_iter_min = 3 * nnz;
        assert!(sink.total() > per_iter_min * cg.params.iterations as u64 / 2);
        assert!(sink.stores > 0);
    }

    #[test]
    fn matrix_gather_dominates_profile() {
        let mut cg = Cg::new(tiny());
        let mut prof = RegionProfiler::new(cg.space());
        cg.run(&mut prof);
        // the CSR arrays (rowptr+col+val) plus the x-gather should be the
        // bulk of all references — this is what makes CG "irregular"
        let hot = prof.hottest();
        let total: u64 = prof.loads.iter().sum::<u64>() + prof.stores.iter().sum::<u64>();
        let top3: u64 = hot.iter().take(3).map(|h| h.1).sum();
        assert!(top3 * 2 > total, "top regions should dominate");
        assert_eq!(
            prof.unattributed, 0,
            "all accesses inside registered regions"
        );
    }

    #[test]
    fn footprint_tracks_n() {
        let small = Cg::new(CgParams {
            n: 1000,
            offdiag_per_row: 5,
            iterations: 1,
            seed: 1,
        });
        let big = Cg::new(CgParams {
            n: 4000,
            offdiag_per_row: 5,
            iterations: 1,
            seed: 1,
        });
        assert!(big.footprint_bytes() > 3 * small.footprint_bytes());
    }
}
