//! The parameter database: Table 1 plus CACTI/Micron-derived constants.

use crate::multiplier::Multipliers;

/// A memory technology evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technology {
    /// Conventional DDR DRAM (the "RAM" row of Table 1).
    Dram,
    /// Phase-change memory (ITRS 2013).
    Pcm,
    /// Spin-torque-transfer magnetic RAM (ITRS 2013).
    SttRam,
    /// Ferro-electric RAM (Hoya et al., ISSCC 2006).
    FeRam,
    /// Embedded DRAM (Barth et al., ISSCC 2007).
    Edram,
    /// Hybrid Memory Cube (Jeddeloh & Keeth, VLSIT 2012 prototype data).
    Hmc,
    /// On-chip SRAM (the fixed L1/L2/L3 levels; not a Table 1 row — its
    /// per-level parameters come from [`sram_cache_params`]).
    Sram,
}

impl Technology {
    /// All technologies of Table 1.
    pub const ALL: [Technology; 6] = [
        Technology::Dram,
        Technology::Pcm,
        Technology::SttRam,
        Technology::FeRam,
        Technology::Edram,
        Technology::Hmc,
    ];

    /// The non-volatile main-memory candidates of the paper.
    pub const NVM: [Technology; 3] = [Technology::Pcm, Technology::SttRam, Technology::FeRam];

    /// The fast volatile LLC candidates of the paper.
    pub const FAST_LLC: [Technology; 2] = [Technology::Edram, Technology::Hmc];

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Technology::Dram => "DRAM",
            Technology::Pcm => "PCM",
            Technology::SttRam => "STTRAM",
            Technology::FeRam => "FeRAM",
            Technology::Edram => "eDRAM",
            Technology::Hmc => "HMC",
            Technology::Sram => "SRAM",
        }
    }

    /// Whether this is one of the non-volatile technologies.
    pub fn is_nvm(self) -> bool {
        matches!(
            self,
            Technology::Pcm | Technology::SttRam | Technology::FeRam
        )
    }

    /// Case-insensitive parse of common spellings ("stt-ram", "STTRAM", …).
    pub fn parse(s: &str) -> Option<Technology> {
        let k: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        match k.as_str() {
            "dram" | "ram" | "ddr" => Some(Technology::Dram),
            "pcm" => Some(Technology::Pcm),
            "sttram" | "stt" | "sttmram" => Some(Technology::SttRam),
            "feram" | "fram" => Some(Technology::FeRam),
            "edram" => Some(Technology::Edram),
            "hmc" => Some(Technology::Hmc),
            "sram" => Some(Technology::Sram),
            _ => None,
        }
    }
}

/// Characterization parameters of one memory technology (Table 1 columns,
/// plus the capacity-proportional static/refresh power the energy model
/// needs for Equation 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechParams {
    /// Which technology this characterizes (kept for reporting).
    pub tech: Technology,
    /// Read access delay in nanoseconds.
    pub read_ns: f64,
    /// Write access delay in nanoseconds.
    pub write_ns: f64,
    /// Read energy in picojoules per bit transferred.
    pub read_pj_per_bit: f64,
    /// Write energy in picojoules per bit transferred.
    pub write_pj_per_bit: f64,
    /// Static (background + refresh) power in milliwatts per MiB of
    /// capacity. Zero for the NVM technologies, per the paper's assumption.
    pub static_mw_per_mib: f64,
}

/// DRAM background + refresh power density.
///
/// From the Micron DDR3 system power calculator the paper cites: a 4 GiB
/// module idles near 1 W, i.e. ≈ 0.25 mW/MiB.
pub const DRAM_STATIC_MW_PER_MIB: f64 = 0.25;

/// eDRAM refresh power density (CACTI-class estimate; eDRAM macro cells
/// retain for ~100 µs and refresh far more often than DDR DRAM, so the
/// per-MiB burden is higher).
pub const EDRAM_STATIC_MW_PER_MIB: f64 = 2.0;

/// HMC background power density (stacked DRAM + logic layer, amortized).
pub const HMC_STATIC_MW_PER_MIB: f64 = 0.5;

impl TechParams {
    /// Table 1 of the paper, verbatim.
    pub fn of(tech: Technology) -> Self {
        match tech {
            Technology::Dram => Self {
                tech,
                read_ns: 10.0,
                write_ns: 10.0,
                read_pj_per_bit: 10.0,
                write_pj_per_bit: 10.0,
                static_mw_per_mib: DRAM_STATIC_MW_PER_MIB,
            },
            Technology::Pcm => Self {
                tech,
                read_ns: 21.0,
                write_ns: 100.0,
                read_pj_per_bit: 12.4,
                write_pj_per_bit: 210.3,
                static_mw_per_mib: 0.0,
            },
            Technology::SttRam => Self {
                tech,
                read_ns: 35.0,
                write_ns: 35.0,
                read_pj_per_bit: 58.5,
                write_pj_per_bit: 67.7,
                static_mw_per_mib: 0.0,
            },
            Technology::FeRam => Self {
                tech,
                read_ns: 40.0,
                write_ns: 65.0,
                read_pj_per_bit: 12.4,
                write_pj_per_bit: 210.0,
                static_mw_per_mib: 0.0,
            },
            Technology::Edram => Self {
                tech,
                read_ns: 4.4,
                write_ns: 4.4,
                read_pj_per_bit: 3.11,
                write_pj_per_bit: 3.09,
                static_mw_per_mib: EDRAM_STATIC_MW_PER_MIB,
            },
            Technology::Hmc => Self {
                tech,
                read_ns: 0.18,
                write_ns: 0.18,
                read_pj_per_bit: 0.48,
                write_pj_per_bit: 10.48,
                static_mw_per_mib: HMC_STATIC_MW_PER_MIB,
            },
            // Generic SRAM defaults to the L3-class parameters; the fixed
            // cache levels use `sram_cache_params(level)` for per-level values.
            Technology::Sram => sram_cache_params(3),
        }
    }

    /// Static power of a device of `capacity_bytes`, in watts.
    pub fn static_watts(&self, capacity_bytes: u64) -> f64 {
        self.static_mw_per_mib * (capacity_bytes as f64 / (1024.0 * 1024.0)) / 1000.0
    }

    /// Dynamic energy of one read moving `bytes`, in picojoules.
    #[inline]
    pub fn read_pj(&self, bytes: u64) -> f64 {
        self.read_pj_per_bit * bytes as f64 * 8.0
    }

    /// Dynamic energy of one write moving `bytes`, in picojoules.
    #[inline]
    pub fn write_pj(&self, bytes: u64) -> f64 {
        self.write_pj_per_bit * bytes as f64 * 8.0
    }

    /// Scale latency and energy by the heat-map multipliers, leaving
    /// static power untouched (the heat maps scale *per-operation* costs
    /// "with respect to DRAM").
    pub fn scaled(&self, m: Multipliers) -> Self {
        Self {
            tech: self.tech,
            read_ns: self.read_ns * m.read_latency,
            write_ns: self.write_ns * m.write_latency,
            read_pj_per_bit: self.read_pj_per_bit * m.read_energy,
            write_pj_per_bit: self.write_pj_per_bit * m.write_energy,
            static_mw_per_mib: self.static_mw_per_mib,
        }
    }
}

/// SRAM parameters for the fixed on-chip cache levels (L1/L2/L3).
///
/// The paper takes these from CACTI 6.0 for a Sandy Bridge-class part but
/// does not print them; the constants below are CACTI-class values at 32 nm
/// (latency grows with capacity, L3 ≈ 30 cycles at 3 GHz ≈ 10 ns which also
/// keeps it at the Table 1 DRAM bound). `level` is 1-based.
pub fn sram_cache_params(level: u8) -> TechParams {
    // SRAM leakage density: CACTI reports ~0.4–0.6 W for a 20 MiB 32 nm L3,
    // i.e. ≈ 25 mW/MiB; smaller, faster arrays leak slightly more per bit.
    match level {
        1 => TechParams {
            tech: Technology::Sram,
            read_ns: 1.2,
            write_ns: 1.2,
            read_pj_per_bit: 0.50,
            write_pj_per_bit: 0.50,
            static_mw_per_mib: 40.0,
        },
        2 => TechParams {
            tech: Technology::Sram,
            read_ns: 3.5,
            write_ns: 3.5,
            read_pj_per_bit: 0.80,
            write_pj_per_bit: 0.80,
            static_mw_per_mib: 30.0,
        },
        3 => TechParams {
            tech: Technology::Sram,
            read_ns: 8.0,
            write_ns: 8.0,
            read_pj_per_bit: 1.20,
            write_pj_per_bit: 1.20,
            static_mw_per_mib: 25.0,
        },
        _ => panic!("sram_cache_params: level must be 1..=3, got {level}"),
    }
}
