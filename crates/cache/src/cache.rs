//! One write-back, write-allocate set-associative cache level.

use crate::config::{CacheConfig, WritebackMissPolicy};
use crate::policy::PolicyState;
use crate::stats::LevelStats;
use memsim_trace::{AccessKind, TraceEvent};

const FLAG_VALID: u64 = 0b01;
const FLAG_DIRTY: u64 = 0b10;

/// Outcome of a demand access (load or store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The block was resident.
    Hit,
    /// The block was not resident. The caller must fetch the block from the
    /// next level; if `evicted_dirty` is set, the caller must also write the
    /// named block back to the next level.
    Miss {
        /// Base address of a dirty block displaced by the fill, if any.
        evicted_dirty: Option<u64>,
    },
}

/// Outcome of a writeback arriving from the level above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritebackOutcome {
    /// The block was resident and is now dirty here.
    HitMarkedDirty,
    /// Not resident; per [`WritebackMissPolicy::Bypass`] the caller must
    /// forward the writeback to the next level unchanged.
    MissBypass,
    /// Not resident; the block was allocated dirty here. If `evicted_dirty`
    /// is set, the displaced dirty block must be written back below.
    MissAllocated {
        /// Base address of a dirty block displaced by the allocation.
        evicted_dirty: Option<u64>,
    },
}

/// Live counters on the per-reference path. Totals that are pure sums
/// (`loads = load_hits + load_misses`, likewise `stores`) are derived when
/// [`Cache::stats`] materializes a [`LevelStats`], so each request pays for
/// one hit-or-miss counter and one byte counter instead of three.
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    load_hits: u64,
    load_misses: u64,
    store_hits: u64,
    store_misses: u64,
    writebacks_out: u64,
    fills: u64,
    bytes_loaded: u64,
    bytes_stored: u64,
    /// Demand probes resolved by the MRU-ring fast path (no set scan).
    mru_hits: u64,
}

/// A raw, copyable view of one level's live counters, for observability
/// probes that publish per-level values without allocating a
/// [`LevelStats`] (no `String` name) on every epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterValues {
    /// Read requests that hit.
    pub load_hits: u64,
    /// Read requests that missed.
    pub load_misses: u64,
    /// Write requests that hit.
    pub store_hits: u64,
    /// Write requests that missed.
    pub store_misses: u64,
    /// Dirty blocks evicted downward.
    pub writebacks_out: u64,
    /// Blocks installed.
    pub fills: u64,
    /// Bytes moved by read requests.
    pub bytes_loaded: u64,
    /// Bytes moved by write requests.
    pub bytes_stored: u64,
    /// Demand probes resolved by the MRU-ring fast path.
    pub mru_hits: u64,
}

/// A simulated cache level. Holds tags and line state only (no data — the
/// simulator tracks movement, not contents).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    ways: usize,
    block_shift: u32,
    /// `log2(sets)`, precomputed so the per-access path never recomputes it.
    set_shift: u32,
    set_mask: u64,
    /// `sets × ways` packed line words: `tag << 2 | DIRTY | VALID`. One
    /// probe is a single load + compare, and a set's ways are contiguous.
    lines: Vec<u64>,
    /// Per-set most-recently-hit/installed way, probed before the scan.
    mru: Vec<u32>,
    policy: PolicyState,
    counters: Counters,
    /// Per-line dirty-sector bitmasks (empty when unsectored).
    sector_masks: Vec<u64>,
    sector_bytes: u32,
    sector_shift: u32,
    /// Dirty mask of the block displaced by the most recent install, for
    /// the hierarchy to fan out into per-sector writebacks.
    pending_eviction_mask: u64,
}

impl Cache {
    /// Build a cache from a validated configuration.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let sets = cfg.sets() as usize;
        let ways = cfg.resolved_ways() as usize;
        let sector_bytes = cfg.sector_bytes.unwrap_or(cfg.block_bytes);
        let block_shift = cfg.block_bytes.trailing_zeros();
        let set_shift = sets.trailing_zeros();
        // Tags live in the top 62 bits of a line word; the two bits shifted
        // out are address bits the block and set fields must cover.
        assert!(
            block_shift + set_shift >= 2,
            "cache must span at least 4 bytes across block × sets"
        );
        Self {
            sets,
            ways,
            block_shift,
            set_shift,
            set_mask: sets as u64 - 1,
            lines: vec![0; sets * ways],
            mru: vec![0; sets],
            policy: PolicyState::new(cfg.policy, sets, ways),
            counters: Counters::default(),
            sector_masks: if cfg.sector_bytes.is_some() {
                vec![0; sets * ways]
            } else {
                Vec::new()
            },
            sector_bytes,
            sector_shift: sector_bytes.trailing_zeros(),
            pending_eviction_mask: 0,
            cfg,
        }
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Block size in bytes.
    #[inline]
    pub fn block_bytes(&self) -> u32 {
        self.cfg.block_bytes
    }

    /// Statistics collected so far, materialized from the live counters
    /// (request totals are the sums of their hit and miss counts).
    pub fn stats(&self) -> LevelStats {
        let c = &self.counters;
        LevelStats {
            name: self.cfg.name.clone(),
            loads: c.load_hits + c.load_misses,
            stores: c.store_hits + c.store_misses,
            load_hits: c.load_hits,
            load_misses: c.load_misses,
            store_hits: c.store_hits,
            store_misses: c.store_misses,
            writebacks_out: c.writebacks_out,
            fills: c.fills,
            bytes_loaded: c.bytes_loaded,
            bytes_stored: c.bytes_stored,
        }
    }

    /// The live counter values, including probe-path telemetry that
    /// [`LevelStats`] does not carry (MRU-ring short circuits).
    pub fn counter_values(&self) -> CounterValues {
        let c = &self.counters;
        CounterValues {
            load_hits: c.load_hits,
            load_misses: c.load_misses,
            store_hits: c.store_hits,
            store_misses: c.store_misses,
            writebacks_out: c.writebacks_out,
            fills: c.fills,
            bytes_loaded: c.bytes_loaded,
            bytes_stored: c.bytes_stored,
            mru_hits: c.mru_hits,
        }
    }

    /// Demand probes resolved by the MRU-ring fast path (a subset of
    /// hits; the ratio to `hits()` is the short-circuit rate).
    #[inline]
    pub fn mru_short_circuits(&self) -> u64 {
        self.counters.mru_hits
    }

    /// Total requests that have arrived at this level. The hierarchy derives
    /// its demand-reference count from L1's, so the per-event path does not
    /// maintain a separate one.
    #[inline]
    pub(crate) fn demand_refs(&self) -> u64 {
        let c = &self.counters;
        c.load_hits + c.load_misses + c.store_hits + c.store_misses
    }

    /// Total bytes moved by requests at this level.
    #[inline]
    pub(crate) fn demand_bytes(&self) -> u64 {
        self.counters.bytes_loaded + self.counters.bytes_stored
    }

    /// Align an address down to this cache's block base.
    #[inline]
    pub fn block_base(&self, addr: u64) -> u64 {
        addr >> self.block_shift << self.block_shift
    }

    /// The bit range `[lo, hi)` of the address field that selects this
    /// cache's set: `lo` is the block offset width, `hi - lo` the set index
    /// width. The set-sharded engine intersects these ranges across levels
    /// to find address bits that pick the same shard at every level.
    #[inline]
    pub fn set_index_bits(&self) -> (u32, u32) {
        (self.block_shift, self.block_shift + self.set_shift)
    }

    #[inline]
    fn locate(&self, addr: u64) -> (usize, u64) {
        let block = addr >> self.block_shift;
        let set = (block & self.set_mask) as usize;
        let tag = block >> self.set_shift;
        (set, tag)
    }

    /// MRU-guided way search: probe the way *after* the set's most-recent
    /// one first — the hierarchy's line buffer already short-circuits
    /// same-block repeats, so by the time `find` runs the block has
    /// changed, and LRU fills and revisits a set's ways in ring order
    /// (sweeping and cyclic streams hit the ring successor). Then probe the
    /// MRU way itself, then fall back to a linear scan of the set's
    /// contiguous line words.
    #[inline]
    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        let want = (tag << 2) | FLAG_VALID;
        let set_lines = &self.lines[base..base + self.ways];
        // `mru` is always in range; `min` (a cmov) lets the compiler drop
        // the probes' bounds checks.
        let mru = (self.mru[set] as usize).min(self.ways - 1);
        let next = if mru + 1 == self.ways { 0 } else { mru + 1 };
        if set_lines[next] & !FLAG_DIRTY == want {
            return Some(next);
        }
        if set_lines[mru] & !FLAG_DIRTY == want {
            return Some(mru);
        }
        set_lines.iter().position(|&w| w & !FLAG_DIRTY == want)
    }

    /// [`Cache::find`] fused with the victim pre-scan: on a miss, also
    /// report the first invalid way (if any) from the same pass over the
    /// set's line words, so the fill does not rescan them.
    #[inline]
    fn probe(&mut self, set: usize, tag: u64) -> Result<usize, Option<usize>> {
        let base = set * self.ways;
        let want = (tag << 2) | FLAG_VALID;
        let set_lines = &self.lines[base..base + self.ways];
        let mru = (self.mru[set] as usize).min(self.ways - 1);
        let next = if mru + 1 == self.ways { 0 } else { mru + 1 };
        if set_lines[next] & !FLAG_DIRTY == want {
            self.counters.mru_hits += 1;
            return Ok(next);
        }
        if set_lines[mru] & !FLAG_DIRTY == want {
            self.counters.mru_hits += 1;
            return Ok(mru);
        }
        let mut invalid = None;
        for (w, &word) in set_lines.iter().enumerate() {
            if word & !FLAG_DIRTY == want {
                return Ok(w);
            }
            if word & FLAG_VALID == 0 && invalid.is_none() {
                invalid = Some(w);
            }
        }
        Err(invalid)
    }

    /// Reconstruct the base address of the block held in `(set, way)`.
    #[inline]
    fn resident_addr(&self, set: usize, way: usize) -> u64 {
        let tag = self.lines[set * self.ways + way] >> 2;
        ((tag << self.set_shift) | set as u64) << self.block_shift
    }

    /// Pick a victim way: an invalid way if one exists, else ask the policy.
    #[inline]
    fn pick_victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        for w in 0..self.ways {
            if self.lines[base + w] & FLAG_VALID == 0 {
                return w;
            }
        }
        self.policy.victim(set)
    }

    #[inline]
    fn sectored(&self) -> bool {
        !self.sector_masks.is_empty()
    }

    /// Bitmask of the sectors covered by `[addr, addr + bytes)` within the
    /// block containing `addr`.
    #[inline]
    fn sector_span(&self, addr: u64, bytes: u32) -> u64 {
        let block_base = self.block_base(addr);
        let first = ((addr - block_base) >> self.sector_shift) as u32;
        let last_byte = addr - block_base + u64::from(bytes.max(1)) - 1;
        let last = (last_byte >> self.sector_shift) as u32;
        let count = last - first + 1;
        let run = if count >= 64 {
            !0u64
        } else {
            (1u64 << count) - 1
        };
        run << first
    }

    /// Mark the sectors covered by a store as dirty (no-op when unsectored
    /// — the FLAG_DIRTY bit already covers whole-block tracking).
    #[inline]
    fn mark_dirty_sectors(&mut self, idx: usize, addr: u64, bytes: u32) {
        if self.sectored() {
            self.sector_masks[idx] |= self.sector_span(addr, bytes);
        }
    }

    /// Install `tag` into `(set, way)`, returning the displaced dirty block
    /// address if the victim was valid and dirty.
    #[inline]
    fn install(&mut self, set: usize, way: usize, tag: u64, dirty: bool) -> Option<u64> {
        let idx = set * self.ways + way;
        let evicted = (self.lines[idx] & (FLAG_VALID | FLAG_DIRTY) == (FLAG_VALID | FLAG_DIRTY))
            .then(|| self.resident_addr(set, way));
        if evicted.is_some() && self.sectored() {
            self.pending_eviction_mask = self.sector_masks[idx];
        }
        if self.sectored() {
            self.sector_masks[idx] = 0;
        }
        self.lines[idx] = (tag << 2) | FLAG_VALID | if dirty { FLAG_DIRTY } else { 0 };
        self.mru[set] = way as u32;
        self.policy.on_install(set, way);
        self.counters.fills += 1;
        evicted
    }

    /// Payload of the most recent dirty eviction: the whole block, or only
    /// the dirty sectors of a sectored page. The eviction is one writeback
    /// *transaction* either way (a page eviction is one device write whose
    /// latency Table 1 models per operation), but with sector tracking the
    /// energy model only pays for the bytes actually dirty.
    #[inline]
    pub fn take_eviction_bytes(&mut self) -> u32 {
        if self.sectored() {
            let m = self.pending_eviction_mask;
            self.pending_eviction_mask = 0;
            m.count_ones() * self.sector_bytes
        } else {
            self.cfg.block_bytes
        }
    }

    /// Process a demand access. Counts the request (with `req_bytes` moved)
    /// and returns what the caller must do next.
    #[inline]
    pub fn access(&mut self, addr: u64, kind: AccessKind, req_bytes: u32) -> AccessOutcome {
        let (set, tag) = self.locate(addr);
        let probed = self.probe(set, tag);
        if let Ok(way) = probed {
            match kind {
                AccessKind::Load => {
                    self.counters.load_hits += 1;
                    self.counters.bytes_loaded += u64::from(req_bytes);
                }
                AccessKind::Store => {
                    self.counters.store_hits += 1;
                    self.counters.bytes_stored += u64::from(req_bytes);
                    self.lines[set * self.ways + way] |= FLAG_DIRTY;
                    self.mark_dirty_sectors(set * self.ways + way, addr, req_bytes);
                }
            }
            self.mru[set] = way as u32;
            self.policy.on_hit(set, way);
            AccessOutcome::Hit
        } else {
            match kind {
                AccessKind::Load => {
                    self.counters.load_misses += 1;
                    self.counters.bytes_loaded += u64::from(req_bytes);
                }
                AccessKind::Store => {
                    self.counters.store_misses += 1;
                    self.counters.bytes_stored += u64::from(req_bytes);
                }
            }
            let way = match probed {
                Err(Some(invalid)) => invalid,
                _ => self.policy.victim(set),
            };
            let evicted_dirty = self.install(set, way, tag, kind.is_store());
            if kind.is_store() {
                self.mark_dirty_sectors(set * self.ways + way, addr, req_bytes);
            }
            if evicted_dirty.is_some() {
                self.counters.writebacks_out += 1;
            }
            AccessOutcome::Miss { evicted_dirty }
        }
    }

    /// Process the longest prefix of `events` that resolves entirely on the
    /// demand hit path, returning how many leading events were consumed.
    /// The batch stops (without consuming the event) at the first reference
    /// that misses, spans more than one block, or has size zero — those fall
    /// back to the caller's scalar walk, which owns misses, splitting, and
    /// the line-buffer bookkeeping for empty references.
    ///
    /// Per consumed event the bookkeeping is exactly [`Cache::access`]'s hit
    /// path — hit/byte counters, dirty flag and sector mask on stores, MRU
    /// update, policy promotion in stream order — but the counter updates
    /// accumulate in locals and land once per batch, and the probe loop runs
    /// over the contiguous packed tag words with no virtual dispatch, which
    /// is what makes chunked delivery fast on hit-heavy streams.
    pub(crate) fn access_hit_batch(&mut self, events: &[TraceEvent]) -> usize {
        let mut load_hits = 0u64;
        let mut store_hits = 0u64;
        let mut bytes_loaded = 0u64;
        let mut bytes_stored = 0u64;
        let mut mru_hits = 0u64;
        let mut taken = 0usize;
        for &ev in events {
            let first = ev.addr >> self.block_shift;
            let last = ev.end().saturating_sub(1) >> self.block_shift;
            if ev.size == 0 || first != last {
                break;
            }
            let set = (first & self.set_mask) as usize;
            let tag = first >> self.set_shift;
            let base = set * self.ways;
            let want = (tag << 2) | FLAG_VALID;
            let set_lines = &self.lines[base..base + self.ways];
            let mru = (self.mru[set] as usize).min(self.ways - 1);
            let next = if mru + 1 == self.ways { 0 } else { mru + 1 };
            // same probe order as `find`/`probe`: ring successor, MRU way,
            // then the linear scan — and the same FLAG_DIRTY masking, so
            // stores earlier in the batch never perturb later decisions
            let way = if set_lines[next] & !FLAG_DIRTY == want {
                mru_hits += 1;
                next
            } else if set_lines[mru] & !FLAG_DIRTY == want {
                mru_hits += 1;
                mru
            } else if let Some(w) = set_lines.iter().position(|&l| l & !FLAG_DIRTY == want) {
                w
            } else {
                break;
            };
            match ev.kind {
                AccessKind::Load => {
                    load_hits += 1;
                    bytes_loaded += u64::from(ev.size);
                }
                AccessKind::Store => {
                    store_hits += 1;
                    bytes_stored += u64::from(ev.size);
                    self.lines[base + way] |= FLAG_DIRTY;
                    self.mark_dirty_sectors(base + way, ev.addr, ev.size);
                }
            }
            self.mru[set] = way as u32;
            self.policy.on_hit(set, way);
            taken += 1;
        }
        self.counters.load_hits += load_hits;
        self.counters.store_hits += store_hits;
        self.counters.bytes_loaded += bytes_loaded;
        self.counters.bytes_stored += bytes_stored;
        self.counters.mru_hits += mru_hits;
        taken
    }

    /// Fast re-hit for the hierarchy's L1 line buffer: the caller guarantees
    /// the block containing `addr` is resident at this set's MRU way (true
    /// after any demand access to the block, since both the hit and the fill
    /// paths leave it most-recent). Performs exactly the hit-path bookkeeping
    /// of [`Cache::access`] — stats, dirty flag, sector mask, and policy
    /// promotion (an SRRIP re-hit must still reset the RRPV) — without the
    /// tag search.
    #[inline]
    pub(crate) fn rehit(&mut self, addr: u64, kind: AccessKind, req_bytes: u32) {
        let set = ((addr >> self.block_shift) & self.set_mask) as usize;
        let way = self.mru[set] as usize;
        let idx = set * self.ways + way;
        debug_assert_eq!(
            self.lines[idx] | FLAG_DIRTY,
            (addr >> (self.block_shift + self.set_shift) << 2) | FLAG_VALID | FLAG_DIRTY,
            "line buffer pointed at a non-resident block"
        );
        match kind {
            AccessKind::Load => {
                self.counters.load_hits += 1;
                self.counters.bytes_loaded += u64::from(req_bytes);
            }
            AccessKind::Store => {
                self.counters.store_hits += 1;
                self.counters.bytes_stored += u64::from(req_bytes);
                self.lines[idx] |= FLAG_DIRTY;
                self.mark_dirty_sectors(idx, addr, req_bytes);
            }
        }
        self.policy.on_hit(set, way);
    }

    /// Process a writeback arriving from the level above. Counts a store of
    /// `req_bytes` and applies the configured [`WritebackMissPolicy`].
    pub fn writeback(&mut self, addr: u64, req_bytes: u32) -> WritebackOutcome {
        let (set, tag) = self.locate(addr);
        self.counters.bytes_stored += u64::from(req_bytes);
        if let Some(way) = self.find(set, tag) {
            self.counters.store_hits += 1;
            self.lines[set * self.ways + way] |= FLAG_DIRTY;
            self.mark_dirty_sectors(set * self.ways + way, addr, req_bytes);
            self.mru[set] = way as u32;
            self.policy.on_hit(set, way);
            return WritebackOutcome::HitMarkedDirty;
        }
        self.counters.store_misses += 1;
        match self.cfg.writeback_miss {
            WritebackMissPolicy::Bypass => WritebackOutcome::MissBypass,
            WritebackMissPolicy::Allocate => {
                let way = self.pick_victim(set);
                let evicted_dirty = self.install(set, way, tag, true);
                self.mark_dirty_sectors(set * self.ways + way, addr, req_bytes);
                if evicted_dirty.is_some() {
                    self.counters.writebacks_out += 1;
                }
                WritebackOutcome::MissAllocated { evicted_dirty }
            }
        }
    }

    /// Whether the block containing `addr` is resident.
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        self.find(set, tag).is_some()
    }

    /// Whether the block containing `addr` is resident *and dirty*.
    pub fn is_dirty(&self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        self.find(set, tag)
            .map(|w| self.lines[set * self.ways + w] & FLAG_DIRTY != 0)
            .unwrap_or(false)
    }

    /// Number of valid blocks currently resident.
    pub fn resident_blocks(&self) -> u64 {
        self.lines.iter().filter(|w| **w & FLAG_VALID != 0).count() as u64
    }

    /// Invalidate every line, returning `(addr, bytes)` writeback
    /// transactions for all dirty data (one per dirty block; sectored
    /// blocks carry only their dirty sectors' bytes), in set/way order.
    /// Counts one `writebacks_out` per dirty block. Used by the
    /// end-of-stream drain.
    pub fn drain_dirty(&mut self) -> Vec<(u64, u32)> {
        let mut dirty = Vec::new();
        for set in 0..self.sets {
            for way in 0..self.ways {
                let idx = set * self.ways + way;
                if self.lines[idx] & (FLAG_VALID | FLAG_DIRTY) == (FLAG_VALID | FLAG_DIRTY) {
                    let base = self.resident_addr(set, way);
                    let bytes = if self.sectored() {
                        self.sector_masks[idx].count_ones() * self.sector_bytes
                    } else {
                        self.cfg.block_bytes
                    };
                    dirty.push((base, bytes));
                    self.counters.writebacks_out += 1;
                }
                if self.sectored() {
                    self.sector_masks[idx] = 0;
                }
                self.lines[idx] = 0;
            }
        }
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Associativity;
    use crate::policy::ReplacementPolicy;
    use proptest::prelude::*;

    fn small_cache(ways: u32) -> Cache {
        // 4 sets × `ways` ways × 64 B blocks
        Cache::new(CacheConfig::new("t", 4 * u64::from(ways) * 64, 64, ways))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache(2);
        assert_eq!(
            c.access(0x1000, AccessKind::Load, 8),
            AccessOutcome::Miss {
                evicted_dirty: None
            }
        );
        assert_eq!(c.access(0x1008, AccessKind::Load, 8), AccessOutcome::Hit);
        assert_eq!(c.stats().load_misses, 1);
        assert_eq!(c.stats().load_hits, 1);
        assert!(c.stats().is_consistent());
    }

    #[test]
    fn store_marks_dirty_and_eviction_reports_it() {
        let mut c = small_cache(1); // direct-mapped, 4 sets
                                    // store to set 0
        c.access(0x0, AccessKind::Store, 8);
        assert!(c.is_dirty(0x0));
        // conflicting load: 4 sets × 64 B → same set every 256 B
        let out = c.access(0x100, AccessKind::Load, 8);
        assert_eq!(
            out,
            AccessOutcome::Miss {
                evicted_dirty: Some(0x0)
            }
        );
        assert_eq!(c.stats().writebacks_out, 1);
        assert!(!c.contains(0x0));
        assert!(c.contains(0x100));
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut c = small_cache(1);
        c.access(0x0, AccessKind::Load, 8);
        let out = c.access(0x100, AccessKind::Load, 8);
        assert_eq!(
            out,
            AccessOutcome::Miss {
                evicted_dirty: None
            }
        );
        assert_eq!(c.stats().writebacks_out, 0);
    }

    #[test]
    fn store_miss_allocates_dirty() {
        let mut c = small_cache(2);
        c.access(0x40, AccessKind::Store, 8);
        assert!(c.is_dirty(0x40));
        assert_eq!(c.stats().store_misses, 1);
    }

    #[test]
    fn writeback_hit_marks_dirty() {
        let mut c = small_cache(2);
        c.access(0x0, AccessKind::Load, 8);
        assert!(!c.is_dirty(0x0));
        assert_eq!(c.writeback(0x0, 64), WritebackOutcome::HitMarkedDirty);
        assert!(c.is_dirty(0x0));
    }

    #[test]
    fn writeback_miss_bypasses_by_default() {
        let mut c = small_cache(2);
        assert_eq!(c.writeback(0x0, 64), WritebackOutcome::MissBypass);
        assert!(!c.contains(0x0), "bypass must not allocate");
        assert_eq!(c.stats().store_misses, 1);
    }

    #[test]
    fn writeback_miss_allocate_policy() {
        let mut c = Cache::new(
            CacheConfig::new("t", 4 * 64, 64, 1).with_writeback_miss(WritebackMissPolicy::Allocate),
        );
        assert_eq!(
            c.writeback(0x0, 64),
            WritebackOutcome::MissAllocated {
                evicted_dirty: None
            }
        );
        assert!(c.is_dirty(0x0));
        // displacing it with another writeback to the same set reports the victim
        let out = c.writeback(0x100, 64);
        assert_eq!(
            out,
            WritebackOutcome::MissAllocated {
                evicted_dirty: Some(0x0)
            }
        );
    }

    #[test]
    fn lru_within_set() {
        let mut c = small_cache(2); // 2-way
                                    // set 0 blocks live at multiples of 256 (4 sets × 64)
        c.access(0x000, AccessKind::Load, 8);
        c.access(0x100, AccessKind::Load, 8);
        c.access(0x000, AccessKind::Load, 8); // touch -> 0x100 is LRU
        c.access(0x200, AccessKind::Load, 8); // evicts 0x100
        assert!(c.contains(0x000));
        assert!(!c.contains(0x100));
        assert!(c.contains(0x200));
    }

    #[test]
    fn drain_returns_all_dirty_blocks() {
        let mut c = small_cache(2);
        c.access(0x000, AccessKind::Store, 8);
        c.access(0x040, AccessKind::Load, 8);
        c.access(0x080, AccessKind::Store, 8);
        let mut dirty = c.drain_dirty();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![(0x000, 64), (0x080, 64)]);
        assert_eq!(c.resident_blocks(), 0);
        // second drain is empty
        assert!(c.drain_dirty().is_empty());
    }

    #[test]
    fn resident_addr_roundtrip() {
        let mut c = Cache::new(CacheConfig::new("t", 64 * 1024, 64, 8));
        for addr in [0u64, 0x12340, 0xdead_b000, 0xffff_ffc0] {
            c.access(addr, AccessKind::Load, 8);
            assert!(c.contains(addr), "block for {addr:#x} must be resident");
        }
    }

    #[test]
    fn fully_associative_single_set() {
        let mut c = Cache::new(CacheConfig {
            name: "fa".into(),
            capacity_bytes: 4 * 64,
            block_bytes: 64,
            associativity: Associativity::Full,
            policy: ReplacementPolicy::Lru,
            writeback_miss: WritebackMissPolicy::Bypass,
            sector_bytes: None,
        });
        // 4 blocks anywhere in memory coexist
        for i in 0..4u64 {
            c.access(i * 0x1_0000, AccessKind::Load, 8);
        }
        for i in 0..4u64 {
            assert!(c.contains(i * 0x1_0000));
        }
        // a 5th evicts the least recently used (the first)
        c.access(4 * 0x1_0000, AccessKind::Load, 8);
        assert!(!c.contains(0));
    }

    fn sectored_cache() -> Cache {
        // 2 sets × 1 way × 512 B pages, 64 B sectors
        Cache::new(CacheConfig::new("pg", 2 * 512, 512, 1).with_sectors(64))
    }

    #[test]
    fn sectored_eviction_carries_only_dirty_bytes() {
        let mut c = sectored_cache();
        // fill page 0 clean, then dirty two sectors via writebacks
        c.access(0x000, AccessKind::Load, 64);
        c.writeback(0x000, 64); // sector 0
        c.writeback(0x080, 64); // sector 2
                                // conflict: pages map set = (addr/512) % 2, so 0x400 hits set 0
        let out = c.access(0x400, AccessKind::Load, 64);
        assert_eq!(
            out,
            AccessOutcome::Miss {
                evicted_dirty: Some(0x000)
            }
        );
        assert_eq!(c.take_eviction_bytes(), 128, "two dirty sectors");
    }

    #[test]
    fn sectored_demand_store_dirties_one_sector() {
        let mut c = sectored_cache();
        c.access(0x1C0, AccessKind::Store, 8); // sector 7 of page 0x000
        let out = c.access(0x400, AccessKind::Load, 64);
        assert_eq!(
            out,
            AccessOutcome::Miss {
                evicted_dirty: Some(0x000)
            }
        );
        assert_eq!(c.take_eviction_bytes(), 64);
    }

    #[test]
    fn sectored_clean_page_evicts_silently() {
        let mut c = sectored_cache();
        c.access(0x000, AccessKind::Load, 64);
        let out = c.access(0x400, AccessKind::Load, 64);
        assert_eq!(
            out,
            AccessOutcome::Miss {
                evicted_dirty: None
            }
        );
    }

    #[test]
    fn sectored_drain_reports_dirty_bytes() {
        let mut c = sectored_cache();
        c.access(0x000, AccessKind::Load, 64); // page resident
        c.access(0x200, AccessKind::Load, 64); // set-1 page resident
        c.writeback(0x000, 64);
        c.writeback(0x040, 64);
        c.writeback(0x200, 64); // one sector of the set-1 page
        let mut drained = c.drain_dirty();
        drained.sort_unstable();
        assert_eq!(drained, vec![(0x000, 128), (0x200, 64)]);
    }

    #[test]
    fn unsectored_eviction_is_whole_block() {
        let mut c = small_cache(1);
        c.access(0x0, AccessKind::Store, 8);
        c.access(0x100, AccessKind::Load, 8);
        assert_eq!(c.take_eviction_bytes(), 64);
    }

    #[test]
    fn sector_mask_resets_on_reinstall() {
        let mut c = sectored_cache();
        c.writeback(0x000, 64); // page 0 dirty sector 0
        c.access(0x400, AccessKind::Load, 64); // evicts page 0
        let _ = c.take_eviction_bytes();
        // page 0x400 is clean; evicting it must report nothing dirty
        let out = c.access(0x000, AccessKind::Load, 64);
        assert_eq!(
            out,
            AccessOutcome::Miss {
                evicted_dirty: None
            }
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn sectors_must_be_power_of_two() {
        Cache::new(CacheConfig::new("bad", 1024, 512, 1).with_sectors(96));
    }

    #[test]
    #[should_panic(expected = "at most 64 sectors")]
    fn sector_count_bounded() {
        Cache::new(CacheConfig::new("bad", 8192, 8192, 1).with_sectors(64));
    }

    /// Naive reference model: fully associative LRU as an ordered Vec.
    struct RefLru {
        cap_blocks: usize,
        block: u64,
        // most recent at the back; (block_no, dirty)
        lines: Vec<(u64, bool)>,
    }

    impl RefLru {
        fn access(&mut self, addr: u64, store: bool) -> (bool, Option<u64>) {
            let b = addr / self.block;
            if let Some(pos) = self.lines.iter().position(|(x, _)| *x == b) {
                let (_, mut d) = self.lines.remove(pos);
                d |= store;
                self.lines.push((b, d));
                (true, None)
            } else {
                let mut evicted = None;
                if self.lines.len() == self.cap_blocks {
                    let (victim, dirty) = self.lines.remove(0);
                    if dirty {
                        evicted = Some(victim * self.block);
                    }
                }
                self.lines.push((b, store));
                (false, evicted)
            }
        }
    }

    proptest! {
        /// The full-associative LRU cache agrees exactly (hit/miss and dirty
        /// evictions) with an obviously-correct reference model.
        #[test]
        fn matches_reference_lru(
            ops in proptest::collection::vec((0u64..4096, proptest::bool::ANY), 1..800),
            cap_blocks in 1usize..16,
        ) {
            let mut c = Cache::new(CacheConfig::fully_associative(
                "fa", cap_blocks as u64 * 64, 64,
            ));
            let mut r = RefLru { cap_blocks, block: 64, lines: Vec::new() };
            for (addr, is_store) in ops {
                let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
                let out = c.access(addr, kind, 8);
                let (ref_hit, ref_evicted) = r.access(addr, is_store);
                match out {
                    AccessOutcome::Hit => prop_assert!(ref_hit),
                    AccessOutcome::Miss { evicted_dirty } => {
                        prop_assert!(!ref_hit);
                        prop_assert_eq!(evicted_dirty, ref_evicted);
                    }
                }
            }
            prop_assert!(c.stats().is_consistent());
        }

        /// A sectored cache whose sector size equals its block size is
        /// observably identical to an unsectored one: same access and
        /// writeback outcomes, same eviction payloads, same final stats
        /// and drain transactions, on arbitrary mixed sequences.
        #[test]
        fn whole_block_sectors_match_unsectored(
            ops in proptest::collection::vec(
                (0u64..8192, proptest::bool::ANY, proptest::bool::ANY),
                1..400,
            ),
        ) {
            let base = CacheConfig::new("eq", 8 * 2 * 64, 64, 2);
            let mut plain = Cache::new(base.clone());
            let mut sect = Cache::new(base.with_sectors(64));
            for (addr, is_store, is_writeback) in ops {
                if is_writeback {
                    // writebacks arrive block-aligned (they carry victim
                    // block addresses), per the hierarchy's contract
                    let a = plain.writeback(addr & !63, 64);
                    let b = sect.writeback(addr & !63, 64);
                    prop_assert_eq!(a, b);
                } else {
                    // demand references are pre-split to a single block
                    let addr = addr & !7;
                    let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
                    let a = plain.access(addr, kind, 8);
                    let b = sect.access(addr, kind, 8);
                    prop_assert_eq!(a, b);
                    if matches!(a, AccessOutcome::Miss { evicted_dirty: Some(_) }) {
                        prop_assert_eq!(
                            plain.take_eviction_bytes(),
                            sect.take_eviction_bytes(),
                            "dirty whole-block eviction payloads must agree"
                        );
                    }
                }
            }
            prop_assert_eq!(plain.stats(), sect.stats());
            prop_assert_eq!(plain.drain_dirty(), sect.drain_dirty());
        }

        /// Occupancy never exceeds capacity, for any policy.
        #[test]
        fn occupancy_bounded(
            addrs in proptest::collection::vec(0u64..100_000, 1..500),
            policy_idx in 0usize..5,
        ) {
            let policy = ReplacementPolicy::ALL[policy_idx];
            let ways = if policy == ReplacementPolicy::TreePlru { 4 } else { 3 };
            let mut c = Cache::new(
                CacheConfig::new("t", 8 * ways * 64, 64, ways as u32).with_policy(policy),
            );
            for a in addrs {
                c.access(a, AccessKind::Load, 8);
                prop_assert!(c.resident_blocks() <= 8 * ways);
            }
            prop_assert!(c.stats().is_consistent());
        }
    }
}
