//! Live progress rendering from epoch-published counters.
//!
//! Workers publish cumulative `progress.*` counters into the global
//! registry (see naming conventions below); a sampler thread wakes a few
//! times per second, diffs against its previous sample, and renders one
//! status line to stderr. The hot path never blocks on, or even notices,
//! the sampler.
//!
//! Counter conventions (all under the global registry):
//! * `progress.events` — cumulative demand events processed, all workers.
//! * `progress.chunks` — cumulative trace chunks consumed/produced.
//! * `progress.shard<i>.events` — per-shard cumulative events (replay and
//!   the set-sharded engine).
//! * `progress.shards_total` / `progress.shards_done` — gauge/counter pair
//!   used for the ETA extrapolation and the `shards a/b` display.
//! * `<prefix>.shard<i>.queue_depth` — set-sharded engine ingress queue
//!   occupancy gauges; the line shows the deepest queue.

use crate::registry::MetricValue;
use std::io::IsTerminal;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Background thread that renders a `--progress` line to stderr until
/// dropped. Construction spawns the thread; drop stops and joins it and
/// clears the line.
#[derive(Debug)]
pub struct ProgressSampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

const SAMPLE_EVERY: Duration = Duration::from_millis(250);

/// Without a terminal each sample is a permanent log line, not an
/// overwrite — emit one every `NON_TTY_EVERY` ticks (every 2 s) so a
/// captured log stays readable.
const NON_TTY_EVERY: u32 = 8;

impl ProgressSampler {
    /// Start sampling the global registry, labelling the line `label`.
    pub fn start(label: &str) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let label = label.to_string();
        let handle = thread::Builder::new()
            .name("obs-progress".into())
            .spawn(move || sample_loop(&label, &stop2))
            .ok();
        Self { stop, handle }
    }
}

impl Drop for ProgressSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        // Clear the status line so the final report starts clean — but only
        // where there is a line to clear; in a pipe or CI log the escape
        // sequence would just be noise in the capture.
        if std::io::stderr().is_terminal() {
            eprint!("\r\x1b[2K");
        }
    }
}

fn sample_loop(label: &str, stop: &AtomicBool) {
    let tty = std::io::stderr().is_terminal();
    let start = Instant::now();
    let mut last_events = 0u64;
    let mut last_t = start;
    let mut tick = 0u32;
    while !stop.load(Ordering::Relaxed) {
        thread::sleep(SAMPLE_EVERY);
        tick += 1;
        if !tty && tick % NON_TTY_EVERY != 0 {
            continue;
        }
        let now = Instant::now();
        let line = render_line(label, start, now, &mut last_events, &mut last_t);
        if tty {
            // overwrite the status line in place
            eprint!("\r\x1b[2K{line}");
        } else {
            // append-only plain lines: no carriage returns, no escapes
            eprintln!("{line}");
        }
    }
    if let Some(line) = final_flush(tty, label, start, &mut last_events, &mut last_t) {
        eprintln!("{line}");
    }
}

/// The line flushed once when sampling stops. A run usually ends between
/// the reduced non-tty ticks, so without this the captured log's last
/// progress line can be seconds stale (old `points_done`); re-render at
/// stop time so the log always ends with the final counter state. On a
/// terminal there is nothing to flush — `Drop` clears the live line and
/// the end-of-run summary follows.
fn final_flush(
    tty: bool,
    label: &str,
    start: Instant,
    last_events: &mut u64,
    last_t: &mut Instant,
) -> Option<String> {
    if tty {
        return None;
    }
    Some(render_line(
        label,
        start,
        Instant::now(),
        last_events,
        last_t,
    ))
}

fn render_line(
    label: &str,
    start: Instant,
    now: Instant,
    last_events: &mut u64,
    last_t: &mut Instant,
) -> String {
    let reg = crate::global();
    let events = reg.counter_value("progress.events").unwrap_or(0);
    let chunks = reg.counter_value("progress.chunks").unwrap_or(0);
    let dt = now.duration_since(*last_t).as_secs_f64().max(1e-9);
    // The windowed rate is what the run is doing *right now* — good for the
    // Mev/s display, hopeless for an ETA (one slow window between samples
    // whipsaws the estimate by minutes). The ETA uses the cumulative
    // average rate instead, which converges as the run progresses.
    let rate = events.saturating_sub(*last_events) as f64 / dt;
    let avg_rate = events as f64 / now.duration_since(start).as_secs_f64().max(1e-9);
    *last_events = events;
    *last_t = now;

    let mut line = format!(
        "[{label}] {:.1}s {} events",
        now.duration_since(start).as_secs_f64(),
        human(events),
    );
    if chunks > 0 {
        line.push_str(&format!(", {} chunks", human(chunks)));
    }
    line.push_str(&format!(" | {:.1} Mev/s", rate / 1e6));

    // Per-shard lag: spread between slowest and fastest shard. The same
    // pass picks up the set-sharded engine's ingress queue-depth gauges
    // (`*.shard<i>.queue_depth`): a queue pinned at its bound means the
    // producer outruns that shard and back-pressure is throttling the walk.
    let mut shard_events: Vec<u64> = Vec::new();
    let mut queue_depth_max: Option<u64> = None;
    for (name, value) in reg.snapshot() {
        match value {
            MetricValue::Counter(v)
                if name.starts_with("progress.shard") && name.ends_with(".events") =>
            {
                shard_events.push(v);
            }
            MetricValue::Gauge(v) if name.ends_with(".queue_depth") => {
                queue_depth_max = Some(queue_depth_max.map_or(v, |m| m.max(v)));
            }
            _ => {}
        }
    }
    if let Some(depth) = queue_depth_max {
        line.push_str(&format!(" | q max {depth}"));
    }
    let shards_total = reg.gauge_value("progress.shards_total").unwrap_or(0);
    let shards_done = reg.counter_value("progress.shards_done").unwrap_or(0);
    if shards_total > 0 {
        line.push_str(&format!(" | shards {shards_done}/{shards_total}"));
        if let (Some(&min), Some(&max)) = (shard_events.iter().min(), shard_events.iter().max()) {
            if max > min {
                line.push_str(&format!(" (lag {})", human(max - min)));
            }
        }
        // ETA by extrapolating completed-shard cost over remaining shards.
        if shards_done > 0 && shards_done < shards_total && avg_rate > 0.0 {
            let per_shard = events as f64 / shards_done as f64;
            let remaining = per_shard * (shards_total - shards_done) as f64;
            line.push_str(&format!(" | eta {:.0}s", remaining / avg_rate));
        }
    } else if avg_rate > 0.0 {
        // Single-phase ETA if a total is known.
        let total = reg.gauge_value("progress.total").unwrap_or(0);
        if total > events {
            line.push_str(&format!(
                " | eta {:.0}s",
                (total - events) as f64 / avg_rate
            ));
        }
    }

    // Sweep-level state (reproduce / journaled table-figure-heatmap runs).
    let pts_done = reg.counter_value("sweep.points_done").unwrap_or(0);
    let pts_skipped = reg.counter_value("sweep.points_skipped").unwrap_or(0);
    let pts_failed = reg.counter_value("sweep.points_failed").unwrap_or(0);
    if pts_done + pts_skipped + pts_failed > 0 {
        line.push_str(&format!(" | points {pts_done} done"));
        if pts_skipped > 0 {
            line.push_str(&format!(", {pts_skipped} resumed"));
        }
        if pts_failed > 0 {
            line.push_str(&format!(", {pts_failed} failed"));
        }
    }
    line
}

fn human(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_line_reads_registry_without_panicking() {
        let _lock = crate::test_lock();
        crate::reset();
        let reg = crate::global();
        reg.counter("progress.events").add(1_234_567);
        reg.counter("progress.chunks").add(300);
        reg.counter("progress.shard0.events").add(600_000);
        reg.counter("progress.shard1.events").add(634_567);
        reg.gauge("progress.shards_total").set(4);
        reg.counter("progress.shards_done").inc();
        let t0 = Instant::now();
        let mut last_events = 0;
        let mut last_t = t0;
        let line = render_line("replay", t0, Instant::now(), &mut last_events, &mut last_t);
        assert!(line.contains("events"), "{line}");
        assert!(line.contains("shards 1/4"), "{line}");
        crate::reset();
    }

    #[test]
    fn eta_uses_cumulative_rate_not_the_last_window() {
        let _lock = crate::test_lock();
        crate::reset();
        let reg = crate::global();
        // 10M events over 10s: the average rate is a steady 1 Mev/s
        reg.counter("progress.events").add(10_000_000);
        reg.gauge("progress.total").set(20_000_000);
        let now = Instant::now();
        let start = now - Duration::from_secs(10);
        // ...but the last 250ms window was completely stalled
        let mut last_events = 10_000_000;
        let mut last_t = now - Duration::from_millis(250);
        let line = render_line("reproduce", start, now, &mut last_events, &mut last_t);
        // the instantaneous display reflects the stall
        assert!(line.contains("| 0.0 Mev/s"), "{line}");
        // the ETA does not whipsaw to infinity with it: 10M left at 1 Mev/s
        assert!(line.contains("eta 10s"), "{line}");
        crate::reset();
    }

    #[test]
    fn render_line_shows_sweep_point_counters() {
        let _lock = crate::test_lock();
        crate::reset();
        let reg = crate::global();
        reg.counter("sweep.points_done").add(12);
        reg.counter("sweep.points_skipped").add(30);
        reg.counter("sweep.points_failed").add(1);
        let t0 = Instant::now();
        let mut last_events = 0;
        let mut last_t = t0;
        let line = render_line(
            "reproduce",
            t0,
            Instant::now(),
            &mut last_events,
            &mut last_t,
        );
        assert!(
            line.contains("points 12 done, 30 resumed, 1 failed"),
            "{line}"
        );
        crate::reset();
    }

    #[test]
    fn render_line_shows_deepest_shard_queue() {
        let _lock = crate::test_lock();
        crate::reset();
        let reg = crate::global();
        reg.counter("progress.events").add(1_000);
        reg.gauge("run.sim.shard0.queue_depth").set(2);
        reg.gauge("run.sim.shard1.queue_depth").set(7);
        reg.gauge("run.sim.shard2.queue_depth").set(0);
        let t0 = Instant::now();
        let mut last_events = 0;
        let mut last_t = t0;
        let line = render_line("figure", t0, Instant::now(), &mut last_events, &mut last_t);
        assert!(line.contains("q max 7"), "{line}");
        crate::reset();

        // without any queue gauges the segment stays off the line
        let line = render_line("figure", t0, Instant::now(), &mut last_events, &mut last_t);
        assert!(!line.contains("q max"), "{line}");
    }

    #[test]
    fn final_flush_renders_fresh_counters_not_the_last_sample() {
        let _lock = crate::test_lock();
        crate::reset();
        let reg = crate::global();
        reg.counter("sweep.points_done").add(3);
        let t0 = Instant::now();
        let mut last_events = 0;
        let mut last_t = t0;
        // A mid-run sample sees 3 points; the run then finishes two more
        // before the sampler stops mid-interval.
        let line = render_line(
            "reproduce",
            t0,
            Instant::now(),
            &mut last_events,
            &mut last_t,
        );
        assert!(line.contains("points 3 done"), "{line}");
        reg.counter("sweep.points_done").add(2);
        let flushed = final_flush(false, "reproduce", t0, &mut last_events, &mut last_t)
            .expect("non-tty stop must flush a final line");
        assert!(flushed.contains("points 5 done"), "{flushed}");
        // On a terminal the live line is cleared instead — nothing to flush.
        assert!(final_flush(true, "reproduce", t0, &mut last_events, &mut last_t).is_none());
        crate::reset();
    }

    #[test]
    fn sampler_starts_and_stops() {
        let _lock = crate::test_lock();
        let sampler = ProgressSampler::start("test");
        thread::sleep(Duration::from_millis(20));
        drop(sampler);
    }
}
