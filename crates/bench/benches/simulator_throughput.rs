//! Simulator throughput: references per second through the full
//! hierarchy, on synthetic streams with controlled hit rates and on a real
//! workload stream. This is the cost of the "online simulation" the
//! paper's framework performs during application execution.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use memsim_bench::bench_scale;
use memsim_cache::{Cache, CacheConfig, CountingMemory, Hierarchy};
use memsim_trace::{ChunkBuffer, TraceEvent, TraceSink};
use memsim_tracefile::{replay_into, TraceHeader, TraceReader, TraceWriter};
use memsim_workloads::WorkloadKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn full_hierarchy(scale: &memsim_core::Scale) -> Hierarchy<CountingMemory> {
    let caches = vec![
        Cache::new(CacheConfig::new(
            "L1",
            scale.l1_bytes,
            scale.line_bytes,
            scale.l1_ways,
        )),
        Cache::new(CacheConfig::new(
            "L2",
            scale.l2_bytes,
            scale.line_bytes,
            scale.l2_ways,
        )),
        Cache::new(CacheConfig::new(
            "L3",
            scale.l3_bytes,
            scale.line_bytes,
            scale.l3_ways,
        )),
        Cache::new(
            CacheConfig::new("L4", scale.scaled_capacity(512 << 20), 1024, 16).with_sectors(64),
        ),
    ];
    Hierarchy::new(caches, CountingMemory::default())
}

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    const N: u64 = 100_000;

    let mut g = c.benchmark_group("simulator_throughput");
    g.throughput(Throughput::Elements(N));

    // L1-resident stream: the simulator's fast path
    g.bench_function("l1_hits", |b| {
        let mut h = full_hierarchy(&scale);
        b.iter(|| {
            for i in 0..N {
                h.access(TraceEvent::load((i % 512) * 64, 8));
            }
            black_box(h.total_refs())
        })
    });

    // sequential sweep over a large range: every level fills steadily
    g.bench_function("streaming", |b| {
        let mut h = full_hierarchy(&scale);
        let mut pos = 0u64;
        b.iter(|| {
            for _ in 0..N {
                h.access(TraceEvent::load(pos % (256 << 20), 8));
                pos += 8;
            }
            black_box(h.total_refs())
        })
    });

    // uniform random over 256 MiB: the adversarial path (misses everywhere)
    g.bench_function("random", |b| {
        let mut h = full_hierarchy(&scale);
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            for _ in 0..N {
                let addr = rng.random_range(0u64..(256 << 20)) & !7;
                let ev = if rng.random_bool(0.3) {
                    TraceEvent::store(addr, 8)
                } else {
                    TraceEvent::load(addr, 8)
                };
                h.access(ev);
            }
            black_box(h.total_refs())
        })
    });
    // the streaming sweep again, but emitted the way workloads do it:
    // buffered into fixed chunks and delivered through `&mut dyn TraceSink`
    // — one virtual `access_chunk` call per chunk instead of one per event
    g.bench_function("chunked_stream", |b| {
        let mut h = full_hierarchy(&scale);
        let mut pos = 0u64;
        b.iter(|| {
            {
                let sink: &mut dyn TraceSink = &mut h;
                let mut buf = ChunkBuffer::new(sink);
                for _ in 0..N {
                    buf.access(TraceEvent::load(pos % (256 << 20), 8));
                    pos += 8;
                }
                buf.drain();
            }
            black_box(h.total_refs())
        })
    });
    g.finish();

    // a real workload stream, end to end (construction + run)
    c.bench_function("simulator_throughput/cg_end_to_end", |b| {
        b.iter(|| {
            let mut w = WorkloadKind::Cg.build(memsim_workloads::Class::Mini);
            let mut h = full_hierarchy(&scale);
            w.run(&mut h);
            h.drain();
            black_box(h.total_refs())
        })
    });

    // the same CG stream replayed from a recorded trace instead of
    // regenerated: record once into memory, then measure pure decode and
    // decode+simulate — the per-point cost when a config sweep replays one
    // recording instead of re-running the workload at every grid point
    let (trace_buf, trace_events) = {
        let mut w = WorkloadKind::Cg.build(memsim_workloads::Class::Mini);
        let header = TraceHeader::for_space(w.space(), "CG", "mini");
        let mut writer = TraceWriter::new(Vec::new(), &header).expect("in-memory writer");
        w.run(&mut writer);
        writer.finish().expect("finish in-memory trace")
    };
    let mut g = c.benchmark_group("replay_throughput");
    g.throughput(Throughput::Elements(trace_events));
    g.bench_function("decode_only", |b| {
        b.iter(|| {
            let mut r = TraceReader::new(trace_buf.as_slice()).unwrap();
            let mut n = 0u64;
            while let Some(chunk) = r.next_chunk().unwrap() {
                n += chunk.len() as u64;
            }
            black_box(n)
        })
    });
    g.bench_function("cg_replay_into_hierarchy", |b| {
        b.iter(|| {
            let mut h = full_hierarchy(&scale);
            let mut r = TraceReader::new(trace_buf.as_slice()).unwrap();
            let n = replay_into(&mut r, &mut h).unwrap();
            h.drain();
            black_box(n)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
