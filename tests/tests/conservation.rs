//! Cross-crate conservation invariants: counters must balance between
//! every pair of adjacent levels, for real workload streams.

use memsim_core::{simulate_structure, Structure};
use memsim_integration_tests::{fast_workloads, test_scale};

/// Fills at level i+1 equal misses at level i; memory loads equal the last
/// cache's load misses (writeback store misses bypass, they do not fetch).
#[test]
fn inter_level_flow_balance() {
    let scale = test_scale();
    for kind in fast_workloads() {
        for structure in [
            Structure::ThreeLevel,
            Structure::WithL4 {
                capacity_bytes: 1 << 20,
                page_bytes: 512,
            },
        ] {
            let run = simulate_structure(kind, &scale, &structure);
            for (i, w) in run.caches.windows(2).enumerate() {
                let (upper, lower) = (&w[0], &w[1]);
                // every demand miss above triggers exactly one load below.
                // At L1, demand store misses also fetch; deeper levels see
                // stores only as writebacks, whose misses bypass without
                // fetching.
                let demand_misses = if i == 0 {
                    upper.misses()
                } else {
                    upper.load_misses
                };
                assert_eq!(
                    lower.loads, demand_misses,
                    "{kind:?} {structure:?}: {} loads != {} demand misses",
                    lower.name, upper.name
                );
                // all inter-level fetches move the upper block size
                assert!(lower.bytes_loaded >= lower.loads * 64);
            }
            let last = run.caches.last().unwrap();
            assert_eq!(run.mem.loads, last.load_misses, "{kind:?} {structure:?}");
            // every level's counters are internally consistent
            for c in &run.caches {
                assert!(c.is_consistent(), "{}", c.name);
            }
        }
    }
}

/// Write conservation: every byte the CPU stores is eventually written to
/// memory at block granularity (after the end-of-stream drain), so the
/// memory's stored bytes must cover the distinct lines the CPU dirtied.
#[test]
fn dirty_data_reaches_memory() {
    let scale = test_scale();
    for kind in fast_workloads() {
        let run = simulate_structure(kind, &scale, &Structure::ThreeLevel);
        // L1 absorbed `stores`; after drain, those dirty lines must appear
        // as memory stores. With write-back caching, memory stores can be
        // fewer than CPU stores (coalescing) but never zero when stores
        // happened, and the byte volume is line-granular.
        assert!(run.caches[0].stores > 0);
        assert!(
            run.mem.stores > 0,
            "{kind:?}: dirty lines never reached memory"
        );
        assert_eq!(run.mem.bytes_stored % 64, 0, "line-granular writebacks");
        assert!(
            run.mem.stores <= run.caches[0].stores,
            "write-back must coalesce, not amplify, store *counts*"
        );
    }
}

/// The per-region attribution at the memory terminal is lossless.
#[test]
fn region_attribution_is_total() {
    let scale = test_scale();
    for kind in fast_workloads() {
        let run = simulate_structure(kind, &scale, &Structure::ThreeLevel);
        let region_loads: u64 = run.per_region.iter().map(|t| t.loads).sum();
        let region_stores: u64 = run.per_region.iter().map(|t| t.stores).sum();
        assert_eq!(
            region_loads, run.mem.loads,
            "{kind:?}: unattributed memory loads"
        );
        assert_eq!(
            region_stores, run.mem.stores,
            "{kind:?}: unattributed memory stores"
        );
        let region_bytes: u64 = run
            .per_region
            .iter()
            .map(|t| t.bytes_loaded + t.bytes_stored)
            .sum();
        assert_eq!(region_bytes, run.mem.bytes_loaded + run.mem.bytes_stored);
    }
}

/// Larger caches never increase the miss count seen by memory (inclusion
/// of hit sets holds for LRU stack algorithms at fixed associativity and
/// block size when capacity doubles — here checked empirically end-to-end).
#[test]
fn bigger_l4_filters_no_less() {
    let scale = test_scale();
    for kind in fast_workloads() {
        let small = simulate_structure(
            kind,
            &scale,
            &Structure::WithL4 {
                capacity_bytes: 512 << 10,
                page_bytes: 1024,
            },
        );
        let big = simulate_structure(
            kind,
            &scale,
            &Structure::WithL4 {
                capacity_bytes: 4 << 20,
                page_bytes: 1024,
            },
        );
        // set-associative LRU is not a strict stack algorithm (set counts
        // differ), so allow a sliver of noise
        assert!(
            big.mem.loads as f64 <= small.mem.loads as f64 * 1.02,
            "{kind:?}: 4 MiB L4 missed more ({}) than 512 KiB ({})",
            big.mem.loads,
            small.mem.loads
        );
    }
}
