//! Figure 4: average normalized total energy of the 4LC design across EH1-EH8.
//!
//! Prints the reproduced series, then Criterion-measures the analytic
//! re-costing of the whole figure (the underlying simulations are memoized
//! after the first pass, so the measured quantity is the model evaluation
//! the paper's methodology performs per configuration).

use criterion::{criterion_group, criterion_main, Criterion};
use memsim_bench::{bench_ctx, print_figure};
use memsim_core::experiments::{fig_4lc, Metric};
use memsim_core::SimCache;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cache = SimCache::new();
    let ctx = bench_ctx(&cache);
    let fig = fig_4lc(&ctx, Metric::Energy).unwrap();
    print_figure(&fig);
    c.bench_function("fig04_4lc_energy/recost", |b| {
        b.iter(|| black_box(fig_4lc(&ctx, Metric::Energy)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
