//! HPC and data-intensive workload kernels emitting memory address streams.
//!
//! The paper drives its simulator with PEBIL-instrumented runs of NPB
//! (BT, SP, LU, CG), CORAL (AMG2013, Graph500, Hash), and the Velvet
//! assembler. Here each benchmark is re-implemented as the *same algorithm*
//! at a scaled problem size, running on the instrumented containers of
//! `memsim-trace`, so that the emitted address stream has the access
//! pattern of the real code: CSR SpMV gather for CG, structured-grid line
//! sweeps for BT/SP/LU, V-cycle grid traversals for AMG, frontier-driven
//! neighbour gathers for Graph500, random probing for Hash, and k-mer
//! hashing plus graph walking for Velvet.
//!
//! Every kernel verifies its own numerical/algorithmic result after the
//! run ([`Workload::verify`]), so a bug that would silently distort the
//! address stream fails loudly instead.
//!
//! # Problem classes
//!
//! [`Class`] scales each benchmark's footprint from the paper's 0.8–4
//! GB/core down to simulation-friendly sizes with the same structure
//! (see `DESIGN.md` §5 for the capacity-ratio argument):
//!
//! | class | footprint target | intended use |
//! |-------|------------------|--------------|
//! | `Mini`  | ≈ paper / 256 (3–16 MiB)  | unit tests, Criterion benches |
//! | `Demo`  | ≈ paper / 32 (25–128 MiB) | figure regeneration |
//! | `Large` | ≈ paper / 8 (100–512 MiB) | slow, closer-to-paper runs |
//!
//! # Example
//!
//! ```
//! use memsim_workloads::{Class, WorkloadKind};
//! use memsim_trace::sinks::CountingSink;
//!
//! let mut w = WorkloadKind::Cg.build(Class::Mini);
//! let mut sink = CountingSink::new();
//! w.run(&mut sink);
//! w.verify().unwrap();
//! assert!(sink.total() > 100_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod amg;
mod bt;
mod cg;
mod graph500;
mod hash;
mod lu;
mod sp;
mod sparse;
pub mod synthetic;
mod velvet;

pub use amg::{Amg, AmgParams};
pub use bt::{Bt, BtParams};
pub use cg::{Cg, CgParams};
pub use graph500::{Graph500, Graph500Params};
pub use hash::{Hash, HashParams};
pub use lu::{Lu, LuParams};
pub use sp::{Sp, SpParams};
pub use sparse::CsrMatrix;
pub use synthetic::{Pattern, Synthetic, SyntheticParams};
pub use velvet::{Velvet, VelvetParams};

use memsim_trace::{AddressSpace, TraceSink};

/// Problem-size class (see the crate docs for the scaling rationale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// ≈ paper footprint / 256: unit tests and Criterion benches.
    Mini,
    /// ≈ paper footprint / 32: figure regeneration (the default).
    Demo,
    /// ≈ paper footprint / 8: slow high-fidelity runs.
    Large,
}

impl Class {
    /// All classes.
    pub const ALL: [Class; 3] = [Class::Mini, Class::Demo, Class::Large];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Class::Mini => "mini",
            Class::Demo => "demo",
            Class::Large => "large",
        }
    }

    /// Parse a class name.
    pub fn parse(s: &str) -> Option<Class> {
        match s.to_ascii_lowercase().as_str() {
            "mini" => Some(Class::Mini),
            "demo" => Some(Class::Demo),
            "large" => Some(Class::Large),
            _ => None,
        }
    }
}

/// A benchmark that can replay its memory behaviour into a sink.
pub trait Workload {
    /// Benchmark name as the paper spells it (e.g. `"Graph500"`).
    fn name(&self) -> &'static str;

    /// Run the timed kernel, streaming every memory reference into `sink`.
    /// May be called once per instance.
    fn run(&mut self, sink: &mut dyn TraceSink);

    /// The simulated address space holding the benchmark's data regions.
    fn space(&self) -> &AddressSpace;

    /// Check the algorithmic result of the run (residual dropped, BFS tree
    /// valid, all keys found, …). Call after [`Workload::run`].
    fn verify(&self) -> Result<(), String>;

    /// Memory footprint in bytes (sum of all allocated regions).
    fn footprint_bytes(&self) -> u64 {
        self.space().footprint_bytes()
    }
}

/// The benchmark suite of the paper (Table 4 plus SP, which appears in the
/// NDM results).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// NPB BT: block-tridiagonal ADI solver (structured grid).
    Bt,
    /// NPB SP: scalar pentadiagonal ADI solver (structured grid).
    Sp,
    /// NPB LU: SSOR solver (structured grid, wavefront-ordered sweeps).
    Lu,
    /// NPB CG: conjugate gradient with irregular CSR gathers.
    Cg,
    /// CORAL AMG2013: algebraic multigrid (geometric V-cycle stand-in).
    Amg,
    /// CORAL Graph500: BFS over a Kronecker graph.
    Graph500,
    /// CORAL Hash: open-addressing hash build + probe.
    Hash,
    /// Velvet: de Bruijn graph assembly of synthetic reads.
    Velvet,
}

impl WorkloadKind {
    /// The seven benchmarks of Table 4 — the set every figure averages over.
    pub const PAPER_SET: [WorkloadKind; 7] = [
        WorkloadKind::Bt,
        WorkloadKind::Lu,
        WorkloadKind::Graph500,
        WorkloadKind::Hash,
        WorkloadKind::Amg,
        WorkloadKind::Cg,
        WorkloadKind::Velvet,
    ];

    /// Every implemented benchmark (the paper set plus SP).
    pub const ALL: [WorkloadKind; 8] = [
        WorkloadKind::Bt,
        WorkloadKind::Sp,
        WorkloadKind::Lu,
        WorkloadKind::Cg,
        WorkloadKind::Amg,
        WorkloadKind::Graph500,
        WorkloadKind::Hash,
        WorkloadKind::Velvet,
    ];

    /// Benchmark name as the paper spells it.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Bt => "BT",
            WorkloadKind::Sp => "SP",
            WorkloadKind::Lu => "LU",
            WorkloadKind::Cg => "CG",
            WorkloadKind::Amg => "AMG2013",
            WorkloadKind::Graph500 => "Graph500",
            WorkloadKind::Hash => "Hash",
            WorkloadKind::Velvet => "Velvet",
        }
    }

    /// Case-insensitive parse of a benchmark name.
    pub fn parse(s: &str) -> Option<WorkloadKind> {
        match s.to_ascii_lowercase().as_str() {
            "bt" => Some(WorkloadKind::Bt),
            "sp" => Some(WorkloadKind::Sp),
            "lu" => Some(WorkloadKind::Lu),
            "cg" => Some(WorkloadKind::Cg),
            "amg" | "amg2013" => Some(WorkloadKind::Amg),
            "graph500" | "g500" | "bfs" => Some(WorkloadKind::Graph500),
            "hash" | "hashing" | "hashing-2" => Some(WorkloadKind::Hash),
            "velvet" => Some(WorkloadKind::Velvet),
            _ => None,
        }
    }

    /// Instantiate the benchmark at `class` size (allocates and initializes
    /// its data untraced; call [`Workload::run`] to stream the kernel).
    pub fn build(self, class: Class) -> Box<dyn Workload> {
        match self {
            WorkloadKind::Bt => Box::new(Bt::new(BtParams::class(class))),
            WorkloadKind::Sp => Box::new(Sp::new(SpParams::class(class))),
            WorkloadKind::Lu => Box::new(Lu::new(LuParams::class(class))),
            WorkloadKind::Cg => Box::new(Cg::new(CgParams::class(class))),
            WorkloadKind::Amg => Box::new(Amg::new(AmgParams::class(class))),
            WorkloadKind::Graph500 => Box::new(Graph500::new(Graph500Params::class(class))),
            WorkloadKind::Hash => Box::new(Hash::new(HashParams::class(class))),
            WorkloadKind::Velvet => Box::new(Velvet::new(VelvetParams::class(class))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim_trace::sinks::CountingSink;

    #[test]
    fn names_roundtrip() {
        for k in WorkloadKind::ALL {
            assert_eq!(WorkloadKind::parse(k.name()), Some(k), "{k:?}");
        }
        assert_eq!(WorkloadKind::parse("nope"), None);
        for c in Class::ALL {
            assert_eq!(Class::parse(c.name()), Some(c));
        }
    }

    #[test]
    fn paper_set_is_table4() {
        assert_eq!(WorkloadKind::PAPER_SET.len(), 7);
        assert!(!WorkloadKind::PAPER_SET.contains(&WorkloadKind::Sp));
    }

    /// Every benchmark at Mini size runs, emits a nontrivial stream with
    /// both loads and stores, stays inside its registered regions, and
    /// passes its own verification.
    #[test]
    fn all_workloads_run_and_verify_mini() {
        for kind in WorkloadKind::ALL {
            let mut w = kind.build(Class::Mini);
            let mut sink = CountingSink::new();
            w.run(&mut sink);
            assert!(
                sink.loads > 10_000,
                "{}: only {} loads",
                w.name(),
                sink.loads
            );
            assert!(
                sink.stores > 1_000,
                "{}: only {} stores",
                w.name(),
                sink.stores
            );
            w.verify()
                .unwrap_or_else(|e| panic!("{} failed verification: {e}", w.name()));
            assert!(
                w.footprint_bytes() > 1 << 20,
                "{}: footprint too small",
                w.name()
            );
        }
    }

    /// Address streams are deterministic: two builds of the same workload
    /// produce identical reference counts.
    #[test]
    fn workloads_are_deterministic() {
        for kind in WorkloadKind::ALL {
            let count = |k: WorkloadKind| {
                let mut w = k.build(Class::Mini);
                let mut sink = CountingSink::new();
                w.run(&mut sink);
                (sink.loads, sink.stores, sink.load_bytes, sink.store_bytes)
            };
            assert_eq!(count(kind), count(kind), "{kind:?} not deterministic");
        }
    }

    /// Footprints grow with class (Mini < Demo), for a fast-to-build subset.
    #[test]
    fn class_scaling_increases_footprint() {
        for kind in [WorkloadKind::Cg, WorkloadKind::Hash, WorkloadKind::Lu] {
            let mini = kind.build(Class::Mini).footprint_bytes();
            let demo = kind.build(Class::Demo).footprint_bytes();
            assert!(demo > 2 * mini, "{kind:?}: mini={mini} demo={demo}");
        }
    }
}
