//! The generalization study: Figures 9 and 10.
//!
//! "The maps are generated using the execution profile of all the
//! benchmarks for the NMM design (512 MB DRAM, 512 B page size) and scale
//! DRAM latency and energy costs with respect to DRAM." One simulation per
//! workload supplies the execution profile; every (read ×, write ×) cell
//! is then costed analytically.

use crate::configs::n_by_name;
use crate::design::{sram_costs, Design, MEM_NAME};
use crate::journal::SweepCtx;
use crate::model::{LevelCost, Metrics};
use crate::runner::{sweep_point_sampled, Engine, SimCache, SweepError};
use crate::sampling::SampleMode;
use crate::scale::Scale;
use memsim_cache::LevelStats;
use memsim_tech::{Multipliers, TechParams, Technology};
use memsim_workloads::WorkloadKind;

/// Which per-operation cost the two heat-map axes scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Scale read/write latency; report normalized runtime (Figure 9).
    Latency,
    /// Scale read/write energy per bit; report normalized energy (Figure 10).
    Energy,
}

/// A computed heat map.
#[derive(Debug, Clone)]
pub struct HeatmapData {
    /// Figure title.
    pub title: String,
    /// Read-cost multipliers (columns).
    pub read_mults: Vec<f64>,
    /// Write-cost multipliers (rows).
    pub write_mults: Vec<f64>,
    /// `grid[w][r]` = average normalized metric at (write ×, read ×),
    /// averaged over the workloads.
    pub grid: Vec<Vec<f64>>,
}

impl HeatmapData {
    /// Value at (read multiplier index, write multiplier index).
    pub fn at(&self, read_idx: usize, write_idx: usize) -> f64 {
        self.grid[write_idx][read_idx]
    }
}

/// The multiplier ladder the paper's maps span (1× to 20×).
pub fn default_multipliers() -> Vec<f64> {
    vec![1.0, 2.0, 5.0, 10.0, 15.0, 20.0]
}

/// Compute a heat map for `axis`, averaging over `kinds`.
///
/// The hypothetical memory is DRAM with the given axis scaled; the DRAM
/// page cache stays real DRAM; the hierarchy is the paper's NMM at N6
/// (512 MB, 512 B pages).
///
/// The two simulated points per workload (baseline and NMM@N6) go through
/// [`sweep_point`], so with a sweep context they are journaled, served
/// from `--resume`, and panic-isolated like grid points; an armed
/// interrupt stops between workloads.
#[allow(clippy::too_many_arguments)]
pub fn heatmap(
    kinds: &[WorkloadKind],
    scale: &Scale,
    cache: &SimCache,
    axis: Axis,
    read_mults: &[f64],
    write_mults: &[f64],
    sweep: Option<&SweepCtx>,
    engine: Engine,
) -> Result<HeatmapData, SweepError> {
    heatmap_sampled(
        kinds,
        scale,
        cache,
        axis,
        read_mults,
        write_mults,
        sweep,
        engine,
        SampleMode::Off,
    )
}

/// [`heatmap`] with an explicit sampling mode: with sampling on, the two
/// simulated points per workload come from the interval-sampled replay
/// (extrapolated counters), and every cell is costed from those.
#[allow(clippy::too_many_arguments)]
pub fn heatmap_sampled(
    kinds: &[WorkloadKind],
    scale: &Scale,
    cache: &SimCache,
    axis: Axis,
    read_mults: &[f64],
    write_mults: &[f64],
    sweep: Option<&SweepCtx>,
    engine: Engine,
    sample: SampleMode,
) -> Result<HeatmapData, SweepError> {
    let n6 = n_by_name("N6").expect("N6 exists");
    let mut grid = vec![vec![0.0f64; read_mults.len()]; write_mults.len()];
    let mut failures = Vec::new();
    for kind in kinds {
        if sweep.is_some_and(SweepCtx::interrupted) {
            return Err(SweepError::Interrupted);
        }
        // one simulation (structure of NMM@N6) + baseline per workload
        let pair = sweep_point_sampled(
            *kind,
            scale,
            &Design::Baseline,
            cache,
            sweep,
            engine,
            sample,
        )
        .and_then(|base| {
            sweep_point_sampled(
                *kind,
                scale,
                &Design::Nmm {
                    nvm: Technology::Pcm,
                    config: n6,
                },
                cache,
                sweep,
                engine,
                sample,
            )
            .map(|nmm| (base, nmm))
        });
        let (base, nmm) = match pair {
            Ok(p) => p,
            Err(failed) => {
                failures.push(failed);
                continue;
            }
        };
        let run = &nmm.run;
        // fixed costs: SRAM levels + the DRAM page cache
        let mut fixed = sram_costs(scale);
        // static on the paper-scale N6 capacity (512 MB)
        fixed.push(LevelCost::from_tech(
            "L4",
            &TechParams::of(Technology::Dram),
            n6.capacity_bytes,
        ));
        let stats: Vec<&LevelStats> = run.all_levels();
        for (wi, wm) in write_mults.iter().enumerate() {
            for (ri, rm) in read_mults.iter().enumerate() {
                let m = match axis {
                    Axis::Latency => Multipliers::latency(*rm, *wm),
                    Axis::Energy => Multipliers::energy(*rm, *wm),
                };
                let mem_params = TechParams::of(Technology::Dram).scaled(m);
                // the hypothetical memory is non-volatile: no refresh power
                let mut mem_cost = LevelCost::from_tech(MEM_NAME, &mem_params, run.footprint_bytes);
                // the hypothetical technology is assumed non-volatile
                mem_cost.static_w = 0.0;
                let mut costs = fixed.clone();
                costs.push(mem_cost);
                let pairs: Vec<_> = stats.iter().copied().zip(costs.iter()).collect();
                let metrics = Metrics::compute(&pairs, run.total_refs);
                let norm = metrics.normalized_to(&base.metrics);
                grid[wi][ri] += match axis {
                    Axis::Latency => norm.time,
                    Axis::Energy => norm.energy,
                } / kinds.len() as f64;
            }
        }
    }
    if !failures.is_empty() {
        return Err(SweepError::Failed(failures));
    }
    Ok(HeatmapData {
        title: match axis {
            Axis::Latency => "Normalized runtime of NMM vs read/write latency ×".into(),
            Axis::Energy => "Normalized energy of NMM vs read/write energy ×".into(),
        },
        read_mults: read_mults.to_vec(),
        write_mults: write_mults.to_vec(),
        grid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_map(axis: Axis) -> HeatmapData {
        let cache = SimCache::new();
        heatmap(
            &[WorkloadKind::Cg],
            &Scale::mini(),
            &cache,
            axis,
            &[1.0, 5.0, 20.0],
            &[1.0, 5.0, 20.0],
            None,
            Engine::Sequential,
        )
        .unwrap()
    }

    #[test]
    fn latency_map_monotone_in_both_axes() {
        let m = quick_map(Axis::Latency);
        for w in 0..3 {
            for r in 0..2 {
                assert!(
                    m.at(r, w) <= m.at(r + 1, w) + 1e-12,
                    "not monotone in read latency"
                );
            }
        }
        for r in 0..3 {
            for w in 0..2 {
                assert!(
                    m.at(r, w) <= m.at(r, w + 1) + 1e-12,
                    "not monotone in write latency"
                );
            }
        }
    }

    #[test]
    fn read_latency_matters_more_than_write() {
        // "an increase in read latency has higher impact than … write"
        let m = quick_map(Axis::Latency);
        let read_20x = m.at(2, 0); // read ×20, write ×1
        let write_20x = m.at(0, 2); // read ×1, write ×20
        assert!(read_20x > write_20x, "read {read_20x} vs write {write_20x}");
    }

    #[test]
    fn energy_map_monotone_and_read_dominant() {
        let m = quick_map(Axis::Energy);
        assert!(m.at(2, 0) >= m.at(0, 0));
        assert!(
            m.at(2, 0) > m.at(0, 2),
            "read energy dominates write energy"
        );
    }

    #[test]
    fn unit_cell_is_the_cheapest() {
        // at 1×/1× the memory is DRAM without refresh behind a DRAM cache:
        // the cheapest cell of the whole map, and near the baseline (the
        // mini scale compresses the refresh savings that make it dip below
        // 1.0 at paper ratios — see EXPERIMENTS.md for the demo-scale map)
        let m = quick_map(Axis::Energy);
        let origin = m.at(0, 0);
        for row in &m.grid {
            for v in row {
                assert!(origin <= v + 1e-12, "origin {origin} not the minimum ({v})");
            }
        }
        assert!(
            origin < 1.3,
            "1×/1× cell should be near the baseline: {origin}"
        );
    }

    #[test]
    fn extreme_boundary_point_lands_in_last_cell() {
        // Regression: the max-valued design point must land in the *last*
        // cell of the map, not fall off the edge or alias into an interior
        // cell. The grid is indexed grid[write][read]; a ladder of n
        // multipliers must produce exactly n rows × n columns with the
        // (max read ×, max write ×) point present and equal to the
        // monotone maximum of the whole map.
        let cache = SimCache::new();
        let ladder = [1.0, 20.0, 1000.0];
        let m = heatmap(
            &[WorkloadKind::Cg],
            &Scale::mini(),
            &cache,
            Axis::Latency,
            &ladder,
            &ladder,
            None,
            Engine::Sequential,
        )
        .unwrap();
        assert_eq!(m.grid.len(), ladder.len());
        for row in &m.grid {
            assert_eq!(row.len(), ladder.len());
        }
        let corner = m.at(ladder.len() - 1, ladder.len() - 1);
        for row in &m.grid {
            for v in row {
                assert!(
                    *v <= corner + 1e-12,
                    "extreme cell {corner} not the map maximum ({v})"
                );
            }
        }
        // a 1000× read latency must actually register: far above origin
        assert!(corner > m.at(0, 0) * 2.0, "boundary cell did not register");
    }

    #[test]
    fn default_ladder() {
        let d = default_multipliers();
        assert_eq!(d.first(), Some(&1.0));
        assert_eq!(d.last(), Some(&20.0));
        assert!(d.windows(2).all(|w| w[0] < w[1]));
    }
}
